#!/usr/bin/env python3
"""Fig. 6 scenario: the eighteen-regressor tournament.

Runs every model of Sec. V.A.2 through the paper's pipeline (75/25
time-ordered split, StandardScaler, 10-lag window) on the synthetic UQ
wireless traces, prints the RMSE table next to the paper's coordinates,
renders the scatter, and reports the selected model.

Run:  python examples/regressor_tournament.py          (full roster, ~1 min)
      python examples/regressor_tournament.py --fast   (6 key entrants)
"""

import argparse

from repro.experiments import fig6_regressor_tournament as fig6
from repro.hecate import run_tournament
from repro.datasets import generate_uq_wireless


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="run only the paper-critical entrants")
    args = parser.parse_args()

    if args.fast:
        entrants = ["R5", "R6", "R7", "R10", "R11", "R13"]
        tournament = run_tournament(generate_uq_wireless(), entrants=entrants)
        for e in tournament.ranked():
            tag = " (excluded)" if e.paper_id in tournament.excluded else ""
            print(f"{e.paper_id:4s} {e.label:12s} "
                  f"wifi={e.rmse_wifi:6.2f} lte={e.rmse_lte:6.2f}{tag}")
        print(f"\nselected: {tournament.best().label}")
    else:
        result = fig6.run()
        print(fig6.summary(result))


if __name__ == "__main__":
    main()
