#!/usr/bin/env python3
"""Sweep the built-in scenario suite through the sweep engine.

Runs every registered scenario through the closed-form fluid backend
over three seeds — fanned out over worker processes and cached on disk,
so a second invocation is served almost entirely from the cache — prints
the per-scenario seed statistics, then replays one interesting scenario
(a ring whose busiest arc flaps mid-run) at packet level to watch the
self-driving loop steer flows around the outage.

Run:  python examples/scenario_sweep.py
"""

from repro.scenarios import ScenarioRunner, get_scenario, list_scenarios
from repro.sweep import (
    ResultCache,
    SweepEngine,
    SweepSpec,
    aggregate,
    render_table,
)


def main() -> None:
    print("fluid sweep over the whole small suite, 3 seeds, 4 workers")
    spec = SweepSpec(
        scenarios=tuple(s.name for s in list_scenarios(include_scale=False)),
        seeds=(0, 1, 2),
        backends=("fluid",),
        overrides={"horizon": 10.0, "warmup": 2.0},
    )
    engine = SweepEngine(spec, jobs=4, cache=ResultCache())
    outcome = engine.run()
    print(render_table(aggregate(outcome.runs, outcome.results)))
    print(outcome.stats_line())
    print("(re-run this script: the sweep is then served from .sweep-cache)")

    print("\npacket-level replay: ring-link-flap (DES backend)")
    scenario = get_scenario("ring-link-flap").with_overrides(horizon=25.0)
    result = ScenarioRunner(scenario, backend="des").run()
    print(result.summary())
    print("\nthe flap fails r0-r1 at 40% of the horizon and restores at "
          "70%; drops spike during the blackout and the re-optimizer's "
          "migrations steer flows onto the surviving direction.")


if __name__ == "__main__":
    main()
