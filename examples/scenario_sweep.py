#!/usr/bin/env python3
"""Sweep the built-in scenario suite and compare backends.

Runs every registered scenario through the closed-form fluid backend
(instant), then replays one interesting scenario — a ring whose busiest
arc flaps mid-run — at packet level to watch the self-driving loop steer
flows around the outage.

Run:  python examples/scenario_sweep.py
"""

from repro.scenarios import ScenarioRunner, get_scenario, list_scenarios


def main() -> None:
    print("fluid sweep over the whole suite")
    print(f"{'scenario':26s} {'Mbps':>9s} {'worst':>8s} {'lat ms':>8s} "
          f"{'outages':>8s} {'migr':>5s}")
    for scenario in list_scenarios():
        result = ScenarioRunner(scenario, backend="fluid").run()
        print(f"{result.scenario:26s} {result.total_throughput_mbps:9.2f} "
              f"{result.min_flow_mbps:8.2f} {result.mean_latency_ms:8.2f} "
              f"{result.drops:8d} {result.migrations:5d}")

    print("\npacket-level replay: ring-link-flap (DES backend)")
    scenario = get_scenario("ring-link-flap").with_overrides(horizon=25.0)
    result = ScenarioRunner(scenario, backend="des").run()
    print(result.summary())
    print("\nthe flap fails r0-r1 at 40% of the horizon and restores at "
          "70%; drops spike during the blackout and the re-optimizer's "
          "migrations steer flows onto the surviving direction.")


if __name__ == "__main__":
    main()
