#!/usr/bin/env python3
"""Fig. 11 scenario: agile migration of a live flow to a lower-latency path.

Phase (i): ICMP probes ride Tunnel 1 (MIA-SAO-AMS), whose MIA-SAO link
carries the paper's injected 20 ms delay.  Phase (ii): a latency-
minimization request migrates the flow to Tunnel 2 (MIA-CHI-AMS) by
re-pointing a single PBR entry at the MIA edge — no core router is
touched, and the RTT series steps down immediately.

Run:  python examples/latency_migration.py
"""

from repro.experiments import fig11_latency_migration as fig11


def main() -> None:
    result = fig11.run(phase_duration=60.0)
    print(fig11.summary(result))
    print()
    verdict = "reproduced" if result.improvement_ms > 15.0 else "NOT reproduced"
    print(f"paper shape ({fig11.INJECTED_DELAY_MS:.0f} ms step after one PBR flip): {verdict}")


if __name__ == "__main__":
    main()
