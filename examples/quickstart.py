#!/usr/bin/env python3
"""Quickstart: stand up the Hecate-PolKA self-driving network in ~30 lines.

Builds the paper's emulated Global P4 Lab testbed (Fig. 9), registers the
three PolKA tunnels, lets telemetry warm up, requests a TCP flow through
the framework (Dashboard -> Scheduler -> Controller -> Hecate -> PolKA,
the Fig. 4 sequence) and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.core import SelfDrivingNetwork, fig12_capacities, global_p4_lab
from repro.ml import LinearRegression
from repro.topologies import TUNNEL1, TUNNEL2, TUNNEL3


def main() -> None:
    # 1. the emulated testbed, with the paper's Fig. 12 link capacities
    network = global_p4_lab(rates=fig12_capacities())

    # 2. the integration framework (LinearRegression keeps the demo quick;
    #    drop the argument to use the paper's Random Forest)
    sdn = SelfDrivingNetwork(network, model_factory=LinearRegression)

    # 3. candidate PolKA tunnels (explicit router paths -> routeIDs)
    sdn.add_tunnel("T1", 1, TUNNEL1)  # MIA - SAO - AMS
    sdn.add_tunnel("T2", 2, TUNNEL2)  # MIA - CHI - AMS
    sdn.add_tunnel("T3", 3, TUNNEL3)  # MIA - CAL - CHI - AMS

    # 4. warm the telemetry loop so Hecate has history to learn from
    sdn.run(until=35.0)

    # 5. request a flow exactly like the paper's Dashboard user
    result = sdn.request_flow(
        flow_name="demo", src="host1", dst="host2",
        protocol="tcp", tos=32, duration=20.0,
    )
    print("flow request :", result)

    sdn.run(until=60.0)

    record = sdn.flow("demo")
    print(f"placed on    : {record.tunnel} "
          f"(routeID 0b{sdn.router_config.policy('MIA').tunnels[1].route.route_id:b})")
    print(f"goodput      : {record.app.goodput_mbps():.1f} Mbps")
    print()
    print(sdn.dashboard.render_links([("MIA", "SAO"), ("MIA", "CHI"), ("MIA", "CAL")]))
    print()
    print(sdn.dashboard.flow_table())


if __name__ == "__main__":
    main()
