#!/usr/bin/env python3
"""PolKA playground: the polynomial routing substrate by itself.

Walks through (1) the paper's Fig. 1 example bit-for-bit, (2) routing on
a larger topology with automatic node-ID assignment, (3) mPolKA-style
multipath trees, and (4) failure recovery by edge re-steering.

Run:  python examples/polka_playground.py
"""

import networkx as nx

from repro.polka import (
    FailoverTable,
    MultipathDomain,
    PolkaDomain,
    gf2,
)
from repro.topologies import fig1_line


def fig1_example() -> None:
    print("=" * 70)
    print("1. Paper Fig. 1 — the worked example")
    adjacency, node_ids = fig1_line()
    domain = PolkaDomain(adjacency, node_ids=node_ids)
    route = domain.route_for_path(["s1", "s2", "s3", "edge_out"])
    for name, node_id in node_ids.items():
        print(f"   {name}: nodeID = {gf2.poly_to_str(node_id)}")
    print(f"   routeID = 0b{route.route_id:b} (paper: 10000)")
    for node, port in domain.walk(route):
        print(f"   at {node}: routeID mod nodeID -> port {port}")


def grid_routing() -> None:
    print("=" * 70)
    print("2. Automatic node IDs on a 4x4 grid")
    g = nx.grid_2d_graph(4, 4)
    g = nx.relabel_nodes(g, {n: f"n{n[0]}{n[1]}" for n in g})
    adjacency = {
        n: {nbr: i for i, nbr in enumerate(sorted(g.neighbors(n)))} for n in g
    }
    domain = PolkaDomain(adjacency)
    path = nx.shortest_path(g, "n00", "n33")
    route = domain.route_for_path(path)
    print(f"   path {' -> '.join(path)}")
    print(f"   routeID = 0b{route.route_id:b} ({route.header_bits} bits, "
          f"header never rewritten)")
    print(f"   hops verified: {len(domain.walk(route))}")


def multipath() -> None:
    print("=" * 70)
    print("3. mPolKA multipath: one routeID, two branches")
    adjacency = {"a": {"b": 0, "c": 1}, "b": {"d": 0}, "c": {"d": 0}}
    dom = MultipathDomain(adjacency)
    route = dom.route_for_tree({"a": ["b", "c"], "b": ["d"], "c": ["d"]})
    print(f"   routeID = 0b{route.route_id:b}")
    for node in ("a", "b", "c"):
        print(f"   at {node}: forwards to {sorted(dom.forward(node, route))}")


def failover() -> None:
    print("=" * 70)
    print("4. Failure recovery: only the edge re-steers")
    g = nx.cycle_graph(6)
    g = nx.relabel_nodes(g, {i: f"r{i}" for i in g})
    adjacency = {
        n: {nbr: i for i, nbr in enumerate(sorted(g.neighbors(n)))} for n in g
    }
    domain = PolkaDomain(adjacency)
    table = FailoverTable(domain, g, k=3)
    primary = table.active("r0", "r3")
    print(f"   primary : {' -> '.join(primary.path)}")
    failed = (primary.path[1], primary.path[2])
    backup = table.recover("r0", "r3", failed_links=[failed])
    print(f"   link {failed} fails -> backup {' -> '.join(backup.path)}")
    print(f"   migrations recorded: {len(table.history)} (core untouched)")


if __name__ == "__main__":
    fig1_example()
    grid_routing()
    multipath()
    failover()
