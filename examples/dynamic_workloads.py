#!/usr/bin/env python3
"""Tour of the dynamic (time-varying) scenario subsystem.

Prints each dynamic scenario's phase timeline, sweeps all of them
through the fluid backend over three seeds, then replays one flash
crowd at packet level so the incremental re-optimizer can be watched
reacting to the spike (and skipping unchanged groups in the lulls).

Run:  python examples/dynamic_workloads.py
"""

from repro.scenarios import ScenarioRunner, get_scenario, list_scenarios
from repro.sweep import SweepEngine, SweepSpec, aggregate, render_table


def timeline(scenario) -> str:
    """One-line ASCII phase timeline, e.g. ``|pre-crowd|flash-crowd|…``."""
    parts = []
    for phase in scenario.phases:
        label = phase.label or phase.traffic.pattern
        parts.append(f"{phase.at_frac:.2f} {label} "
                     f"({phase.traffic.pattern} x{phase.traffic.n_flows})")
    return " | ".join(parts)


def main() -> None:
    dynamic = [s for s in list_scenarios() if s.phases]
    print(f"{len(dynamic)} dynamic scenarios registered:\n")
    for scenario in dynamic:
        print(f"  {scenario.name}")
        print(f"    {timeline(scenario)}")

    print("\nfluid sweep over every dynamic scenario, 3 seeds")
    spec = SweepSpec(
        scenarios=tuple(s.name for s in dynamic),
        seeds=(0, 1, 2),
        backends=("fluid",),
    )
    outcome = SweepEngine(spec, jobs=4).run()
    print(render_table(aggregate(outcome.runs, outcome.results)))

    print("\npacket-level replay: fat-tree-flash-crowd (DES backend)")
    scenario = get_scenario("fat-tree-flash-crowd").with_overrides(
        horizon=25.0, warmup=3.0
    )
    runner = ScenarioRunner(scenario, backend="des")
    result = runner.run()
    print(result.summary())
    controller = runner.sdn.controller
    print(
        f"incremental re-optimization: {controller.reopt_solved} group "
        f"solves, {controller.reopt_skipped} skipped as unchanged"
    )


if __name__ == "__main__":
    main()
