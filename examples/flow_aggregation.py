#!/usr/bin/env python3
"""Fig. 12 scenario: aggregate throughput grows by spreading flows.

Three ToS-tagged TCP flows start on Tunnel 1 and share its 20 Mbps
bottleneck (~6.7 Mbps each).  A bandwidth-aware path-allocation request
then moves one flow to Tunnel 2 and another to Tunnel 3; the aggregate
steps from <20 Mbps to ~35 Mbps (paper measured ~30 on VirtualBox).

Run:  python examples/flow_aggregation.py
"""

from repro.experiments import fig12_flow_aggregation as fig12


def main() -> None:
    result = fig12.run(phase_duration=45.0)
    print(fig12.summary(result))
    print()
    gain = result.total_after / max(result.total_before, 1e-9)
    print(f"aggregate gain: x{gain:.2f} "
          f"(fluid-model prediction: x{result.fluid_after / result.fluid_before:.2f})")


if __name__ == "__main__":
    main()
