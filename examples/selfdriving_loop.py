#!/usr/bin/env python3
"""The full self-driving loop: telemetry -> forecast -> migrate, repeatedly.

Runs the framework with periodic re-optimization enabled while background
UDP load comes and goes on Tunnel 1.  Watch the controller notice the
forecasted congestion and move the managed TCP flow off (and back when
capacity frees up) — the paper's closing vision of an autonomous,
telemetry-driven routing engine.

Run:  python examples/selfdriving_loop.py
"""

from repro.core import SelfDrivingNetwork, fig12_capacities, global_p4_lab
from repro.ml import LinearRegression
from repro.net import UdpFlow
from repro.topologies import TUNNEL1, TUNNEL2, TUNNEL3


def main() -> None:
    net = global_p4_lab(rates=fig12_capacities())
    sdn = SelfDrivingNetwork(
        net, model_factory=LinearRegression, reoptimize_every=5.0
    )
    sdn.add_tunnel("T1", 1, TUNNEL1)
    sdn.add_tunnel("T2", 2, TUNNEL2)
    sdn.add_tunnel("T3", 3, TUNNEL3)
    sdn.run(until=35.0)

    sdn.request_flow(flow_name="managed", src="host1", dst="host2",
                     protocol="tcp", tos=32, duration=120.0)
    sdn.run(until=45.0)
    print(f"t=45 : managed flow on {sdn.flow('managed').tunnel} "
          f"(T1 is the fattest tunnel)")

    # unmanaged background traffic floods the SAO leg of Tunnel 1 (t=45..85)
    UdpFlow(net.hosts["host1"], net.hosts["host2"], rate_mbps=18.0,
            duration=40.0, tos=200).start(at=0.0)
    sdn.run(until=70.0)
    record = sdn.flow("managed")
    print(f"t=70 : background UDP flooding T1; managed flow now on {record.tunnel}")

    sdn.run(until=160.0)
    print(f"t=160: background gone; managed flow back on {sdn.flow('managed').tunnel}")
    for when, old, new in record.migrations:
        print(f"        migration at t={when:.0f}s: {old} -> {new}")
    print()
    print(sdn.dashboard.render_paths(["T1", "T2", "T3"]))
    print()
    print(sdn.dashboard.flow_table())
    print(f"\nHecate consultations: {len(sdn.decision_log())}")


if __name__ == "__main__":
    main()
