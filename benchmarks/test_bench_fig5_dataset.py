"""Fig. 5b bench: synthetic UQ wireless trace generation."""

from repro.experiments import fig5_dataset as fig5


def test_fig5_dataset_generation(benchmark):
    result = benchmark(fig5.run)
    print("\n" + fig5.summary(result))
    assert result.wifi_indoor_dominates  # WiFi strong indoors (paper Fig. 5b)
    assert result.lte_outdoor_dominates  # LTE overtakes outdoors
    ds = result.dataset
    assert ds.n_samples == 500  # 500 s at 1 Hz, like the UQ collection
    assert (ds.wifi >= 0).all() and (ds.lte >= 0).all()
