"""Ablation: history window length and forecast horizon (DESIGN.md #2-3).

The paper fixes 10 lags and a 10-step recursive forecast; this bench
sweeps the window length and measures one-step RMSE (RFR + LR on the
WiFi path) and the degradation of recursive multi-step forecasts.
"""

import numpy as np

from repro.datasets import generate_uq_wireless
from repro.hecate import QoSPredictor, evaluate_pipeline
from repro.ml import LinearRegression, RandomForestRegressor, root_mean_squared_error

LAGS = [2, 5, 10, 20]


def small_rfr():
    return RandomForestRegressor(n_estimators=25, random_state=42)


def sweep():
    ds = generate_uq_wireless()
    rows = []
    for lags in LAGS:
        rfr = evaluate_pipeline(ds.wifi, small_rfr(), n_lags=lags).rmse
        lr = evaluate_pipeline(ds.wifi, LinearRegression(), n_lags=lags).rmse
        rows.append((lags, rfr, lr))
    return rows


def test_lag_window_sweep(run_once, benchmark):
    rows = run_once(benchmark, sweep)
    print("\nlags  RFR-RMSE  LR-RMSE")
    for lags, rfr, lr in rows:
        print(f"{lags:4d}  {rfr:8.2f}  {lr:7.2f}")
    rmse_by_lags = {lags: rfr for lags, rfr, _ in rows}
    # the paper's 10-lag window is no worse than a 2-lag window for the
    # forest (it needs >= the outage length of history to see recoveries)
    assert rmse_by_lags[10] <= rmse_by_lags[2] * 1.05
    assert all(np.isfinite(r) for _, r, _ in rows)


def test_recursive_forecast_degrades_gracefully(benchmark):
    """Multi-step error grows with horizon but stays bounded."""
    ds = generate_uq_wireless()
    train, test = ds.wifi[:375], ds.wifi[375:]
    predictor = QoSPredictor(small_rfr(), n_lags=10).fit(train)

    def forecast():
        return predictor.forecast(train, steps=10)

    fc = benchmark(forecast)
    rmse10 = root_mean_squared_error(test[:10], fc)
    one_step = predictor.predict_next(train)
    err1 = abs(test[0] - one_step)
    print(f"\n1-step abs err: {err1:.2f}  10-step RMSE: {rmse10:.2f}")
    assert np.isfinite(rmse10)
    assert rmse10 < 4.0 * ds.wifi.std()  # bounded, not divergent
