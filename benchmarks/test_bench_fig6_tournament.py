"""Fig. 6 bench: the 18-regressor tournament.

Regenerates the RMSE scatter through the paper's pipeline and checks the
published shape: RFR selected, RFR+GBR lowest on the WiFi axis, GPR
off-scale/excluded, Lasso & ElasticNet trailing the field.
"""

import numpy as np

from repro.experiments import fig6_regressor_tournament as fig6


def test_fig6_tournament(run_once, benchmark):
    result = run_once(benchmark, fig6.run)
    print("\n" + fig6.summary(result))
    t = result.tournament

    # paper: RFR is integrated into the framework
    assert result.best_label == "RFR"
    # paper: "RFR and GBR are the best regression models with the lowest RMSE"
    included = [e for e in t.entries if e.paper_id not in t.excluded]
    by_wifi = sorted(included, key=lambda e: e.rmse_wifi)
    assert {by_wifi[0].label, by_wifi[1].label} == {"RFR", "GBR"}
    # paper: GPR excluded for being off-scale
    assert result.gpr_excluded
    gpr = t.entry("R7")
    assert gpr.distance_to_origin == max(
        e.distance_to_origin for e in t.entries
    )
    # paper: Lasso/ElasticNet in the worst quartile on WiFi
    wifi_q75 = np.percentile([e.rmse_wifi for e in included], 75)
    assert t.entry("R10").rmse_wifi > wifi_q75
    assert t.entry("R5").rmse_wifi > wifi_q75
