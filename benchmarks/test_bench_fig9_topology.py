"""Figs. 9-10 bench: testbed construction + Fig. 10 config application."""

from repro.experiments import fig9_topology as fig9


def test_fig9_testbed_inventory(benchmark):
    result = benchmark(fig9.run)
    print("\n" + fig9.summary(result))
    assert result.routers == ["AMS", "CAL", "CHI", "MIA", "SAO"]
    assert result.hosts == ["host1", "host2"]
    assert result.config_applied
    # Fig. 12 capacities on the declared links
    assert result.link_rates["MIA-SAO"] == 20.0
    assert result.link_rates["CHI-MIA"] == 10.0
    assert result.link_rates["CAL-MIA"] == 5.0
    # all three tunnels compiled to PolKA routeIDs
    assert set(result.tunnel_route_ids) == {1, 2, 3}
    # every routeID fits the CRT bound (sum of node-ID degrees); a
    # particular routeID may be much smaller — it's a residue, not a list
    for tid in (1, 2, 3):
        assert 1 <= result.tunnel_header_bits[tid] <= result.tunnel_bound_bits[tid] + 1
