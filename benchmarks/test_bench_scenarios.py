"""Scenario-suite sweep: representative scenarios through the runner.

Each bench runs one scenario once at a moderate horizon and asserts the
qualitative shape its description promises: hotspot congestion caps the
aggregate, link flaps drop packets then heal, the fat-tree core absorbs
incast, and the fluid model agrees with the packet level where the
workload is steady.  Multi-run benches go through
:class:`repro.sweep.SweepEngine` — the layer real sweeps use — so these
numbers track the cost users actually pay, cache reads included.
"""

import pytest

from repro.scenarios import ScenarioRunner, get_scenario
from repro.sweep import ResultCache, SweepEngine, SweepSpec


def test_p4lab_hotspot_spread(run_once, benchmark):
    scenario = get_scenario("p4lab-hotspot").with_overrides(
        horizon=20.0, warmup=35.0
    )
    result = run_once(benchmark, ScenarioRunner(scenario, backend="des").run)
    print("\n" + result.summary())
    assert result.placed == result.offered > 0
    # Fig. 12 caps: all-to-host2 traffic cannot exceed the three tunnels'
    # combined 35 Mbps, and re-optimization must have spread some flows
    assert result.total_throughput_mbps < 36.0
    assert result.total_throughput_mbps > 15.0
    assert result.migrations >= 1


def test_fat_tree_incast(run_once, benchmark):
    scenario = get_scenario("fat-tree-hotspot").with_overrides(
        horizon=15.0, warmup=3.0
    )
    result = run_once(benchmark, ScenarioRunner(scenario, backend="des").run)
    print("\n" + result.summary())
    assert result.placed == result.offered > 0
    # the hot host's 50 Mbps uplink is the incast ceiling
    assert 5.0 < result.total_throughput_mbps < 120.0
    assert result.min_flow_mbps > 0.0


def test_line_link_flap_heals(run_once, benchmark):
    scenario = get_scenario("line-link-flap").with_overrides(
        horizon=15.0, warmup=2.0
    )
    result = run_once(benchmark, ScenarioRunner(scenario, backend="des").run)
    print("\n" + result.summary())
    assert result.failure_events == 2
    assert result.drops > 0  # blackout on the only path
    assert result.total_throughput_mbps > 5.0  # recovered after restore


def test_fluid_tracks_des_on_steady_load(run_once, benchmark):
    """Backend cross-check: steady single-direction TCP on the paper
    topology — the packet level should approach the fluid steady state.
    Both runs go through one uncached engine sweep."""
    spec = SweepSpec(
        scenarios=("fig12-flow-aggregation",),
        backends=("des", "fluid"),
        overrides={"horizon": 30.0, "warmup": 35.0},
    )
    engine = SweepEngine(spec, jobs=1)

    outcome = run_once(benchmark, engine.run)
    des, fluid = outcome.results
    print("\n" + des.summary() + "\n" + fluid.summary())
    assert fluid.total_throughput_mbps == pytest.approx(35.0, abs=1.0)
    assert des.total_throughput_mbps == pytest.approx(
        fluid.total_throughput_mbps, rel=0.35
    )


def test_fluid_sweep_all_builtins(run_once, benchmark):
    """The whole registry through the fluid backend in one engine pass —
    the cross-scenario comparison table the subsystem exists to produce."""
    from repro.scenarios import list_scenarios

    spec = SweepSpec(
        scenarios=tuple(
            s.name for s in list_scenarios(include_scale=False)
        ),
        backends=("fluid",),
    )
    engine = SweepEngine(spec, jobs=1)

    outcome = run_once(benchmark, engine.run)
    for result in outcome.results:
        print(f"{result.scenario:26s} {result.total_throughput_mbps:9.2f} Mbps "
              f"drops={result.drops} migrations={result.migrations}")
    assert len(outcome.results) >= 10
    assert all(r.placed == r.offered for r in outcome.results)


def test_sweep_served_from_cache(run_once, benchmark, tmp_path):
    """The cache read path: a fully-warmed sweep must be served entirely
    from disk artifacts — this is the cost every repeated sweep pays."""
    from repro.scenarios import list_scenarios

    spec = SweepSpec(
        scenarios=tuple(
            s.name for s in list_scenarios(include_scale=False)
        ),
        seeds=(0, 1),
        backends=("fluid",),
        overrides={"horizon": 8.0, "warmup": 2.0},
    )
    SweepEngine(spec, jobs=1, cache=ResultCache(tmp_path)).run()  # warm

    outcome = run_once(
        benchmark, SweepEngine(spec, jobs=1, cache=ResultCache(tmp_path)).run
    )
    assert outcome.executed == 0
    assert outcome.cache_hits == len(outcome.runs) == len(spec.expand())
