"""Ablation: fluid max-min model vs packet-level DES (DESIGN.md #1).

The fluid model answers the Fig. 12 allocation question in microseconds;
the packet-level emulator takes seconds of wall time.  This bench times
the fluid solve and checks it lands on the same winner and totals as the
short DES replay.
"""

import pytest

from repro.experiments import fig12_flow_aggregation as fig12
from repro.net.fluid import FluidFlow, max_min_fair, total_throughput
from repro.topologies import TUNNEL1, TUNNEL2, TUNNEL3, fig12_capacities


def test_fluid_solver_speed(benchmark):
    caps = fig12_capacities()
    flows = [
        FluidFlow.from_path("f1", TUNNEL1),
        FluidFlow.from_path("f2", TUNNEL2),
        FluidFlow.from_path("f3", TUNNEL3),
    ]
    rates = benchmark(max_min_fair, flows, caps)
    assert total_throughput(rates) == pytest.approx(35.0)


def test_fluid_matches_des_steady_state(run_once, benchmark):
    fluid_before, fluid_after = fig12.fluid_prediction()
    result = run_once(benchmark, fig12.run, phase_duration=25.0)
    print(
        f"\nfluid before/after: {fluid_before:.1f}/{fluid_after:.1f} Mbps | "
        f"DES before/after: {result.total_before:.1f}/{result.total_after:.1f} Mbps"
    )
    # same winner (spreading beats piling onto T1) and same totals ±15%
    assert fluid_after > fluid_before
    assert result.total_after > result.total_before
    assert result.total_before == pytest.approx(fluid_before, rel=0.15)
    assert result.total_after == pytest.approx(fluid_after, rel=0.15)
