"""Scale-tier benchmarks: the hybrid backend against pure DES.

The hybrid flow-class backend exists for exactly one claim: a 2k+-flow
scenario that pure packet-level DES grinds through in minutes completes
at least **10x faster** when the mice are aggregated into fluid
background load, while the elephants stay packet-level.  The speedup
test below pins that claim on the smallest scale scenario (2 000 flows,
shortened horizon so the DES reference stays affordable in CI); the
tracked benchmark keeps the hybrid path itself under the regression
gate so the speedup cannot silently erode from the hybrid side.
"""

import time

from repro.scenarios import ScenarioRunner, get_scenario

#: the acceptance floor: hybrid must beat pure DES by at least this
SPEEDUP_FLOOR = 10.0


def _scale_2k(horizon=6.0, warmup=1.0):
    return get_scenario("scale-fat-tree-2k").quick(
        horizon=horizon, warmup=warmup
    )


def test_scale_2k_hybrid(run_once, benchmark):
    """The hybrid pipeline end to end on 2 000 flows: classification,
    epoch solving, background installation, packet-level elephants.
    Tracked in baseline.json so regressions in any stage trip the CI
    gate."""
    result = run_once(
        benchmark, ScenarioRunner(_scale_2k(), backend="hybrid").run
    )
    print("\n" + result.summary())
    assert result.offered == 2000
    assert result.placed == 2000
    assert result.total_throughput_mbps > 0.0


def test_scale_2k_hybrid_speedup_vs_des():
    """The tentpole acceptance: >=10x wall-clock over pure DES on a
    2k-flow scale scenario.

    Measured with one run of each backend on the identical workload
    (same seed, same generated flows, same failure plan).  Not a
    pytest-benchmark fixture: the DES reference alone takes ~a minute,
    and one round is plenty to clear a 10x floor with margin.
    """
    scenario = _scale_2k()

    start = time.perf_counter()
    hybrid = ScenarioRunner(scenario, backend="hybrid").run()
    hybrid_s = time.perf_counter() - start

    start = time.perf_counter()
    des = ScenarioRunner(scenario, backend="des").run()
    des_s = time.perf_counter() - start

    speedup = des_s / hybrid_s
    print(
        f"\nscale-fat-tree-2k: des {des_s:.1f}s "
        f"({des.sim_events} events) vs hybrid {hybrid_s:.1f}s "
        f"({hybrid.sim_events} events) -> {speedup:.1f}x"
    )
    assert des.offered == hybrid.offered == 2000
    assert speedup >= SPEEDUP_FLOOR
    # the mechanism, not just the stopwatch: the packet domain carried
    # fewer events (mice timers and serializations never happened)
    assert hybrid.sim_events < des.sim_events
