"""Fig. 1 bench: the PolKA worked example + data-plane kernel rates."""

from repro.experiments import fig1_polka_example as fig1
from repro.polka import PolkaDomain, gf2
from repro.topologies import fig1_line


def test_fig1_worked_example(benchmark):
    result = benchmark(fig1.run)
    print("\n" + fig1.summary(result))
    assert result.matches_paper
    assert result.route_id == 0b10000
    assert result.hop_ports == {"s1": 1, "s2": 2, "s3": 6}


def test_fig1_forwarding_kernel(benchmark):
    """The per-packet op a core node executes: routeID mod nodeID."""
    route_id, node_id = 0b10000, 0b111
    port = benchmark(gf2.mod, route_id, node_id)
    assert port == 0b10  # port 2, as in the paper


def test_fig1_route_compilation(benchmark):
    """Controller-side CRT compilation of the 3-hop route."""
    adjacency, node_ids = fig1_line()
    domain = PolkaDomain(adjacency, node_ids=node_ids)
    route = benchmark(domain.route_for_path, ["s1", "s2", "s3", "edge_out"])
    assert route.route_id == 0b10000
