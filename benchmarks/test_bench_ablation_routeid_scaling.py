"""Ablation: routeID header growth with path length (DESIGN.md #5).

The routeID is bounded by the degree sum of the traversed node IDs; this
bench measures actual header bits against that bound as paths lengthen,
and times compilation.
"""


from repro.polka import PolkaDomain, gf2


def line_domain(n):
    """n-node chain with 2 ports per node (deterministic)."""
    adjacency = {}
    names = [f"n{i}" for i in range(n)]
    for i, name in enumerate(names):
        ports = {}
        if i > 0:
            ports[names[i - 1]] = 0
        if i < n - 1:
            ports[names[i + 1]] = 1
        adjacency[name] = ports
    return PolkaDomain(adjacency), names


def test_routeid_bits_scale_with_degree_sum(benchmark):
    domain, names = line_domain(24)

    def compile_all():
        return [
            domain.route_for_path(names[: k + 1]) for k in range(2, 24)
        ]

    routes = benchmark(compile_all)
    print("\nhops  header_bits  degree_sum_bound")
    for route in routes[::4]:
        bound = sum(gf2.deg(m) for m in route.moduli)
        print(f"{len(route.path) - 1:4d}  {route.header_bits:11d}  {bound:16d}")
        assert route.header_bits <= bound + 1
    bits = [r.header_bits for r in routes]
    assert bits == sorted(bits)  # monotone growth with path length


def test_long_path_compilation_rate(benchmark):
    domain, names = line_domain(40)
    route = benchmark(domain.route_for_path, names)
    assert domain.walk(route)  # still forwards correctly end to end
