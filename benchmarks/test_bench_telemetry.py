"""Telemetry-store microbenchmarks: the columnar fast path.

The store rebuild exists for one claim (the ISSUE 5 tentpole): at
**1k metrics x 10k samples**, the combined sample+read workload — bulk
row appends interleaved with the windowed/tail reads the Controller and
Hecate issue — runs at least **5x faster** on the columnar store than on
the seed-era list-of-tuples store.  ``test_columnar_vs_list_store``
pins that claim against an in-file copy of the old implementation; the
tracked benchmarks keep the columnar write path, the O(log n + k)
window reads, and the vectorised collector tick under the regression
gate so the speedup cannot silently erode.
"""

import time

import numpy as np

from repro.net.telemetry import LinkTelemetryCollector, TimeSeriesDB
from repro.topologies.generators import fat_tree_topology

#: the acceptance floor for the sample+read workload
SPEEDUP_FLOOR = 5.0

N_METRICS = 1_000
N_SAMPLES = 10_000
READ_EVERY = 100  # interleave reads the way the control loop does


class ListTimeSeriesDB:
    """The seed implementation: metric -> append-only list of (t, v),
    re-materialised into numpy on every read.  The baseline the 5x
    claim is measured against."""

    def __init__(self):
        self._data = {}

    def insert(self, metric, t, value):
        self._data.setdefault(metric, []).append((float(t), float(value)))

    def series(self, metric):
        rows = self._data.get(metric, [])
        if not rows:
            return np.array([]), np.array([])
        arr = np.asarray(rows)
        return arr[:, 0], arr[:, 1]

    def window(self, metric, t0, t1):
        t, v = self.series(metric)
        if t.size == 0:
            return t, v
        mask = (t >= t0) & (t <= t1)
        return t[mask], v[mask]

    def last(self, metric, n=1):
        _, v = self.series(metric)
        return v[-n:]

    def latest(self, metric, default=0.0):
        rows = self._data.get(metric)
        return rows[-1][1] if rows else default


def _names():
    return [f"m{i:04d}" for i in range(N_METRICS)]


def _read_pass(db, names, k):
    """The reads a control loop issues while sampling continues."""
    metric = names[k % N_METRICS]
    _, values = db.window(metric, k - 50.0, float(k))
    return float(values.sum()) + db.latest(metric) + float(
        db.last(metric, 16).sum()
    )


def _columnar_workload():
    db = TimeSeriesDB()
    names = _names()
    group = db.column_group(names)
    row = np.empty(N_METRICS, dtype=np.float64)
    checksum = 0.0
    for k in range(N_SAMPLES):
        row.fill(float(k % 97))
        group.append(float(k), row)
        if k % READ_EVERY == 0:
            checksum += _read_pass(db, names, k)
    for metric in names:  # the dashboard/Hecate sweep over every series
        checksum += db.latest(metric) + float(db.last(metric, 32).sum())
    return checksum


def _list_workload():
    db = ListTimeSeriesDB()
    names = _names()
    checksum = 0.0
    for k in range(N_SAMPLES):
        value = float(k % 97)
        t = float(k)
        for metric in names:
            db.insert(metric, t, value)
        if k % READ_EVERY == 0:
            checksum += _read_pass(db, names, k)
    for metric in names:
        checksum += db.latest(metric) + float(db.last(metric, 32).sum())
    return checksum


def test_columnar_vs_list_store():
    """The tentpole acceptance: >=5x on the 1k x 10k sample+read
    workload.  One run of each store (plain ``perf_counter``, like the
    hybrid-vs-DES speedup bench): a single round clears the floor with
    a wide margin, and the checksums double as a value cross-check."""
    start = time.perf_counter()
    columnar_sum = _columnar_workload()
    columnar_s = time.perf_counter() - start

    start = time.perf_counter()
    list_sum = _list_workload()
    list_s = time.perf_counter() - start

    speedup = list_s / columnar_s
    print(
        f"\ntelemetry store {N_METRICS} metrics x {N_SAMPLES} samples: "
        f"list {list_s:.2f}s vs columnar {columnar_s:.3f}s "
        f"-> {speedup:.0f}x"
    )
    assert np.isclose(columnar_sum, list_sum), "stores disagree on values"
    assert speedup >= SPEEDUP_FLOOR


def test_columnar_sample_read(benchmark, run_once):
    """The columnar side of the workload, tracked in baseline.json so
    the write path cannot regress without tripping the CI gate."""
    checksum = run_once(benchmark, _columnar_workload)
    assert np.isfinite(checksum)


def test_window_read_long_series(benchmark):
    """Windowed reads on a 200k-sample series: O(log n + k) via
    searchsorted on the shared time axis, independent of history."""
    db = TimeSeriesDB()
    ts = np.arange(200_000, dtype=np.float64)
    db.insert_many("m", ts, np.sin(ts))

    def reads():
        total = 0.0
        for k in range(0, 200_000, 100):
            _, values = db.window("m", float(k), k + 100.0)
            total += float(values[0])
        return total

    total = benchmark(reads)
    assert np.isfinite(total)


def test_collector_tick_fat_tree(benchmark, run_once):
    """The vectorised link collector on a k=6 fat tree (~2.5k directed
    link metrics): 100 sampling ticks through the real simulator."""

    def run():
        net = fat_tree_topology(k=6, n_hosts=8)
        db = TimeSeriesDB()
        LinkTelemetryCollector(net, db, interval=1.0).start()
        net.run(until=100.0)
        return db

    db = run_once(benchmark, run)
    assert db.count("link:c0->p0a0:mbps") >= 99
    assert db.total_samples() >= 99 * 3
