"""Fig. 12 bench: flow aggregation across Tunnels 1/2/3."""

import pytest

from repro.experiments import fig12_flow_aggregation as fig12


def test_fig12_flow_aggregation(run_once, benchmark):
    result = run_once(benchmark, fig12.run, phase_duration=35.0)
    print("\n" + fig12.summary(result))
    # phase (i): three flows share Tunnel 1 -> "less than 20 Mbps"
    assert result.total_before < fig12.PAPER_BEFORE_MBPS + 1.0
    # fair sharing before the split (~6-7 Mbps each)
    rates = list(result.per_flow_before.values())
    assert max(rates) < 2.0 * min(rates)
    # phase (ii): the optimizer spreads the flows -> >= ~30 Mbps
    assert result.total_after > fig12.PAPER_AFTER_MBPS - 2.0
    assert sorted(result.assignment.values()) == ["T1", "T2", "T3"]
    # exactly two PBR touches moved two flows (paper: one to T2, one to T3)
    assert len(result.migrations) == 2
    # packet-level steady states agree with the fluid model
    assert result.total_after == pytest.approx(result.fluid_after, rel=0.15)
    assert result.total_before == pytest.approx(result.fluid_before, rel=0.15)
