"""Fig. 8 bench: GPR (paper mode) fails to track either path."""

from repro.experiments import fig7_fig8_models as models


def test_fig8_gpr_misses_observed(run_once, benchmark):
    fig7 = models.run_fig7()
    result = run_once(benchmark, models.run_fig8)
    print("\n" + models.summary(result, "Fig. 8"))
    for name in ("wifi", "lte"):
        gpr = result.paths[name]
        rfr = fig7.paths[name]
        # "big variation between the observed and predicted bandwidth"
        assert gpr.rmse > 2.0 * rfr.rmse, name
        assert gpr.correlation < 0.3, name
    # prior reversion: LTE predictions are essentially constant compared
    # to the observed dynamics (std ~10 Mbps)
    assert result.paths["lte"].predicted.std() < 0.01 * result.paths["lte"].observed.std()
