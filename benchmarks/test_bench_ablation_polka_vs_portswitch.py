"""Ablation: PolKA vs port-switching source routing (DESIGN.md #4).

Sec. II.B contrasts PolKA's fixed header against the classic pop-per-hop
port list.  We compare per-hop forwarding cost, header rewrites and
header size on the Fig. 9 tunnels and on longer random-WAN paths.
"""

import networkx as nx

from repro.topologies import random_wan


def domain_and_path(n_routers=12, hops=8, seed=1):
    net = random_wan(n_routers=n_routers, extra_edges=10, seed=seed)
    names = sorted(net.routers)
    # find a simple path with the requested hop count
    for src in names:
        for dst in names:
            if src == dst:
                continue
            for path in nx.all_simple_paths(net.graph, src, dst, cutoff=hops):
                if len(path) == hops and all(n in net.routers for n in path):
                    return net.polka, path
    raise RuntimeError("no suitable path found")


def test_polka_header_is_never_rewritten(benchmark):
    domain, path = domain_and_path()
    route = domain.route_for_path(path)

    def forward_all():
        return domain.walk(route)

    decisions = benchmark(forward_all)
    assert len(decisions) == len(path) - 1
    # zero header rewrites by construction: routeID is immutable
    assert route.route_id == domain.route_for_path(path).route_id


def test_port_switching_rewrites_every_hop(benchmark):
    domain, path = domain_and_path()

    def forward_all():
        psr = domain.port_switching_route(path)
        while psr.ports:
            psr.forward()
        return psr

    psr = benchmark(forward_all)
    assert psr.rewrites == len(path) - 1  # one header rewrite per hop


def test_header_size_tradeoff():
    """PolKA trades per-hop rewrites for a wider header; quantify it."""
    domain, path = domain_and_path()
    polka = domain.route_for_path(path)
    psr = domain.port_switching_route(path)
    print(
        f"\npath hops: {len(path) - 1} | PolKA header: {polka.header_bits} bits, "
        f"rewrites 0 | port-switching header: {psr.header_bits} bits, "
        f"rewrites {len(path) - 1}"
    )
    assert polka.header_bits > 0
    assert psr.header_bits > 0
    # PolKA's header is wider (the CRT product) but constant in flight
    assert polka.header_bits >= psr.header_bits
