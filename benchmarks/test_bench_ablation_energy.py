"""Ablation: forwarding-operation cost, FIB lookup vs PolKA residue.

The paper's future work cites energy efficiency "by removing the table
lookup from switches" (KeyFlow lineage, ref. [36]).  In hardware the
comparison is TCAM/SRAM lookups vs reusing the CRC datapath; here we
measure the *software* analogue — per-packet decision cost of a dict FIB
vs the polynomial mod — and report state footprint, which is the actual
lever (stateless cores hold no per-route entries to power).
"""

import pytest

from repro.polka import gf2
from repro.topologies import global_p4_lab


@pytest.fixture(scope="module")
def testbed():
    net = global_p4_lab()
    chi = net.routers["CHI"]
    route = net.polka.route_for_path(["MIA", "CHI", "AMS"])
    return net, chi, route


def test_fib_lookup_cost(benchmark, testbed):
    net, chi, _ = testbed

    def lookup_1000():
        port = 0
        for _ in range(1000):
            port = chi.fib["host2"]
        return port

    benchmark(lookup_1000)


def test_polka_residue_cost(benchmark, testbed):
    net, chi, route = testbed
    node_id = chi.polka_node.node_id

    def mod_1000():
        port = 0
        for _ in range(1000):
            port = gf2.mod(route.route_id, node_id)
        return port

    port = benchmark(mod_1000)
    assert port == chi.polka_node.forward(route.route_id)


def test_state_footprint_comparison(testbed):
    """The energy argument: core state scales with routes for tables,
    and is constant (one polynomial) for PolKA."""
    net, chi, _ = testbed
    fib_entries = len(chi.fib)
    polka_state = 1  # the node's own irreducible polynomial
    print(f"\nCHI FIB entries: {fib_entries} (grows with destinations) | "
          f"PolKA per-node state: {polka_state} (constant)")
    assert fib_entries >= len(net.hosts)
    assert polka_state == 1
