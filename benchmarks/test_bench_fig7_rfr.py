"""Fig. 7 bench: RFR observed-vs-predicted on both paths."""

from repro.experiments import fig7_fig8_models as models


def test_fig7_rfr_tracks_observed(run_once, benchmark):
    result = run_once(benchmark, models.run_fig7)
    print("\n" + models.summary(result, "Fig. 7"))
    for name, fit in result.paths.items():
        # "predicts bandwidth ... very close to the observed real bandwidth"
        assert fit.correlation > 0.3, name
        assert fit.rmse < 0.8 * fit.observed.std() + fit.observed.std(), name
    # the WiFi path is the harder one yet still tracked
    assert result.paths["wifi"].correlation > 0.5
