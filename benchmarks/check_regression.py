#!/usr/bin/env python3
"""Gate CI on benchmark regressions against a committed baseline.

Usage::

    python benchmarks/check_regression.py bench.json benchmarks/baseline.json
    python benchmarks/check_regression.py bench.json benchmarks/baseline.json \
        --update          # rewrite the baseline from this run
    python benchmarks/check_regression.py ... --threshold 2.0
    python benchmarks/check_regression.py ... --markdown summary.md
        # also emit the comparison as a GitHub-flavoured markdown table
        # (CI appends it to $GITHUB_STEP_SUMMARY and uploads it as an
        # artifact, so bench deltas are readable without downloading
        # bench.json)

``bench.json`` is pytest-benchmark output
(``pytest benchmarks --benchmark-json=bench.json``); the baseline is the
trimmed per-benchmark mean map this script writes with ``--update``.

A benchmark regresses when ``current_mean > threshold * baseline_mean``.
The threshold is deliberately loose (default 2x) because CI runners are
shared and noisy: the gate exists to catch algorithmic blowups — a
linear path going quadratic — not a few percent of jitter.  Benchmarks
missing from either side are reported but never fail the gate, so adding
or renaming a bench doesn't break CI before the baseline is refreshed.

Exit status: 0 when no benchmark regresses, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict


def load_current(path: Path) -> Dict[str, float]:
    """fullname -> mean seconds, from pytest-benchmark JSON output."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in payload["benchmarks"]
    }


def load_baseline(path: Path) -> Dict[str, float]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {name: float(mean) for name, mean in payload["benchmarks"].items()}


def write_baseline(path: Path, means: Dict[str, float]) -> None:
    # the baseline file carries sections beyond "benchmarks" (e.g. the
    # "scale_smoke" gate table scale_smoke.py --gates reads); --update
    # must refresh the bench means without discarding them
    payload: Dict[str, object] = {}
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
    payload.setdefault(
        "comment",
        "Benchmark baseline for benchmarks/check_regression.py: "
        "fullname -> mean seconds. Refresh with --update after "
        "intentional performance changes.",
    )
    payload["benchmarks"] = {name: means[name] for name in sorted(means)}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def classify(
    current: Dict[str, float], baseline: Dict[str, float], threshold: float
) -> list:
    """One ``(name, base_mean, current_mean, ratio, status)`` row per
    benchmark, statuses in {"regressed", "ok", "missing", "new"}.

    The single source of truth for both the console gate
    (:func:`compare`) and the markdown step summary
    (:func:`render_markdown`): the exit code and the table can never
    disagree about what regressed.  ``ratio`` is ``None`` for missing
    and new entries.
    """
    rows = []
    for name in sorted(baseline):
        if name not in current:
            rows.append((name, baseline[name], None, None, "missing"))
            continue
        ratio = (
            current[name] / baseline[name] if baseline[name] else float("inf")
        )
        status = "regressed" if ratio > threshold else "ok"
        rows.append((name, baseline[name], current[name], ratio, status))
    for name in sorted(set(current) - set(baseline)):
        rows.append((name, None, current[name], None, "new"))
    return rows


_STATUS_BADGES = {
    "regressed": "❌ regressed",
    "ok": "✅ ok",
    "missing": "⚠️ missing",
    "new": "🆕 new",
}


def render_markdown(
    current: Dict[str, float], baseline: Dict[str, float], threshold: float
) -> str:
    """The comparison as a GitHub-flavoured markdown table.

    Same rows as :func:`compare` (one shared :func:`classify` pass),
    worst ratio first so a regression is the first thing a step summary
    shows.
    """
    rows = classify(current, baseline, threshold)
    rows.sort(
        key=lambda row: (-(row[3] if row[3] is not None else -1.0), row[0])
    )
    regressed = sum(1 for row in rows if row[4] == "regressed")
    lines = [
        f"### Benchmark gate: {'❌ ' if regressed else '✅ '}"
        f"{regressed} regression(s) beyond {threshold:.1f}x "
        f"({len(baseline)} tracked)",
        "",
        "| benchmark | baseline | current | ratio | verdict |",
        "| --- | ---: | ---: | ---: | :-- |",
    ]
    for name, base, cur, ratio, status in rows:
        base_ms = f"{base * 1e3:.2f} ms" if base is not None else "—"
        cur_ms = f"{cur * 1e3:.2f} ms" if cur is not None else "—"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "—"
        lines.append(
            f"| `{name}` | {base_ms} | {cur_ms} | {ratio_s} "
            f"| {_STATUS_BADGES[status]} |"
        )
    return "\n".join(lines) + "\n"


def compare(
    current: Dict[str, float], baseline: Dict[str, float], threshold: float
) -> int:
    regressions = []
    width = max((len(name) for name in baseline), default=10)
    for name, base, cur, ratio, status in classify(
        current, baseline, threshold
    ):
        if status == "missing":
            print(f"MISSING  {name}  (in baseline, not in this run)")
            continue
        if status == "new":
            print(f"NEW      {name}  (not in baseline; --update to track it)")
            continue
        verdict = "REGRESSED" if status == "regressed" else "ok"
        print(
            f"{verdict:<9} {name:<{width}}  "
            f"{base * 1e3:10.2f}ms -> {cur * 1e3:10.2f}ms "
            f"({ratio:5.2f}x)"
        )
        if status == "regressed":
            regressions.append((name, ratio))
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{threshold:.1f}x the committed baseline:"
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nno regression beyond {threshold:.1f}x ({len(baseline)} tracked)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path,
                        help="pytest-benchmark JSON from this run")
    parser.add_argument("baseline", type=Path,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when current mean exceeds this multiple "
                        "of the baseline mean (default 2.0)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run instead "
                        "of comparing")
    parser.add_argument("--markdown", type=Path, default=None,
                        help="also write the comparison as a markdown "
                        "table to this path (for $GITHUB_STEP_SUMMARY "
                        "and artifact upload)")
    args = parser.parse_args(argv)

    current = load_current(args.current)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"baseline updated: {len(current)} benchmarks "
              f"-> {args.baseline}")
        return 0
    baseline = load_baseline(args.baseline)
    if args.markdown is not None:
        # written before the gate verdict, so a failing run still
        # leaves a readable summary behind
        args.markdown.write_text(
            render_markdown(current, baseline, args.threshold),
            encoding="utf-8",
        )
    return compare(current, baseline, args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
