#!/usr/bin/env python3
"""Gate CI on benchmark regressions against a committed baseline.

Usage::

    python benchmarks/check_regression.py bench.json benchmarks/baseline.json
    python benchmarks/check_regression.py bench.json benchmarks/baseline.json \
        --update          # rewrite the baseline from this run
    python benchmarks/check_regression.py ... --threshold 2.0

``bench.json`` is pytest-benchmark output
(``pytest benchmarks --benchmark-json=bench.json``); the baseline is the
trimmed per-benchmark mean map this script writes with ``--update``.

A benchmark regresses when ``current_mean > threshold * baseline_mean``.
The threshold is deliberately loose (default 2x) because CI runners are
shared and noisy: the gate exists to catch algorithmic blowups — a
linear path going quadratic — not a few percent of jitter.  Benchmarks
missing from either side are reported but never fail the gate, so adding
or renaming a bench doesn't break CI before the baseline is refreshed.

Exit status: 0 when no benchmark regresses, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict


def load_current(path: Path) -> Dict[str, float]:
    """fullname -> mean seconds, from pytest-benchmark JSON output."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in payload["benchmarks"]
    }


def load_baseline(path: Path) -> Dict[str, float]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {name: float(mean) for name, mean in payload["benchmarks"].items()}


def write_baseline(path: Path, means: Dict[str, float]) -> None:
    payload = {
        "comment": (
            "Benchmark baseline for benchmarks/check_regression.py: "
            "fullname -> mean seconds. Refresh with --update after "
            "intentional performance changes."
        ),
        "benchmarks": {name: means[name] for name in sorted(means)},
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def compare(
    current: Dict[str, float], baseline: Dict[str, float], threshold: float
) -> int:
    regressions = []
    width = max((len(name) for name in baseline), default=10)
    for name in sorted(baseline):
        if name not in current:
            print(f"MISSING  {name}  (in baseline, not in this run)")
            continue
        ratio = current[name] / baseline[name] if baseline[name] else float("inf")
        verdict = "REGRESSED" if ratio > threshold else "ok"
        print(
            f"{verdict:<9} {name:<{width}}  "
            f"{baseline[name] * 1e3:10.2f}ms -> {current[name] * 1e3:10.2f}ms "
            f"({ratio:5.2f}x)"
        )
        if ratio > threshold:
            regressions.append((name, ratio))
    for name in sorted(set(current) - set(baseline)):
        print(f"NEW      {name}  (not in baseline; --update to track it)")
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{threshold:.1f}x the committed baseline:"
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nno regression beyond {threshold:.1f}x ({len(baseline)} tracked)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path,
                        help="pytest-benchmark JSON from this run")
    parser.add_argument("baseline", type=Path,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when current mean exceeds this multiple "
                        "of the baseline mean (default 2.0)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run instead "
                        "of comparing")
    args = parser.parse_args(argv)

    current = load_current(args.current)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"baseline updated: {len(current)} benchmarks "
              f"-> {args.baseline}")
        return 0
    return compare(current, load_baseline(args.baseline), args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
