"""Dynamic-scenario benchmarks: the vectorized fluid solver at sweep
scale and the phase machinery on both backends.

The vectorized :func:`repro.net.fluid.max_min_fair` is the hot path
behind many-phase x many-flow sweeps (one solve per capacity epoch); the
first bench pins its cost at 240 flows and cross-checks it against the
scalar oracle, asserting it is measurably faster — the acceptance
criterion of the dynamic-workload subsystem.  The remaining benches time
representative dynamic scenarios end to end so CI's regression gate
covers phase compilation, the fluid epoch slicing, and the incremental
re-optimizer under a DES flash crowd.
"""

import time

import numpy as np
import pytest

from repro.net.fluid import FluidFlow, max_min_fair
from repro.scenarios import ScenarioRunner, get_scenario, list_scenarios
from repro.sweep import SweepEngine, SweepSpec


def _sweep_scale_case(n_flows=240, n_links=80, seed=1):
    rng = np.random.default_rng(seed)
    links = [(f"n{i}", f"m{i}") for i in range(n_links)]
    caps = {link: float(rng.uniform(10.0, 2000.0)) for link in links}
    flows = []
    for f in range(n_flows):
        k = int(rng.integers(2, 7))
        chosen = rng.choice(n_links, size=k, replace=False)
        flows.append(
            FluidFlow(name=f"f{f}", links=tuple(links[i] for i in chosen))
        )
    return flows, caps


def test_vectorized_solver_at_sweep_scale(benchmark):
    """240 flows over 80 links: the vectorized solver must match the
    scalar oracle to 1e-9 and beat it by a wide margin."""
    flows, caps = _sweep_scale_case()
    rates = benchmark(max_min_fair, flows, caps)  # auto -> vectorized
    oracle = max_min_fair(flows, caps, method="scalar")
    for name, rate in oracle.items():
        assert rates[name] == pytest.approx(rate, rel=1e-9, abs=1e-9)

    def best_of(method, rounds=3):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            max_min_fair(flows, caps, method=method)
            timings.append(time.perf_counter() - start)
        return min(timings)

    scalar_s = best_of("scalar")
    vector_s = best_of("vector")
    print(
        f"\n240-flow solve: scalar {scalar_s * 1e3:.1f} ms, "
        f"vector {vector_s * 1e3:.1f} ms ({scalar_s / vector_s:.0f}x)"
    )
    # loose 2x bar (locally >50x) so shared CI runners never flake
    assert vector_s < scalar_s / 2.0


def test_dynamic_fluid_diurnal(run_once, benchmark):
    """One sinusoidal day through the fluid backend: phase compilation
    plus an epoch re-solve per transition."""
    result = run_once(
        benchmark,
        ScenarioRunner(get_scenario("ring-diurnal"), backend="fluid").run,
    )
    print("\n" + result.summary())
    assert result.placed == result.offered > 20  # 6 phases, 2..8 flows
    assert result.total_throughput_mbps > 50.0


def test_dynamic_fluid_sweep_all(run_once, benchmark):
    """Every dynamic scenario through one fluid engine pass — the
    cross-scenario table the subsystem exists to produce."""
    names = tuple(s.name for s in list_scenarios() if s.phases)
    assert len(names) >= 6
    spec = SweepSpec(scenarios=names, backends=("fluid",))
    outcome = run_once(benchmark, SweepEngine(spec, jobs=1).run)
    for result in outcome.results:
        print(
            f"{result.scenario:24s} {result.total_throughput_mbps:9.2f} Mbps "
            f"drops={result.drops} migrations={result.migrations}"
        )
    assert all(r.placed == r.offered for r in outcome.results)


def test_dynamic_des_flash_crowd(run_once, benchmark):
    """Packet-level flash crowd: the spike lands mid-run and the
    incremental re-optimizer reacts (solves) yet skips unchanged groups
    in the steady phases."""
    scenario = get_scenario("fat-tree-flash-crowd").with_overrides(
        horizon=20.0, warmup=3.0
    )
    runner = ScenarioRunner(scenario, backend="des")
    result = run_once(benchmark, runner.run)
    print("\n" + result.summary())
    controller = runner.sdn.controller
    print(
        f"reopt: {controller.reopt_solved} solved, "
        f"{controller.reopt_skipped} skipped"
    )
    assert result.placed == result.offered == 16
    assert result.total_throughput_mbps > 10.0
    assert controller.reopt_solved >= 1
