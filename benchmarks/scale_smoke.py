#!/usr/bin/env python3
"""CI gate for the scale tier: run one ``scale-*`` scenario on the
hybrid backend under a hard wall-clock budget and an events/second
floor.

Usage::

    PYTHONPATH=src python benchmarks/scale_smoke.py scale-fat-tree-2k \
        --budget-s 180 --min-events-per-s 20000 [--horizon 10 --warmup 2]

    # per-tier gates from the committed baseline (CI's invocation):
    PYTHONPATH=src python benchmarks/scale_smoke.py scale-100k \
        --gates benchmarks/baseline.json

``--gates`` reads per-scenario budgets and floors from the
``"scale_smoke"`` section of ``benchmarks/baseline.json`` (keys:
``budget_s``, ``min_events_per_s``, ``telemetry_read_budget_ms``), so
each tier's gate lives next to the tier-1 bench baseline instead of
being frozen into the workflow file.  Explicit command-line flags win
over the file; built-in defaults apply when neither names a value.

``--service`` switches to the open-loop service tier: the positional
name then selects a registered service workload (``repro service
list``), which runs under the wall-clock budget plus two service-grade
gates — a placement-latency p99 budget and an exact admission-ledger
reconciliation (admitted + rejected + deferred == offered; a counter
leak fails CI even when latency looks fine)::

    PYTHONPATH=src python benchmarks/scale_smoke.py fat-tree-churn \
        --service --rate 500 --duration 60 --seed 1 \
        --budget-s 120 --placement-p99-budget-ms 250

The wall-clock budget catches the hybrid pipeline getting slower
(background solves exploding, epoch coalescing regressing); the
events/second floor catches the packet domain itself degenerating (an
event-loop or link-layer regression would tank throughput of the
foreground events long before tier-1's small scenarios notice); the
telemetry read budget catches the store's read path going linear again
(after the run it times a ``latest`` + tail-window read of **every**
recorded metric, which on the columnar store is O(log n + k) per metric
no matter how long the horizon was — a regression back to
re-materialised histories blows the few-hundred-ms budget by orders of
magnitude at scale-tier sample counts).  All gates run weekly (and on
demand) rather than per-push — see the ``scale-smoke`` job in
``.github/workflows/ci.yml`` — so scale regressions are caught without
taxing the tier-1 path.

Exit status: 0 when within budget and above the floor, 1 otherwise.
When ``$GITHUB_STEP_SUMMARY`` is set, a markdown summary is appended so
the numbers are readable straight from the workflow page.
"""

from __future__ import annotations

import argparse
import json
import os
import time

#: Built-in gate defaults, used when neither the command line nor a
#: ``--gates`` file names a value.
DEFAULT_BUDGET_S = 180.0
DEFAULT_MIN_EVENTS_PER_S = 20000.0
DEFAULT_TELEMETRY_READ_BUDGET_MS = 250.0


def resolve_gates(args) -> None:
    """Fill ``args.budget_s`` / ``args.min_events_per_s`` /
    ``args.telemetry_read_budget_ms`` from (in precedence order) the
    explicit command line, the scenario's entry in the ``--gates``
    file's ``"scale_smoke"`` section, then the built-in defaults."""
    file_gates = {}
    if args.gates:
        with open(args.gates, encoding="utf-8") as handle:
            file_gates = json.load(handle).get("scale_smoke", {}).get(
                args.scenario, {}
            )
    if args.budget_s is None:
        args.budget_s = float(file_gates.get("budget_s", DEFAULT_BUDGET_S))
    if args.min_events_per_s is None:
        args.min_events_per_s = float(
            file_gates.get("min_events_per_s", DEFAULT_MIN_EVENTS_PER_S)
        )
    if args.telemetry_read_budget_ms is None:
        args.telemetry_read_budget_ms = float(
            file_gates.get(
                "telemetry_read_budget_ms", DEFAULT_TELEMETRY_READ_BUDGET_MS
            )
        )


def telemetry_read_ms(runner):
    """Time one ``latest`` + 10-interval tail-window read of every
    metric the run recorded (what a dashboard refresh or one controller
    tick costs).  Returns ``(elapsed_ms, metric_count)``; backends
    without a telemetry store (fluid) report ``(0.0, 0)``."""
    if runner.sdn is None:
        return 0.0, 0
    db = runner.sdn.telemetry.db
    interval = runner.scenario.policy.telemetry_interval
    t_end = runner.network.sim.now
    names = db.metrics()
    start = time.perf_counter()
    sink = 0.0
    for metric in names:
        sink += db.latest(metric)
        _, values = db.window(metric, t_end - 10.0 * interval, t_end)
        sink += float(values.sum())
    assert sink == sink  # keep the loop un-elidable (and NaN-free)
    return (time.perf_counter() - start) * 1e3, len(names)


def service_main(args) -> int:
    """The ``--service`` gate: one service workload under a wall-clock
    budget, a placement-latency p99 budget, and exact admission-counter
    reconciliation."""
    from repro.framework.service_mode import run_service
    from repro.scenarios import get_workload

    workload = get_workload(args.scenario)
    start = time.perf_counter()
    result = run_service(
        workload,
        rate=args.rate,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
    )
    wall_s = time.perf_counter() - start
    placements_per_s = result.placed / wall_s if wall_s > 0 else 0.0

    ok_budget = wall_s <= args.budget_s
    ok_p99 = result.placement_p99_ms <= args.placement_p99_budget_ms
    ok_ledger = result.reconciles()
    verdict = "PASS" if (ok_budget and ok_p99 and ok_ledger) else "FAIL"

    print(result.summary())
    print(
        f"\nservice-smoke [{verdict}] {workload.name}: "
        f"wall={wall_s:.1f}s (budget {args.budget_s:g}s), "
        f"{placements_per_s:,.0f} placements/s wall, "
        f"p99={result.placement_p99_ms:.1f}ms "
        f"(budget {args.placement_p99_budget_ms:g}ms), "
        f"ledger {'reconciles' if ok_ledger else 'DOES NOT RECONCILE'} "
        f"({result.offered} offered = {result.admitted} admitted + "
        f"{result.rejected} rejected + {result.deferred_pending} deferred)"
    )

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        budget_mark = "✅" if ok_budget else "❌"
        p99_mark = "✅" if ok_p99 else "❌"
        ledger_mark = "✅" if ok_ledger else "❌"
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(
                f"### Service smoke: {workload.name} — {verdict}\n\n"
                "| gate | value | limit | verdict |\n"
                "| --- | ---: | ---: | :-- |\n"
                f"| wall clock | {wall_s:.1f} s | ≤ {args.budget_s:g} s "
                f"| {budget_mark} |\n"
                f"| placement p99 | {result.placement_p99_ms:.1f} ms | "
                f"≤ {args.placement_p99_budget_ms:g} ms | {p99_mark} |\n"
                f"| admission ledger | "
                f"{result.admitted}+{result.rejected}"
                f"+{result.deferred_pending} | = {result.offered} "
                f"| {ledger_mark} |\n\n"
                f"{result.offered} flows offered at "
                f"{result.rate:g}/s over {result.duration_s:g}s, "
                f"{result.placed} placed ({placements_per_s:,.0f}/s wall), "
                f"{result.retired} retired, "
                f"p50/p95/p99 = {result.placement_p50_ms:.1f}/"
                f"{result.placement_p95_ms:.1f}/"
                f"{result.placement_p99_ms:.1f} ms, "
                f"{result.migrations} migrations over "
                f"{result.reopt_ticks} re-optimization ticks.\n"
            )
    return 0 if (ok_budget and ok_p99 and ok_ledger) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenario",
                        help="scale-* scenario name (see 'repro scenarios "
                        "list'), or with --service a service workload "
                        "name (see 'repro service list')")
    parser.add_argument("--service", action="store_true",
                        help="gate a service workload (open-loop churn) "
                        "instead of a scale scenario")
    parser.add_argument("--rate", type=float, default=None,
                        help="service mode: override the arrival rate "
                        "(flows/second)")
    parser.add_argument("--duration", type=float, default=None,
                        help="service mode: override the run duration "
                        "(virtual seconds)")
    parser.add_argument("--placement-p99-budget-ms", type=float,
                        default=250.0,
                        help="service mode: budget for the placement-"
                        "latency p99 (default 250 ms of virtual time)")
    parser.add_argument("--backend", default="hybrid",
                        choices=("des", "fluid", "hybrid"),
                        help="backend to gate (default: hybrid)")
    parser.add_argument("--gates", default=None, metavar="JSON",
                        help="read per-scenario gate values from this "
                        "file's \"scale_smoke\" section (normally "
                        "benchmarks/baseline.json); explicit flags "
                        "below override it")
    parser.add_argument("--budget-s", type=float, default=None,
                        help="hard wall-clock budget in seconds "
                        f"(default {DEFAULT_BUDGET_S:g})")
    parser.add_argument("--min-events-per-s", type=float, default=None,
                        help="floor on simulator events processed per "
                        "wall-clock second "
                        f"(default {DEFAULT_MIN_EVENTS_PER_S:g})")
    parser.add_argument("--telemetry-read-budget-ms", type=float,
                        default=None,
                        help="budget for reading latest + a tail window "
                        "of every recorded telemetry metric after the "
                        "run (default "
                        f"{DEFAULT_TELEMETRY_READ_BUDGET_MS:g} ms); "
                        "sublinear reads clear it easily, O(history) "
                        "reads cannot")
    parser.add_argument("--horizon", type=float, default=None,
                        help="override the scenario horizon (seconds)")
    parser.add_argument("--warmup", type=float, default=None,
                        help="override the scenario warmup (seconds)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the scenario seed")
    args = parser.parse_args(argv)
    resolve_gates(args)

    if args.service:
        return service_main(args)

    from repro.scenarios import ScenarioRunner, get_scenario

    scenario = get_scenario(args.scenario)
    overrides = {}
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    if overrides:
        scenario = scenario.with_overrides(**overrides)

    runner = ScenarioRunner(scenario, backend=args.backend, seed=args.seed)
    start = time.perf_counter()
    result = runner.run()
    wall_s = time.perf_counter() - start
    events_per_s = result.sim_events / wall_s if wall_s > 0 else 0.0
    read_ms, read_metrics = telemetry_read_ms(runner)

    ok_budget = wall_s <= args.budget_s
    ok_floor = events_per_s >= args.min_events_per_s
    ok_read = read_ms <= args.telemetry_read_budget_ms
    verdict = "PASS" if (ok_budget and ok_floor and ok_read) else "FAIL"

    print(result.summary())
    print(
        f"\nscale-smoke [{verdict}] {scenario.name} [{result.backend}]: "
        f"wall={wall_s:.1f}s (budget {args.budget_s:g}s), "
        f"{events_per_s:,.0f} events/s "
        f"(floor {args.min_events_per_s:,.0f}), "
        f"{result.sim_events} events, "
        f"{result.placed}/{result.offered} flows placed, "
        f"telemetry read {read_ms:.1f}ms over {read_metrics} metrics / "
        f"{result.telemetry_samples} samples "
        f"(budget {args.telemetry_read_budget_ms:g}ms)"
    )

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        budget_mark = "✅" if ok_budget else "❌"
        floor_mark = "✅" if ok_floor else "❌"
        read_mark = "✅" if ok_read else "❌"
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(
                f"### Scale smoke: {scenario.name} [{result.backend}] — "
                f"{verdict}\n\n"
                "| gate | value | limit | verdict |\n"
                "| --- | ---: | ---: | :-- |\n"
                f"| wall clock | {wall_s:.1f} s | ≤ {args.budget_s:g} s "
                f"| {budget_mark} |\n"
                f"| events/s | {events_per_s:,.0f} | "
                f"≥ {args.min_events_per_s:,.0f} | {floor_mark} |\n"
                f"| telemetry read | {read_ms:.1f} ms | "
                f"≤ {args.telemetry_read_budget_ms:g} ms | {read_mark} |\n\n"
                f"{result.offered} flows offered, {result.placed} placed, "
                f"{result.sim_events} simulator events, "
                f"{result.telemetry_samples} telemetry samples over "
                f"{read_metrics} metrics, "
                f"{result.total_throughput_mbps:.1f} Mbps aggregate.\n"
            )
    return 0 if (ok_budget and ok_floor and ok_read) else 1


if __name__ == "__main__":
    raise SystemExit(main())
