"""Figs. 3-4 bench: the integration framework's control loop replay."""

from repro.experiments import fig4_closed_loop as fig4


def test_fig4_sequence_replay(run_once, benchmark):
    result = run_once(benchmark, fig4.run)
    print("\n" + fig4.summary(result))
    assert result.sequence_respected
    assert result.placed_tunnel == "T1"  # fattest tunnel under max_bandwidth
    assert result.decision["ok"]
    assert set(result.decision["forecasts"]) == {"T1", "T2", "T3"}
