"""Fig. 11 bench: agile migration to the lower-latency path."""

import pytest

from repro.experiments import fig11_latency_migration as fig11


def test_fig11_latency_migration(run_once, benchmark):
    result = run_once(benchmark, fig11.run, phase_duration=40.0)
    print("\n" + fig11.summary(result))
    # RTT steps down by ~the injected one-way 20 ms delay
    assert result.improvement_ms == pytest.approx(
        fig11.INJECTED_DELAY_MS, abs=4.0
    )
    assert result.rtt_after_ms < result.rtt_before_ms
    # the migration cost exactly one PBR entry at the ingress edge
    assert result.pbr_touches == 1
    assert result.core_reconfigurations == 0
    # probes keep flowing across the migration (no blackout)
    t = result.times
    assert ((t > result.migration_at) & (t < result.migration_at + 5.0)).sum() >= 3
