"""Micro-benchmarks of the hot kernels under every experiment.

Not paper figures — these quantify the substrate itself: GF(2) mod (the
data-plane op), DES event throughput, CART fitting, and the telemetry
pipeline, so regressions in the underlying machinery are visible.
"""

import numpy as np

from repro.datasets import generate_uq_wireless
from repro.ml import (
    DecisionTreeRegressor,
    RandomForestRegressor,
    StandardScaler,
    make_lag_matrix,
)
from repro.net import Network, Simulator, UdpFlow
from repro.polka import gf2


def test_gf2_mod_throughput(benchmark):
    """1000 forwarding decisions on a 64-bit routeID."""
    route_id = 0xDEADBEEFCAFEBABE
    node_id = 0b100101  # degree-5 irreducible

    def batch():
        acc = 0
        for _ in range(1000):
            acc ^= gf2.mod(route_id, node_id)
        return acc

    benchmark(batch)


def test_gf2_mul_throughput(benchmark):
    def batch():
        acc = 0
        for i in range(1000):
            acc ^= gf2.mul(0b10011 + i, 0b111)
        return acc

    benchmark(batch)


def test_des_event_throughput(benchmark):
    """Raw simulator events per second (empty callbacks)."""

    def run_10k():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run_10k) == 10_000


def test_udp_forwarding_pipeline(benchmark):
    """Packets/second through a 3-hop emulated path."""

    def run():
        net = Network()
        net.add_host("a", ip="1.0.0.1")
        net.add_host("b", ip="1.0.0.2")
        net.add_router("r1", edge=True)
        net.add_router("r2", edge=True)
        net.add_link("a", "r1", rate_mbps=1000)
        net.add_link("r1", "r2", rate_mbps=1000)
        net.add_link("r2", "b", rate_mbps=1000)
        net.build()
        flow = UdpFlow(net.hosts["a"], net.hosts["b"], rate_mbps=100.0,
                       duration=1.0).start()
        net.run(until=1.5)
        return flow.received_bytes

    assert benchmark(run) > 0


def test_cart_fit(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 10))
    y = np.sin(X[:, 0]) + X[:, 1] ** 2
    tree = benchmark(lambda: DecisionTreeRegressor(max_depth=8).fit(X, y))
    assert tree.n_leaves_ > 1


def test_rfr_fit_tournament_size(benchmark):
    """The paper-pipeline RFR fit (365 x 10 lag matrix)."""
    ds = generate_uq_wireless()
    scaler = StandardScaler().fit(ds.wifi[:375].reshape(-1, 1))
    scaled = scaler.transform(ds.wifi[:375].reshape(-1, 1)).ravel()
    X, y = make_lag_matrix(scaled, 10)

    def fit():
        return RandomForestRegressor(n_estimators=25, random_state=0).fit(X, y)

    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert np.isfinite(model.predict(X[:5])).all()


def test_lag_matrix_construction(benchmark):
    series = np.arange(100_000, dtype=np.float64)
    X, y = benchmark(make_lag_matrix, series, 10)
    assert X.shape[0] == y.shape[0]
