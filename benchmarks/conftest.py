"""Shared helpers for the figure-reproduction benchmarks.

Every bench prints a paper-vs-measured report (captured by pytest unless
run with ``-s``) and asserts the qualitative shape documented in
EXPERIMENTS.md.  Timing-wise, cheap kernels use the default
pytest-benchmark loop; full experiment replays run once via
``benchmark.pedantic`` since a single run already takes seconds of
simulated traffic.
"""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once
