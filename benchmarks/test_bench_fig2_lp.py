"""Fig. 2 bench: the Sec. III LP / convex TE solvers."""

import pytest

from repro.experiments import fig2_minmax_lp as fig2
from repro.hecate import solve_min_cost, solve_min_delay, solve_min_max_utilization


def test_fig2_demand_sweep(benchmark):
    result = benchmark(fig2.run)
    print("\n" + fig2.summary(result))
    rows = result.rows
    # direct path preferred under linear cost until it saturates
    assert rows[0].cost_x_sid == pytest.approx(0.0, abs=1e-9)
    assert rows[-1].cost_x_sd == pytest.approx(result.c_direct, abs=1e-6)
    # min-max utilization grows linearly with demand on equal capacities
    assert rows[-1].minmax_util > rows[0].minmax_util
    # the delay objective is increasing and convex-ish in demand
    objs = [r.delay_objective for r in rows]
    assert all(b >= a for a, b in zip(objs, objs[1:]))


def test_fig2_min_cost_kernel(benchmark):
    split = benchmark(solve_min_cost, 15.0, 10.0, 10.0)
    assert split.x_sd == pytest.approx(10.0)


def test_fig2_min_max_kernel(benchmark):
    split = benchmark(solve_min_max_utilization, 12.0, 30.0, 10.0)
    assert split.objective == pytest.approx(0.3)


def test_fig2_min_delay_kernel(benchmark):
    split = benchmark(solve_min_delay, 8.0, 10.0)
    assert split.total == pytest.approx(8.0)
