"""Packaging for the path-aware-source-routing reproduction.

Kept as a plain setup.py (no pyproject build isolation): the offline
environment ships setuptools 65 without the ``wheel`` package, so PEP
660 editable installs cannot build an editable wheel — but both
``pip install -e .`` (legacy fallback) and ``python setup.py develop``
work with this file alone.  The repo's ``pyproject.toml`` holds tool
configuration only (ruff) and deliberately has no ``[build-system]``
table, so packaging stays here.
"""

from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="repro-path-aware-sr",
    version="0.2.0",
    description=(
        "Reproduction of 'Framework for Integrating Machine Learning "
        "Methods for Path-Aware Source Routing' with a declarative "
        "scenario evaluation suite"
    ),
    long_description=Path(__file__).with_name("README.md").read_text(
        encoding="utf-8"
    ),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy",
        "scipy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
