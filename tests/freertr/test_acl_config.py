"""Access lists, the Fig. 10 config parser, and policy application."""

import pytest

from repro.freertr import (
    AccessList,
    AclRule,
    ConfigError,
    apply_config,
    ip_to_int,
    mask_to_prefix_len,
    parse_config,
    parse_prefix,
)
from repro.net import Packet
from repro.topologies import ROUTER_IPS, global_p4_lab

FIG10_CONFIG = """
! Fig. 10: host1's network reaches host2 via TCP, ToS-tagged flows
access-list flow3
 permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255 tos 64
exit
interface tunnel3
 tunnel domain-name MIA CAL CHI AMS
 tunnel destination 20.20.0.7
 tunnel mode polka
exit
pbr flow3 tunnel 3
"""


def tcp_packet(tos=64, src_ip="40.40.1.2", dst_ip="40.40.2.2", proto="tcp"):
    return Packet(
        src="host1", dst="host2", size=1500, protocol=proto, tos=tos,
        src_ip=src_ip, dst_ip=dst_ip,
    )


class TestIpParsing:
    def test_ip_to_int(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("40.40.1.0") == (40 << 24) | (40 << 16) | (1 << 8)

    def test_bad_ips(self):
        for bad in ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""]:
            with pytest.raises(ValueError):
                ip_to_int(bad)

    def test_mask_to_prefix_len(self):
        assert mask_to_prefix_len("255.255.255.0") == 24
        assert mask_to_prefix_len("255.255.255.255") == 32
        assert mask_to_prefix_len("0.0.0.0") == 0

    def test_non_contiguous_mask_rejected(self):
        with pytest.raises(ValueError):
            mask_to_prefix_len("255.0.255.0")

    def test_parse_prefix(self):
        net, length = parse_prefix("40.40.1.0/24")
        assert length == 24
        assert net == ip_to_int("40.40.1.0")
        # host bits are zeroed
        net2, _ = parse_prefix("40.40.1.77/24")
        assert net2 == net


class TestAclRule:
    def test_fig10_rule_matches_the_intended_flow(self):
        rule = AclRule.parse(
            "permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255 tos 64".split()
        )
        assert rule.matches(tcp_packet())

    def test_wrong_tos_rejected(self):
        rule = AclRule.parse(
            "permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255 tos 64".split()
        )
        assert not rule.matches(tcp_packet(tos=0))

    def test_wrong_protocol_rejected(self):
        rule = AclRule.parse(
            "permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255".split()
        )
        assert not rule.matches(tcp_packet(proto="udp"))

    def test_source_outside_prefix_rejected(self):
        rule = AclRule.parse(
            "permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255".split()
        )
        assert not rule.matches(tcp_packet(src_ip="40.40.9.2"))

    def test_protocol_names_accepted(self):
        rule = AclRule.parse(
            "permit icmp 0.0.0.0 0.0.0.0 0.0.0.0 0.0.0.0".split()
        )
        assert rule.matches(tcp_packet(proto="icmp"))
        # echo replies classify as ICMP too
        assert rule.matches(tcp_packet(proto="icmp-reply"))

    def test_any_protocol(self):
        rule = AclRule.parse("permit any 0.0.0.0 0.0.0.0 0.0.0.0 0.0.0.0".split())
        assert rule.matches(tcp_packet(proto="udp"))

    def test_packet_without_ips_never_matches(self):
        rule = AclRule.parse("permit any 0.0.0.0 0.0.0.0 0.0.0.0 0.0.0.0".split())
        packet = Packet(src="a", dst="b", size=100)
        assert not rule.matches(packet)

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            AclRule.parse("deny 6 1.1.1.0 255.255.255.0 2.2.2.2 255.255.255.255".split())
        with pytest.raises(ValueError):
            AclRule.parse("permit 6 1.1.1.0".split())
        with pytest.raises(ValueError):
            AclRule.parse(
                "permit 6 1.1.1.0 255.255.255.0 2.2.2.2 255.255.255.255 dscp 4".split()
            )

    def test_describe_roundtrip_content(self):
        rule = AclRule.parse(
            "permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255 tos 64".split()
        )
        text = rule.describe()
        assert "tcp" in text and "40.40.1.0/24" in text and "tos 64" in text


class TestAccessList:
    def test_first_match_wins_default_deny(self):
        acl = AccessList("t")
        assert not acl.permits(tcp_packet())
        acl.add(AclRule.parse("permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255".split()))
        assert acl.permits(tcp_packet())


class TestConfigParser:
    def test_fig10_parses(self):
        config = parse_config(FIG10_CONFIG)
        assert set(config.access_lists) == {"flow3"}
        assert set(config.tunnels) == {3}
        assert config.tunnels[3].path == ["MIA", "CAL", "CHI", "AMS"]
        assert config.tunnels[3].destination == "20.20.0.7"
        assert config.pbr == [("flow3", 3)]

    def test_comments_and_blank_lines_ignored(self):
        config = parse_config("! nothing\n\n" + FIG10_CONFIG)
        assert set(config.tunnels) == {3}

    def test_missing_exit(self):
        with pytest.raises(ConfigError, match="exit"):
            parse_config("access-list a\n permit any 0.0.0.0 0.0.0.0 0.0.0.0 0.0.0.0\n")

    def test_unknown_statement(self):
        with pytest.raises(ConfigError, match="unknown"):
            parse_config("router ospf 1\nexit\n")

    def test_pbr_referencing_missing_objects(self):
        with pytest.raises(ConfigError, match="access-list"):
            parse_config("interface tunnel1\n tunnel domain-name A B\nexit\npbr nope tunnel 1\n")

    def test_short_tunnel_path_rejected(self):
        with pytest.raises(ConfigError, match="path"):
            parse_config("interface tunnel1\n tunnel domain-name A\nexit\n")

    def test_non_polka_mode_rejected(self):
        text = "interface tunnel1\n tunnel domain-name A B\n tunnel mode gre\nexit\n"
        with pytest.raises(ConfigError, match="mode"):
            parse_config(text)


class TestApplyConfig:
    def test_fig10_applies_to_mia(self):
        net = global_p4_lab()
        policy = apply_config(net, "MIA", parse_config(FIG10_CONFIG), router_ips=ROUTER_IPS)
        assert policy.binding_of("flow3") == 3
        assert net.routers["MIA"].classifier is not None
        route_id, egress = net.routers["MIA"].classifier(tcp_packet())
        assert egress == "AMS"
        assert route_id == net.polka.route_for_path(["MIA", "CAL", "CHI", "AMS"]).route_id

    def test_wrong_ingress_rejected(self):
        net = global_p4_lab()
        with pytest.raises(ConfigError, match="starts at"):
            apply_config(net, "AMS", parse_config(FIG10_CONFIG), router_ips=ROUTER_IPS)

    def test_destination_mismatch_rejected(self):
        bad = FIG10_CONFIG.replace("20.20.0.7", "20.20.0.3")  # SAO, not path egress
        net = global_p4_lab()
        with pytest.raises(ConfigError, match="destination"):
            apply_config(net, "MIA", parse_config(bad), router_ips=ROUTER_IPS)

    def test_unknown_router_in_path(self):
        bad = FIG10_CONFIG.replace("MIA CAL CHI AMS", "MIA XXX AMS").replace(
            "tunnel destination 20.20.0.7", "tunnel destination AMS"
        )
        net = global_p4_lab()
        with pytest.raises(ConfigError, match="unknown router"):
            apply_config(net, "MIA", parse_config(bad), router_ips=ROUTER_IPS)

    def test_tos_separates_flows(self):
        """Three ToS-tagged ACLs steer to three different tunnels (the
        Fig. 12 classification)."""
        text = ""
        for i, tos in enumerate([32, 64, 96], start=1):
            text += (
                f"access-list flow{i}\n"
                f" permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255 tos {tos}\n"
                "exit\n"
            )
        text += (
            "interface tunnel1\n tunnel domain-name MIA SAO AMS\nexit\n"
            "interface tunnel2\n tunnel domain-name MIA CHI AMS\nexit\n"
            "interface tunnel3\n tunnel domain-name MIA CAL CHI AMS\nexit\n"
            "pbr flow1 tunnel 1\npbr flow2 tunnel 2\npbr flow3 tunnel 3\n"
        )
        net = global_p4_lab()
        policy = apply_config(net, "MIA", parse_config(text))
        r1, _ = policy.classify(tcp_packet(tos=32))
        r2, _ = policy.classify(tcp_packet(tos=64))
        r3, _ = policy.classify(tcp_packet(tos=96))
        assert len({r1, r2, r3}) == 3
        assert policy.classify(tcp_packet(tos=0)) is None
