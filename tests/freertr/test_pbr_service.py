"""EdgePolicy/PBR mechanics, the bus, and the reconfiguration service."""

import pytest

from repro.bus import MessageBus
from repro.freertr import (
    RECONFIG_TOPIC,
    AccessList,
    AclRule,
    EdgePolicy,
    PolkaTunnel,
    RouterConfigService,
)
from repro.net import Packet, PingApp, TcpFlow
from repro.topologies import TUNNEL1, TUNNEL2, global_p4_lab


def any_acl(name="all"):
    acl = AccessList(name)
    acl.add(AclRule.parse("permit any 0.0.0.0 0.0.0.0 0.0.0.0 0.0.0.0".split()))
    return acl


def make_policy(net, tunnels=((1, TUNNEL1), (2, TUNNEL2))):
    policy = EdgePolicy("MIA")
    policy.add_access_list(any_acl())
    for tid, path in tunnels:
        policy.add_tunnel(
            PolkaTunnel(tunnel_id=tid, path=path, route=net.polka.route_for_path(path))
        )
    return policy


class TestMessageBus:
    def test_publish_reaches_subscribers_in_order(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("t", lambda m: seen.append(("a", m.payload["x"])))
        bus.subscribe("t", lambda m: seen.append(("b", m.payload["x"])))
        bus.publish("t", x=1)
        assert seen == [("a", 1), ("b", 1)]

    def test_request_collects_replies(self):
        bus = MessageBus()
        bus.subscribe("q", lambda m: m.payload["x"] * 2)
        bus.subscribe("q", lambda m: None)
        assert bus.request("q", x=3) == [6]

    def test_history_filter(self):
        bus = MessageBus()
        bus.publish("a", v=1)
        bus.publish("b", v=2)
        bus.publish("a", v=3)
        assert [m.payload["v"] for m in bus.history("a")] == [1, 3]

    def test_unsubscribe(self):
        bus = MessageBus()
        handler = lambda m: None
        bus.subscribe("t", handler)
        bus.unsubscribe("t", handler)
        with pytest.raises(KeyError):
            bus.unsubscribe("t", handler)


class TestEdgePolicy:
    def test_bind_then_classify(self):
        net = global_p4_lab()
        policy = make_policy(net)
        policy.bind("all", 1)
        pkt = Packet(src="h", dst="h2", size=100, protocol="tcp",
                     src_ip="1.1.1.1", dst_ip="2.2.2.2")
        route_id, egress = policy.classify(pkt)
        assert egress == "AMS"
        assert policy.entries[0].hits == 1

    def test_repoint_is_single_touch(self):
        net = global_p4_lab()
        policy = make_policy(net)
        policy.bind("all", 1)
        assert policy.reconfigurations == 1
        policy.bind("all", 2)  # the Fig. 11 migration
        assert policy.reconfigurations == 2
        assert policy.binding_of("all") == 2

    def test_rebind_same_tunnel_is_noop(self):
        net = global_p4_lab()
        policy = make_policy(net)
        policy.bind("all", 1)
        policy.bind("all", 1)
        assert policy.reconfigurations == 1

    def test_unbind(self):
        net = global_p4_lab()
        policy = make_policy(net)
        policy.bind("all", 1)
        policy.unbind("all")
        assert policy.binding_of("all") is None
        with pytest.raises(KeyError):
            policy.unbind("all")

    def test_bind_validation(self):
        net = global_p4_lab()
        policy = make_policy(net)
        with pytest.raises(KeyError):
            policy.bind("ghost", 1)
        with pytest.raises(KeyError):
            policy.bind("all", 99)

    def test_foreign_ingress_tunnel_rejected(self):
        net = global_p4_lab()
        policy = EdgePolicy("AMS")
        with pytest.raises(ValueError):
            policy.add_tunnel(
                PolkaTunnel(1, TUNNEL1, net.polka.route_for_path(TUNNEL1))
            )

    def test_describe_mentions_everything(self):
        net = global_p4_lab()
        policy = make_policy(net)
        policy.bind("all", 1)
        text = policy.describe()
        assert "tunnel1" in text and "access-list all" in text and "pbr" in text


FIG12_CONFIG = """
access-list f1
 permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255 tos 32
exit
interface tunnel1
 tunnel domain-name MIA SAO AMS
exit
interface tunnel2
 tunnel domain-name MIA CHI AMS
exit
pbr f1 tunnel 1
"""


class TestRouterConfigService:
    def test_apply_config_via_bus(self):
        net = global_p4_lab()
        bus = MessageBus()
        service = RouterConfigService(net, bus)
        replies = bus.request(
            RECONFIG_TOPIC, command="apply_config", router="MIA", text=FIG12_CONFIG
        )
        assert replies == [{"ok": True, "router": "MIA", "tunnels": [1, 2],
                            "pbr_entries": 1}]
        assert service.policy("MIA").binding_of("f1") == 1

    def test_bind_pbr_via_bus(self):
        net = global_p4_lab()
        bus = MessageBus()
        service = RouterConfigService(net, bus)
        bus.request(RECONFIG_TOPIC, command="apply_config", router="MIA", text=FIG12_CONFIG)
        replies = bus.request(
            RECONFIG_TOPIC, command="bind_pbr", router="MIA", acl="f1", tunnel_id=2
        )
        assert replies[0]["ok"]
        assert service.policy("MIA").binding_of("f1") == 2

    def test_create_tunnel_via_bus(self):
        net = global_p4_lab()
        bus = MessageBus()
        service = RouterConfigService(net, bus)
        bus.request(RECONFIG_TOPIC, command="apply_config", router="MIA", text=FIG12_CONFIG)
        replies = bus.request(
            RECONFIG_TOPIC, command="create_tunnel", router="MIA",
            tunnel_id=3, path=["MIA", "CAL", "CHI", "AMS"],
        )
        assert replies[0]["ok"]
        assert 3 in service.policy("MIA").tunnels

    def test_errors_are_reported_not_raised(self):
        net = global_p4_lab()
        bus = MessageBus()
        service = RouterConfigService(net, bus)
        replies = bus.request(RECONFIG_TOPIC, command="bind_pbr", router="MIA",
                              acl="x", tunnel_id=1)
        assert replies[0]["ok"] is False
        assert service.failed == 1

    def test_unknown_command(self):
        net = global_p4_lab()
        bus = MessageBus()
        RouterConfigService(net, bus)
        replies = bus.request(RECONFIG_TOPIC, command="reboot")
        assert replies[0]["ok"] is False


class TestEndToEndSteering:
    def test_pbr_flip_changes_live_ping_latency(self):
        """Miniature Fig. 11: ping rides Tunnel 1 (slow via 20 ms MIA-SAO),
        a single PBR flip moves it to Tunnel 2 (fast via CHI)."""
        net = global_p4_lab(delays={("MIA", "SAO"): 21.0})
        bus = MessageBus()
        service = RouterConfigService(net, bus)
        config = (
            "access-list icmp1\n"
            " permit icmp 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255\n"
            "exit\n"
            "interface tunnel1\n tunnel domain-name MIA SAO AMS\nexit\n"
            "interface tunnel2\n tunnel domain-name MIA CHI AMS\nexit\n"
            "pbr icmp1 tunnel 1\n"
        )
        bus.request(RECONFIG_TOPIC, command="apply_config", router="MIA", text=config)
        ping = PingApp(net.hosts["host1"], net.hosts["host2"], interval=1.0).start(0.5)
        net.run(until=10.0)
        bus.request(RECONFIG_TOPIC, command="bind_pbr", router="MIA", acl="icmp1", tunnel_id=2)
        net.run(until=20.0)
        t, rtts = ping.rtt_series()
        before = rtts[t < 9.5].mean()
        after = rtts[t > 10.5].mean()
        # the *forward* direction leaves the 21 ms MIA-SAO link; the echo
        # reply always returns via the FIB path, so the RTT improvement is
        # the one-way delta of ~20 ms
        assert before - after == pytest.approx(20.0, abs=3.0)
        assert after < before

    def test_acks_return_via_fib_not_tunnel(self):
        net = global_p4_lab()
        bus = MessageBus()
        RouterConfigService(net, bus)
        config = (
            "access-list t\n"
            " permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255\n"
            "exit\n"
            "interface tunnel1\n tunnel domain-name MIA SAO AMS\nexit\n"
            "pbr t tunnel 1\n"
        )
        bus.request(RECONFIG_TOPIC, command="apply_config", router="MIA", text=config)
        flow = TcpFlow(net.hosts["host1"], net.hosts["host2"], duration=3.0).start()
        net.run(until=5.0)
        assert flow.goodput_mbps() > 1.0
        # data went via SAO; acks took the FIB path (AMS's classifier is unset)
        assert net.routers["SAO"].stats.polka_forwarded > 0
        assert net.routers["AMS"].stats.decapsulated > 0
