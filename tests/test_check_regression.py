"""The CI benchmark-regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
from pathlib import Path

_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _bench_json(path, means):
    path.write_text(json.dumps({
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }))
    return path


def _baseline_json(path, means):
    path.write_text(json.dumps({"benchmarks": means}))
    return path


class TestGate:
    def test_passes_within_threshold(self, tmp_path, capsys):
        current = _bench_json(tmp_path / "bench.json", {"t::a": 1.5, "t::b": 0.9})
        baseline = _baseline_json(tmp_path / "base.json", {"t::a": 1.0, "t::b": 1.0})
        assert check_regression.main([str(current), str(baseline)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_fails_beyond_threshold(self, tmp_path, capsys):
        current = _bench_json(tmp_path / "bench.json", {"t::a": 2.5})
        baseline = _baseline_json(tmp_path / "base.json", {"t::a": 1.0})
        assert check_regression.main([str(current), str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "2.50x" in out

    def test_threshold_is_configurable(self, tmp_path):
        current = _bench_json(tmp_path / "bench.json", {"t::a": 2.5})
        baseline = _baseline_json(tmp_path / "base.json", {"t::a": 1.0})
        assert check_regression.main(
            [str(current), str(baseline), "--threshold", "3.0"]
        ) == 0

    def test_missing_and_new_benchmarks_never_fail(self, tmp_path, capsys):
        current = _bench_json(tmp_path / "bench.json", {"t::new": 9.9})
        baseline = _baseline_json(tmp_path / "base.json", {"t::gone": 1.0})
        assert check_regression.main([str(current), str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "MISSING" in out and "NEW" in out

    def test_update_round_trips_through_the_gate(self, tmp_path):
        current = _bench_json(tmp_path / "bench.json", {"t::a": 1.234})
        baseline = tmp_path / "base.json"
        assert check_regression.main(
            [str(current), str(baseline), "--update"]
        ) == 0
        written = json.loads(baseline.read_text())
        assert written["benchmarks"] == {"t::a": 1.234}
        assert check_regression.main([str(current), str(baseline)]) == 0

    def test_zero_baseline_mean_counts_as_regression(self, tmp_path):
        current = _bench_json(tmp_path / "bench.json", {"t::a": 0.1})
        baseline = _baseline_json(tmp_path / "base.json", {"t::a": 0.0})
        assert check_regression.main([str(current), str(baseline)]) == 1

    def test_markdown_table_written_alongside_the_gate(self, tmp_path):
        current = _bench_json(
            tmp_path / "bench.json", {"t::a": 2.5, "t::b": 0.9, "t::new": 1.0}
        )
        baseline = _baseline_json(
            tmp_path / "base.json", {"t::a": 1.0, "t::b": 1.0, "t::gone": 1.0}
        )
        md = tmp_path / "summary.md"
        assert check_regression.main(
            [str(current), str(baseline), "--markdown", str(md)]
        ) == 1  # t::a regressed; the table is still written
        text = md.read_text()
        assert "| benchmark | baseline | current | ratio | verdict |" in text
        assert "1 regression(s) beyond 2.0x" in text
        assert "`t::a`" in text and "2.50x" in text and "regressed" in text
        assert "`t::b`" in text and "ok" in text
        assert "`t::gone`" in text and "missing" in text
        assert "`t::new`" in text and "new" in text
        # worst ratio first: the regression leads the table
        assert text.index("`t::a`") < text.index("`t::b`")

    def test_markdown_clean_run_reports_zero_regressions(self, tmp_path):
        current = _bench_json(tmp_path / "bench.json", {"t::a": 1.0})
        baseline = _baseline_json(tmp_path / "base.json", {"t::a": 1.0})
        md = tmp_path / "summary.md"
        assert check_regression.main(
            [str(current), str(baseline), "--markdown", str(md)]
        ) == 0
        assert "0 regression(s)" in md.read_text()

    def test_committed_baseline_matches_the_bench_suite(self):
        """The baseline tracked in git must name real benchmarks."""
        baseline = check_regression.load_baseline(
            _PATH.with_name("baseline.json")
        )
        assert len(baseline) >= 30
        bench_files = {name.split("::")[0] for name in baseline}
        for name in bench_files:
            assert (_PATH.parent.parent / name).exists(), name
        assert all(mean > 0 for mean in baseline.values())
