"""Failing-first fixtures for every repro-lint rule.

Each rule gets at least one *bad* snippet that must flag and one *good*
snippet that must stay clean, plus a scoping case where the rule is
path-restricted.  These fixtures are the rules' contract: a rule change
that stops catching its own bad fixture is a regression, not a
refactor.
"""

import pytest

from repro.analysis import Analyzer, all_rules


def lint(source, path="src/repro/mod.py"):
    return Analyzer(root=".").lint_source(source, path)


def rule_ids(source, path="src/repro/mod.py"):
    return {f.rule for f in lint(source, path)}


class TestRegistry:
    def test_eight_rules_registered(self):
        rules = all_rules()
        assert [r.id for r in rules] == [
            f"RL00{i}" for i in range(1, 9)
        ]

    def test_every_rule_is_documented(self):
        for rule in all_rules():
            assert rule.name, rule.id
            assert rule.description, rule.id
            assert rule.rationale, rule.id
            assert rule.severity in ("error", "warning"), rule.id


class TestRL001UnseededRandom:
    @pytest.mark.parametrize(
        "source",
        [
            "import random\nrandom.shuffle(xs)\n",
            "import random\nx = random.randint(0, 10)\n",
            "import random\nrandom.seed(42)\n",
            "import random as rnd\nrnd.random()\n",
            "import numpy as np\nnp.random.rand(3)\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import numpy\nnumpy.random.shuffle(xs)\n",
            "from numpy import random\nrandom.permutation(10)\n",
        ],
    )
    def test_bad(self, source):
        assert "RL001" in rule_ids(source)

    @pytest.mark.parametrize(
        "source",
        [
            # the sanctioned pattern: an explicit seeded Generator
            "import numpy as np\nrng = np.random.default_rng(0)\n",
            # calls on a passed-in rng variable are not module state
            "def draw(rng):\n    return rng.random()\n",
            # a local named 'random' without the import is not the module
            "random = make_source()\nrandom.shuffle(xs)\n",
            # seeded legacy RandomState is explicit about its stream
            "import numpy as np\nnp.random.RandomState(7)\n",
            "import random\nr = random.Random(123)\n",
        ],
    )
    def test_good(self, source):
        assert "RL001" not in rule_ids(source)


class TestRL002WallClock:
    @pytest.mark.parametrize(
        "source",
        [
            "import time\nt0 = time.time()\n",
            "import time\nt0 = time.perf_counter()\n",
            "import time\nt0 = time.monotonic()\n",
            "from time import perf_counter\nt0 = perf_counter()\n",
            "from datetime import datetime\nstamp = datetime.now()\n",
            "import datetime\nstamp = datetime.datetime.utcnow()\n",
        ],
    )
    def test_bad(self, source):
        assert "RL002" in rule_ids(source)

    def test_good_virtual_time(self):
        assert "RL002" not in rule_ids("now = sim.now\n")

    def test_benchmarks_are_exempt(self):
        source = "import time\nt0 = time.perf_counter()\n"
        assert "RL002" not in rule_ids(source, "benchmarks/scale.py")

    def test_time_sleep_is_not_a_clock_read(self):
        assert "RL002" not in rule_ids("import time\ntime.sleep(1)\n")


class TestRL003UnorderedIteration:
    @pytest.mark.parametrize(
        "source",
        [
            "for x in {1, 2, 3}:\n    pass\n",
            "for x in set(xs):\n    pass\n",
            "for k in mapping.keys():\n    pass\n",
            "ys = [f(x) for x in set(xs)]\n",
            "out = ','.join(set(names))\n",
            "ordered = list({n for n in names})\n",
            "pairs = tuple(set(edges))\n",
        ],
    )
    def test_bad(self, source):
        assert "RL003" in rule_ids(source)

    @pytest.mark.parametrize(
        "source",
        [
            "for x in sorted(set(xs)):\n    pass\n",
            "for x in sorted({1, 2, 3}):\n    pass\n",
            "out = ','.join(sorted(set(names)))\n",
            "for k in sorted(mapping):\n    pass\n",
            # plain dict iteration is insertion-ordered; only .keys()
            # (and sets) are flagged
            "for k in mapping:\n    pass\n",
            "present = x in set(xs)\n",  # membership, not iteration
        ],
    )
    def test_good(self, source):
        assert "RL003" not in rule_ids(source)


class TestRL004UnsortedJson:
    @pytest.mark.parametrize(
        "source",
        [
            "import json\nblob = json.dumps(payload)\n",
            "import json\nblob = json.dumps(payload, indent=2)\n",
            "import json\nblob = json.dumps(payload, sort_keys=False)\n",
            "import json\njson.dump(payload, fh)\n",
        ],
    )
    def test_bad(self, source):
        assert "RL004" in rule_ids(source)

    @pytest.mark.parametrize(
        "source",
        [
            "import json\nblob = json.dumps(payload, sort_keys=True)\n",
            "import json\npayload = json.loads(blob)\n",
            # **kwargs forwarding cannot be judged statically
            "import json\nblob = json.dumps(payload, **opts)\n",
        ],
    )
    def test_good(self, source):
        assert "RL004" not in rule_ids(source)


class TestRL005MutableDefault:
    @pytest.mark.parametrize(
        "source",
        [
            "def f(xs=[]):\n    pass\n",
            "def f(m={}):\n    pass\n",
            "def f(s={1, 2}):\n    pass\n",
            "def f(*, xs=[]):\n    pass\n",
            "def f(xs=list()):\n    pass\n",
            "from collections import deque\ndef f(q=deque()):\n    pass\n",
            (
                "from collections import defaultdict\n"
                "def f(m=defaultdict(list)):\n    pass\n"
            ),
        ],
    )
    def test_bad(self, source):
        assert "RL005" in rule_ids(source)

    @pytest.mark.parametrize(
        "source",
        [
            "def f(xs=None):\n    pass\n",
            "def f(xs=()):\n    pass\n",
            "def f(name='x'):\n    pass\n",
        ],
    )
    def test_good(self, source):
        assert "RL005" not in rule_ids(source)


class TestRL006FloatEquality:
    SOLVER = "src/repro/net/fluid.py"

    @pytest.mark.parametrize(
        "source",
        [
            "if rate == 0.0:\n    pass\n",
            "if 1.0 != share:\n    pass\n",
            "done = residual == -0.0\n",
            "if x == float(y):\n    pass\n",
        ],
    )
    def test_bad_in_solver(self, source):
        assert "RL006" in rule_ids(source, self.SOLVER)

    @pytest.mark.parametrize(
        "source",
        [
            "if rate <= 1e-9:\n    pass\n",
            "import math\nif math.isclose(rate, 0.0):\n    pass\n",
            "if count == 0:\n    pass\n",  # int comparison
        ],
    )
    def test_good_in_solver(self, source):
        assert "RL006" not in rule_ids(source, self.SOLVER)

    def test_hecate_is_in_scope(self):
        source = "if score == 0.5:\n    pass\n"
        assert "RL006" in rule_ids(source, "src/repro/hecate/lp.py")

    def test_out_of_scope_paths_are_clean(self):
        source = "if rate == 0.0:\n    pass\n"
        assert "RL006" not in rule_ids(source, "src/repro/ml/metrics.py")


DRIFTED = '''\
from dataclasses import dataclass

@dataclass(frozen=True)
class Result:
    scenario: str
    drops: int

    def to_dict(self):
        return {"scenario": self.scenario}
'''

FIELD_TYPES_STYLE = '''\
from dataclasses import dataclass

@dataclass(frozen=True)
class Result:
    scenario: str
    drops: int

    _FIELD_TYPES = {"scenario": str, "drops": int}

    def to_dict(self):
        return {k: c(getattr(self, k)) for k, c in self._FIELD_TYPES.items()}
'''

EXPLICIT_STYLE = '''\
from dataclasses import dataclass

@dataclass
class Result:
    scenario: str
    drops: int

    def to_dict(self):
        return {"scenario": self.scenario, "drops": self.drops}
'''

DOCSTRING_ONLY = '''\
from dataclasses import dataclass

@dataclass
class Result:
    """The drops field is documented here but never serialized."""

    scenario: str
    drops: int

    def to_dict(self):
        return {"scenario": self.scenario}
'''


class TestRL007SerializationDrift:
    def test_missing_field_is_flagged(self):
        findings = [f for f in lint(DRIFTED) if f.rule == "RL007"]
        assert len(findings) == 1
        assert "drops" in findings[0].message
        assert "CACHE_VERSION" in findings[0].message

    def test_field_types_mapping_counts_as_serialized(self):
        assert "RL007" not in rule_ids(FIELD_TYPES_STYLE)

    def test_explicit_dict_counts_as_serialized(self):
        assert "RL007" not in rule_ids(EXPLICIT_STYLE)

    def test_docstring_mention_does_not_count(self):
        assert "RL007" in rule_ids(DOCSTRING_ONLY)

    def test_underscore_fields_are_exempt(self):
        source = DRIFTED.replace("drops: int", "_drops: int")
        assert "RL007" not in rule_ids(source)

    def test_dataclass_without_to_dict_is_exempt(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\nclass Spec:\n    a: int\n"
        )
        assert "RL007" not in rule_ids(source)


class TestRL008UnboundedGrowth:
    SVC = "src/repro/framework/service.py"

    def test_bare_deque_in_framework_is_flagged(self):
        source = (
            "from collections import deque\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.q = deque()\n"
        )
        assert "RL008" in rule_ids(source, self.SVC)

    def test_deque_with_maxlen_is_clean(self):
        source = (
            "from collections import deque\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.q = deque(maxlen=4096)\n"
        )
        assert "RL008" not in rule_ids(source, self.SVC)

    def test_bare_audit_list_is_flagged(self):
        source = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self.decision_log = []\n"
        )
        assert "RL008" in rule_ids(source, self.SVC)

    def test_plain_list_attr_is_clean(self):
        source = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self.samples = []\n"
        )
        assert "RL008" not in rule_ids(source, self.SVC)

    def test_out_of_scope_paths_are_clean(self):
        source = (
            "from collections import deque\n"
            "class L:\n"
            "    def __init__(self):\n"
            "        self.queue = deque()\n"
        )
        assert "RL008" not in rule_ids(source, "src/repro/net/links.py")
