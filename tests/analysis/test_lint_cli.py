"""``repro lint`` CLI behaviour, and the self-check that keeps the
tree clean: ``repro lint src/`` must exit 0 with zero non-baselined
findings — the same gate CI applies on every PR.
"""

import json
from pathlib import Path

from repro.analysis import JSON_SCHEMA_VERSION, all_rules
from repro.cli import build_lint_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD = "import json\nblob = json.dumps(payload)\n"


def write_bad(tmp_path):
    file = tmp_path / "mod.py"
    file.write_text(BAD)
    return file


class TestSelfCheck:
    def test_src_tree_is_clean(self, capsys):
        """The whole point of the subsystem: the invariants hold, on
        every file under src/, right now."""
        code = main(
            ["lint", str(REPO_ROOT / "src"), "--root", str(REPO_ROOT)]
        )
        out = capsys.readouterr().out
        assert code == 0, f"repro lint src/ is not clean:\n{out}"
        assert "clean: no findings" in out

    def test_benchmarks_keep_their_wall_clock_exemption(self):
        # benchmarks measure wall time on purpose; RL002 must not fire
        code = main(
            [
                "lint",
                str(REPO_ROOT / "benchmarks"),
                "--root",
                str(REPO_ROOT),
                "--select",
                "RL002",
            ]
        )
        assert code == 0


class TestLintCli:
    def test_findings_fail_with_exit_1(self, tmp_path, capsys):
        file = write_bad(tmp_path)
        code = main(["lint", str(file), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL004" in out and "mod.py:2:" in out

    def test_json_to_stdout_replaces_text(self, tmp_path, capsys):
        file = write_bad(tmp_path)
        code = main(
            ["lint", str(file), "--root", str(tmp_path), "--json", "-"]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["summary"]["by_rule"] == {"RL004": 1}

    def test_json_to_file(self, tmp_path, capsys):
        file = write_bad(tmp_path)
        out_path = tmp_path / "findings.json"
        code = main(
            [
                "lint", str(file),
                "--root", str(tmp_path),
                "--json", str(out_path),
            ]
        )
        assert code == 1
        document = json.loads(out_path.read_text())
        assert document["summary"]["active"] == 1
        # the text report still goes to stdout alongside the file
        assert "RL004" in capsys.readouterr().out

    def test_select_limits_the_rule_set(self, tmp_path, capsys):
        file = write_bad(tmp_path)
        code = main(
            [
                "lint", str(file),
                "--root", str(tmp_path),
                "--select", "RL005",
            ]
        )
        capsys.readouterr()
        assert code == 0  # RL004 violation, but only RL005 selected

    def test_select_unknown_rule_is_a_user_error(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path), "--select", "RL999"])
        assert code == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_baseline_workflow(self, tmp_path, capsys):
        file = write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint", str(file),
                    "--root", str(tmp_path),
                    "--baseline", str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert baseline.exists()
        code = main(
            [
                "lint", str(file),
                "--root", str(tmp_path),
                "--baseline", str(baseline),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(1 baselined)" in out

    def test_missing_baseline_is_a_user_error(self, tmp_path, capsys):
        file = write_bad(tmp_path)
        code = main(
            [
                "lint", str(file),
                "--root", str(tmp_path),
                "--baseline", str(tmp_path / "nope.json"),
            ]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_write_baseline_requires_a_path(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path), "--write-baseline"])
        assert code == 2
        assert "--baseline" in capsys.readouterr().err

    def test_list_rules_prints_the_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out
            assert rule.name in out

    def test_parser_builds_without_executing(self):
        args = build_lint_parser().parse_args(
            ["src", "--json", "out.json", "--select", "RL001"]
        )
        assert args.paths == ["src"]
        assert args.json == "out.json"
        assert args.select == "RL001"
