"""Engine semantics: inline disables, baselines, reporters, parsing.

The engine is itself held to the invariants it enforces: reports carry
no timestamps, findings are globally sorted, and rendering the same
tree twice is byte-identical.
"""

import json

from repro.analysis import (
    Analyzer,
    Baseline,
    Finding,
    JSON_SCHEMA_VERSION,
    PARSE_ERROR_ID,
    render_json,
    render_text,
)

BAD = "def f(xs=[]):\n    pass\n"
PATH = "src/repro/mod.py"


def lint(source, path=PATH, **kwargs):
    return Analyzer(root=".", **kwargs).lint_source(source, path)


class TestInlineDirectives:
    def test_disable_one_rule_on_the_line(self):
        source = "def f(xs=[]):  # repro-lint: disable=RL005\n    pass\n"
        assert lint(source) == []

    def test_disable_lists_multiple_ids(self):
        source = (
            "import json\n"
            "blob = json.dumps(d)  # repro-lint: disable=RL001,RL004\n"
        )
        assert lint(source) == []

    def test_disable_wrong_rule_does_not_suppress(self):
        source = "def f(xs=[]):  # repro-lint: disable=RL001\n    pass\n"
        assert [f.rule for f in lint(source)] == ["RL005"]

    def test_bare_disable_suppresses_every_rule_on_the_line(self):
        source = "def f(xs=[]):  # repro-lint: disable\n    pass\n"
        assert lint(source) == []

    def test_disable_applies_only_to_its_own_line(self):
        source = (
            "x = 1  # repro-lint: disable=RL005\n"
            "def f(xs=[]):\n    pass\n"
        )
        assert [f.rule for f in lint(source)] == ["RL005"]

    def test_skip_file(self):
        source = "# repro-lint: skip-file\n" + BAD
        assert lint(source) == []

    def test_directive_inside_a_string_is_inert(self):
        source = 'tag = "# repro-lint: skip-file"\n' + BAD
        assert [f.rule for f in lint(source)] == ["RL005"]


class TestParseError:
    def test_syntax_error_becomes_a_finding(self):
        findings = lint("def f(:\n")
        assert [f.rule for f in findings] == [PARSE_ERROR_ID]
        assert findings[0].severity == "error"

    def test_parse_error_fails_the_gate(self):
        assert not all(f.baselined for f in lint("def f(:\n"))


class TestBaseline:
    def test_round_trip_marks_findings_baselined(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        findings = lint(BAD)
        assert len(findings) == 1 and not findings[0].baselined
        Baseline.dump(findings, baseline_path)
        again = lint(BAD, baseline=Baseline.load(baseline_path))
        assert len(again) == 1 and again[0].baselined

    def test_fingerprint_survives_line_shifts(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        Baseline.dump(lint(BAD), baseline_path)
        shifted = "import os\n\n\n" + BAD
        findings = lint(shifted, baseline=Baseline.load(baseline_path))
        rl005 = [f for f in findings if f.rule == "RL005"]
        assert rl005 and all(f.baselined for f in rl005)

    def test_editing_the_flagged_line_invalidates_the_entry(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        Baseline.dump(lint(BAD), baseline_path)
        edited = "def f(xs=[], n=1):\n    pass\n"
        findings = lint(edited, baseline=Baseline.load(baseline_path))
        assert findings and not findings[0].baselined

    def test_baseline_file_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        findings = lint(BAD + "def g(m={}):\n    pass\n")
        Baseline.dump(findings, a)
        Baseline.dump(list(reversed(findings)), b)
        assert a.read_text() == b.read_text()


class TestReporters:
    def test_text_report_lists_location_rule_and_name(self):
        text = render_text(lint(BAD))
        assert f"{PATH}:1:" in text
        assert "RL005" in text and "[mutable-default]" in text
        assert "1 finding(s)" in text

    def test_text_report_clean(self):
        assert "clean: no findings" in render_text([])

    def test_baselined_findings_do_not_count_as_active(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        Baseline.dump(lint(BAD), baseline_path)
        findings = lint(BAD, baseline=Baseline.load(baseline_path))
        text = render_text(findings)
        assert "clean: no findings (1 baselined)" in text

    def test_json_schema(self):
        document = json.loads(render_json(lint(BAD)))
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["summary"] == {
            "total": 1,
            "active": 1,
            "baselined": 0,
            "by_rule": {"RL005": 1},
        }
        (finding,) = document["findings"]
        assert set(finding) == {
            "rule", "name", "severity", "path", "line", "col",
            "message", "snippet", "baselined", "fingerprint",
        }
        assert finding["rule"] == "RL005"
        assert finding["path"] == PATH
        assert finding["line"] == 1
        assert finding["snippet"] == "def f(xs=[]):"

    def test_json_is_byte_deterministic(self):
        findings = lint(BAD)
        assert render_json(findings) == render_json(lint(BAD))


class TestAnalyzerPaths:
    def test_directory_walk_is_sorted_and_relative(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text(BAD)
        (tmp_path / "pkg" / "a.py").write_text(BAD)
        analyzer = Analyzer(root=tmp_path)
        findings = analyzer.lint_paths([tmp_path / "pkg"])
        assert [f.path for f in findings] == ["pkg/a.py", "pkg/b.py"]

    def test_duplicate_inputs_lint_once(self, tmp_path):
        file = tmp_path / "m.py"
        file.write_text(BAD)
        analyzer = Analyzer(root=tmp_path)
        assert len(analyzer.lint_paths([file, file, tmp_path])) == 1

    def test_findings_sort_key_is_total(self):
        f = Finding(
            rule="RL005", name="mutable-default", severity="error",
            path="a.py", line=3, col=1, message="m", snippet="s",
        )
        assert f.sort_key() == ("a.py", 3, 1, "RL005")
        assert f.location() == "a.py:3:1"
