"""Backend registry & protocol: registration, dispatch, lifecycle."""

import pytest

from repro.backends import (
    BackendCapabilities,
    ExecutionBackend,
    backend_names,
    get_backend,
    is_registered,
    list_backends,
    register_backend,
)
from repro.backends.base import _REGISTRY
from repro.backends.des import DesBackend
from repro.backends.emulation import EmulationBackend
from repro.backends.fluid import FluidBackend
from repro.backends.hybrid import HybridAggregateBackend, HybridBackend
from repro.scenarios import ScenarioRunner, get_scenario


class TestRegistry:
    def test_builtins_in_registration_order(self):
        assert backend_names() == ("des", "fluid", "hybrid", "emulation-mock")

    def test_get_backend_resolves_builtins(self):
        assert get_backend("des") is DesBackend
        assert get_backend("fluid") is FluidBackend
        assert get_backend("hybrid") is HybridBackend
        assert get_backend("emulation-mock") is EmulationBackend

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="unknown backend 'ns3'"):
            get_backend("ns3")
        with pytest.raises(KeyError, match="registered backends: des"):
            get_backend("ns3")

    def test_is_registered(self):
        assert is_registered("des")
        assert is_registered("emulation-mock")
        assert not is_registered("ns3")
        assert not is_registered(None)
        assert not is_registered(3)

    def test_list_backends_matches_names(self):
        capabilities = list_backends()
        assert [c.name for c in capabilities] == list(backend_names())
        assert all(isinstance(c, BackendCapabilities) for c in capabilities)
        assert all(c.description for c in capabilities)

    def test_capability_flags(self):
        by_name = {c.name: c for c in list_backends()}
        assert by_name["des"].packet_level
        assert not by_name["des"].fluid_model
        assert by_name["fluid"].fluid_model
        assert not by_name["fluid"].packet_level
        assert by_name["hybrid"].packet_level
        assert by_name["hybrid"].fluid_model
        assert by_name["hybrid"].uses_flow_classes
        assert by_name["emulation-mock"].external
        # only the external family leaves the process
        assert [c.name for c in list_backends() if c.external] == [
            "emulation-mock"
        ]

    def test_duplicate_name_is_rejected(self):
        class Shadow(DesBackend):
            name = "des"

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Shadow)
        assert _REGISTRY["des"] is DesBackend  # untouched

    def test_nameless_class_is_rejected(self):
        class Nameless(ExecutionBackend):
            @classmethod
            def capabilities(cls):
                return BackendCapabilities(name="", description="x")

            def execute(self):
                pass

            def collect(self):
                raise NotImplementedError

        with pytest.raises(ValueError, match="non-empty"):
            register_backend(Nameless)

    def test_plugin_registers_and_unregisters(self):
        @register_backend
        class Plugin(FluidBackend):
            name = "test-plugin"

            @classmethod
            def capabilities(cls):
                return BackendCapabilities(
                    name=cls.name, description="test plugin", fluid_model=True
                )

        try:
            assert is_registered("test-plugin")
            assert get_backend("test-plugin") is Plugin
            # the spec layer accepts any registered name
            scenario = get_scenario("ring-uniform").with_overrides(
                backend="test-plugin"
            )
            assert scenario.backend == "test-plugin"
        finally:
            del _REGISTRY["test-plugin"]
        with pytest.raises(ValueError, match="backend must be one of"):
            get_scenario("ring-uniform").with_overrides(
                backend="test-plugin"
            )


class TestSpecValidation:
    def test_builtin_backend_names_accepted(self):
        for name in backend_names():
            scenario = get_scenario("ring-uniform").with_overrides(
                backend=name
            )
            assert scenario.backend == name

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            get_scenario("ring-uniform").with_overrides(backend="quantum")


class TestLifecycle:
    def test_for_scenario_picks_aggregate_hybrid(self):
        import dataclasses

        plain = get_scenario("wan-elephant-mice")
        assert type(HybridBackend.for_scenario(plain)) is HybridBackend
        aggregated = plain.with_overrides(
            classes=dataclasses.replace(
                plain.classes, aggregate_background=True
            )
        )
        picked = HybridBackend.for_scenario(aggregated)
        assert type(picked) is HybridAggregateBackend
        # the aggregate sibling answers to the same registry name
        assert picked.name == "hybrid"

    def test_prepare_is_single_use(self):
        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        runner = ScenarioRunner(scenario, backend="fluid").setup()
        backend = FluidBackend()
        backend.prepare(scenario, runner.network, runner.tunnels, runner)
        with pytest.raises(RuntimeError, match="single-use"):
            backend.prepare(scenario, runner.network, runner.tunnels, runner)

    def test_execute_before_prepare_raises(self):
        with pytest.raises(RuntimeError, match="not prepared"):
            FluidBackend().execute()

    def test_collect_before_execute_raises(self):
        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        runner = ScenarioRunner(scenario, backend="fluid").setup()
        backend = FluidBackend()
        backend.prepare(scenario, runner.network, runner.tunnels, runner)
        with pytest.raises(RuntimeError, match="execute"):
            backend.collect()


class TestRunnerDispatch:
    def test_string_class_and_instance_agree(self):
        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        by_name = ScenarioRunner(scenario, backend="fluid").run()
        by_class = ScenarioRunner(scenario, backend=FluidBackend).run()
        by_instance = ScenarioRunner(scenario, backend=FluidBackend()).run()
        assert by_name == by_class == by_instance

    def test_unknown_string_backend_raises_value_error(self):
        scenario = get_scenario("ring-uniform").quick()
        with pytest.raises(ValueError, match="unknown backend"):
            ScenarioRunner(scenario, backend="ns3")

    def test_junk_backend_object_raises_value_error(self):
        scenario = get_scenario("ring-uniform").quick()
        with pytest.raises(ValueError, match="unknown backend"):
            ScenarioRunner(scenario, backend=42)

    def test_runner_echoes_backend_name(self):
        scenario = get_scenario("ring-uniform").quick()
        assert ScenarioRunner(scenario, backend="fluid").backend == "fluid"
        assert (
            ScenarioRunner(scenario, backend=FluidBackend).backend == "fluid"
        )

    def test_inconsistent_result_fails_validation(self):
        class LyingBackend(FluidBackend):
            def collect(self):
                import dataclasses

                return dataclasses.replace(super().collect(), placed=999)

        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        with pytest.raises(ValueError, match="inconsistent result"):
            ScenarioRunner(scenario, backend=LyingBackend).run()


class TestDeprecatedShims:
    def test_run_fluid_warns_and_matches_run(self):
        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        expected = ScenarioRunner(scenario, backend="fluid").run()
        runner = ScenarioRunner(scenario, backend="fluid")
        with pytest.warns(DeprecationWarning, match="_run_fluid"):
            result = runner._run_fluid()
        assert result == expected

    def test_run_hybrid_warns_and_matches_run(self):
        scenario = get_scenario("wan-elephant-mice").quick(
            horizon=6.0, warmup=2.0
        )
        expected = ScenarioRunner(scenario, backend="hybrid").run()
        runner = ScenarioRunner(scenario, backend="hybrid")
        with pytest.warns(DeprecationWarning, match="get_backend"):
            result = runner._run_hybrid()
        assert result == expected

    def test_string_dispatch_stays_silent(self):
        import warnings

        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ScenarioRunner(scenario, backend="fluid").run()
