"""Byte-identity pins: the backend extraction changed no numbers.

``data/pre_refactor_pins.json`` was captured from the monolithic
``ScenarioRunner._run_*`` implementations immediately before the
backends were extracted into :mod:`repro.backends` (with the fluid /
hybrid delivered-rate summation pinned to sorted flow order — the
hash-seed determinism fix noted on ``CACHE_VERSION`` v6).  Every entry
pins one ``(scenario, backend)`` cell at ``quick(horizon=6.0,
warmup=2.0)``:

- the full ``ScenarioResult.to_dict()`` payload, compared for exact
  equality — floats must match to the last ulp, not approximately;
- the scenario's cache fingerprint, which is independent of
  ``CACHE_VERSION`` and therefore must never move unless the
  ``Scenario`` dataclass itself changes shape.

If a refactor legitimately changes a number, re-capture the pin in the
same commit and say why in the commit message; this file failing is the
alarm, not the nuisance.

Re-captured at ``CACHE_VERSION`` v7 (application-aware QoE): the path
probes grew jitter/loss columns, moving ``telemetry_samples`` on every
DES/hybrid cell, and results grew ``mean_qoe`` / ``qoe_flows`` /
``qoe_per_class`` (all zero/empty here — these scenarios classify no
flows).  Every traffic number was verified unchanged at re-capture.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.scenarios import ScenarioRunner, get_scenario
from repro.sweep import scenario_fingerprint

PINS = json.loads(
    (Path(__file__).parent / "data" / "pre_refactor_pins.json").read_text(
        encoding="utf-8"
    )
)


def _scenario_for(pin):
    scenario = get_scenario(pin["scenario"]).quick(horizon=6.0, warmup=2.0)
    if pin["aggregate"]:
        scenario = scenario.with_overrides(
            classes=dataclasses.replace(
                scenario.classes, aggregate_background=True
            )
        )
    return scenario


@pytest.mark.parametrize("key", sorted(PINS))
def test_result_is_byte_identical_to_pre_refactor(key):
    pin = PINS[key]
    scenario = _scenario_for(pin)
    result = ScenarioRunner(scenario, backend=pin["backend"]).run()
    assert result.to_dict() == pin["result"], (
        f"{key} drifted from the pre-refactor pin; if the change is "
        "intentional, re-capture data/pre_refactor_pins.json"
    )


@pytest.mark.parametrize("key", sorted(PINS))
def test_scenario_fingerprint_is_stable(key):
    pin = PINS[key]
    assert scenario_fingerprint(_scenario_for(pin)) == pin["fingerprint"]


def test_pin_coverage():
    """Every in-process backend is pinned on at least one scenario."""
    pinned_backends = {pin["backend"] for pin in PINS.values()}
    assert {"des", "fluid", "hybrid"} <= pinned_backends
    assert any(pin["aggregate"] for pin in PINS.values())
