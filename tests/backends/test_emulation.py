"""Emulation bridge: plan compilation, mock driver, strict parsing."""

import pytest

from repro.backends.emulation import (
    CommandPlan,
    EmulationBackend,
    FailureCue,
    FlowCommand,
    MockEmulationDriver,
    compile_plan,
    parse_driver_output,
)
from repro.scenarios import ScenarioRunner, get_scenario


def _prepared(name, **quick):
    scenario = get_scenario(name).quick(**quick)
    runner = ScenarioRunner(scenario, backend="emulation-mock").setup()
    return scenario, runner


def _tiny_plan(protocol="udp", rate_mbps=8.0, failures=()):
    """A hand-built one-flow plan over h0-r0-r1-h1 for driver/parser
    tests that need exact control over the inputs."""
    flow = FlowCommand(
        flow_name="u0",
        src="h0",
        dst="h1",
        protocol=protocol,
        start_at=0.0,
        duration=10.0,
        rate_mbps=rate_mbps if protocol == "udp" else None,
        path=("h0", "r0", "r1", "h1"),
        command="iperf -c h1 -p 5001 -t 10"
        + (f" -u -b {rate_mbps:g}M" if protocol == "udp" else ""),
    )
    return CommandPlan(
        scenario="tiny",
        seed=0,
        horizon=10.0,
        warmup=0.0,
        hosts=("h0", "h1"),
        links=(
            ("h0", "r0", 100.0, 0.1),
            ("r0", "r1", 20.0, 1.0),
            ("h1", "r1", 100.0, 0.1),
        ),
        servers=("h1: iperf -s -p 5001",),
        flows=(flow,),
        probes=(),
        failures=tuple(failures),
        failure_events=len(failures),
    )


class TestCompilePlan:
    def test_plan_echoes_the_prepared_run(self):
        scenario, runner = _prepared("ring-uniform", horizon=6.0, warmup=2.0)
        plan = compile_plan(runner)
        assert plan.scenario == scenario.name
        assert plan.seed == runner.seed
        assert plan.horizon == scenario.horizon
        assert plan.hosts == tuple(sorted(runner.network.hosts))
        assert len(plan.flows) + len(plan.probes) + plan.unplaced == len(
            runner.requests
        )

    def test_flow_commands_are_iperf_shaped(self):
        _, runner = _prepared("ring-uniform", horizon=6.0, warmup=2.0)
        plan = compile_plan(runner)
        for flow in plan.flows:
            assert flow.command.startswith(f"iperf -c {flow.dst} -p 5001")
            if flow.protocol == "udp" and flow.rate_mbps:
                assert " -u -b " in flow.command
            # source-routed: the path runs host-to-host
            assert flow.path[0] == flow.src
            assert flow.path[-1] == flow.dst
        assert all(": iperf -s -p 5001" in s for s in plan.servers)

    def test_icmp_requests_become_ping_probes(self):
        _, runner = _prepared(
            "fig11-latency-migration", horizon=10.0, warmup=2.0
        )
        plan = compile_plan(runner)
        assert len(plan.probes) == 1
        probe = plan.probes[0]
        assert probe.protocol == "icmp"
        assert probe.command.startswith("ping -c ")
        assert not plan.flows

    def test_failure_cues_are_rendered(self):
        _, runner = _prepared("line-link-flap", horizon=6.0, warmup=2.0)
        plan = compile_plan(runner)
        assert plan.failure_events == 2
        actions = [cue.command for cue in plan.failures]
        assert any(c.startswith("link down r0 r1 @") for c in actions)
        assert any(c.startswith("link up r0 r1 @") for c in actions)

    def test_links_are_sorted_and_directionless(self):
        _, runner = _prepared("ring-uniform", horizon=6.0, warmup=2.0)
        plan = compile_plan(runner)
        assert list(plan.links) == sorted(plan.links)
        for a, b, rate, delay in plan.links:
            assert a < b
            assert rate > 0 and delay >= 0


class TestMockDriver:
    def test_output_is_deterministic(self):
        _, runner = _prepared("ring-uniform", horizon=6.0, warmup=2.0)
        plan = compile_plan(runner)
        driver = MockEmulationDriver()
        assert driver.run(plan) == driver.run(plan)

    def test_udp_outage_shows_up_as_datagram_loss(self):
        cues = (
            FailureCue(at=2.0, action="fail", a="r0", b="r1",
                       command="link down r0 r1 @ 2s"),
            FailureCue(at=4.0, action="restore", a="r0", b="r1",
                       command="link up r0 r1 @ 4s"),
        )
        plan = _tiny_plan(protocol="udp", rate_mbps=8.0, failures=cues)
        raw = MockEmulationDriver().run(plan)
        per_flow, latencies, drops = parse_driver_output(plan, raw)
        # 2 of 10 seconds dark: ~20% of the datagrams, rate scaled down
        assert drops > 0
        assert per_flow["u0"] == pytest.approx(8.0 * 0.8, rel=0.05)
        assert latencies == []

    def test_tcp_flow_reports_no_loss_line(self):
        plan = _tiny_plan(protocol="tcp")
        raw = MockEmulationDriver().run(plan)
        per_flow, _, drops = parse_driver_output(plan, raw)
        assert drops == 0  # TCP iperf reports bandwidth only
        assert per_flow["u0"] > 0.0

    def test_rates_respect_the_bottleneck(self):
        plan = _tiny_plan(protocol="tcp")
        per_flow, _, _ = parse_driver_output(
            plan, MockEmulationDriver().run(plan)
        )
        assert per_flow["u0"] <= 20.0 + 1e-6  # the r0-r1 link


class TestParserReconciliation:
    def test_missing_flow_section_raises(self):
        plan = _tiny_plan()
        with pytest.raises(ValueError, match="missing flow 'u0'"):
            parse_driver_output(plan, "=== emulation ===\n")

    def test_missing_bandwidth_report_raises(self):
        plan = _tiny_plan()
        raw = "--- flow u0 udp h0 > h1 via h0>r0>r1>h1 ---\ngarbage\n"
        with pytest.raises(ValueError, match="no iperf bandwidth report"):
            parse_driver_output(plan, raw)

    def test_missing_probe_section_raises(self):
        _, runner = _prepared(
            "fig11-latency-migration", horizon=10.0, warmup=2.0
        )
        plan = compile_plan(runner)
        with pytest.raises(ValueError, match="missing probe"):
            parse_driver_output(plan, "=== emulation ===\n")

    def test_udp_report_numbers_are_parsed_exactly(self):
        plan = _tiny_plan(protocol="udp")
        raw = (
            "--- flow u0 udp h0 > h1 via h0>r0>r1>h1 ---\n"
            "[  3]  0.0-10.0 sec  7.50 MBytes  6.000 Mbits/sec   "
            "0.012 ms  17/680 (2.50%)\n"
        )
        per_flow, latencies, drops = parse_driver_output(plan, raw)
        assert per_flow == {"u0": 6.0}
        assert drops == 17
        assert latencies == []


class TestEndToEnd:
    def test_run_is_deterministic_and_reconciles(self):
        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        first = ScenarioRunner(scenario, backend="emulation-mock").run()
        second = ScenarioRunner(scenario, backend="emulation-mock").run()
        assert first == second
        assert first.backend == "emulation-mock"
        assert first.placed + first.rejected == first.offered
        assert first.total_throughput_mbps > 0.0
        assert first.sim_events == 0  # nothing ran in-process

    def test_probe_latency_comes_from_ping_rtt(self):
        scenario = get_scenario("fig11-latency-migration").quick(
            horizon=10.0, warmup=2.0
        )
        result = ScenarioRunner(scenario, backend="emulation-mock").run()
        assert result.per_flow_mbps["ping1"] == 0.0
        assert result.mean_latency_ms > 0.0

    def test_rates_track_the_fluid_model(self):
        """Same placement + same max-min solver: the mock emulation's
        per-flow rates must land within rounding of the fluid backend
        (iperf text carries 3 decimals)."""
        scenario = get_scenario("line-link-flap").quick(
            horizon=6.0, warmup=2.0
        )
        fluid = ScenarioRunner(scenario, backend="fluid").run()
        emu = ScenarioRunner(scenario, backend="emulation-mock").run()
        for name, rate in fluid.per_flow_mbps.items():
            assert emu.per_flow_mbps[name] == pytest.approx(rate, abs=1e-3)

    def test_custom_driver_instance_is_honoured(self):
        class BrokenDriver:
            def run(self, plan):
                return "=== emulation: nothing to see ===\n"

        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        backend = EmulationBackend(driver=BrokenDriver())
        with pytest.raises(ValueError, match="missing flow"):
            ScenarioRunner(scenario, backend=backend).run()

    def test_backend_keeps_the_plan_and_raw_output(self):
        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        backend = EmulationBackend()
        ScenarioRunner(scenario, backend=backend).run()
        assert backend.plan is not None
        assert backend.raw_output.startswith("=== emulation scenario=")
