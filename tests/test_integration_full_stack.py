"""Cross-package integration: the whole reproduction wired together."""

import numpy as np
import pytest

from repro.core import SelfDrivingNetwork, fig12_capacities, global_p4_lab
from repro.datasets import generate_uq_wireless, load_csv
from repro.hecate import QoSPredictor, TimeSeriesQoSPredictor, HoltLinear, run_tournament
from repro.ml import Pipeline, StandardScaler, make_lag_matrix, make_regressor
from repro.topologies import TUNNEL1, TUNNEL2


class TestTournamentWinnerDrivesFramework:
    def test_selected_model_runs_the_loop(self):
        """The paper's pipeline end-to-end: tournament selects a model on
        a cheap subset, and that exact model class drives the framework's
        placement decision."""
        ds = generate_uq_wireless()
        tournament = run_tournament(ds, entrants=["R11", "R14", "R10"])
        best_id = tournament.best().paper_id

        def factory():
            return make_regressor(best_id)

        sdn = SelfDrivingNetwork(
            global_p4_lab(rates=fig12_capacities()), model_factory=factory
        )
        sdn.add_tunnel("T1", 1, TUNNEL1)
        sdn.add_tunnel("T2", 2, TUNNEL2)
        sdn.run(until=35.0)
        result = sdn.request_flow(flow_name="f", src="host1", dst="host2",
                                  protocol="tcp", tos=32, duration=5.0)
        assert result["controller"]["ok"]
        assert sdn.flow("f").tunnel == "T1"

    def test_dataset_csv_roundtrip_preserves_tournament(self, tmp_path):
        ds = generate_uq_wireless()
        path = tmp_path / "uq.csv"
        ds.to_csv(path)
        reloaded = load_csv(path)
        a = run_tournament(ds, entrants=["R11"]).entry("R11")
        b = run_tournament(reloaded, entrants=["R11"]).entry("R11")
        # CSV stores 6 decimals, so allow that quantization through the RMSE
        assert a.rmse_wifi == pytest.approx(b.rmse_wifi, abs=1e-5)


class TestForecasterInterchangeability:
    def test_lag_regression_and_smoothing_same_surface(self):
        """Hecate can swap its predictor family (future-work hook)."""
        series = 10.0 + 0.05 * np.arange(200)
        lag = QoSPredictor(make_regressor("R11"), n_lags=5).fit(series)
        smooth = TimeSeriesQoSPredictor(HoltLinear).fit(series)
        lag_f = lag.forecast(series, steps=10)
        smooth_f = smooth.forecast(series, steps=10)
        assert lag_f.shape == smooth_f.shape == (10,)
        # both extrapolate the trend within a Mbps of each other
        assert np.allclose(lag_f, smooth_f, atol=1.0)


class TestPipelineMatchesPaperProtocol:
    def test_pipeline_object_reproduces_manual_steps(self):
        ds = generate_uq_wireless()
        series = ds.lte
        train = series[:375]
        # manual protocol (what evaluate_pipeline does internally)
        scaler = StandardScaler().fit(train.reshape(-1, 1))
        scaled = scaler.transform(train.reshape(-1, 1)).ravel()
        X, y = make_lag_matrix(scaled, 10)
        manual = make_regressor("R14").fit(X, y).predict(X[:20])
        # Pipeline composition on pre-windowed data
        pipe = Pipeline([("model", make_regressor("R14"))]).fit(X, y)
        assert np.allclose(pipe.predict(X[:20]), manual)


class TestStressTopology:
    def test_framework_scales_to_wider_fanout(self):
        """Beyond Fig. 9: five parallel tunnels, five flows, one pass of
        the joint optimizer — no oscillation, capacity respected."""
        from repro.net import Network
        from repro.ml import LinearRegression

        net = Network()
        net.add_host("h1", ip="10.0.1.2")
        net.add_host("h2", ip="10.0.2.2")
        net.add_router("IN", edge=True)
        net.add_router("OUT", edge=True)
        rates = [25.0, 20.0, 15.0, 10.0, 5.0]
        for i, rate in enumerate(rates):
            net.add_router(f"M{i}")
            net.add_link("IN", f"M{i}", rate_mbps=rate, delay_ms=2.0)
            net.add_link(f"M{i}", "OUT", rate_mbps=rate, delay_ms=2.0)
        net.add_link("h1", "IN", rate_mbps=1000.0)
        net.add_link("OUT", "h2", rate_mbps=1000.0)
        net.build()

        sdn = SelfDrivingNetwork(net, model_factory=LinearRegression)
        for i in range(5):
            sdn.add_tunnel(f"P{i}", i + 1, ["IN", f"M{i}", "OUT"])
        sdn.run(until=35.0)
        for i in range(5):
            sdn.request_flow(flow_name=f"f{i}", src="h1", dst="h2",
                             protocol="tcp", tos=32 + i, duration=40.0)
        sdn.run(until=45.0)
        sdn.controller.reoptimize_now()
        sdn.run(until=75.0)
        tunnels = [sdn.flow(f"f{i}").tunnel for i in range(5)]
        assert len(set(tunnels)) == 5  # one flow per tunnel is optimal
        total = sum(
            sdn.flow(f"f{i}").app.goodput_mbps(55.0, 70.0) for i in range(5)
        )
        assert total > 0.75 * sum(rates)
