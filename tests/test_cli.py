"""CLI entry point (fast experiments only)."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "routeID" in out and "0b10000" in out

    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "two-path TE optimization" in capsys.readouterr().out

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        assert "indoor" in capsys.readouterr().out

    def test_fig9_runs(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "PolKA node IDs" in out and "config applied: True" in out

    def test_every_registered_experiment_has_description(self):
        for key, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)
