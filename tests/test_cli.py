"""CLI entry point (fast experiments only)."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "routeID" in out and "0b10000" in out

    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "two-path TE optimization" in capsys.readouterr().out

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        assert "indoor" in capsys.readouterr().out

    def test_fig9_runs(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "PolKA node IDs" in out and "config applied: True" in out

    def test_every_registered_experiment_has_description(self):
        for key, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)


class TestScenarioCli:
    def test_scenarios_list(self, capsys):
        from repro.scenarios import list_scenarios

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for scenario in list_scenarios():
            assert scenario.name in out
        assert "topology" in out and "traffic" in out

    def test_scenarios_run_fluid(self, capsys):
        assert main([
            "scenarios", "run", "ring-uniform",
            "--backend", "fluid", "--horizon", "8", "--warmup", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "ring-uniform" in out and "[fluid]" in out
        assert "throughput" in out

    def test_scenarios_run_des(self, capsys):
        assert main([
            "scenarios", "run", "p4lab-bursty-udp",
            "--horizon", "5", "--warmup", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "[des]" in out and "migrations" in out

    def test_scenarios_run_unknown_name(self, capsys):
        assert main(["scenarios", "run", "atlantis"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenarios_compare(self, capsys):
        assert main([
            "scenarios", "compare", "line-baseline",
            "--horizon", "5", "--warmup", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "des" in out and "fluid" in out
        assert "Mbps total" in out

    def test_scenarios_seed_override_is_reported(self, capsys):
        assert main([
            "scenarios", "run", "ring-uniform",
            "--backend", "fluid", "--seed", "5",
        ]) == 0
        assert "seed=5" in capsys.readouterr().out
