"""CLI entry point (fast experiments only)."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "routeID" in out and "0b10000" in out

    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "two-path TE optimization" in capsys.readouterr().out

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        assert "indoor" in capsys.readouterr().out

    def test_fig9_runs(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "PolKA node IDs" in out and "config applied: True" in out

    def test_every_registered_experiment_has_description(self):
        for _key, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)


class TestScenarioCli:
    def test_scenarios_list(self, capsys):
        from repro.scenarios import list_scenarios

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for scenario in list_scenarios():
            assert scenario.name in out
        assert "topology" in out and "traffic" in out

    def test_scenarios_run_fluid(self, capsys):
        assert main([
            "scenarios", "run", "ring-uniform",
            "--backend", "fluid", "--horizon", "8", "--warmup", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "ring-uniform" in out and "[fluid]" in out
        assert "throughput" in out

    def test_scenarios_run_des(self, capsys):
        assert main([
            "scenarios", "run", "p4lab-bursty-udp",
            "--horizon", "5", "--warmup", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "[des]" in out and "migrations" in out

    def test_scenarios_run_unknown_name(self, capsys):
        assert main(["scenarios", "run", "atlantis"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenarios_compare(self, capsys):
        assert main([
            "scenarios", "compare", "line-baseline",
            "--horizon", "5", "--warmup", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "des" in out and "fluid" in out
        assert "Mbps total" in out

    def test_scenarios_seed_override_is_reported(self, capsys):
        assert main([
            "scenarios", "run", "ring-uniform",
            "--backend", "fluid", "--seed", "5",
        ]) == 0
        assert "seed=5" in capsys.readouterr().out

    def test_scenarios_run_hybrid(self, capsys):
        assert main([
            "scenarios", "run", "wan-elephant-mice",
            "--backend", "hybrid", "--horizon", "5", "--warmup", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "[hybrid]" in out and "sim_events" in out

    def test_scenarios_run_profile(self, capsys, tmp_path):
        """--profile wraps the run in cProfile: same summary, plus the
        hot-loop / call-path tables and a loadable raw dump."""
        import pstats

        dump = tmp_path / "run.prof"
        assert main([
            "scenarios", "run", "line-baseline",
            "--backend", "fluid", "--horizon", "4", "--warmup", "1",
            "--profile", str(dump),
        ]) == 0
        out = capsys.readouterr().out
        assert "by internal time" in out and "by cumulative time" in out
        assert "line-baseline" in out and "throughput" in out
        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0

    def test_scenarios_run_profile_summary_only(self, capsys):
        # bare --profile prints the tables without writing a dump
        assert main([
            "scenarios", "run", "line-baseline",
            "--backend", "fluid", "--horizon", "4", "--warmup", "1",
            "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "by internal time" in out
        assert "raw profile written" not in out

    def test_scenarios_list_includes_scale_tier(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "scale-fat-tree-2k" in out and "scale_mix" in out

    def test_sweep_all_excludes_scale_tier(self, monkeypatch, tmp_path):
        """--all must not drag 2k-10k-flow scenarios into a sweep; they
        are named explicitly."""
        from repro.scenarios import list_scenarios
        from repro.sweep import SweepSpec

        class _Abort(Exception):
            pass

        names = []

        def spy(self):
            names.extend(self.scenarios)
            raise _Abort()

        monkeypatch.setattr(SweepSpec, "expand", spy)
        with pytest.raises(_Abort):
            main([
                "scenarios", "sweep", "--all",
                "--cache-dir", str(tmp_path),
            ])
        assert names == [
            s.name for s in list_scenarios(include_scale=False)
        ]
        assert names and not any(n.startswith("scale-") for n in names)


class TestSweepCli:
    GRID = [
        "scenarios", "sweep", "line-baseline", "ring-uniform",
        "--backend", "fluid", "--seeds", "0-2",
        "--horizon", "8", "--warmup", "2",
    ]

    def test_sweep_prints_aggregate_table(self, capsys, tmp_path):
        assert main(self.GRID + ["--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "line-baseline" in out and "ring-uniform" in out
        assert "Mbps mean" in out and "Mbps p95" in out

    def test_second_sweep_is_served_from_cache(self, capsys, tmp_path):
        args = self.GRID + ["--cache-dir", str(tmp_path), "--stats"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "6 cache hits" not in first
        assert main(args + ["--jobs", "2"]) == 0
        second = capsys.readouterr().out
        assert "6 cache hits (100.0%)" in second
        assert "0 executed" in second

    def test_sweep_jobs_do_not_change_the_json_artifact(self, tmp_path):
        for jobs, name in (("1", "a.json"), ("3", "b.json")):
            assert main(
                self.GRID
                + ["--cache-dir", str(tmp_path), "--jobs", jobs,
                   "--json", str(tmp_path / name)]
            ) == 0
        assert (tmp_path / "a.json").read_bytes() == \
            (tmp_path / "b.json").read_bytes()

    def test_sweep_writes_csv(self, capsys, tmp_path):
        out_csv = tmp_path / "agg.csv"
        assert main(
            self.GRID + ["--cache-dir", str(tmp_path), "--csv", str(out_csv)]
        ) == 0
        header = out_csv.read_text().splitlines()[0]
        assert header.startswith("scenario,backend,variant,n_seeds")

    def test_sweep_no_cache_leaves_no_artifacts(self, tmp_path):
        assert main(
            self.GRID + ["--cache-dir", str(tmp_path), "--no-cache"]
        ) == 0
        assert list(tmp_path.iterdir()) == []

    def test_sweep_policy_grid_shows_pairwise_table(self, capsys, tmp_path):
        assert main([
            "scenarios", "sweep", "line-baseline",
            "--backend", "fluid", "--horizon", "8", "--warmup", "2",
            "--policy", "k_paths=1", "--policy", "k_paths=2",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "k_paths=1" in out and "k_paths=2" in out
        assert "B - A" in out

    def test_sweep_rejects_bad_seeds(self, capsys, tmp_path):
        assert main([
            "scenarios", "sweep", "line-baseline",
            "--seeds", "zero", "--cache-dir", str(tmp_path),
        ]) == 2
        assert "bad seed spec" in capsys.readouterr().err

    def test_sweep_rejects_unknown_scenario(self, capsys, tmp_path):
        assert main([
            "scenarios", "sweep", "atlantis", "--cache-dir", str(tmp_path),
        ]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_compare_from_cache_errors_when_cold(self, capsys, tmp_path):
        assert main([
            "scenarios", "compare", "line-baseline",
            "--from-cache", "--cache-dir", str(tmp_path),
        ]) == 2
        assert "no artifact" in capsys.readouterr().err

    def test_compare_from_cache_serves_a_warm_sweep(self, capsys, tmp_path):
        assert main([
            "scenarios", "sweep", "line-baseline",
            "--backend", "des", "--backend", "fluid",
            "--horizon", "5", "--warmup", "1",
            "--cache-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "scenarios", "compare", "line-baseline",
            "--from-cache", "--cache-dir", str(tmp_path),
            "--horizon", "5", "--warmup", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "des" in out and "fluid" in out and "Mbps total" in out

    def test_sweep_rejects_bad_override_cleanly(self, capsys, tmp_path):
        assert main([
            "scenarios", "sweep", "line-baseline",
            "--horizon", "-5", "--cache-dir", str(tmp_path),
        ]) == 2
        err = capsys.readouterr().err
        assert "horizon must be positive" in err

    def test_sweep_rejects_unknown_policy_field_cleanly(self, capsys, tmp_path):
        assert main([
            "scenarios", "sweep", "line-baseline",
            "--backend", "fluid", "--policy", "bogus_field=1",
            "--cache-dir", str(tmp_path),
        ]) == 2
        assert "bogus_field" in capsys.readouterr().err

    def test_sweep_rejects_reversed_seed_range(self, capsys, tmp_path):
        assert main([
            "scenarios", "sweep", "line-baseline",
            "--seeds", "0,5-3", "--cache-dir", str(tmp_path),
        ]) == 2
        assert "empty seed range '5-3'" in capsys.readouterr().err

    def test_sweep_rejects_zero_jobs_as_usage_error(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([
                "scenarios", "sweep", "line-baseline",
                "--jobs", "0", "--cache-dir", str(tmp_path),
            ])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_compare_from_cache_tabulates_a_single_backend(
        self, capsys, tmp_path
    ):
        """A fluid-only sweep is a legitimate --from-cache source: the
        cached backend is tabulated and the absent one noted, not fatal."""
        assert main([
            "scenarios", "sweep", "line-baseline", "--backend", "fluid",
            "--horizon", "8", "--warmup", "2",
            "--cache-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "scenarios", "compare", "line-baseline",
            "--from-cache", "--cache-dir", str(tmp_path),
            "--horizon", "8", "--warmup", "2",
        ]) == 0
        captured = capsys.readouterr()
        assert "fluid" in captured.out
        assert "line-baseline[des] seed=0" in captured.err  # the note


class TestBackendsCli:
    def test_backends_list_shows_the_registry(self, capsys):
        from repro.backends import list_backends

        assert main(["backends", "list"]) == 0
        out = capsys.readouterr().out
        for caps in list_backends():
            assert caps.name in out
            assert caps.description in out
        assert "packet" in out and "external" in out

    def test_run_accepts_every_registered_backend_name(self):
        """--backend choices come from the registry, not a frozen tuple."""
        from repro.backends import backend_names
        from repro.cli import build_scenarios_parser

        parser = build_scenarios_parser()
        for name in backend_names():
            args = parser.parse_args(["run", "ring-uniform",
                                      "--backend", name])
            assert args.backend == name

    def test_run_emulation_mock_end_to_end(self, capsys):
        assert main([
            "scenarios", "run", "ring-uniform",
            "--backend", "emulation-mock",
            "--horizon", "6", "--warmup", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "[emulation-mock]" in out
        assert "throughput" in out

    def test_run_rejects_unregistered_backend_as_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["scenarios", "run", "ring-uniform", "--backend", "ns3"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestSweepExecutorCli:
    GRID = [
        "scenarios", "sweep", "line-baseline",
        "--backend", "fluid", "--seeds", "0-1",
        "--horizon", "6", "--warmup", "2",
    ]

    def test_work_queue_executor_runs_a_sweep(self, capsys, tmp_path):
        assert main(self.GRID + [
            "--cache-dir", str(tmp_path / "cache"),
            "--executor", "work-queue",
            "--queue-dir", str(tmp_path / "queue"),
        ]) == 0
        out = capsys.readouterr().out
        assert "line-baseline" in out
        assert (tmp_path / "queue" / "results").is_dir()

    def test_work_queue_without_queue_dir_is_a_user_error(
        self, capsys, tmp_path
    ):
        assert main(self.GRID + [
            "--cache-dir", str(tmp_path),
            "--executor", "work-queue",
        ]) == 2
        assert "--queue-dir" in capsys.readouterr().err

    def test_store_flag_writes_columnar_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "sweep-store.json"
        assert main(self.GRID + [
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(target),
        ]) == 0
        assert "columnar store written to" in capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["format"] == "repro-sweep-columnar"
        assert payload["rows"] == 2
        assert payload["columns"]["scenario"] == ["line-baseline"] * 2

    def test_serial_executor_matches_default_output(self, capsys, tmp_path):
        args = self.GRID + ["--no-cache", "--json", "-"]
        assert main(args) == 0
        default = capsys.readouterr().out
        assert main(args + ["--executor", "serial"]) == 0
        explicit = capsys.readouterr().out
        assert default == explicit


class TestServiceCli:
    RUN = [
        "service", "run", "ring-steady",
        "--rate", "30", "--duration", "4", "--warmup", "1", "--seed", "2",
    ]

    def test_service_list(self, capsys):
        from repro.scenarios import list_workloads

        assert main(["service", "list"]) == 0
        out = capsys.readouterr().out
        for workload in list_workloads():
            assert workload.name in out
        assert "fat-tree-churn" in out and "geo-diurnal" in out

    def test_service_run_prints_summary(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "ring-steady" in out and "seed=2" in out
        assert "admission" in out and "latency" in out
        assert "p99" in out

    def test_service_run_json_to_stdout_is_deterministic(self, capsys):
        import json

        assert main(self.RUN + ["--json", "-"]) == 0
        first = capsys.readouterr().out
        assert main(self.RUN + ["--json", "-"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["workload"] == "ring-steady"
        assert payload["rate"] == 30.0
        assert payload["admitted"] + payload["rejected"] + \
            payload["deferred_pending"] == payload["offered"]

    def test_service_run_json_to_file(self, capsys, tmp_path):
        import json

        target = tmp_path / "service.json"
        assert main(self.RUN + ["--json", str(target)]) == 0
        out = capsys.readouterr().out
        assert "admission" in out  # summary still printed
        payload = json.loads(target.read_text())
        assert payload["duration_s"] == 4.0

    def test_service_run_unknown_workload(self, capsys):
        assert main(["service", "run", "atlantis"]) == 2
        assert "unknown service workload" in capsys.readouterr().err


class TestObjectivesCli:
    def test_objectives_list_prints_the_registry(self, capsys):
        from repro.hecate.objectives import list_objectives

        assert main(["objectives", "list"]) == 0
        out = capsys.readouterr().out
        for spec in list_objectives():
            assert spec.name in out
            assert spec.description in out
        assert "app-aware" in out

    def test_objective_choices_come_from_the_registry(self, capsys):
        """A name argparse accepts must be a registered objective, and
        an unregistered one must be rejected at parse time."""
        from repro.hecate.objectives import objective_names

        with pytest.raises(SystemExit):
            main(["scenarios", "run", "qoe-mixed-steady",
                  "--objective", "max_everything"])
        err = capsys.readouterr().err
        for name in objective_names():
            assert name in err  # argparse lists the valid choices

    def test_scenarios_run_objective_override(self, capsys):
        assert main([
            "scenarios", "run", "qoe-mixed-steady",
            "--objective", "max_bandwidth",
            "--horizon", "6", "--warmup", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "qoe" in out and "mean MOS over 5 flows" in out

    def test_service_run_objective_override(self, capsys):
        assert main([
            "service", "run", "ring-steady",
            "--rate", "30", "--duration", "4", "--warmup", "1",
            "--objective", "min_latency",
        ]) == 0
        assert "admission" in capsys.readouterr().out

    def test_sweep_objective_adds_a_policy_axis(self, capsys):
        assert main([
            "scenarios", "sweep", "qoe-mixed-steady",
            "--backend", "fluid", "--objective", "max_qoe",
            "--horizon", "6", "--warmup", "2", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "objective=max_qoe" in out

    def test_policy_parse_error_names_the_objectives(self, capsys):
        assert main([
            "scenarios", "sweep", "qoe-mixed-steady",
            "--policy", "objective", "--no-cache",
        ]) == 2
        err = capsys.readouterr().err
        assert "repro objectives list" in err and "max_qoe" in err

    def test_policy_rejects_unknown_objective_before_any_run(self, capsys):
        # must fail fast at parse time (like --objective's choices=),
        # not run a sweep whose every placement silently fails
        assert main([
            "scenarios", "sweep", "qoe-mixed-steady",
            "--policy", "objective=bogus", "--no-cache",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown objective 'bogus'" in err
        assert "repro objectives list" in err and "max_qoe" in err
