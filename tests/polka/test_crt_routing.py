"""CRT, PolkaDomain, multipath and failover tests — including the paper's
Fig. 1 worked example, reproduced bit-for-bit."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polka import (
    FailoverTable,
    MultipathDomain,
    PolkaDomain,
    PolkaNode,
    assign_node_ids,
    crt,
    gf2,
    pairwise_coprime,
    verify_crt,
)


class TestCrt:
    def test_fig1_route_id_is_10000(self):
        """Paper Fig. 1: s1=t+1, s2=t^2+t+1, s3=t^3+t+1 with ports
        o1=1, o2=t, o3=t^2+t combine to routeID 10000 (binary)."""
        residues = [0b1, 0b10, 0b110]
        moduli = [0b11, 0b111, 0b1011]
        route_id, big = crt(residues, moduli)
        assert route_id == 0b10000
        assert big == gf2.mul(gf2.mul(0b11, 0b111), 0b1011)
        assert verify_crt(route_id, residues, moduli)

    def test_single_modulus(self):
        x, m = crt([0b10], [0b111])
        assert x == 0b10 and m == 0b111

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crt([1], [0b11, 0b111])

    def test_empty(self):
        with pytest.raises(ValueError):
            crt([], [])

    def test_residue_too_large(self):
        with pytest.raises(ValueError):
            crt([0b111], [0b11])

    def test_constant_modulus_rejected(self):
        with pytest.raises(ValueError):
            crt([0], [1])

    def test_non_coprime_moduli_rejected(self):
        with pytest.raises(ValueError):
            crt([0b1, 0b1], [0b111, 0b111])

    def test_pairwise_coprime_helper(self):
        assert pairwise_coprime([0b11, 0b111, 0b1011])
        assert not pairwise_coprime([0b111, 0b111])

    @given(st.integers(min_value=2, max_value=6), st.data())
    @settings(max_examples=60)
    def test_crt_solution_satisfies_all_congruences(self, n, data):
        moduli = gf2.first_irreducibles(n, min_degree=2)
        residues = [
            data.draw(st.integers(min_value=0, max_value=(1 << gf2.deg(m)) - 1))
            for m in moduli
        ]
        x, big = crt(residues, moduli)
        assert verify_crt(x, residues, moduli)
        assert gf2.deg(x) < gf2.deg(big)


LINE3 = {
    # Fig. 1 topology: edge -> s1 -> s2 -> s3 -> edge, plus unused ports so
    # the port numbers match the paper's polynomials.
    "s1": {"s2": 1, "edge_in": 0},
    "s2": {"s3": 2, "s1": 1, "x2": 0},
    "s3": {"edge_out": 6, "s2": 1, "x3": 0},
}
FIG1_IDS = {"s1": 0b11, "s2": 0b111, "s3": 0b1011}


class TestPolkaNode:
    def test_rejects_reducible_id(self):
        with pytest.raises(ValueError):
            PolkaNode(name="bad", node_id=0b110, ports={})

    def test_rejects_port_wider_than_id(self):
        with pytest.raises(ValueError):
            PolkaNode(name="s1", node_id=0b11, ports={"n": 2})

    def test_port_lookup(self):
        node = PolkaNode(name="s2", node_id=0b111, ports={"s3": 2})
        assert node.port_to("s3") == 2
        with pytest.raises(KeyError):
            node.port_to("nowhere")

    def test_forward_is_mod(self):
        node = PolkaNode(name="s2", node_id=0b111, ports={"s3": 2})
        assert node.forward(0b10000) == 2


class TestPolkaDomain:
    def test_fig1_route_compiles_to_10000(self):
        domain = PolkaDomain(LINE3, node_ids=FIG1_IDS)
        route = domain.route_for_path(["s1", "s2", "s3", "edge_out"])
        assert route.route_id == 0b10000
        assert route.moduli == (0b11, 0b111, 0b1011)

    def test_fig1_walk_reproduces_ports(self):
        domain = PolkaDomain(LINE3, node_ids=FIG1_IDS)
        route = domain.route_for_path(["s1", "s2", "s3", "edge_out"])
        assert domain.walk(route) == [("s1", 1), ("s2", 2), ("s3", 6)]

    def test_auto_node_ids_are_coprime_and_wide_enough(self):
        domain = PolkaDomain(LINE3)
        ids = [n.node_id for n in domain.nodes.values()]
        assert pairwise_coprime(ids)
        for node in domain.nodes.values():
            if node.ports:
                assert (1 << gf2.deg(node.node_id)) > max(node.ports.values())

    def test_short_path_rejected(self):
        domain = PolkaDomain(LINE3, node_ids=FIG1_IDS)
        with pytest.raises(ValueError):
            domain.route_for_path(["s1"])

    def test_unknown_hop_rejected(self):
        domain = PolkaDomain(LINE3, node_ids=FIG1_IDS)
        with pytest.raises(KeyError):
            domain.route_for_path(["s1", "ghost"])

    def test_non_coprime_ids_rejected(self):
        with pytest.raises(ValueError):
            PolkaDomain(LINE3, node_ids={"s1": 0b111, "s2": 0b111, "s3": 0b1011})

    def test_header_bits(self):
        domain = PolkaDomain(LINE3, node_ids=FIG1_IDS)
        route = domain.route_for_path(["s1", "s2", "s3", "edge_out"])
        assert route.header_bits == 5  # 0b10000

    def test_route_len(self):
        domain = PolkaDomain(LINE3, node_ids=FIG1_IDS)
        assert len(domain.route_for_path(["s1", "s2", "s3", "edge_out"])) == 4


class TestPortSwitchingBaseline:
    def test_pop_per_hop_and_rewrite_count(self):
        domain = PolkaDomain(LINE3, node_ids=FIG1_IDS)
        psr = domain.port_switching_route(["s1", "s2", "s3", "edge_out"])
        assert psr.ports == [1, 2, 6]
        assert [psr.forward() for _ in range(3)] == [1, 2, 6]
        assert psr.rewrites == 3  # one header rewrite per hop
        with pytest.raises(IndexError):
            psr.forward()

    def test_polka_header_never_rewritten(self):
        domain = PolkaDomain(LINE3, node_ids=FIG1_IDS)
        route = domain.route_for_path(["s1", "s2", "s3", "edge_out"])
        before = route.route_id
        domain.walk(route)
        assert route.route_id == before


def grid_adjacency(n=4):
    """n x n grid with deterministic port numbering."""
    g = nx.grid_2d_graph(n, n)
    g = nx.relabel_nodes(g, {node: f"n{node[0]}_{node[1]}" for node in g})
    adj = {}
    for node in g:
        adj[node] = {nbr: i for i, nbr in enumerate(sorted(g.neighbors(node)))}
    return g, adj


class TestRandomTopologies:
    @given(st.integers(min_value=0, max_value=999))
    @settings(max_examples=25, deadline=None)
    def test_any_simple_path_walks_correctly(self, seed):
        import numpy as np

        g, adj = grid_adjacency(4)
        domain = PolkaDomain(adj)
        rng = np.random.default_rng(seed)
        nodes = sorted(g)
        src, dst = rng.choice(nodes, size=2, replace=False)
        path = nx.shortest_path(g, src, dst)
        if len(path) < 2:
            return
        route = domain.route_for_path(path)
        decisions = domain.walk(route)  # raises on divergence
        assert len(decisions) == len(path) - 1


class TestMultipath:
    def test_tree_forwarding(self):
        adj = {
            "a": {"b": 0, "c": 1},
            "b": {"d": 0},
            "c": {"d": 0},
        }
        dom = MultipathDomain(adj)
        route = dom.route_for_tree({"a": ["b", "c"], "b": ["d"], "c": ["d"]})
        assert dom.forward("a", route) == {"b", "c"}
        assert dom.forward("b", route) == {"d"}
        assert dom.forward("c", route) == {"d"}

    def test_single_path_degenerates_to_unicast(self):
        adj = {"a": {"b": 0}, "b": {"c": 0}}
        dom = MultipathDomain(adj)
        route = dom.route_for_tree({"a": ["b"], "b": ["c"]})
        assert dom.forward("a", route) == {"b"}

    def test_unknown_successor(self):
        dom = MultipathDomain({"a": {"b": 0}})
        with pytest.raises(KeyError):
            dom.route_for_tree({"a": ["zz"]})

    def test_empty_tree(self):
        dom = MultipathDomain({"a": {"b": 0}})
        with pytest.raises(ValueError):
            dom.route_for_tree({})


class TestFailover:
    def _domain(self):
        g, adj = grid_adjacency(3)
        return PolkaDomain(adj), g

    def test_active_defaults_to_shortest(self):
        domain, g = self._domain()
        table = FailoverTable(domain, g, k=3)
        route = table.active("n0_0", "n2_2")
        assert len(route.path) == 5  # manhattan distance 4 -> 5 nodes

    def test_recover_avoids_failed_link(self):
        domain, g = self._domain()
        table = FailoverTable(domain, g, k=8)
        first = table.active("n0_0", "n0_2")
        failed = (first.path[0], first.path[1])
        route = table.recover("n0_0", "n0_2", failed_links=[failed])
        assert frozenset(failed) not in {
            frozenset(e) for e in zip(route.path[:-1], route.path[1:])
        }
        assert table.history and table.history[-1].pair == ("n0_0", "n0_2")

    def test_recover_avoids_failed_node(self):
        domain, g = self._domain()
        table = FailoverTable(domain, g, k=8)
        first = table.active("n0_0", "n2_2")
        middle = first.path[len(first.path) // 2]
        route = table.recover("n0_0", "n2_2", failed_nodes=[middle])
        assert middle not in route.path

    def test_recover_exhausted_raises(self):
        domain, g = self._domain()
        table = FailoverTable(domain, g, k=1)
        first = table.active("n0_0", "n0_1")
        with pytest.raises(nx.NetworkXNoPath):
            # kill every precomputed option (k=1 -> only the direct path)
            table.recover("n0_0", "n0_1", failed_links=[(first.path[0], first.path[1])])

    def test_migrate_records_event_and_compiles_new_path(self):
        domain, g = self._domain()
        table = FailoverTable(domain, g, k=1)
        table.active("n0_0", "n0_2")
        detour = ["n0_0", "n1_0", "n1_1", "n1_2", "n0_2"]
        route = table.migrate("n0_0", "n0_2", detour, reason="test")
        assert route.path == tuple(detour)
        assert table.active("n0_0", "n0_2").path == tuple(detour)
        assert table.history[-1].reason == "test"

    def test_k_validation(self):
        domain, g = self._domain()
        with pytest.raises(ValueError):
            FailoverTable(domain, g, k=0)


class TestAssignNodeIds:
    def test_degree_respects_max_port(self):
        ids = assign_node_ids(["a", "b", "c"], max_port=6)
        for p in ids.values():
            assert (1 << gf2.deg(p)) > 6

    def test_negative_max_port(self):
        with pytest.raises(ValueError):
            assign_node_ids(["a"], max_port=-1)

    def test_distinct(self):
        ids = assign_node_ids([f"n{i}" for i in range(25)], max_port=3)
        assert len(set(ids.values())) == 25
