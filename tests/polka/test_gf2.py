"""Unit and property tests for GF(2)[t] arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.polka import gf2

polys = st.integers(min_value=0, max_value=(1 << 64) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 64) - 1)
small_polys = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestDegree:
    def test_zero_has_degree_minus_one(self):
        assert gf2.deg(0) == -1

    def test_constant_one(self):
        assert gf2.deg(1) == 0

    def test_t(self):
        assert gf2.deg(0b10) == 1

    def test_large(self):
        assert gf2.deg(1 << 100) == 100


class TestAdd:
    def test_add_is_xor(self):
        assert gf2.add(0b101, 0b011) == 0b110

    def test_self_inverse(self):
        assert gf2.add(0b1101, 0b1101) == 0

    @given(polys, polys)
    def test_commutative(self, a, b):
        assert gf2.add(a, b) == gf2.add(b, a)

    @given(polys, polys, polys)
    def test_associative(self, a, b, c):
        assert gf2.add(gf2.add(a, b), c) == gf2.add(a, gf2.add(b, c))


class TestMul:
    def test_times_zero(self):
        assert gf2.mul(0b1011, 0) == 0

    def test_times_one(self):
        assert gf2.mul(0b1011, 1) == 0b1011

    def test_t_times_t(self):
        assert gf2.mul(0b10, 0b10) == 0b100  # t*t = t^2

    def test_known_product(self):
        # (t+1)(t+1) = t^2 + 1 in GF(2) (cross terms cancel)
        assert gf2.mul(0b11, 0b11) == 0b101

    def test_paper_figure1_product(self):
        # (t^2+t+1)(t^2+t) = t^4 + t, used in the Fig. 1 forwarding example
        assert gf2.mul(0b111, 0b110) == 0b10010

    @given(polys, polys)
    def test_commutative(self, a, b):
        assert gf2.mul(a, b) == gf2.mul(b, a)

    @given(small_polys, small_polys, small_polys)
    def test_associative(self, a, b, c):
        assert gf2.mul(gf2.mul(a, b), c) == gf2.mul(a, gf2.mul(b, c))

    @given(small_polys, small_polys, small_polys)
    def test_distributes_over_add(self, a, b, c):
        lhs = gf2.mul(a, gf2.add(b, c))
        rhs = gf2.add(gf2.mul(a, b), gf2.mul(a, c))
        assert lhs == rhs

    @given(nonzero_polys, nonzero_polys)
    def test_degree_adds(self, a, b):
        assert gf2.deg(gf2.mul(a, b)) == gf2.deg(a) + gf2.deg(b)


class TestDivMod:
    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf2.divmod_(0b101, 0)
        with pytest.raises(ZeroDivisionError):
            gf2.mod(0b101, 0)

    def test_exact_division(self):
        q, r = gf2.divmod_(gf2.mul(0b111, 0b1011), 0b111)
        assert (q, r) == (0b1011, 0)

    def test_paper_figure1_mod(self):
        # routeID 10000 mod s2 = t^2+t+1 gives remainder t -> port 2
        assert gf2.mod(0b10000, 0b111) == 0b10

    def test_paper_figure1_mod_s1(self):
        # 10000 mod (t+1) = 1 -> port 1
        assert gf2.mod(0b10000, 0b11) == 0b1

    def test_paper_figure1_mod_s3(self):
        # 10000 mod (t^3+t+1) = t^2+t -> port 6
        assert gf2.mod(0b10000, 0b1011) == 0b110

    @given(polys, nonzero_polys)
    def test_reconstruction(self, a, b):
        q, r = gf2.divmod_(a, b)
        assert gf2.add(gf2.mul(q, b), r) == a
        assert gf2.deg(r) < gf2.deg(b)

    @given(polys, nonzero_polys)
    def test_mod_agrees_with_divmod(self, a, b):
        assert gf2.mod(a, b) == gf2.divmod_(a, b)[1]


class TestGcdInverse:
    @given(polys, polys)
    def test_gcd_divides_both(self, a, b):
        g = gf2.gcd(a, b)
        if g:
            assert gf2.mod(a, g) == 0
            assert gf2.mod(b, g) == 0

    @given(polys, nonzero_polys)
    def test_egcd_bezout(self, a, b):
        g, x, y = gf2.egcd(a, b)
        assert gf2.add(gf2.mul(a, x), gf2.mul(b, y)) == g

    def test_modinv_roundtrip(self):
        m = 0b10011  # t^4+t+1, irreducible
        for a in range(1, 16):
            inv = gf2.modinv(a, m)
            assert gf2.mulmod(a, inv, m) == 1

    def test_modinv_noncoprime_raises(self):
        with pytest.raises(ValueError):
            gf2.modinv(0b110, 0b10)  # both divisible by t


class TestPowmod:
    def test_zero_exponent(self):
        assert gf2.powmod(0b101, 0, 0b111) == 1

    @given(small_polys, st.integers(min_value=0, max_value=64), nonzero_polys)
    def test_matches_repeated_multiplication(self, a, e, m):
        expected = gf2.mod(1, m)
        for _ in range(min(e, 16)):
            expected = gf2.mulmod(expected, a, m)
        if e <= 16:
            assert gf2.powmod(a, e, m) == expected


class TestIrreducibility:
    def test_known_irreducibles(self):
        # degrees 1..4: the classical tables
        for p in [0b10, 0b11, 0b111, 0b1011, 0b1101, 0b10011, 0b11001, 0b11111]:
            assert gf2.is_irreducible(p), bin(p)

    def test_known_reducibles(self):
        assert not gf2.is_irreducible(0b101)  # t^2+1 = (t+1)^2
        assert not gf2.is_irreducible(0b110)  # t(t+1)
        assert not gf2.is_irreducible(0b1111)  # (t+1)(t^2+t+1)
        assert not gf2.is_irreducible(1)
        assert not gf2.is_irreducible(0)

    def test_counts_match_theory(self):
        # number of monic irreducibles over GF(2): deg 2 -> 1, 3 -> 2,
        # 4 -> 3, 5 -> 6, 6 -> 9 (necklace counting)
        counts = {2: 1, 3: 2, 4: 3, 5: 6, 6: 9}
        for degree, expected in counts.items():
            assert sum(1 for _ in gf2.irreducibles(degree)) == expected

    @given(st.integers(min_value=2, max_value=10))
    def test_products_are_reducible(self, degree):
        ps = list(gf2.irreducibles(degree))
        assert not gf2.is_irreducible(gf2.mul(ps[0], ps[0]))

    def test_first_irreducibles_are_distinct_and_sorted_by_degree(self):
        polys = gf2.first_irreducibles(20, min_degree=2)
        assert len(set(polys)) == 20
        degrees = [gf2.deg(p) for p in polys]
        assert degrees == sorted(degrees)
        assert min(degrees) >= 2


class TestStrRoundtrip:
    def test_render(self):
        assert gf2.poly_to_str(0b1011) == "t^3 + t + 1"
        assert gf2.poly_to_str(0b10) == "t"
        assert gf2.poly_to_str(1) == "1"
        assert gf2.poly_to_str(0) == "0"

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            gf2.poly_from_str("t^2 + q")

    @given(polys)
    def test_roundtrip(self, p):
        assert gf2.poly_from_str(gf2.poly_to_str(p)) == p


class TestRandomPoly:
    def test_exact_degree(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for degree in [0, 1, 5, 31]:
            p = gf2.random_poly(rng, degree)
            assert gf2.deg(p) == degree
