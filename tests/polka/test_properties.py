"""Deeper property-based tests of the PolKA substrate."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polka import MultipathDomain, PolkaDomain, gf2, pairwise_coprime


class TestFieldProperties:
    """GF(2)[t]/(p) is a field when p is irreducible — verify the axioms
    our forwarding correctness silently depends on."""

    @given(st.sampled_from([0b111, 0b1011, 0b10011, 0b100101]))
    def test_every_nonzero_residue_invertible(self, modulus):
        size = 1 << gf2.deg(modulus)
        for a in range(1, size):
            inv = gf2.modinv(a, modulus)
            assert gf2.mulmod(a, inv, modulus) == 1

    @given(
        st.sampled_from([0b111, 0b1011, 0b10011]),
        st.integers(min_value=1, max_value=31),
    )
    def test_fermat_little_theorem(self, modulus, a):
        """a^(2^n - 1) = 1 for nonzero a in GF(2^n)."""
        n = gf2.deg(modulus)
        a = gf2.mod(a, modulus)
        if a == 0:
            return
        assert gf2.powmod(a, (1 << n) - 1, modulus) == 1

    @given(st.integers(min_value=2, max_value=8))
    def test_distinct_irreducibles_always_coprime(self, degree):
        polys = gf2.first_irreducibles(6, min_degree=degree)
        assert pairwise_coprime(polys)


def random_connected_graph(seed: int, n: int = 10):
    rng = np.random.default_rng(seed)
    g = nx.Graph()
    names = [f"r{i}" for i in range(n)]
    g.add_nodes_from(names)
    order = rng.permutation(n)
    for i in range(1, n):
        g.add_edge(names[order[i]], names[order[int(rng.integers(0, i))]])
    for _ in range(n // 2):
        a, b = rng.choice(names, size=2, replace=False)
        g.add_edge(a, b)
    adjacency = {
        node: {nbr: i for i, nbr in enumerate(sorted(g.neighbors(node)))}
        for node in g
    }
    return g, adjacency


class TestRoutingProperties:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_compile_then_walk_is_identity(self, seed):
        """For any simple path on any topology, the compiled routeID
        walks back exactly the intended hops."""
        g, adjacency = random_connected_graph(seed)
        domain = PolkaDomain(adjacency)
        rng = np.random.default_rng(seed)
        nodes = sorted(g)
        src, dst = rng.choice(nodes, size=2, replace=False)
        paths = list(nx.all_simple_paths(g, src, dst, cutoff=6))
        if not paths:
            return
        path = paths[int(rng.integers(0, len(paths)))]
        route = domain.route_for_path(path)
        decisions = domain.walk(route)  # raises on divergence
        assert [n for n, _ in decisions] == list(path[:-1])

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_distinct_paths_get_distinct_route_ids(self, seed):
        g, adjacency = random_connected_graph(seed)
        domain = PolkaDomain(adjacency)
        nodes = sorted(g)
        src, dst = nodes[0], nodes[-1]
        paths = list(nx.all_simple_paths(g, src, dst, cutoff=5))
        if len(paths) < 2:
            return
        ids = {domain.route_for_path(p).route_id for p in paths[:8]}
        # routeIDs over distinct node sets collide only if both reduce to
        # identical residues at every shared node; with distinct next hops
        # at the source this cannot happen
        distinct_first_hops = {p[1] for p in paths[:8]}
        if len(distinct_first_hops) > 1:
            assert len(ids) > 1

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_multipath_tree_covers_all_branches(self, seed):
        g, adjacency = random_connected_graph(seed)
        dom = MultipathDomain(adjacency)
        nodes = sorted(g)
        root = nodes[0]
        neighbours = sorted(g.neighbors(root))
        if len(neighbours) < 2:
            return
        branches = neighbours[:2]
        route = dom.route_for_tree({root: branches})
        assert dom.forward(root, route) == set(branches)


class TestHeaderScaling:
    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_route_id_bounded_by_modulus_product(self, length):
        adjacency = {}
        names = [f"n{i}" for i in range(length + 1)]
        for i, name in enumerate(names):
            ports = {}
            if i > 0:
                ports[names[i - 1]] = 0
            if i < length:
                ports[names[i + 1]] = 1
            adjacency[name] = ports
        domain = PolkaDomain(adjacency)
        route = domain.route_for_path(names)
        bound = sum(gf2.deg(m) for m in route.moduli)
        assert route.header_bits <= bound + 1
