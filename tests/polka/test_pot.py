"""Proof-of-Transit (PoT-PolKA extension, paper ref. [18])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polka import PolkaDomain, PotAuthority
from repro.topologies import fig1_line


@pytest.fixture
def setup():
    adjacency, node_ids = fig1_line()
    domain = PolkaDomain(adjacency, node_ids=node_ids)
    authority = PotAuthority(domain, seed=1)
    route = domain.route_for_path(["s1", "s2", "s3", "edge_out"])
    return domain, authority, route


class TestHonestPath:
    def test_compliant_walk_verifies(self, setup):
        _, authority, route = setup
        proof, ok = authority.walk_with_proof(route, nonce=12345)
        assert ok
        assert proof.tag == authority.expected_tag(route.path, 12345)

    def test_different_nonces_give_different_tags(self, setup):
        _, authority, route = setup
        p1, _ = authority.walk_with_proof(route, nonce=1)
        p2, _ = authority.walk_with_proof(route, nonce=7)
        assert p1.tag != p2.tag

    @given(st.integers(min_value=1, max_value=2**30 - 1))
    @settings(max_examples=50)
    def test_any_nonce_verifies_on_compliant_path(self, nonce):
        adjacency, node_ids = fig1_line()
        domain = PolkaDomain(adjacency, node_ids=node_ids)
        authority = PotAuthority(domain, seed=2)
        route = domain.route_for_path(["s1", "s2", "s3", "edge_out"])
        _, ok = authority.walk_with_proof(route, nonce=nonce)
        assert ok


class TestMisbehaviour:
    def test_skipped_node_detected(self, setup):
        _, authority, route = setup
        _, ok = authority.walk_with_proof(route, nonce=999, skip=["s2"])
        assert not ok

    def test_extra_node_detected(self, setup):
        _, authority, route = setup
        _, ok = authority.walk_with_proof(route, nonce=999, extra=["s2"])
        assert not ok  # s2 stamped twice -> marks cancel -> mismatch

    def test_skip_all_detected(self, setup):
        """Skipping every node yields tag 0; detection requires a nonce
        whose expected tag is non-zero (Fig. 1's rings are tiny, so some
        nonces legitimately have an all-cancelling expected tag)."""
        _, authority, route = setup
        nonce = next(
            n for n in range(1, 64)
            if authority.expected_tag(route.path, n) != 0
        )
        _, ok = authority.walk_with_proof(
            route, nonce=nonce, skip=["s1", "s2", "s3"]
        )
        assert not ok

    def test_forged_tag_rarely_verifies(self, setup):
        _, authority, route = setup
        rng = np.random.default_rng(0)
        hits = 0
        trials = 200
        for _ in range(trials):
            proof = authority.new_proof(int(rng.integers(1, 2**20)))
            proof.tag = int(rng.integers(0, 2**6))  # blind forgery
            if authority.verify(route, proof):
                hits += 1
        assert hits <= 10  # ~2^-deg per mark; far below chance of passing


class TestAuthorityMechanics:
    def test_secrets_fit_node_degree(self, setup):
        domain, authority, _ = setup
        from repro.polka import gf2

        for name, node in domain.nodes.items():
            assert 1 <= authority.secrets[name] < (1 << gf2.deg(node.node_id))

    def test_nonce_validation(self, setup):
        _, authority, _ = setup
        with pytest.raises(ValueError):
            authority.new_proof(0)

    def test_rng_nonce_generation(self, setup):
        _, authority, _ = setup
        proof = authority.new_proof(np.random.default_rng(3))
        assert proof.nonce >= 1

    def test_deterministic_secrets_per_seed(self):
        adjacency, node_ids = fig1_line()
        domain = PolkaDomain(adjacency, node_ids=node_ids)
        a = PotAuthority(domain, seed=5).secrets
        b = PotAuthority(domain, seed=5).secrets
        assert a == b
