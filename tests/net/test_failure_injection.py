"""Failure injection: link down/up, FIB reconvergence, PolKA failover."""

import pytest

from repro.net import Network, Packet, PingApp, TcpFlow
from repro.polka import FailoverTable
from repro.topologies import global_p4_lab


def diamond():
    net = Network()
    net.add_host("h1", ip="10.0.1.1")
    net.add_host("h2", ip="10.0.2.1")
    for r in "ABCD":
        net.add_router(r, edge=(r in "AD"))
    net.add_link("h1", "A")
    net.add_link("D", "h2")
    net.add_link("A", "B", delay_ms=1)
    net.add_link("B", "D", delay_ms=1)
    net.add_link("A", "C", delay_ms=10)
    net.add_link("C", "D", delay_ms=10)
    return net.build()


class TestLinkFailure:
    def test_failed_link_black_holes(self):
        net = diamond()
        net.fail_link("A", "B")
        # inject a PolKA packet pinned to the dead path: it must vanish
        route = net.polka.route_for_path(["A", "B", "D"])
        pkt = Packet(src="h1", dst="h2", size=100, flow_id=5,
                     route_id=route.route_id, tunnel_egress="D")
        net.routers["A"].inject(pkt)
        net.run(until=1.0)
        assert net.hosts["h2"].received_bytes(5) == 0
        stats = net.link("A", "B").stats_from(net.routers["A"])
        assert stats.dropped_packets == 1

    def test_fib_reconverges_around_failure(self):
        net = diamond()
        ping = PingApp(net.hosts["h1"], net.hosts["h2"], interval=1.0, count=3).start(0.1)
        net.run(until=4.0)
        _, fast = ping.rtt_series()
        net.fail_link("A", "B")  # the fast path dies
        ping2 = PingApp(net.hosts["h1"], net.hosts["h2"], interval=1.0, count=3).start(0.1)
        net.run(until=9.0)
        _, slow = ping2.rtt_series()
        assert len(slow) == 3  # still reachable via C
        assert slow.mean() > fast.mean() + 15.0  # 2*(10+10) vs 2*(1+1)

    def test_restore_link_reverts_paths(self):
        net = diamond()
        net.fail_link("A", "B")
        net.restore_link("A", "B")
        ping = PingApp(net.hosts["h1"], net.hosts["h2"], interval=1.0, count=2).start(0.1)
        net.run(until=3.0)
        _, rtts = ping.rtt_series()
        assert rtts.mean() < 10.0  # back on the fast path

    def test_tcp_survives_midstream_failover(self):
        net = diamond()
        flow = TcpFlow(net.hosts["h1"], net.hosts["h2"], duration=20.0).start()
        net.run(until=8.0)
        net.fail_link("A", "B")
        net.run(until=25.0)
        # retransmissions recover onto the surviving path
        assert flow.retransmits > 0
        assert flow.goodput_mbps(10.0, 20.0) > 1.0

    def test_unknown_link_failure_raises(self):
        net = diamond()
        with pytest.raises(KeyError):
            net.fail_link("A", "D")


class TestPolkaFailoverOnEmulator:
    def test_edge_resteers_after_core_link_failure(self):
        """The PolKA answer to failures: the edge stamps a new routeID
        from the precomputed alternatives; the core stays untouched."""
        net = global_p4_lab()
        router_graph = net.graph.subgraph(net.routers).copy()
        table = FailoverTable(net.polka, router_graph, k=3)
        primary = table.active("MIA", "AMS")
        assert primary.path == ("MIA", "CHI", "AMS") or len(primary.path) == 3
        failed = (primary.path[0], primary.path[1])
        net.fail_link(*failed)
        backup = table.recover("MIA", "AMS", failed_links=[failed])
        # steer traffic over the backup routeID and verify delivery
        pkt = Packet(src="host1", dst="host2", size=200, flow_id=9,
                     route_id=backup.route_id, tunnel_egress="AMS")
        net.routers["MIA"].inject(pkt)
        net.run(until=1.0)
        assert net.hosts["host2"].received_bytes(9) == 200
        assert table.history[-1].pair == ("MIA", "AMS")
