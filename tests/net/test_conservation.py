"""Conservation invariants of the emulator.

Bytes are never created: everything a sender transmits is either
delivered, dropped at a queue, dropped by a router (TTL/no-route), or
still in flight when the simulation stops.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Packet, UdpFlow
from repro.topologies import random_wan


def totals(net):
    delivered = sum(h.received_bytes() for h in net.hosts.values())
    q_dropped = sum(
        link.stats_from(node).dropped_bytes
        for link in net.links.values()
        for node in link.endpoints()
    )
    r_dropped_pkts = sum(
        r.stats.dropped_ttl + r.stats.dropped_no_route
        for r in net.routers.values()
    )
    return delivered, q_dropped, r_dropped_pkts


class TestConservation:
    @given(
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=1.0, max_value=40.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_udp_bytes_conserved_on_random_wans(self, seed, rate):
        net = random_wan(n_routers=6, extra_edges=4, seed=seed)
        flow = UdpFlow(
            net.hosts["h0a"], net.hosts["h0b"], rate_mbps=rate, duration=3.0,
            packet_size=1000,
        ).start()
        net.run(until=10.0)  # long enough to drain everything in flight
        sent = flow.sent_packets * 1000
        delivered, q_dropped, r_dropped = totals(net)
        # ICMP/none here: every sent byte is delivered or queue-dropped
        assert delivered + q_dropped == sent
        assert r_dropped == 0

    def test_ttl_drops_accounted(self):
        net = random_wan(n_routers=5, extra_edges=3, seed=3)
        for _ in range(10):
            net.hosts["h0a"].send_packet(
                Packet(src="h0a", dst="h0b", size=500, flow_id=1, ttl=1)
            )
        net.run(until=2.0)
        _, _, r_dropped = totals(net)
        assert r_dropped == 10
        assert net.hosts["h0b"].received_bytes(1) == 0

    def test_queue_peak_monotone_under_load(self):
        net = random_wan(n_routers=4, extra_edges=2, seed=5)
        UdpFlow(net.hosts["h0a"], net.hosts["h0b"], rate_mbps=500.0,
                duration=2.0).start()
        net.run(until=4.0)
        peaks = [
            link.stats_from(node).queue_peak
            for link in net.links.values()
            for node in link.endpoints()
        ]
        assert max(peaks) > 0

    def test_no_unclaimed_deliveries_with_registered_flows(self):
        net = random_wan(n_routers=5, extra_edges=3, seed=7)
        flow = UdpFlow(net.hosts["h0a"], net.hosts["h0b"], rate_mbps=5.0,
                       duration=2.0).start()
        net.run(until=5.0)
        assert net.hosts["h0b"].received_unclaimed == 0
        assert flow.received_bytes > 0


class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        def run():
            net = random_wan(n_routers=6, extra_edges=4, seed=11)
            flow = UdpFlow(net.hosts["h0a"], net.hosts["h0b"],
                           rate_mbps=20.0, duration=3.0).start()
            net.run(until=6.0)
            return (
                flow.received_bytes,
                net.sim.events_processed,
                tuple(sorted(
                    (f"{min(a,b)}-{max(a,b)}",
                     link.stats_from(net.node(a)).tx_bytes)
                    for (a, b), link in (
                        (tuple(sorted(k)), v) for k, v in net.links.items()
                    )
                )),
            )

        assert run() == run()
