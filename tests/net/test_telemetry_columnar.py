"""The columnar TimeSeriesDB against a reference list-based store.

The store rebuild (growable column groups, searchsorted windows,
zero-copy tails, cursors) must be *invisible* through the read API: this
file pins value-identity against the seed-era list-of-tuples
implementation across interleaved writes and reads — including
out-of-order timestamps, which force the store off its bisection fast
path — plus the contracts the rebuild added (column groups, cursors,
views).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.telemetry import TimeSeriesDB


class ReferenceTimeSeriesDB:
    """The seed implementation: metric -> append-only list of (t, v),
    re-materialised on every read.  Kept as the executable spec the
    columnar store must match (with the inclusive-window fix applied to
    both sides)."""

    def __init__(self):
        self._data = {}

    def insert(self, metric, t, value):
        self._data.setdefault(metric, []).append((float(t), float(value)))

    def insert_many(self, metric, ts, values):
        rows = self._data.setdefault(metric, [])
        for t, v in zip(ts, values):
            rows.append((float(t), float(v)))

    def series(self, metric):
        rows = self._data.get(metric, [])
        if not rows:
            return np.array([]), np.array([])
        arr = np.asarray(rows)
        return arr[:, 0], arr[:, 1]

    def window(self, metric, t0, t1, include_end=True):
        t, v = self.series(metric)
        if t.size == 0:
            return t, v
        mask = (t >= t0) & ((t <= t1) if include_end else (t < t1))
        return t[mask], v[mask]

    def window_since(self, metric, cursor):
        rows = self._data.get(metric, [])
        start = min(max(int(cursor), 0), len(rows))
        tail = rows[start:]
        if not tail:
            return np.array([]), np.array([]), len(rows)
        arr = np.asarray(tail)
        return arr[:, 0], arr[:, 1], len(rows)

    def last(self, metric, n=1):
        rows = self._data.get(metric, [])
        if not rows or n <= 0:
            return np.array([])
        return np.asarray([v for _, v in rows[-n:]])

    def latest(self, metric, default=0.0):
        rows = self._data.get(metric)
        return rows[-1][1] if rows else default

    def count(self, metric):
        return len(self._data.get(metric, ()))


METRICS = ("a", "b", "c")

_op = st.one_of(
    st.tuples(
        st.just("insert"),
        st.sampled_from(METRICS),
        st.floats(-1.0, 4.0),  # time delta; negatives go out of order
        st.floats(-1e6, 1e6),
    ),
    st.tuples(
        st.just("insert_many"),
        st.sampled_from(METRICS),
        st.lists(
            st.tuples(st.floats(-1.0, 4.0), st.floats(-1e6, 1e6)),
            max_size=8,
        ),
    ),
    st.tuples(
        st.just("window"),
        st.sampled_from(METRICS),
        st.floats(-5.0, 40.0),
        st.floats(-5.0, 40.0),
        st.booleans(),
    ),
    st.tuples(st.just("window_since"), st.sampled_from(METRICS)),
    st.tuples(
        st.just("last"), st.sampled_from(METRICS), st.integers(1, 12)
    ),
    st.tuples(st.just("latest"), st.sampled_from(METRICS)),
    st.tuples(st.just("series"), st.sampled_from(METRICS)),
)


class TestValueIdentityWithReference:
    @given(st.lists(_op, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_interleaved_ops_match_reference(self, ops):
        """Every read returns exactly what the list-based store returns,
        for any interleaving of writes and reads (monotone or not)."""
        columnar, reference = TimeSeriesDB(), ReferenceTimeSeriesDB()
        clock = {m: 0.0 for m in METRICS}
        cursors = {m: 0 for m in METRICS}
        for op in ops:
            kind, metric = op[0], op[1]
            if kind == "insert":
                clock[metric] += op[2]
                columnar.insert(metric, clock[metric], op[3])
                reference.insert(metric, clock[metric], op[3])
            elif kind == "insert_many":
                ts, vs = [], []
                for dt, value in op[2]:
                    clock[metric] += dt
                    ts.append(clock[metric])
                    vs.append(value)
                columnar.insert_many(metric, ts, vs)
                reference.insert_many(metric, ts, vs)
            elif kind == "window":
                t0, t1 = min(op[2], op[3]), max(op[2], op[3])
                got = columnar.window(metric, t0, t1, include_end=op[4])
                want = reference.window(metric, t0, t1, include_end=op[4])
                assert np.array_equal(got[0], want[0])
                assert np.array_equal(got[1], want[1])
            elif kind == "window_since":
                got = columnar.window_since(metric, cursors[metric])
                want = reference.window_since(metric, cursors[metric])
                assert np.array_equal(got[0], want[0])
                assert np.array_equal(got[1], want[1])
                assert got[2] == want[2]
                cursors[metric] = got[2]
            elif kind == "last":
                assert np.array_equal(
                    columnar.last(metric, op[2]), reference.last(metric, op[2])
                )
            elif kind == "latest":
                assert columnar.latest(metric) == reference.latest(metric)
            else:  # series
                got, want = columnar.series(metric), reference.series(metric)
                assert np.array_equal(got[0], want[0])
                assert np.array_equal(got[1], want[1])
        for metric in METRICS:
            assert columnar.count(metric) == reference.count(metric)


class TestCursors:
    def test_window_since_returns_only_new_samples(self):
        db = TimeSeriesDB()
        db.insert("m", 0.0, 1.0)
        db.insert("m", 1.0, 2.0)
        t, v, cursor = db.window_since("m", 0)
        assert np.array_equal(v, [1.0, 2.0]) and cursor == 2
        t, v, cursor = db.window_since("m", cursor)
        assert v.size == 0 and cursor == 2  # unchanged -> empty increment
        db.insert("m", 2.0, 3.0)
        t, v, cursor = db.window_since("m", cursor)
        assert np.array_equal(t, [2.0]) and np.array_equal(v, [3.0])
        assert cursor == 3

    def test_unknown_metric_resets_cursor(self):
        t, v, cursor = TimeSeriesDB().window_since("nope", 7)
        assert t.size == 0 and v.size == 0 and cursor == 0

    def test_cursor_clamped_to_bounds(self):
        db = TimeSeriesDB()
        db.insert("m", 0.0, 1.0)
        _, v, cursor = db.window_since("m", 99)
        assert v.size == 0 and cursor == 1
        _, v, cursor = db.window_since("m", -3)
        assert np.array_equal(v, [1.0]) and cursor == 1


class TestColumnGroups:
    def test_row_append_lands_in_every_metric(self):
        db = TimeSeriesDB()
        group = db.column_group(["x", "y", "z"])
        group.append(1.0, [10.0, 20.0, 30.0])
        group.append(2.0, [11.0, 21.0, 31.0])
        for name, expect in (("x", [10.0, 11.0]), ("y", [20.0, 21.0]),
                             ("z", [30.0, 31.0])):
            t, v = db.series(name)
            assert np.array_equal(t, [1.0, 2.0])
            assert np.array_equal(v, expect)

    def test_short_row_rejected_not_broadcast(self):
        """numpy would happily broadcast one value across every column;
        the group must reject the width mismatch instead of silently
        duplicating telemetry."""
        db = TimeSeriesDB()
        group = db.column_group(["x", "y", "z"])
        with pytest.raises(ValueError, match="3 metrics"):
            group.append(0.0, [5.0])
        with pytest.raises(ValueError, match="3 metrics"):
            group.append(0.0, [1.0, 2.0, 3.0, 4.0])
        assert db.count("x") == 0  # nothing landed

    def test_group_is_reusable_but_overlap_rejected(self):
        db = TimeSeriesDB()
        group = db.column_group(["x", "y"])
        assert db.column_group(["x", "y"]) is group  # restart path
        with pytest.raises(ValueError, match="already registered"):
            db.column_group(["y", "w"])

    def test_individual_insert_into_grouped_metric_rejected(self):
        db = TimeSeriesDB()
        db.column_group(["x", "y"])
        with pytest.raises(ValueError, match="column group"):
            db.insert("x", 0.0, 1.0)

    def test_growth_preserves_history(self):
        db = TimeSeriesDB()
        group = db.column_group(["x", "y"])
        for i in range(5000):  # forces several capacity doublings
            group.append(float(i), [float(i), float(-i)])
        t, v = db.series("y")
        assert t.size == 5000
        assert v[0] == 0.0 and v[-1] == -4999.0
        assert np.array_equal(t, np.arange(5000.0))


class TestZeroCopyReads:
    def test_last_is_a_view_not_a_copy(self):
        """The satellite fix: ``last(n)`` must slice the tail, not
        materialise the series."""
        db = TimeSeriesDB()
        for i in range(100):
            db.insert("m", float(i), float(i))
        tail = db.last("m", 5)
        _, full = db.series("m")
        assert np.array_equal(tail, [95.0, 96.0, 97.0, 98.0, 99.0])
        assert np.shares_memory(tail, full)

    def test_views_are_read_only(self):
        db = TimeSeriesDB()
        db.insert("m", 0.0, 1.0)
        _, v = db.series("m")
        with pytest.raises(ValueError):
            v[0] = 99.0

    def test_last_nonpositive_n_is_empty(self):
        db = TimeSeriesDB()
        db.insert("m", 0.0, 1.0)
        assert db.last("m", 0).size == 0
        assert db.last("m", -1).size == 0

    def test_view_taken_before_growth_stays_valid(self):
        db = TimeSeriesDB()
        db.insert("m", 0.0, 42.0)
        _, before = db.series("m")
        for i in range(10000):
            db.insert("m", float(i + 1), 0.0)
        assert before.size == 1 and before[0] == 42.0  # stable snapshot


class TestInsertMany:
    def test_bulk_matches_loop(self):
        bulk, loop = TimeSeriesDB(), TimeSeriesDB()
        ts = np.arange(100.0)
        vs = np.sin(ts)
        bulk.insert_many("m", ts, vs)
        for t, v in zip(ts, vs):
            loop.insert("m", t, v)
        for db in (bulk, loop):
            t, v = db.series("m")
            assert np.array_equal(t, ts) and np.array_equal(v, vs)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            TimeSeriesDB().insert_many("m", [0.0, 1.0], [1.0])

    def test_out_of_order_bulk_still_windows_correctly(self):
        db = TimeSeriesDB()
        db.insert_many("m", [5.0, 1.0, 3.0], [50.0, 10.0, 30.0])
        t, v = db.window("m", 1.0, 3.0)
        assert np.array_equal(t, [1.0, 3.0])  # insertion order preserved
        assert np.array_equal(v, [10.0, 30.0])
