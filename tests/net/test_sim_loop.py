"""Event-loop hardening: heap ordering, cancellation, budgets, batches.

The scale tier leans on the simulator loop much harder than the paper
scenarios did, so its contract is pinned down here explicitly: FIFO tie
breaking at equal timestamps, lazy cancelled-event skipping, exact
``until``/``max_events`` boundary semantics (a saturated run must raise,
never silently truncate), and coalesced batch events.
"""

import pytest

from repro.net import EventBudgetExceeded, Simulator


class TestHeapOrdering:
    def test_equal_timestamps_run_fifo(self):
        sim = Simulator()
        log = []
        for i in range(50):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == list(range(50))

    def test_equal_timestamps_interleaved_with_earlier_events(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("tie-a"))
        sim.schedule(1.0, lambda: log.append("early"))
        sim.schedule(2.0, lambda: log.append("tie-b"))
        sim.schedule(0.5, lambda: log.append("earliest"))
        sim.run()
        assert log == ["earliest", "early", "tie-a", "tie-b"]

    def test_events_scheduled_at_now_run_after_current(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(0.0, lambda: log.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        # the nested 0-delay event lands after already-queued ties
        assert log == ["first", "second", "nested"]


class TestCancellation:
    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, lambda: fired.append("keep"))
        drop = sim.schedule(1.0, lambda: fired.append("drop"))
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert keep.cancelled is False

    def test_cancelled_events_do_not_count_against_the_budget(self):
        sim = Simulator()
        for _ in range(20):
            sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run(max_events=1)  # 20 cancelled + 1 live within budget 1
        assert sim.events_processed == 1

    def test_peek_time_purges_cancelled_heads(self):
        sim = Simulator()
        early = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        early.cancel()
        assert sim.peek_time() == 2.0
        assert sim.pending_events() == 1


class TestRunBoundaries:
    def test_until_is_inclusive_of_events_at_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("at"))
        sim.schedule(3.0001, lambda: fired.append("past"))
        sim.run(until=3.0)
        assert fired == ["at"]
        assert sim.now == 3.0

    def test_exactly_max_events_completes(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=10)  # budget == workload: no raise
        assert sim.events_processed == 10

    def test_budget_plus_one_raises_before_processing(self):
        sim = Simulator()
        fired = []
        for i in range(11):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        with pytest.raises(EventBudgetExceeded) as excinfo:
            sim.run(max_events=10)
        # the budget-breaking 11th event must NOT have run
        assert fired == list(range(10))
        assert excinfo.value.max_events == 10
        assert excinfo.value.now == 9.0

    def test_budget_error_names_the_horizon(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: sim.schedule(0.1, lambda: None))
        sim.schedule(0.05, lambda: None)
        with pytest.raises(EventBudgetExceeded, match="t=42"):
            sim.run(until=42.0, max_events=1)

    def test_truncate_mode_warns_and_marks(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        with pytest.warns(RuntimeWarning, match="truncated"):
            sim.run(max_events=3, on_budget="truncate")
        assert sim.truncated is True
        assert sim.events_processed == 3
        sim.run()  # the remaining events are still queued, not lost
        assert sim.events_processed == 5

    def test_unknown_on_budget_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="on_budget"):
            sim.run(on_budget="ignore")

    def test_budget_is_per_call_not_per_lifetime(self):
        sim = Simulator()
        for i in range(6):
            sim.schedule(float(i), lambda: None)
        sim.run(until=2.0, max_events=3)
        sim.run(max_events=3)  # fresh budget for the second call
        assert sim.events_processed == 6


class TestScheduleBatch:
    def test_batch_runs_callbacks_in_order_as_one_event(self):
        sim = Simulator()
        log = []
        sim.schedule_batch(
            1.0, [lambda i=i: log.append(i) for i in range(10)]
        )
        sim.run()
        assert log == list(range(10))
        assert sim.events_processed == 1  # coalesced: one heap entry

    def test_batch_cancellation_cancels_all(self):
        sim = Simulator()
        log = []
        event = sim.schedule_batch(1.0, [lambda: log.append(1)] * 3)
        event.cancel()
        sim.run()
        assert log == []

    def test_batch_interleaves_with_plain_events_by_time(self):
        sim = Simulator()
        log = []
        sim.schedule(0.5, lambda: log.append("before"))
        sim.schedule_batch(1.0, [lambda: log.append("b1"),
                                 lambda: log.append("b2")])
        sim.schedule(1.5, lambda: log.append("after"))
        sim.run()
        assert log == ["before", "b1", "b2", "after"]

    def test_batch_scheduled_out_of_time_order_fires_in_time_order(self):
        # regression: a batch landing *earlier* than already-queued far
        # events must not inherit the far bucket's promotion window —
        # the calendar has to re-partition around the new minimum
        sim = Simulator()
        log = []
        sim.schedule(50.0, lambda: log.append("late"))
        sim.schedule_batch(2.0, [lambda: log.append("batch")])
        sim.schedule(1.0, lambda: log.append("early"))
        sim.run()
        assert log == ["early", "batch", "late"]


class TestCalendarQueueEquivalence:
    """The two-tier calendar must be indistinguishable from one global
    heap with a ``(time, sequence)`` tie-break.  The reference order is
    therefore a *stable sort by time* over the issue sequence — computed
    independently here, not by another Simulator."""

    def _reference_order(self, entries):
        # entries: (issue_seq, time, key, cancelled); stable sort == the
        # (time, seq) heap contract
        live = [e for e in entries if not e[3]]
        return [key for _, _, key, _ in sorted(live, key=lambda e: e[1])]

    def test_100k_schedule_cancel_batch_round_trip(self):
        import random

        rng = random.Random(1234)
        sim = Simulator(near_window=0.5)
        log = []
        entries = []  # (issue_seq, time, key, cancelled)
        handles = []
        seq = 0
        n = 100_000
        while seq < n:
            # times span ~40 near windows, with heavy duplication so
            # FIFO tie-breaking is exercised at scale, plus exact
            # window-boundary hits (k * near_window)
            roll = rng.random()
            if roll < 0.05:
                time = 0.5 * rng.randrange(0, 40)  # exactly on boundary
            else:
                time = rng.uniform(0.0, 20.0)
                if roll < 0.30:
                    time = round(time, 1)  # duplicate-rich
            if roll < 0.10 and seq + 3 < n:
                keys = [f"b{seq}.{j}" for j in range(3)]
                event = sim.schedule_batch(
                    time, [lambda k=k: log.append(k) for k in keys]
                )
                entries.append((seq, time, keys, False))
                handles.append((len(entries) - 1, event))
                seq += 3
            else:
                key = f"e{seq}"
                event = sim.schedule(time, lambda k=key: log.append(k))
                entries.append((seq, time, [key], False))
                handles.append((len(entries) - 1, event))
                seq += 1
        # cancel ~5% after the fact, spread across the whole horizon
        for idx, event in handles:
            if rng.random() < 0.05:
                event.cancel()
                entry = entries[idx]
                entries[idx] = (entry[0], entry[1], entry[2], True)
        sim.run()
        expected = [
            key
            for keys in self._reference_order(
                [(s, t, ks, c) for s, t, ks, c in entries]
            )
            for key in keys
        ]
        assert log == expected

    def test_nested_scheduling_across_the_window_boundary(self):
        # a callback running in window [0, 0.5) schedules into the far
        # future and into its own window; both must fire in time order
        sim = Simulator(near_window=0.5)
        log = []

        def burst():
            log.append("t0.1")
            sim.schedule(5.0, lambda: log.append("far"))
            sim.schedule(0.1, lambda: log.append("near"))

        sim.schedule(0.1, burst)
        sim.schedule(3.0, lambda: log.append("mid"))
        sim.run()
        assert log == ["t0.1", "near", "mid", "far"]

    def test_event_exactly_at_near_end_goes_to_far(self):
        # the near heap holds strictly-less-than _near_end; an event at
        # the boundary must still fire, and in the right order
        sim = Simulator(near_window=1.0)
        log = []
        sim.schedule(1.0, lambda: log.append("boundary"))
        sim.schedule(0.999, lambda: log.append("inside"))
        sim.schedule(1.001, lambda: log.append("outside"))
        sim.run()
        assert log == ["inside", "boundary", "outside"]
