"""Telemetry sampling and the fluid max-min model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    FluidFlow,
    LinkTelemetryCollector,
    Network,
    PathTelemetryProbe,
    TimeSeriesDB,
    UdpFlow,
    max_min_fair,
    total_throughput,
)


def loaded_line():
    net = Network()
    net.add_host("h1", ip="1.0.0.1")
    net.add_host("h2", ip="1.0.0.2")
    net.add_router("r1", edge=True)
    net.add_router("r2", edge=True)
    net.add_link("h1", "r1", rate_mbps=100)
    net.add_link("r1", "r2", rate_mbps=10.0, delay_ms=2.0)
    net.add_link("r2", "h2", rate_mbps=100)
    return net.build()


class TestTimeSeriesDB:
    def test_insert_and_series(self):
        db = TimeSeriesDB()
        db.insert("m", 1.0, 5.0)
        db.insert("m", 2.0, 7.0)
        t, v = db.series("m")
        assert np.array_equal(t, [1.0, 2.0])
        assert np.array_equal(v, [5.0, 7.0])

    def test_window_includes_end_sample(self):
        """The upper bound is inclusive: a reader asking for history "up
        to now" must not lose a sample stamped exactly now (probe and
        reader fire at the same simulated instant)."""
        db = TimeSeriesDB()
        for i in range(10):
            db.insert("m", float(i), float(i * i))
        t, v = db.window("m", 3.0, 6.0)
        assert np.array_equal(t, [3.0, 4.0, 5.0, 6.0])
        assert np.array_equal(v, [9.0, 16.0, 25.0, 36.0])

    def test_window_half_open_opt_out(self):
        db = TimeSeriesDB()
        for i in range(10):
            db.insert("m", float(i), float(i * i))
        t, _ = db.window("m", 3.0, 6.0, include_end=False)
        assert np.array_equal(t, [3.0, 4.0, 5.0])

    def test_missing_metric_empty(self):
        t, v = TimeSeriesDB().series("nope")
        assert t.size == 0 and v.size == 0

    def test_last_n(self):
        db = TimeSeriesDB()
        for i in range(5):
            db.insert("m", float(i), float(i))
        assert np.array_equal(db.last("m", 2), [3.0, 4.0])

    def test_metrics_sorted(self):
        db = TimeSeriesDB()
        db.insert("b", 0, 0)
        db.insert("a", 0, 0)
        assert db.metrics() == ["a", "b"]


class TestLinkTelemetry:
    def test_idle_links_report_zero(self):
        net = loaded_line()
        db = TimeSeriesDB()
        LinkTelemetryCollector(net, db, interval=1.0).start()
        net.run(until=5.0)
        _, util = db.series("link:r1->r2:util")
        assert util.size >= 4
        assert np.allclose(util, 0.0)

    def test_loaded_link_utilization_near_one(self):
        net = loaded_line()
        db = TimeSeriesDB()
        LinkTelemetryCollector(net, db, interval=1.0).start()
        UdpFlow(net.hosts["h1"], net.hosts["h2"], rate_mbps=20.0, duration=10.0).start()
        net.run(until=10.0)
        _, util = db.series("link:r1->r2:util")
        assert util[3:].mean() > 0.9

    def test_drops_recorded_when_overdriven(self):
        net = loaded_line()
        db = TimeSeriesDB()
        LinkTelemetryCollector(net, db, interval=1.0).start()
        UdpFlow(net.hosts["h1"], net.hosts["h2"], rate_mbps=50.0, duration=5.0).start()
        net.run(until=6.0)
        _, drops = db.series("link:r1->r2:drops")
        assert drops.sum() > 0

    def test_interval_validation(self):
        net = loaded_line()
        with pytest.raises(ValueError):
            LinkTelemetryCollector(net, TimeSeriesDB(), interval=0.0)

    def test_zero_rate_link_samples_stay_finite(self):
        """A failed/zeroed link must not blow up the sampling pass:
        the unguarded ``mbps / rate_mbps`` raised ZeroDivisionError the
        moment any link's rate hit zero.  Utilization of a direction
        with no usable rate is 0.0 by definition."""
        net = loaded_line()
        net.link("r1", "r2").rate_mbps = 0.0
        db = TimeSeriesDB()
        LinkTelemetryCollector(net, db, interval=1.0).start()
        net.run(until=5.0)
        _, util = db.series("link:r1->r2:util")
        assert util.size >= 4
        assert np.all(np.isfinite(util))
        assert np.allclose(util, 0.0)
        # the mbps series still reports (zero) carried load, finitely
        _, mbps = db.series("link:r1->r2:mbps")
        assert np.all(np.isfinite(mbps))

    def test_runtime_rate_change_tracked_live(self):
        """``Network.set_link_rate`` is a runtime impairment: util must
        be computed against the rate at sample time, not a value
        captured when sampling started."""
        net = loaded_line()
        db = TimeSeriesDB()
        LinkTelemetryCollector(net, db, interval=1.0).start()
        UdpFlow(net.hosts["h1"], net.hosts["h2"], rate_mbps=5.0,
                duration=10.0).start()
        net.run(until=4.0)
        net.set_link_rate("r1", "r2", 5.0)  # throttle 10 -> 5 mid-run
        net.run(until=9.0)
        _, util = db.series("link:r1->r2:util")
        assert util[3] == pytest.approx(0.5, abs=0.1)  # ~5 of 10 Mbps
        assert util[-1] == pytest.approx(1.0, abs=0.15)  # ~5 of 5 Mbps

    def test_no_link_network_samples_nothing(self):
        net = Network()
        net.add_host("h1", ip="1.0.0.1")
        net.build()
        db = TimeSeriesDB()
        LinkTelemetryCollector(net, db, interval=1.0).start()
        net.run(until=3.0)
        assert len(db) == 0  # no links -> no series, and no crash

    def test_util_may_exceed_one_with_background_load(self):
        """Documented contract: ``util`` reports *offered* load against
        the configured rate.  Folded-in fluid background (hybrid
        backend) can push it past 1.0 — consumers must not assume a
        0..1 range."""
        net = loaded_line()
        link = net.link("r1", "r2")
        link.set_background_from(net.node("r1"), 15.0)  # rate is 10
        db = TimeSeriesDB()
        LinkTelemetryCollector(net, db, interval=1.0).start()
        net.run(until=3.0)
        _, util = db.series("link:r1->r2:util")
        assert util.size >= 2
        assert np.all(util[1:] > 1.0)
        assert np.all(np.isfinite(util))

    def test_stop_halts_sampling(self):
        net = loaded_line()
        db = TimeSeriesDB()
        coll = LinkTelemetryCollector(net, db, interval=1.0).start()
        net.run(until=3.0)
        coll.stop()
        net.run(until=10.0)
        t, _ = db.series("link:r1->r2:util")
        assert t.max() <= 3.0


class TestPathProbe:
    def test_available_bandwidth_tracks_load(self):
        net = loaded_line()
        db = TimeSeriesDB()
        probe = PathTelemetryProbe(net, db, "P1", ["r1", "r2"], interval=1.0).start()
        UdpFlow(net.hosts["h1"], net.hosts["h2"], rate_mbps=6.0, duration=10.0).start(at=3.0)
        net.run(until=12.0)
        _, avail = db.series("path:P1:available_mbps")
        assert avail[1] == pytest.approx(10.0, abs=0.5)  # idle at t<3
        assert avail[-2] == pytest.approx(4.0, abs=1.0)  # 10 - 6 under load

    def test_latency_includes_propagation(self):
        net = loaded_line()
        db = TimeSeriesDB()
        PathTelemetryProbe(net, db, "P1", ["r1", "r2"], interval=1.0).start()
        net.run(until=3.0)
        _, lat = db.series("path:P1:latency_ms")
        assert np.all(lat >= 2.0)

    def test_path_validation(self):
        net = loaded_line()
        with pytest.raises(ValueError):
            PathTelemetryProbe(net, TimeSeriesDB(), "P", ["r1"])
        with pytest.raises(ValueError):
            PathTelemetryProbe(net, TimeSeriesDB(), "P", ["r1", "r2"], interval=0)

    def test_zero_rate_hop_samples_stay_finite(self):
        """The probe shares the collector's rate guard: a dead hop means
        zero headroom and zero utilization, never inf/NaN or a crash."""
        net = loaded_line()
        net.link("r1", "r2").rate_mbps = 0.0
        db = TimeSeriesDB()
        PathTelemetryProbe(net, db, "P1", ["r1", "r2"], interval=1.0).start()
        net.run(until=4.0)
        _, avail = db.series("path:P1:available_mbps")
        _, util = db.series("path:P1:util")
        _, lat = db.series("path:P1:latency_ms")
        assert avail.size >= 3
        for values in (avail, util, lat):
            assert np.all(np.isfinite(values))
        assert np.allclose(avail, 0.0)  # no usable rate -> no headroom
        assert np.allclose(util, 0.0)


class TestFluidModel:
    def test_single_flow_gets_bottleneck(self):
        flows = [FluidFlow.from_path("f", ["a", "b", "c"])]
        caps = {("a", "b"): 20.0, ("b", "c"): 10.0}
        rates = max_min_fair(flows, caps)
        assert rates["f"] == pytest.approx(10.0)

    def test_equal_share_on_shared_bottleneck(self):
        flows = [FluidFlow.from_path(f"f{i}", ["a", "b"]) for i in range(4)]
        rates = max_min_fair(flows, {("a", "b"): 20.0})
        assert all(r == pytest.approx(5.0) for r in rates.values())

    def test_max_min_protects_short_flows(self):
        # f1 crosses both links; f2 only the second. max-min gives f2 the
        # slack that f1 cannot use.
        flows = [
            FluidFlow.from_path("f1", ["a", "b", "c"]),
            FluidFlow.from_path("f2", ["b", "c"]),
        ]
        caps = {("a", "b"): 5.0, ("b", "c"): 20.0}
        rates = max_min_fair(flows, caps)
        assert rates["f1"] == pytest.approx(5.0)
        assert rates["f2"] == pytest.approx(15.0)

    def test_paper_fig12_allocation(self):
        """The Fig. 12 scenario in fluid form: after the optimizer spreads
        the three flows over three tunnels the aggregate roughly triples
        the per-tunnel fair share."""
        caps = {
            ("MIA", "SAO"): 20.0, ("SAO", "AMS"): 20.0,
            ("MIA", "CHI"): 10.0, ("CHI", "AMS"): 20.0,
            ("MIA", "CAL"): 5.0, ("CAL", "CHI"): 5.0,
        }
        t1 = ["MIA", "SAO", "AMS"]
        t2 = ["MIA", "CHI", "AMS"]
        t3 = ["MIA", "CAL", "CHI", "AMS"]
        before = max_min_fair(
            [FluidFlow.from_path(f"f{i}", t1) for i in range(3)], caps
        )
        after = max_min_fair(
            [
                FluidFlow.from_path("f0", t1),
                FluidFlow.from_path("f1", t2),
                FluidFlow.from_path("f2", t3),
            ],
            caps,
        )
        assert total_throughput(before) == pytest.approx(20.0)
        assert total_throughput(after) == pytest.approx(35.0)

    def test_direction_insensitive_capacity_lookup(self):
        flows = [FluidFlow.from_path("f", ["b", "a"])]
        rates = max_min_fair(flows, {("a", "b"): 7.0})
        assert rates["f"] == pytest.approx(7.0)

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError):
            max_min_fair([FluidFlow.from_path("f", ["x", "y"])], {})

    def test_duplicate_flow_name_raises(self):
        flows = [
            FluidFlow.from_path("f", ["a", "b"]),
            FluidFlow.from_path("f", ["a", "b"]),
        ]
        with pytest.raises(ValueError):
            max_min_fair(flows, {("a", "b"): 1.0})

    def test_short_path_raises(self):
        with pytest.raises(ValueError):
            FluidFlow.from_path("f", ["a"])

    @given(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=30)
    def test_aggregate_never_exceeds_capacity(self, n_flows, cap):
        flows = [FluidFlow.from_path(f"f{i}", ["a", "b"]) for i in range(n_flows)]
        rates = max_min_fair(flows, {("a", "b"): cap})
        assert total_throughput(rates) <= cap + 1e-9
        # and max-min on a single bottleneck is exactly fair
        values = list(rates.values())
        assert max(values) - min(values) < 1e-9
