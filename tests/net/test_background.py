"""Background-load term: links, telemetry, epoch schedules, UDP trains."""

import pytest

from repro.net import (
    BackgroundEpoch,
    LinkTelemetryCollector,
    Network,
    TimeSeriesDB,
    UdpFlow,
    apply_background,
    install_background_schedule,
)


def two_hosts(rate=10.0):
    net = Network()
    net.add_host("a", ip="1.1.1.1")
    net.add_host("b", ip="1.1.1.2")
    net.add_link("a", "b", rate_mbps=rate, delay_ms=1.0, queue_packets=50)
    net.build()
    return net


class TestLinkBackground:
    def test_background_slows_effective_serialization(self):
        net = two_hosts(rate=10.0)
        link = net.link("a", "b")
        node = net.node("a")
        assert link.background_from(node) == 0.0
        link.set_background_from(node, 6.0)
        assert link.background_from(node) == 6.0
        # direction b->a is independent
        assert link.background_from(net.node("b")) == 0.0
        direction = link._direction_from(node)
        assert direction.effective_rate_mbps() == pytest.approx(4.0)

    def test_background_is_floored_not_stalling(self):
        net = two_hosts(rate=10.0)
        link = net.link("a", "b")
        node = net.node("a")
        link.set_background_from(node, 1e9)  # absurd oversubscription
        direction = link._direction_from(node)
        assert direction.effective_rate_mbps() == pytest.approx(0.1)

    def test_negative_background_rejected(self):
        net = two_hosts()
        with pytest.raises(ValueError, match=">= 0"):
            net.link("a", "b").set_background_from(net.node("a"), -1.0)

    def test_background_stretches_packet_delivery(self):
        loaded = two_hosts(rate=10.0)
        clear = two_hosts(rate=10.0)
        loaded.link("a", "b").set_background_from(loaded.node("a"), 5.0)
        for net in (loaded, clear):
            UdpFlow(
                net.hosts["a"], net.hosts["b"], rate_mbps=8.0, duration=2.0
            ).start()
            net.run(4.0)
        assert (
            loaded.link("a", "b").stats_from(loaded.node("a")).tx_bytes
            <= clear.link("a", "b").stats_from(clear.node("a")).tx_bytes
        )
        # 8 Mbps offered into 5 Mbps effective: the loaded link must
        # drop what the clear link carries comfortably
        assert (
            loaded.link("a", "b").stats_from(loaded.node("a")).dropped_packets
            > 0
        )
        assert (
            clear.link("a", "b").stats_from(clear.node("a")).dropped_packets
            == 0
        )


class TestTelemetryBackground:
    def test_link_samples_include_background(self):
        net = two_hosts(rate=10.0)
        db = TimeSeriesDB()
        LinkTelemetryCollector(net, db, interval=1.0).start()
        net.link("a", "b").set_background_from(net.node("a"), 4.0)
        net.run(3.5)
        _, mbps = db.series("link:a->b:mbps")
        assert mbps[-1] == pytest.approx(4.0)  # no packets, pure term
        _, util = db.series("link:a->b:util")
        assert util[-1] == pytest.approx(0.4)
        # the unloaded reverse direction stays at zero
        _, rev = db.series("link:b->a:mbps")
        assert rev[-1] == pytest.approx(0.0)


class TestApplyBackground:
    def test_applies_and_clears_directed_loads(self):
        net = two_hosts()
        link = net.link("a", "b")
        apply_background(net, {("a", "b"): 3.0})
        assert link.background_from(net.node("a")) == 3.0
        assert link.background_from(net.node("b")) == 0.0
        # a new mapping clears directions it does not name
        apply_background(net, {("b", "a"): 1.0})
        assert link.background_from(net.node("a")) == 0.0
        assert link.background_from(net.node("b")) == 1.0
        apply_background(net, {})
        assert link.background_from(net.node("b")) == 0.0

    def test_unknown_link_rejected(self):
        net = two_hosts()
        with pytest.raises(KeyError, match="absent"):
            apply_background(net, {("a", "nope"): 1.0})

    def test_empty_epoch_rejected(self):
        with pytest.raises(ValueError, match="empty epoch"):
            BackgroundEpoch(t0=2.0, t1=2.0)

    def test_schedule_applies_per_epoch_and_clears_after(self):
        net = two_hosts()
        link = net.link("a", "b")
        node = net.node("a")
        epochs = [
            BackgroundEpoch(0.0, 1.0, {("a", "b"): 2.0}),
            BackgroundEpoch(1.0, 2.0, {("a", "b"): 5.0}),
        ]
        events = install_background_schedule(net, epochs, offset=1.0)
        assert len(events) == 3  # two epochs + the trailing clear
        net.run(1.5)
        assert link.background_from(node) == 2.0
        net.run(2.5)
        assert link.background_from(node) == 5.0
        net.run(3.5)  # past offset + last epoch end: cleared
        assert link.background_from(node) == 0.0


class TestUdpTrains:
    def test_train_preserves_average_rate(self):
        paced = two_hosts(rate=100.0)
        trained = two_hosts(rate=100.0)
        f1 = UdpFlow(
            paced.hosts["a"], paced.hosts["b"], rate_mbps=5.0, duration=4.0
        ).start()
        f8 = UdpFlow(
            trained.hosts["a"], trained.hosts["b"], rate_mbps=5.0,
            duration=4.0, train_packets=8,
        ).start()
        paced.run(6.0)
        trained.run(6.0)
        assert f8.delivered_mbps() == pytest.approx(
            f1.delivered_mbps(), rel=0.1
        )
        # the whole point: an 8-packet train needs ~1/8th the timer ticks
        assert trained.sim.events_processed < paced.sim.events_processed

    def test_train_must_be_positive(self):
        net = two_hosts()
        with pytest.raises(ValueError, match="train_packets"):
            UdpFlow(net.hosts["a"], net.hosts["b"], rate_mbps=1.0,
                    train_packets=0)

    def test_delivered_mbps_honest_for_single_train_flow(self):
        """A flow whose lifetime fits in one back-to-back train must
        report its trickle rate, not the link serialization rate."""
        net = two_hosts(rate=100.0)
        flow = UdpFlow(
            net.hosts["a"], net.hosts["b"], rate_mbps=0.5, duration=1.0,
            train_packets=64,
        ).start()
        net.run(3.0)
        # 0.5 Mbps for 1 s is ~5-6 MTU packets; they all leave in one
        # train burst, but the average over the active window is ~0.5
        assert flow.delivered_mbps() < 2.0
