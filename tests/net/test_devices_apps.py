"""Routers (FIB + PolKA planes), ping, TCP and UDP apps."""

import numpy as np
import pytest

from repro.net import Network, Packet, PingApp, TcpFlow, UdpFlow


def line_network(core_rate=20.0, core_delay=5.0):
    """h1 - r1 - r2 - r3 - h2 with a 20 Mbps core."""
    net = Network()
    net.add_host("h1", ip="10.0.1.1")
    net.add_host("h2", ip="10.0.2.1")
    net.add_router("r1", edge=True)
    net.add_router("r2")
    net.add_router("r3", edge=True)
    net.add_link("h1", "r1", rate_mbps=1000, delay_ms=0.1)
    net.add_link("r1", "r2", rate_mbps=core_rate, delay_ms=core_delay)
    net.add_link("r2", "r3", rate_mbps=core_rate, delay_ms=core_delay)
    net.add_link("r3", "h2", rate_mbps=1000, delay_ms=0.1)
    return net.build()


def diamond_network():
    """Two router paths A->B->D (fast) and A->C->D (slow)."""
    net = Network()
    net.add_host("h1", ip="10.0.1.1")
    net.add_host("h2", ip="10.0.2.1")
    for r in "ABCD":
        net.add_router(r, edge=(r in "AD"))
    net.add_link("h1", "A")
    net.add_link("D", "h2")
    net.add_link("A", "B", delay_ms=1)
    net.add_link("B", "D", delay_ms=1)
    net.add_link("A", "C", delay_ms=30)
    net.add_link("C", "D", delay_ms=30)
    return net.build()


class TestRouterForwarding:
    def test_fib_prefers_shortest_path(self):
        net = diamond_network()
        assert net.routers["A"].fib["h2"] == net.routers["A"].port_of["B"]

    def test_ttl_expiry_drops(self):
        net = line_network()
        pkt = Packet(src="h1", dst="h2", size=100, flow_id=1, ttl=2)
        net.hosts["h1"].send_packet(pkt)
        net.run(until=1.0)
        drops = sum(r.stats.dropped_ttl for r in net.routers.values())
        assert drops == 1
        assert net.hosts["h2"].received_bytes(1) == 0

    def test_unroutable_destination_dropped(self):
        net = line_network()
        net.hosts["h1"].send_packet(Packet(src="h1", dst="ghost", size=100))
        net.run(until=1.0)
        assert net.routers["r1"].stats.dropped_no_route == 1

    def test_polka_plane_bypasses_fib(self):
        net = diamond_network()
        route = net.polka.route_for_path(["A", "C", "D"])
        net.routers["A"].classifier = lambda p: (route.route_id, "D")
        net.hosts["h1"].send_packet(Packet(src="h1", dst="h2", size=100, flow_id=9))
        net.run(until=1.0)
        assert net.routers["C"].stats.polka_forwarded == 1
        assert net.routers["B"].stats.polka_forwarded == 0
        assert net.routers["D"].stats.decapsulated == 1
        assert net.hosts["h2"].received_bytes(9) == 100

    def test_core_router_keeps_no_flow_state(self):
        """PolKA's point: the same core router forwards any routeID with
        zero installed state — only its own node_id."""
        net = diamond_network()
        c = net.routers["C"]
        assert c.classifier is None
        assert "h2" in c.fib  # FIB exists but is not consulted for tunnels
        r1 = net.polka.route_for_path(["A", "C", "D"])
        pkt = Packet(src="h1", dst="h2", size=64, flow_id=1,
                     route_id=r1.route_id, tunnel_egress="D")
        net.routers["A"].inject(pkt)
        net.run(until=1.0)
        assert net.hosts["h2"].received_bytes(1) == 64


class TestPing:
    def test_rtt_matches_propagation(self):
        net = line_network(core_delay=5.0)
        ping = PingApp(net.hosts["h1"], net.hosts["h2"], interval=1.0, count=5).start()
        net.run(until=10.0)
        _, rtts = ping.rtt_series()
        assert len(rtts) == 5
        # 2 * (0.1 + 5 + 5 + 0.1) = 20.4 ms plus serialization
        assert np.all(np.abs(rtts - 20.4) < 1.0)

    def test_count_limits_probes(self):
        net = line_network()
        ping = PingApp(net.hosts["h1"], net.hosts["h2"], interval=0.5, count=3).start()
        net.run(until=10.0)
        assert ping.sent == 3

    def test_loss_reported(self):
        net = line_network()
        ping = PingApp(net.hosts["h1"], net.hosts["h2"], interval=1.0, count=4).start()
        net.run(until=3.01)  # probe at t=3 sent but its reply needs ~20 ms
        assert ping.loss_rate > 0.0

    def test_interval_validation(self):
        net = line_network()
        with pytest.raises(ValueError):
            PingApp(net.hosts["h1"], net.hosts["h2"], interval=0.0)


class TestTcp:
    def test_saturates_bottleneck(self):
        net = line_network(core_rate=20.0)
        flow = TcpFlow(net.hosts["h1"], net.hosts["h2"], duration=15.0).start()
        net.run(until=20.0)
        assert 16.0 < flow.goodput_mbps() < 20.0

    def test_three_flows_share_fairly(self):
        net = line_network(core_rate=18.0)
        flows = [
            TcpFlow(net.hosts["h1"], net.hosts["h2"], tos=i, duration=20.0).start()
            for i in range(3)
        ]
        net.run(until=25.0)
        rates = [f.goodput_mbps(5.0, 20.0) for f in flows]
        assert sum(rates) > 14.0  # aggregate still near capacity
        assert max(rates) < 3.0 * min(rates)  # rough AIMD fairness

    def test_interval_series_reflects_duration(self):
        net = line_network()
        flow = TcpFlow(net.hosts["h1"], net.hosts["h2"], duration=5.0).start(at=1.0)
        net.run(until=10.0)
        t, series = flow.interval_mbps(1.0)
        assert len(series) == 5
        assert series.mean() > 5.0

    def test_report_contents(self):
        net = line_network()
        flow = TcpFlow(net.hosts["h1"], net.hosts["h2"], duration=5.0).start()
        net.run(until=8.0)
        rep = flow.report()
        assert rep.src == "h1" and rep.dst == "h2"
        assert rep.bytes_delivered > 0
        assert rep.mean_mbps == pytest.approx(flow.goodput_mbps())

    def test_losses_trigger_retransmits_on_tiny_queue(self):
        net = Network()
        net.add_host("h1", ip="1.1.1.1")
        net.add_host("h2", ip="1.1.1.2")
        net.add_router("r1", edge=True)
        net.add_router("r2", edge=True)
        net.add_link("h1", "r1", rate_mbps=1000, delay_ms=0.1)
        net.add_link("r1", "r2", rate_mbps=5.0, delay_ms=10.0, queue_packets=5)
        net.add_link("r2", "h2", rate_mbps=1000, delay_ms=0.1)
        net.build()
        flow = TcpFlow(net.hosts["h1"], net.hosts["h2"], duration=10.0).start()
        net.run(until=15.0)
        assert flow.retransmits > 0
        assert flow.goodput_mbps() > 2.0  # still makes progress

    def test_duration_validation(self):
        net = line_network()
        with pytest.raises(ValueError):
            TcpFlow(net.hosts["h1"], net.hosts["h2"], duration=0.0)


class TestUdp:
    def test_cbr_rate_delivered(self):
        net = line_network(core_rate=20.0)
        flow = UdpFlow(net.hosts["h1"], net.hosts["h2"], rate_mbps=5.0, duration=10.0).start()
        net.run(until=12.0)
        assert flow.delivered_mbps() == pytest.approx(5.0, rel=0.05)
        assert flow.loss_rate < 0.01

    def test_overdriven_udp_loses_packets(self):
        net = line_network(core_rate=10.0)
        flow = UdpFlow(net.hosts["h1"], net.hosts["h2"], rate_mbps=30.0, duration=5.0).start()
        net.run(until=8.0)
        assert flow.loss_rate > 0.4  # 30 Mbps into a 10 Mbps pipe
        assert flow.delivered_mbps() < 11.0

    def test_validation(self):
        net = line_network()
        with pytest.raises(ValueError):
            UdpFlow(net.hosts["h1"], net.hosts["h2"], rate_mbps=0.0)
        with pytest.raises(ValueError):
            UdpFlow(net.hosts["h1"], net.hosts["h2"], rate_mbps=1.0, duration=0.0)

    def test_report_records_jitter_and_latency(self):
        # the VoIP MOS model needs per-packet inter-arrival jitter and
        # one-way latency, not just the mean delivered rate
        net = line_network(core_rate=20.0, core_delay=5.0)
        flow = UdpFlow(
            net.hosts["h1"], net.hosts["h2"], rate_mbps=5.0, duration=10.0
        ).start()
        net.run(until=12.0)
        report = flow.report()
        # one-way prop delay is ~10.2 ms + serialization/queueing
        assert 10.0 <= report.mean_latency_ms < 30.0
        assert report.mean_latency_ms == pytest.approx(
            flow.mean_latency_ms
        )
        # an unloaded CBR flow sees near-constant transit: tiny jitter
        assert 0.0 <= report.jitter_ms < 2.0
        assert report.loss_rate == pytest.approx(flow.loss_rate)
        assert report.mean_mbps == pytest.approx(flow.delivered_mbps())

    def test_queueing_raises_jitter(self):
        # an oscillating queue (AIMD cross traffic) spreads transit
        # times; RFC 3550 jitter must move with it — strictly greater
        # than the unloaded run's near-zero value
        quiet = line_network(core_rate=20.0)
        q = UdpFlow(
            quiet.hosts["h1"], quiet.hosts["h2"], rate_mbps=5.0, duration=5.0
        ).start()
        quiet.run(until=8.0)
        busy = line_network(core_rate=20.0)
        TcpFlow(busy.hosts["h1"], busy.hosts["h2"], duration=8.0).start()
        b = UdpFlow(
            busy.hosts["h1"], busy.hosts["h2"], rate_mbps=5.0, duration=5.0
        ).start()
        busy.run(until=8.0)
        assert b.jitter_ms > max(q.jitter_ms * 1e3, 1e-3)
        assert b.mean_latency_ms > q.mean_latency_ms + 5.0
        assert b.report().jitter_ms == pytest.approx(b.jitter_ms)


class TestNetworkApi:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(ValueError):
            net.add_router("x")

    def test_unknown_link_endpoint(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(ValueError):
            net.add_link("a", "nope")

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b")
        with pytest.raises(ValueError):
            net.add_link("b", "a")

    def test_declare_after_build_rejected(self):
        net = line_network()
        with pytest.raises(RuntimeError):
            net.add_host("late")

    def test_run_requires_build(self):
        with pytest.raises(RuntimeError):
            Network().run(until=1.0)

    def test_impairments_validate(self):
        net = line_network()
        with pytest.raises(ValueError):
            net.set_link_rate("r1", "r2", 0.0)
        with pytest.raises(ValueError):
            net.set_link_delay("r1", "r2", -1.0)
        with pytest.raises(KeyError):
            net.link("r1", "r3")

    def test_path_metrics(self):
        net = diamond_network()
        assert net.path_delay_ms(["A", "C", "D"]) == pytest.approx(60.0)
        assert net.path_capacity_mbps(["A", "B", "D"]) == pytest.approx(1000.0)

    def test_runtime_impairment_changes_rtt(self):
        net = line_network(core_delay=1.0)
        ping1 = PingApp(net.hosts["h1"], net.hosts["h2"], interval=1.0, count=2).start()
        net.run(until=3.0)
        net.set_link_delay("r1", "r2", 21.0)  # +20 ms like the paper's tc
        ping2 = PingApp(net.hosts["h1"], net.hosts["h2"], interval=1.0, count=2).start(0.0)
        net.run(until=8.0)
        _, r1 = ping1.rtt_series()
        _, r2 = ping2.rtt_series()
        assert r2.mean() - r1.mean() == pytest.approx(40.0, abs=2.0)
