"""Event loop and link-level behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Link, Network, Packet, Simulator
from repro.net.devices import Host


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=3.0)
        assert sim.now == 3.0 and not fired
        sim.run(until=10.0)
        assert fired and sim.now == 10.0

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert not fired

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            sim.schedule(1.0, lambda: times.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [2.0]

    def test_runaway_guard(self):
        from repro.net import EventBudgetExceeded

        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(EventBudgetExceeded, match="budget"):
            sim.run(until=1.0, max_events=100)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_clock_is_monotonic(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)


def two_hosts(rate=10.0, delay=1.0, queue=10):
    net = Network()
    net.add_host("a", ip="1.1.1.1")
    net.add_host("b", ip="1.1.1.2")
    net.add_link("a", "b", rate_mbps=rate, delay_ms=delay, queue_packets=queue)
    net.build()
    return net


class TestLink:
    def test_serialization_plus_propagation_delay(self):
        net = two_hosts(rate=8.0, delay=5.0)
        got = []
        net.hosts["b"].register_flow(7, lambda p: got.append(net.sim.now))
        pkt = Packet(src="a", dst="b", size=1000, flow_id=7)
        net.hosts["a"].send_packet(pkt)
        net.run(until=1.0)
        # 1000 B at 8 Mbps = 1 ms serialization + 5 ms propagation
        assert got and got[0] == pytest.approx(0.006, abs=1e-9)

    def test_fifo_order_preserved(self):
        net = two_hosts()
        seqs = []
        net.hosts["b"].register_flow(7, lambda p: seqs.append(p.seq))
        for i in range(5):
            net.hosts["a"].send_packet(Packet(src="a", dst="b", size=500, flow_id=7, seq=i))
        net.run(until=1.0)
        assert seqs == [0, 1, 2, 3, 4]

    def test_queue_overflow_drops_tail(self):
        net = two_hosts(rate=1.0, queue=5)
        delivered = []
        net.hosts["b"].register_flow(7, lambda p: delivered.append(p.seq))
        # burst of 20 into a queue of 5 (plus 1 in service)
        for i in range(20):
            net.hosts["a"].send_packet(Packet(src="a", dst="b", size=1500, flow_id=7, seq=i))
        net.run(until=10.0)
        stats = net.link("a", "b").stats_from(net.hosts["a"])
        assert stats.dropped_packets == 20 - len(delivered)
        assert len(delivered) == 6  # 1 in service + 5 queued
        assert delivered == [0, 1, 2, 3, 4, 5]  # head of burst survives

    def test_full_duplex_no_interference(self):
        net = two_hosts(rate=8.0, delay=1.0)
        times = {}
        net.hosts["a"].register_flow(2, lambda p: times.setdefault("a", net.sim.now))
        net.hosts["b"].register_flow(1, lambda p: times.setdefault("b", net.sim.now))
        net.hosts["a"].send_packet(Packet(src="a", dst="b", size=1000, flow_id=1))
        net.hosts["b"].send_packet(Packet(src="b", dst="a", size=1000, flow_id=2))
        net.run(until=1.0)
        # both directions complete in one serialization + propagation
        assert times["a"] == pytest.approx(0.002, abs=1e-9)
        assert times["b"] == pytest.approx(0.002, abs=1e-9)

    def test_rate_cap_enforced(self):
        net = two_hosts(rate=10.0, delay=0.1, queue=1000)
        received = []
        net.hosts["b"].register_flow(3, lambda p: received.append(p.size))
        for i in range(200):
            net.hosts["a"].send_packet(Packet(src="a", dst="b", size=1500, flow_id=3, seq=i))
        net.run(until=0.1)  # 100 ms at 10 Mbps fits ~83 x 1500 B
        achieved = sum(received) * 8 / 0.1 / 1e6
        assert achieved <= 10.0 + 0.2

    def test_stats_counters(self):
        net = two_hosts()
        net.hosts["a"].send_packet(Packet(src="a", dst="b", size=777, flow_id=1))
        net.run(until=1.0)
        stats = net.link("a", "b").stats_from(net.hosts["a"])
        assert stats.tx_packets == 1
        assert stats.tx_bytes == 777

    def test_validation(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        with pytest.raises(ValueError):
            Link(sim, a, b, rate_mbps=0.0)
        with pytest.raises(ValueError):
            Link(sim, a, b, delay_ms=-1.0)
        with pytest.raises(ValueError):
            Link(sim, a, b, queue_packets=0)

    def test_packet_size_validation(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", size=0)
