"""Application QoE models: ladders, E-model, utilities, aggregation."""

import pytest

from repro.net.qoe import (
    APP_CLASSES,
    APP_MODELS,
    BulkModel,
    FlowQoSSample,
    VideoModel,
    VoipModel,
    aggregate_qoe,
    predicted_mos,
    rate_to_mos,
)


def _mos(model, rate, **kwargs):
    return model.mos(FlowQoSSample(rate_mbps=rate, **kwargs))


class TestVideoModel:
    model = VideoModel()

    def test_rate_monotone_across_the_ladder(self):
        rates = [0.1, 0.5, 0.8, 1.2, 2.0, 2.5, 4.0, 5.0, 6.5, 8.0, 20.0]
        scores = [_mos(self.model, r) for r in rates]
        assert scores == sorted(scores)
        # strictly monotone below saturation (the objective relies on
        # a non-flat score between rungs)
        below_top = [s for r, s in zip(rates, scores) if r < 8.0]
        assert all(a < b for a, b in zip(below_top, below_top[1:]))

    def test_rungs_score_their_perceptual_quality(self):
        for rung_rate, rung_q in self.model.ladder:
            assert _mos(self.model, rung_rate) == pytest.approx(rung_q)

    def test_rebuffer_collapse_below_the_lowest_rung(self):
        assert _mos(self.model, 0.0) == 1.0
        assert 1.0 < _mos(self.model, 0.25) < 2.0

    def test_latency_and_loss_subtract(self):
        clean = _mos(self.model, 8.0)
        assert _mos(self.model, 8.0, latency_ms=400.0) == pytest.approx(
            clean - 1.0
        )
        assert _mos(self.model, 8.0, loss_rate=0.1) == pytest.approx(
            clean - 0.8
        )

    def test_clamped_to_mos_range(self):
        assert _mos(self.model, 1000.0) <= 5.0
        assert _mos(self.model, 8.0, latency_ms=1e6) == 1.0


class TestVoipModel:
    model = VoipModel()

    def test_clean_narrowband_call_is_ceiling_capped(self):
        assert _mos(self.model, 0.1, latency_ms=2.0) == pytest.approx(
            4.4, abs=0.1
        )
        assert _mos(self.model, 0.1) <= 4.5

    def test_delay_knee_at_177ms(self):
        near = _mos(self.model, 0.1, latency_ms=150.0)
        past = _mos(self.model, 0.1, latency_ms=300.0)
        assert past < near
        # past the knee the slope steepens: the same 150 ms again
        # costs much more than the first 150 ms did
        first_drop = _mos(self.model, 0.1) - near
        second_drop = near - past
        assert second_drop > 2.0 * first_drop

    def test_jitter_beyond_budget_converts_to_loss(self):
        within = _mos(self.model, 0.1, jitter_ms=10.0)
        assert within == _mos(self.model, 0.1)
        assert _mos(self.model, 0.1, jitter_ms=80.0) < within

    def test_codec_starvation_counts_as_loss(self):
        starved = _mos(self.model, 0.01, latency_ms=2.0)
        assert starved < _mos(self.model, 0.1, latency_ms=2.0) - 0.5

    def test_heavy_loss_floors_at_one(self):
        assert _mos(self.model, 0.1, loss_rate=1.0) < 2.0
        assert _mos(self.model, 0.1, loss_rate=1.0, latency_ms=2e3) == 1.0


class TestBulkModel:
    model = BulkModel()

    def test_concave_and_rate_monotone(self):
        rates = (0.0, 25.0, 50.0, 75.0, 100.0)  # evenly spaced
        scores = [_mos(self.model, r) for r in rates]
        assert scores == sorted(scores)
        assert scores[0] == 1.0
        gains = [b - a for a, b in zip(scores, scores[1:])]
        assert gains == sorted(gains, reverse=True)  # diminishing returns

    def test_latency_and_jitter_insensitive(self):
        assert _mos(self.model, 10.0, latency_ms=500.0, jitter_ms=50.0) == (
            _mos(self.model, 10.0)
        )

    def test_loss_stalls_the_transfer(self):
        assert _mos(self.model, 10.0, loss_rate=0.5) == 1.0


class TestPredictedMos:
    def test_generic_and_unknown_score_neutral(self):
        assert predicted_mos("generic", 100.0) == 3.0
        assert predicted_mos("no-such-class", 0.0) == 3.0

    def test_dispatches_to_the_class_model(self):
        assert predicted_mos("video", 8.0) == _mos(VideoModel(), 8.0)
        assert predicted_mos("voip", 0.1, latency_ms=300.0) == _mos(
            VoipModel(), 0.1, latency_ms=300.0
        )

    def test_registry_covers_every_non_generic_class(self):
        assert set(APP_MODELS) == set(APP_CLASSES) - {"generic"}


class TestAggregateQoe:
    def test_generic_flows_are_excluded(self):
        per_class, mean, count = aggregate_qoe(
            [("generic", FlowQoSSample(rate_mbps=10.0))]
        )
        assert (per_class, mean, count) == ({}, 0.0, 0)

    def test_per_class_means_and_overall_mean(self):
        samples = [
            ("video", FlowQoSSample(rate_mbps=8.0)),
            ("video", FlowQoSSample(rate_mbps=0.5)),
            ("voip", FlowQoSSample(rate_mbps=0.1, latency_ms=2.0)),
            ("generic", FlowQoSSample(rate_mbps=50.0)),
        ]
        per_class, mean, count = aggregate_qoe(samples)
        assert count == 3
        assert set(per_class) == {"video", "voip"}
        assert per_class["video"] == pytest.approx((4.8 + 2.0) / 2.0)
        expected = (4.8 + 2.0 + per_class["voip"]) / 3.0
        assert mean == pytest.approx(expected)

    def test_keys_are_name_sorted(self):
        samples = [
            ("voip", FlowQoSSample(rate_mbps=0.1)),
            ("bulk", FlowQoSSample(rate_mbps=5.0)),
            ("video", FlowQoSSample(rate_mbps=2.5)),
        ]
        per_class, _, _ = aggregate_qoe(samples)
        assert list(per_class) == ["bulk", "video", "voip"]


class TestRateToMos:
    def test_maps_a_series_pointwise(self):
        series = [0.0, 2.5, 8.0]
        assert rate_to_mos("video", series) == [
            predicted_mos("video", r) for r in series
        ]

    def test_extra_metrics_are_forwarded(self):
        assert rate_to_mos("video", [8.0], latency_ms=400.0) == [
            predicted_mos("video", 8.0, latency_ms=400.0)
        ]
