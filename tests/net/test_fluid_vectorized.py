"""Vectorized max-min solver vs the scalar oracle, directed capacities,
and the relative-epsilon saturation fix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fluid import (
    FluidFlow,
    link_capacities,
    max_min_fair,
    total_throughput,
)
from repro.net.topology import Network


def random_case(seed, n_links=None, n_flows=None):
    """A random flow/link set (directed keys, arbitrary paths)."""
    rng = np.random.default_rng(seed)
    n_links = n_links or int(rng.integers(3, 40))
    n_flows = n_flows or int(rng.integers(1, 60))
    links = [(f"a{i}", f"b{i}") for i in range(n_links)]
    caps = {link: float(rng.uniform(0.5, 5000.0)) for link in links}
    flows = []
    for f in range(n_flows):
        k = int(rng.integers(1, min(6, n_links) + 1))
        chosen = rng.choice(n_links, size=k, replace=False)
        flows.append(
            FluidFlow(name=f"f{f}", links=tuple(links[i] for i in chosen))
        )
    return flows, caps


class TestVectorizedMatchesScalar:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_cross_check(self, seed):
        """Property: on randomized flow/link sets, the vectorized and
        scalar solvers agree to 1e-9 (relative to each rate)."""
        flows, caps = random_case(seed)
        scalar = max_min_fair(flows, caps, method="scalar")
        vector = max_min_fair(flows, caps, method="vector")
        assert scalar.keys() == vector.keys()
        for name in scalar:
            assert vector[name] == pytest.approx(
                scalar[name], rel=1e-9, abs=1e-9
            )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_allocation_is_feasible(self, seed):
        """No link carries more than its capacity (tiny float slack)."""
        flows, caps = random_case(seed)
        rates = max_min_fair(flows, caps)
        load = {link: 0.0 for link in caps}
        for flow in flows:
            for link in flow.links:
                load[link] += rates[flow.name]
        for link, capacity in caps.items():
            assert load[link] <= capacity * (1.0 + 1e-6)

    def test_auto_dispatches_both_ways(self):
        flows, caps = random_case(3, n_links=10, n_flows=5)
        assert max_min_fair(flows, caps) == pytest.approx(
            max_min_fair(flows, caps, method="vector")
        )
        flows, caps = random_case(4, n_links=20, n_flows=50)
        assert max_min_fair(flows, caps) == pytest.approx(
            max_min_fair(flows, caps, method="scalar")
        )

    def test_unknown_method_rejected(self):
        flows, caps = random_case(5)
        with pytest.raises(ValueError):
            max_min_fair(flows, caps, method="simd")

    def test_empty_flow_set(self):
        assert max_min_fair([], {("a", "b"): 10.0}) == {}

    @pytest.mark.parametrize("method", ["scalar", "vector"])
    def test_repeated_link_counts_per_traversal(self, method):
        """A flow crossing one capacity entry twice (both directions of
        an undirected map) consumes it twice; the scalar solver once
        counted such a flow as a single user and over-allocated 15 Mbps
        onto a 10 Mbps link (vector and scalar also disagreed)."""
        caps = {("a", "b"): 10.0}
        flows = [
            FluidFlow(name="f0", links=(("a", "b"), ("b", "a"))),
            FluidFlow(name="f1", links=(("a", "b"),)),
        ]
        rates = max_min_fair(flows, caps, method=method)
        assert rates["f0"] == pytest.approx(10.0 / 3)
        assert rates["f1"] == pytest.approx(10.0 / 3)

    @pytest.mark.parametrize("method", ["scalar", "vector"])
    def test_rates_returned_in_input_order(self, method):
        """Regression: rates must be inserted in input (flow) order, not
        set-iteration order — downstream float sums over rates.values()
        would otherwise vary with PYTHONHASHSEED, flipping exact ties in
        assign_flows between processes."""
        flows, caps = random_case(11)
        rates = max_min_fair(flows, caps, method=method)
        assert list(rates) == [flow.name for flow in flows]


class TestDirectedCapacities:
    def build_line(self):
        net = Network()
        net.add_host("h1", ip="10.0.0.1")
        net.add_host("h2", ip="10.0.0.2")
        net.add_router("r1", edge=True)
        net.add_router("r2", edge=True)
        net.add_link("h1", "r1", rate_mbps=100.0)
        net.add_link("r1", "r2", rate_mbps=10.0)
        net.add_link("r2", "h2", rate_mbps=100.0)
        return net.build()

    def test_both_directions_emitted(self):
        caps = link_capacities(self.build_line())
        assert caps[("r1", "r2")] == 10.0
        assert caps[("r2", "r1")] == 10.0
        # one entry per direction per link
        assert len(caps) == 6

    def test_opposite_directions_do_not_compete(self):
        """Regression: full-duplex semantics.  Two flows crossing the
        same link in opposite directions each get the full rate; the old
        tuple(sorted(...)) collapse made them share one 10 Mbps entry
        (5 Mbps each)."""
        caps = link_capacities(self.build_line())
        rates = max_min_fair(
            [
                FluidFlow.from_path("east", ("r1", "r2")),
                FluidFlow.from_path("west", ("r2", "r1")),
            ],
            caps,
        )
        assert rates["east"] == pytest.approx(10.0)
        assert rates["west"] == pytest.approx(10.0)

    def test_same_direction_still_shares(self):
        caps = link_capacities(self.build_line())
        rates = max_min_fair(
            [
                FluidFlow.from_path("one", ("r1", "r2")),
                FluidFlow.from_path("two", ("r1", "r2")),
            ],
            caps,
        )
        assert rates["one"] == pytest.approx(5.0)
        assert rates["two"] == pytest.approx(5.0)

    def test_undirected_maps_still_share_one_entry(self):
        """Legacy behaviour preserved: an undirected capacity map (one
        entry per link) makes both directions draw on that one entry."""
        rates = max_min_fair(
            [
                FluidFlow.from_path("east", ("a", "b")),
                FluidFlow.from_path("west", ("b", "a")),
            ],
            {("a", "b"): 10.0},
        )
        assert rates["east"] == pytest.approx(5.0)
        assert rates["west"] == pytest.approx(5.0)


class TestRelativeEpsilonSaturation:
    @pytest.mark.parametrize("method", ["scalar", "vector"])
    def test_large_capacity_grid_fully_allocates(self, method):
        """Regression: with huge capacities the float residue of
        ``remaining -= inc * users`` exceeds any absolute epsilon (here
        link A retains 128.0 after its saturating round), so under the
        old ``<= 1e-12`` test A never registered as saturated, filling
        stopped early, and f1 froze at A's fair share (~3.67e17) instead
        of growing on to C's 6e17."""
        cap_a = 1.1000000000000001e18  # chosen so cap - 3*(cap/3) == 128.0
        caps = {("x", "a"): cap_a, ("x", "c"): 6e17}
        flows = [
            FluidFlow(name="f1", links=(("x", "c"),)),
            FluidFlow(name="f2", links=(("x", "a"),)),
            FluidFlow(name="f3", links=(("x", "a"),)),
            FluidFlow(name="f4", links=(("x", "a"),)),
        ]
        rates = max_min_fair(flows, caps, method=method)
        assert rates["f1"] == pytest.approx(6e17, rel=1e-6)
        for name in ("f2", "f3", "f4"):
            assert rates[name] == pytest.approx(cap_a / 3, rel=1e-6)

    @pytest.mark.parametrize("method", ["scalar", "vector"])
    def test_terminates_on_degenerate_capacities(self, method):
        """Zero-ish and astronomically mixed capacities must terminate
        deterministically (the underflow break), never spin."""
        caps = {("x", "a"): 1e-15, ("x", "b"): 1e18}
        flows = [
            FluidFlow(name="tiny", links=(("x", "a"), ("x", "b"))),
            FluidFlow(name="big", links=(("x", "b"),)),
        ]
        rates = max_min_fair(flows, caps, method=method)
        assert rates["tiny"] == pytest.approx(0.0, abs=1e-9)
        assert rates["big"] == pytest.approx(1e18, rel=1e-6)

    def test_total_throughput_helper(self):
        assert total_throughput({"a": 1.5, "b": 2.5}) == pytest.approx(4.0)
