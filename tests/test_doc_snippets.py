"""Documented commands must keep parsing: README/docs vs the real CLI.

Every fenced code block in ``README.md`` and ``docs/*.md`` is scanned
for ``repro ...`` command lines (backslash continuations joined,
``#`` comments stripped).  Each one is validated against the *actual*
argument parsers (:func:`repro.cli.build_scenarios_parser` /
:func:`build_service_parser`) and the scenario/workload registries —
without executing the run.  A renamed flag, a dropped subcommand or a
deleted scenario makes the stale snippet a test failure, not a reader's
surprise.  The cheap ``list`` commands are additionally executed end to
end.
"""

import shlex
from pathlib import Path

import pytest

from repro.cli import (
    EXPERIMENTS,
    build_backends_parser,
    build_lint_parser,
    build_objectives_parser,
    build_scenarios_parser,
    build_service_parser,
    main,
)
from repro.scenarios import list_scenarios, list_workloads

ROOT = Path(__file__).resolve().parents[1]
SOURCES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def iter_documented_commands():
    """Yield ``(source, lineno, tokens)`` for every documented
    ``repro ...`` invocation inside a fenced code block."""
    for path in SOURCES:
        in_fence = False
        pending = ""
        start = 0
        for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1
        ):
            if raw.strip().startswith("```"):
                in_fence = not in_fence
                pending = ""
                continue
            if not in_fence:
                continue
            line = raw.strip()
            if pending:
                line = pending + " " + line
            else:
                start = lineno
            if line.endswith("\\"):
                pending = line[:-1].strip()
                continue
            pending = ""
            tokens = shlex.split(line, comments=True)
            # both documented spellings: bare `repro ...` and
            # `PYTHONPATH=src python -m repro ...`
            if "repro" in tokens and tokens[0] != "repro":
                idx = tokens.index("repro")
                if idx >= 2 and tokens[idx - 2 : idx] == ["python", "-m"]:
                    tokens = tokens[idx:]
            if tokens and tokens[0] == "repro":
                yield f"{path.name}:{start}", tokens[1:]


COMMANDS = list(iter_documented_commands())


def _parse(parser, argv, where):
    try:
        return parser.parse_args(argv)
    except SystemExit:
        pytest.fail(
            f"stale documented command at {where}: "
            f"{parser.prog} {' '.join(argv)} no longer parses"
        )


@pytest.mark.parametrize(
    ("where", "tokens"),
    COMMANDS,
    ids=[f"{where}-{' '.join(tokens[:3])}" for where, tokens in COMMANDS],
)
def test_documented_command_is_valid(where, tokens):
    group = tokens[0]
    if group == "scenarios":
        args = _parse(build_scenarios_parser(), tokens[1:], where)
        known = {s.name for s in list_scenarios(include_scale=True)}
        named = getattr(args, "names", None) or (
            [args.name] if hasattr(args, "name") else []
        )
        for name in named:
            assert name in known, (
                f"{where} references unknown scenario {name!r}"
            )
    elif group == "backends":
        _parse(build_backends_parser(), tokens[1:], where)
    elif group == "objectives":
        _parse(build_objectives_parser(), tokens[1:], where)
    elif group == "lint":
        _parse(build_lint_parser(), tokens[1:], where)
    elif group == "service":
        args = _parse(build_service_parser(), tokens[1:], where)
        if hasattr(args, "name"):
            known = {w.name for w in list_workloads()}
            assert args.name in known, (
                f"{where} references unknown workload {args.name!r}"
            )
    else:
        # top-level experiment ids: repro list / all / fig11 / ...
        assert group in set(EXPERIMENTS) | {"list", "all"}, (
            f"{where} references unknown experiment {group!r}"
        )


def test_documentation_actually_documents_commands():
    # the scan must never silently go blind: the README alone documents
    # a dozen-plus invocations today
    assert len(COMMANDS) >= 10


@pytest.mark.parametrize(
    "argv",
    [
        ["list"],
        ["scenarios", "list"],
        ["backends", "list"],
        ["service", "list"],
        ["objectives", "list"],
        ["lint", "--list-rules"],
    ],
    ids=lambda argv: " ".join(argv),
)
def test_cheap_documented_commands_execute(argv, capsys):
    assert main(argv) == 0
    assert capsys.readouterr().out.strip()
