"""Structural checks on the synthetic UQ wireless dataset (Fig. 5b)."""

import numpy as np
import pytest

from repro.datasets import generate_uq_wireless, load_csv
from repro.datasets.uq_wireless import INDOOR_END_S, TRANSITION_END_S


class TestGeneratorStructure:
    def test_default_shape(self):
        ds = generate_uq_wireless()
        assert ds.n_samples == 500
        assert ds.time.shape == ds.wifi.shape == ds.lte.shape
        assert np.array_equal(ds.time, np.arange(500.0))

    def test_non_negative_bandwidth(self):
        ds = generate_uq_wireless()
        assert (ds.wifi >= 0).all()
        assert (ds.lte >= 0).all()

    def test_indoor_wifi_beats_lte(self):
        """Fig. 5b: indoors WiFi is strong and LTE poor."""
        ds = generate_uq_wireless()
        indoor = ds.time < INDOOR_END_S
        assert ds.wifi[indoor].mean() > 3.0 * ds.lte[indoor].mean()

    def test_outdoor_crossover(self):
        """Fig. 5b: outdoors LTE overtakes the degraded WiFi."""
        ds = generate_uq_wireless()
        outdoor = ds.time >= TRANSITION_END_S
        assert ds.lte[outdoor].mean() > ds.wifi[outdoor].mean()

    def test_outdoor_wifi_is_bursty(self):
        ds = generate_uq_wireless()
        outdoor = ds.time >= TRANSITION_END_S
        indoor = ds.time < INDOOR_END_S
        # coefficient of variation much higher outdoors
        cv_out = ds.wifi[outdoor].std() / ds.wifi[outdoor].mean()
        cv_in = ds.wifi[indoor].std() / ds.wifi[indoor].mean()
        assert cv_out > 2.0 * cv_in

    def test_wifi_outages_present_outdoors(self):
        ds = generate_uq_wireless()
        outdoor = ds.time >= TRANSITION_END_S
        assert (ds.wifi[outdoor] < 5.0).mean() > 0.05

    def test_deterministic_per_seed(self):
        a = generate_uq_wireless(seed=5)
        b = generate_uq_wireless(seed=5)
        assert np.array_equal(a.wifi, b.wifi)
        assert np.array_equal(a.lte, b.lte)

    def test_seeds_differ(self):
        a = generate_uq_wireless(seed=5)
        b = generate_uq_wireless(seed=6)
        assert not np.array_equal(a.wifi, b.wifi)

    def test_custom_duration(self):
        ds = generate_uq_wireless(duration_s=300, indoor_end_s=60, transition_end_s=90)
        assert ds.n_samples == 300

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            generate_uq_wireless(indoor_end_s=400, transition_end_s=300)
        with pytest.raises(ValueError):
            generate_uq_wireless(duration_s=100, indoor_end_s=100, transition_end_s=140)


class TestDatasetApi:
    def test_path_accessor(self):
        ds = generate_uq_wireless()
        assert np.array_equal(ds.path(1), ds.wifi)  # Path 1 = WiFi
        assert np.array_equal(ds.path(2), ds.lte)  # Path 2 = LTE
        with pytest.raises(ValueError):
            ds.path(3)

    def test_csv_roundtrip(self, tmp_path):
        ds = generate_uq_wireless()
        path = tmp_path / "uq.csv"
        ds.to_csv(path)
        back = load_csv(path)
        assert np.allclose(back.wifi, ds.wifi, atol=1e-6)
        assert np.allclose(back.lte, ds.lte, atol=1e-6)

    def test_load_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="columns"):
            load_csv(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time_s,wifi_mbps,lte_mbps\n")
        with pytest.raises(ValueError, match="empty"):
            load_csv(path)
