"""SweepEngine: parallel == serial, cache behaviour, aggregation."""

import pytest

from repro.sweep import (
    ResultCache,
    SweepEngine,
    SweepSpec,
    aggregate,
    pairwise_table,
    render_csv,
    render_json,
    render_table,
)

#: A cheap fluid grid: 3 scenarios x 3 seeds, sub-second end to end.
GRID = SweepSpec(
    scenarios=("line-baseline", "ring-uniform", "wan-elephant-mice"),
    seeds=(0, 1, 2),
    backends=("fluid",),
    overrides={"horizon": 8.0, "warmup": 2.0},
)


class TestDeterminism:
    def test_parallel_matches_serial_exactly(self):
        serial = SweepEngine(GRID, jobs=1).run()
        parallel = SweepEngine(GRID, jobs=4).run()
        assert serial.results == parallel.results
        assert [r.label() for r in serial.runs] == [
            r.label() for r in parallel.runs
        ]

    def test_parallel_json_artifact_is_byte_identical(self):
        serial = SweepEngine(GRID, jobs=1).run()
        parallel = SweepEngine(GRID, jobs=4).run()
        blob = render_json(
            serial.runs, serial.results, aggregate(serial.runs, serial.results)
        )
        assert blob == render_json(
            parallel.runs,
            parallel.results,
            aggregate(parallel.runs, parallel.results),
        )

    def test_results_come_back_in_grid_order(self):
        outcome = SweepEngine(GRID, jobs=4).run()
        expected = [(r.name, r.backend, r.seed) for r in GRID.expand()]
        assert [
            (res.scenario, res.backend, res.seed) for res in outcome.results
        ] == expected


class TestCaching:
    def test_second_sweep_is_served_from_cache(self, tmp_path):
        first = SweepEngine(GRID, jobs=1, cache=ResultCache(tmp_path)).run()
        assert (first.cache_hits, first.executed) == (0, 9)
        second = SweepEngine(GRID, jobs=4, cache=ResultCache(tmp_path)).run()
        assert (second.cache_hits, second.executed) == (9, 0)
        assert second.results == first.results
        assert "9 cache hits (100.0%)" in second.stats_line()

    def test_overlapping_grid_reuses_shared_cells(self, tmp_path):
        SweepEngine(GRID, jobs=1, cache=ResultCache(tmp_path)).run()
        wider = SweepSpec(
            scenarios=GRID.scenarios,
            seeds=(0, 1, 2, 3),
            backends=GRID.backends,
            overrides=GRID.overrides,
        )
        outcome = SweepEngine(wider, jobs=1, cache=ResultCache(tmp_path)).run()
        assert outcome.cache_hits == 9   # the original 3x3
        assert outcome.executed == 3     # only the new seed's cells

    def test_refresh_reexecutes_but_rewrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepEngine(GRID, jobs=1, cache=cache).run()
        refreshed = SweepEngine(
            GRID, jobs=1, cache=ResultCache(tmp_path), refresh=True
        ).run()
        assert (refreshed.cache_hits, refreshed.executed) == (0, 9)
        served = SweepEngine(GRID, jobs=1, cache=ResultCache(tmp_path)).run()
        assert served.cache_hits == 9

    def test_no_cache_mode_writes_nothing(self, tmp_path):
        outcome = SweepEngine(GRID, jobs=1).run()
        assert outcome.executed == 9
        assert list(tmp_path.iterdir()) == []

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            SweepEngine(GRID, jobs=0)


class TestMixedAppSweep:
    """Sweeping the QoE scenarios: the app-aware objective axis and the
    extended result fields must stay byte-identical across workers."""

    #: mixed video/voip/bulk cells across both QoE objectives
    QOE_GRID = SweepSpec(
        scenarios=("qoe-mixed-steady", "qoe-mixed-flash"),
        seeds=(0, 1),
        backends=("fluid",),
        overrides={"horizon": 8.0, "warmup": 2.0},
        policies=(
            {"objective": "max_bandwidth"},
            {"objective": "max_qoe"},
        ),
    )

    def test_jobs_2_json_artifact_is_byte_identical(self):
        serial = SweepEngine(self.QOE_GRID, jobs=1).run()
        parallel = SweepEngine(self.QOE_GRID, jobs=2).run()
        blob = render_json(
            serial.runs, serial.results,
            aggregate(serial.runs, serial.results),
        )
        assert blob == render_json(
            parallel.runs, parallel.results,
            aggregate(parallel.runs, parallel.results),
        )

    def test_qoe_fields_survive_the_worker_boundary(self):
        outcome = SweepEngine(self.QOE_GRID, jobs=2).run()
        assert all(r.qoe_flows > 0 for r in outcome.results)
        assert all(
            set(r.qoe_per_class) == {"bulk", "video", "voip"}
            for r in outcome.results
        )


class TestAggregation:
    @pytest.fixture(scope="class")
    def outcome(self):
        return SweepEngine(GRID, jobs=1).run()

    def test_one_aggregate_per_scenario_with_all_seeds(self, outcome):
        aggregates = aggregate(outcome.runs, outcome.results)
        assert [a.scenario for a in aggregates] == sorted(GRID.scenarios)
        for agg in aggregates:
            assert agg.seeds == (0, 1, 2)
            mbps = agg.metrics["total_throughput_mbps"]
            assert mbps["min"] <= mbps["p50"] <= mbps["p95"] <= mbps["max"]
            assert mbps["mean"] == pytest.approx(
                sum(
                    res.total_throughput_mbps
                    for run, res in zip(outcome.runs, outcome.results)
                    if run.name == agg.scenario
                )
                / 3
            )

    def test_renderers_cover_every_group(self, outcome):
        aggregates = aggregate(outcome.runs, outcome.results)
        table = render_table(aggregates)
        csv_text = render_csv(aggregates)
        for name in GRID.scenarios:
            assert name in table
            assert name in csv_text
        assert csv_text.splitlines()[0].startswith(
            "scenario,backend,variant,n_seeds,total_throughput_mbps_mean"
        )

    def test_pairwise_table_compares_backends(self):
        spec = SweepSpec(
            scenarios=("line-baseline",),
            seeds=(0,),
            backends=("des", "fluid"),
            overrides={"horizon": 5.0, "warmup": 1.0},
        )
        outcome = SweepEngine(spec, jobs=1).run()
        aggregates = aggregate(outcome.runs, outcome.results)
        table = pairwise_table(aggregates)
        assert "des" in table and "fluid" in table
        assert "B - A" in table

    def test_pairwise_table_degenerates_gracefully(self, outcome):
        aggregates = aggregate(outcome.runs, outcome.results)
        # three scenarios but one (backend, variant) per scenario group:
        # nothing to pair within any scenario
        assert "nothing to compare" in pairwise_table(aggregates)
