"""Result cache: key stability, round-trips, corruption, stats."""

import json

from repro.scenarios import ScenarioRunner, get_scenario
from repro.sweep import (
    ResultCache,
    RunSpec,
    SweepSpec,
    run_key,
    scenario_fingerprint,
)


def _cell(name="line-baseline", backend="fluid", seed=0, **overrides):
    scenario = get_scenario(name)
    if overrides:
        scenario = scenario.with_overrides(**overrides)
    return RunSpec(scenario, backend, seed)


class TestKeys:
    def test_equal_cells_share_a_key(self):
        assert run_key(_cell()) == run_key(_cell())

    def test_seed_backend_scenario_and_spec_all_distinguish(self):
        base = run_key(_cell())
        assert run_key(_cell(seed=1)) != base
        assert run_key(_cell(backend="des")) != base
        assert run_key(_cell(name="ring-uniform")) != base
        assert run_key(_cell(horizon=9.0)) != base

    def test_fingerprint_survives_tuple_keyed_params(self):
        # fig11 pins link-delay overrides under a tuple key, which plain
        # json.dumps cannot serialise — the canonicaliser must
        scenario = get_scenario("fig11-latency-migration")
        assert scenario_fingerprint(scenario) == scenario_fingerprint(scenario)

    def test_grid_cells_have_unique_keys(self):
        spec = SweepSpec(
            scenarios=("line-baseline", "ring-uniform"),
            seeds=(0, 1),
            backends=("des", "fluid"),
        )
        keys = [run_key(run) for run in spec.expand()]
        assert len(set(keys)) == len(keys)


class TestResultCache:
    def _result(self, run):
        return ScenarioRunner(
            run.scenario, backend=run.backend, seed=run.seed
        ).run()

    def test_miss_then_hit_round_trips_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = _cell(horizon=8.0, warmup=2.0)
        assert cache.get(run) is None
        result = self._result(run)
        cache.put(run, result)
        assert cache.get(run) == result
        assert (cache.stats.misses, cache.stats.hits) == (1, 1)
        assert cache.stats.stores == 1

    def test_artifact_is_json_with_provenance_header(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = _cell(horizon=8.0, warmup=2.0)
        path = cache.put(run, self._result(run))
        artifact = json.loads(path.read_text())
        assert artifact["scenario"] == "line-baseline"
        assert artifact["backend"] == "fluid"
        assert artifact["seed"] == 0
        assert artifact["key"] == run_key(run)
        assert artifact["result"]["total_throughput_mbps"] > 0

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = _cell(horizon=8.0, warmup=2.0)
        cache.put(run, self._result(run))
        cache.path(run).write_text("{not json")
        assert cache.get(run) is None
        # and the sweep's overwrite heals it
        cache.put(run, self._result(run))
        assert cache.get(run) is not None

    def test_truncated_result_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = _cell(horizon=8.0, warmup=2.0)
        path = cache.put(run, self._result(run))
        artifact = json.loads(path.read_text())
        del artifact["result"]["per_flow_mbps"]
        path.write_text(json.dumps(artifact))
        assert cache.get(run) is None

    def test_hit_rate(self, tmp_path):
        cache = ResultCache(tmp_path)
        run = _cell(horizon=8.0, warmup=2.0)
        assert cache.stats.hit_rate() == 0.0
        cache.get(run)
        cache.put(run, self._result(run))
        cache.get(run)
        assert cache.stats.hit_rate() == 0.5
        assert "1/2" in cache.stats.summary()
