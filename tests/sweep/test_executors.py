"""Sweep executors: byte-identity across strategies, queue protocol."""

import pytest

from repro.sweep import (
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    SweepEngine,
    SweepSpec,
    WorkQueueExecutor,
    aggregate,
    make_executor,
    render_json,
    run_key,
)

#: A cheap fluid grid shared by the identity tests.
GRID = SweepSpec(
    scenarios=("line-baseline", "ring-uniform"),
    seeds=(0, 1),
    backends=("fluid",),
    overrides={"horizon": 6.0, "warmup": 2.0},
)


def _blob(outcome):
    return render_json(
        outcome.runs, outcome.results, aggregate(outcome.runs, outcome.results)
    )


class TestByteIdentity:
    def test_process_pool_matches_work_queue_exactly(self, tmp_path):
        """The acceptance pin: a --jobs 2 process-pool sweep and a
        work-queue sweep draining a shared dir produce byte-identical
        output and byte-identical cache artifacts."""
        pool_cache = ResultCache(tmp_path / "pool-cache")
        queue_cache = ResultCache(tmp_path / "queue-cache")
        pool = SweepEngine(GRID, jobs=2, cache=pool_cache).run()
        queued = SweepEngine(
            GRID,
            cache=queue_cache,
            executor=WorkQueueExecutor(tmp_path / "queue"),
        ).run()
        assert pool.results == queued.results
        assert _blob(pool) == _blob(queued)
        pool_files = sorted(
            p.name for p in (tmp_path / "pool-cache").glob("*.json")
        )
        queue_files = sorted(
            p.name for p in (tmp_path / "queue-cache").glob("*.json")
        )
        assert pool_files == queue_files
        for name in pool_files:
            assert (tmp_path / "pool-cache" / name).read_bytes() == (
                tmp_path / "queue-cache" / name
            ).read_bytes()

    def test_serial_executor_matches_default_path(self):
        default = SweepEngine(GRID).run()
        explicit = SweepEngine(GRID, executor=SerialExecutor()).run()
        assert default.results == explicit.results

    def test_explicit_executor_wins_over_jobs(self, tmp_path):
        """engine(jobs=4, executor=serial) must not spawn a pool."""
        outcome = SweepEngine(GRID, jobs=4, executor=SerialExecutor()).run()
        assert outcome.results == SweepEngine(GRID).run().results


class TestWorkQueueProtocol:
    def test_results_land_keyed_by_run_key(self, tmp_path):
        executor = WorkQueueExecutor(tmp_path / "q")
        cells = GRID.expand()
        payloads = executor.execute(cells)
        assert len(payloads) == len(cells)
        for cell in cells:
            assert (tmp_path / "q" / "results" / f"{run_key(cell)}.json").exists()
        # queue drained clean: nothing pending, nothing claimed
        assert not list((tmp_path / "q" / "tasks").glob("*.task"))
        assert not list((tmp_path / "q" / "claimed").glob("*.task"))

    def test_enqueue_is_idempotent(self, tmp_path):
        executor = WorkQueueExecutor(tmp_path / "q")
        cells = GRID.expand()
        assert executor.enqueue(cells) == len(cells)
        assert executor.enqueue(cells) == 0  # already pending
        executor.drain()
        assert executor.enqueue(cells) == 0  # already finished

    def test_second_invocation_reuses_results(self, tmp_path):
        """A re-run against a drained queue executes nothing — it reads
        the results other invocations left behind."""
        first = WorkQueueExecutor(tmp_path / "q")
        first.execute(GRID.expand())
        second = WorkQueueExecutor(tmp_path / "q")
        assert second.enqueue(GRID.expand()) == 0
        assert second.drain() == 0
        assert second.execute(GRID.expand()) == first.execute(GRID.expand())

    def test_stranded_claim_is_recovered(self, tmp_path):
        """A cell left in claimed/ by a dead worker is re-enqueued and
        executed once the queue is otherwise quiet."""
        executor = WorkQueueExecutor(
            tmp_path / "q", poll_interval=0.01, max_polls=3
        )
        cells = GRID.expand()
        executor.enqueue(cells)
        claimed = executor._claim_one()  # simulate a worker dying mid-cell
        assert claimed is not None
        assert len(list(executor.claimed_dir.glob("*.task"))) == 1
        payloads = executor.execute(cells)
        assert len(payloads) == len(cells)
        assert not list(executor.claimed_dir.glob("*.task"))

    def test_timeout_when_another_worker_never_finishes(
        self, tmp_path, monkeypatch
    ):
        """A cell held by a (live but stuck) worker elsewhere: recovery
        must not steal it, so the bounded wait ends in TimeoutError."""
        holder = WorkQueueExecutor(tmp_path / "q")
        cells = GRID.expand()
        holder.enqueue(cells)
        assert holder._claim_one() is not None  # the stuck worker's cell
        waiter = WorkQueueExecutor(
            tmp_path / "q", poll_interval=0.01, max_polls=2
        )
        # the claim belongs to a live worker: recovery finds nothing
        monkeypatch.setattr(waiter, "_recover_stranded", lambda: 0)
        with pytest.raises(TimeoutError, match="never finished"):
            waiter.execute(cells)

    def test_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(ValueError, match="poll_interval"):
            WorkQueueExecutor(tmp_path, poll_interval=0.0)
        with pytest.raises(ValueError, match="max_polls"):
            WorkQueueExecutor(tmp_path, max_polls=0)


class TestMakeExecutor:
    def test_builds_each_named_executor(self, tmp_path):
        assert isinstance(make_executor("serial"), SerialExecutor)
        process = make_executor("process", jobs=3)
        assert isinstance(process, ProcessExecutor)
        assert process.jobs == 3
        queue = make_executor("work-queue", queue_dir=tmp_path / "q")
        assert isinstance(queue, WorkQueueExecutor)
        assert queue.queue_dir == tmp_path / "q"

    def test_work_queue_requires_queue_dir(self):
        with pytest.raises(ValueError, match="--queue-dir"):
            make_executor("work-queue")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="serial, process, work-queue"):
            make_executor("gpu")

    def test_process_executor_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ProcessExecutor(jobs=0)
