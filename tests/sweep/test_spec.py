"""SweepSpec: grid expansion, seed parsing, override plumbing."""

import pytest

from repro.scenarios import get_scenario
from repro.sweep import RunSpec, SweepSpec, parse_seeds


class TestParseSeeds:
    def test_comma_list(self):
        assert parse_seeds("0,1,2") == (0, 1, 2)

    def test_inclusive_range(self):
        assert parse_seeds("0-4") == (0, 1, 2, 3, 4)

    def test_mixed_keeps_written_order_and_dedups(self):
        assert parse_seeds("5,0-2,1") == (5, 0, 1, 2)

    def test_single(self):
        assert parse_seeds("7") == (7,)

    @pytest.mark.parametrize("bad", ["", ",", "a", "1-b", "1..3"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_seeds(bad)

    def test_reversed_range_is_rejected_even_when_mixed(self):
        with pytest.raises(ValueError, match="empty seed range"):
            parse_seeds("0,5-3")
        with pytest.raises(ValueError, match="did you mean '3-5'"):
            parse_seeds("5-3")


class TestExpansion:
    def test_grid_size_and_order(self):
        spec = SweepSpec(
            scenarios=("line-baseline", "ring-uniform"),
            seeds=(0, 1, 2),
            backends=("des", "fluid"),
        )
        runs = spec.expand()
        assert len(runs) == 2 * 3 * 2
        # fixed order: scenario-major, then backend, then seed
        assert [(r.name, r.backend, r.seed) for r in runs[:6]] == [
            ("line-baseline", "des", 0),
            ("line-baseline", "des", 1),
            ("line-baseline", "des", 2),
            ("line-baseline", "fluid", 0),
            ("line-baseline", "fluid", 1),
            ("line-baseline", "fluid", 2),
        ]
        assert runs == spec.expand()  # expansion is deterministic

    def test_default_backend_is_the_scenarios_own(self):
        spec = SweepSpec(scenarios=("line-baseline",))
        (run,) = spec.expand()
        assert run.backend == get_scenario("line-baseline").backend

    def test_overrides_resolve_into_every_cell(self):
        spec = SweepSpec(
            scenarios=("line-baseline",),
            overrides={"horizon": 8.0, "warmup": 2.0},
        )
        (run,) = spec.expand()
        assert run.scenario.horizon == 8.0
        assert run.scenario.warmup == 2.0

    def test_policy_grid_tags_variants(self):
        spec = SweepSpec(
            scenarios=("line-baseline",),
            policies=({"reoptimize_every": 5.0}, {"k_paths": 2}),
        )
        runs = spec.expand()
        assert [r.variant for r in runs] == [
            "reoptimize_every=5.0", "k_paths=2",
        ]
        assert runs[0].scenario.policy.reoptimize_every == 5.0
        assert runs[1].scenario.policy.k_paths == 2
        # the base scenario's other policy fields survive the patch
        base = get_scenario("line-baseline").policy
        assert runs[0].scenario.policy.objective == base.objective

    def test_unknown_scenario_raises_on_expand(self):
        with pytest.raises(KeyError, match="atlantis"):
            SweepSpec(scenarios=("atlantis",)).expand()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scenarios": ()},
            {"scenarios": ("line-baseline",), "seeds": ()},
            {"scenarios": ("line-baseline",), "backends": ("quantum",)},
        ],
    )
    def test_invalid_specs_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            SweepSpec(**kwargs)


class TestRunSpec:
    def test_label_names_the_cell(self):
        run = RunSpec(get_scenario("ring-uniform"), "fluid", 3, "k_paths=2")
        assert run.label() == "ring-uniform[fluid] k_paths=2 seed=3"
