"""Columnar sweep store: flattening, both formats, round-trips."""

import json

import pytest

from repro.sweep import (
    SweepEngine,
    SweepSpec,
    SweepStore,
    outcome_columns,
    parquet_available,
)

GRID = SweepSpec(
    scenarios=("line-baseline", "ring-uniform"),
    seeds=(0, 1),
    backends=("fluid",),
    overrides={"horizon": 6.0, "warmup": 2.0},
)


@pytest.fixture(scope="module")
def outcome():
    return SweepEngine(GRID).run()


class TestColumns:
    def test_columns_are_rectangular(self, outcome):
        columns = outcome_columns(outcome)
        rows = len(outcome.runs)
        assert rows == 4
        assert all(len(values) == rows for values in columns.values())

    def test_axis_columns_lead_and_are_not_duplicated(self, outcome):
        names = list(outcome_columns(outcome))
        assert names[:4] == ["scenario", "backend", "seed", "variant"]
        assert len(names) == len(set(names))

    def test_ragged_per_flow_data_is_excluded(self, outcome):
        assert "per_flow_mbps" not in outcome_columns(outcome)

    def test_rows_follow_grid_order(self, outcome):
        columns = outcome_columns(outcome)
        expected = [(r.name, r.backend, r.seed) for r in outcome.runs]
        got = list(
            zip(columns["scenario"], columns["backend"], columns["seed"])
        )
        assert got == expected


class TestJsonFormat:
    def test_round_trip(self, outcome, tmp_path):
        store = SweepStore(tmp_path / "sweep.json")
        path = store.write(outcome)
        assert path.exists()
        assert store.read() == outcome_columns(outcome)

    def test_rows_view(self, outcome, tmp_path):
        store = SweepStore(tmp_path / "sweep.json")
        store.write(outcome)
        rows = store.rows()
        assert len(rows) == 4
        first = rows[0]
        assert first["scenario"] == outcome.runs[0].name
        assert first["total_throughput_mbps"] == pytest.approx(
            outcome.results[0].total_throughput_mbps
        )

    def test_payload_is_tagged_and_sorted(self, outcome, tmp_path):
        store = SweepStore(tmp_path / "sweep.json")
        payload = json.loads(store.write(outcome).read_text())
        assert payload["format"] == "repro-sweep-columnar"
        assert payload["rows"] == 4

    def test_read_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"rows": 3}))
        with pytest.raises(ValueError, match="columnar sweep store"):
            SweepStore(path).read()


class TestFormatSelection:
    def test_json_suffix_forces_json(self, tmp_path):
        assert SweepStore(tmp_path / "x.json", format="auto").format == "json"

    def test_bad_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            SweepStore(tmp_path / "x", format="csv")

    def test_parquet_without_pyarrow_raises_up_front(
        self, tmp_path, monkeypatch
    ):
        import repro.sweep.store as store_mod

        monkeypatch.setattr(store_mod, "parquet_available", lambda: False)
        with pytest.raises(RuntimeError, match="pyarrow"):
            SweepStore(tmp_path / "x.parquet")

    def test_auto_without_pyarrow_falls_back_to_json(
        self, tmp_path, monkeypatch
    ):
        import repro.sweep.store as store_mod

        monkeypatch.setattr(store_mod, "parquet_available", lambda: False)
        assert SweepStore(tmp_path / "x.dat").format == "json"


@pytest.mark.skipif(
    not parquet_available(), reason="pyarrow not installed"
)
class TestParquetFormat:
    def test_round_trip(self, outcome, tmp_path):
        store = SweepStore(tmp_path / "sweep.parquet")
        assert store.format == "parquet"
        store.write(outcome)
        assert store.read() == outcome_columns(outcome)
