"""Pipeline composition."""

import numpy as np
import pytest

from repro.ml import LinearRegression, NotFittedError, Ridge, StandardScaler, clone
from repro.ml.pipeline import Pipeline, make_pipeline


def data(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(5.0, 3.0, size=(100, 3))
    y = X @ np.array([2.0, -1.0, 0.5]) + 1.0
    return X, y


class TestPipeline:
    def test_scaler_plus_regressor_matches_manual(self):
        X, y = data()
        pipe = Pipeline([("scale", StandardScaler()), ("lr", LinearRegression())])
        pipe.fit(X, y)
        manual_scaler = StandardScaler().fit(X)
        manual_lr = LinearRegression().fit(manual_scaler.transform(X), y)
        assert np.allclose(
            pipe.predict(X), manual_lr.predict(manual_scaler.transform(X))
        )

    def test_pipeline_is_cloneable(self):
        pipe = Pipeline([("scale", StandardScaler()), ("lr", Ridge(alpha=2.0))])
        X, y = data()
        pipe.fit(X, y)
        fresh = clone(pipe)
        assert fresh.fitted_steps_ == []
        assert fresh.steps[1][1].alpha == 2.0

    def test_named_step_access(self):
        X, y = data()
        pipe = Pipeline([("scale", StandardScaler()), ("lr", LinearRegression())])
        pipe.fit(X, y)
        assert pipe.named_step("scale").mean_ is not None
        with pytest.raises(KeyError):
            pipe.named_step("nope")

    def test_predict_before_fit(self):
        pipe = Pipeline([("lr", LinearRegression())])
        with pytest.raises(NotFittedError):
            pipe.predict([[0.0, 0.0, 0.0]])

    def test_score_r2(self):
        X, y = data()
        pipe = Pipeline([("scale", StandardScaler()), ("lr", LinearRegression())])
        assert pipe.fit(X, y).score(X, y) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Pipeline([])
        with pytest.raises(ValueError):
            Pipeline([("a", LinearRegression()), ("a", Ridge())])
        with pytest.raises(ValueError):
            Pipeline([("notrans", LinearRegression()), ("lr", Ridge())])
        with pytest.raises(ValueError):
            Pipeline([("scale", StandardScaler())])  # scaler can't predict

    def test_make_pipeline_names(self):
        pipe = make_pipeline(StandardScaler(), LinearRegression())
        assert pipe.steps[0][0] == "standardscaler_0"
        X, y = data()
        assert np.isfinite(pipe.fit(X, y).predict(X)).all()
