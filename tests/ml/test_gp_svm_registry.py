"""Gaussian process, SVR and the R1..R18 registry."""

import numpy as np
import pytest

from repro.ml import (
    RBF,
    ConstantKernel,
    GaussianProcessRegressor,
    LinearSVR,
    REGRESSOR_SPECS,
    SVR,
    WhiteKernel,
    make_regressor,
    root_mean_squared_error,
    roster,
)


def smooth_1d(n=40, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = np.sort(rng.uniform(-3, 3, size=(n, 1)), axis=0)
    y = np.sin(X).ravel() + rng.normal(scale=noise, size=n)
    return X, y


class TestKernels:
    def test_rbf_unit_diagonal(self):
        X = np.random.default_rng(0).normal(size=(5, 2))
        K = RBF(1.0)(X)
        assert np.allclose(np.diag(K), 1.0)
        assert np.all((K >= 0) & (K <= 1))

    def test_rbf_symmetry(self):
        X = np.random.default_rng(1).normal(size=(6, 3))
        K = RBF(0.7)(X)
        assert np.allclose(K, K.T)

    def test_rbf_length_scale_effect(self):
        X = np.array([[0.0], [2.0]])
        near = RBF(10.0)(X)[0, 1]
        far = RBF(0.1)(X)[0, 1]
        assert near > 0.9 and far < 1e-10

    def test_kernel_algebra(self):
        X = np.random.default_rng(2).normal(size=(4, 2))
        k = ConstantKernel(2.0) * RBF(1.0) + WhiteKernel(0.5)
        K = k(X)
        assert np.allclose(np.diag(K), 2.0 + 0.5)
        # white noise contributes nothing off-diagonal / cross-matrix
        K_cross = k(X, X.copy())
        assert np.allclose(K_cross, (ConstantKernel(2.0) * RBF(1.0))(X, X))

    def test_theta_roundtrip(self):
        k = ConstantKernel(2.0) * RBF(0.5)
        theta = k.theta
        k.theta = theta + np.log(2.0)
        assert k.k1.constant_value == pytest.approx(4.0)
        assert k.k2.length_scale == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RBF(0.0)
        with pytest.raises(ValueError):
            ConstantKernel(-1.0)
        with pytest.raises(ValueError):
            WhiteKernel(0.0)


class TestGPR:
    def test_interpolates_training_points(self):
        X, y = smooth_1d(noise=0.0)
        gpr = GaussianProcessRegressor(kernel=RBF(1.0), alpha=1e-10).fit(X, y)
        assert np.allclose(gpr.predict(X), y, atol=1e-6)

    def test_reverts_to_prior_far_away(self):
        """The failure mode behind the paper's Fig. 8: off-support inputs
        get the prior mean (0 in scaled space)."""
        X, y = smooth_1d()
        gpr = GaussianProcessRegressor(kernel=RBF(1.0)).fit(X, y)
        assert gpr.predict(np.array([[100.0]]))[0] == pytest.approx(0.0, abs=1e-8)

    def test_std_small_at_train_large_far_away(self):
        X, y = smooth_1d()
        gpr = GaussianProcessRegressor(kernel=RBF(1.0), alpha=1e-10).fit(X, y)
        _, std_train = gpr.predict(X, return_std=True)
        _, std_far = gpr.predict(np.array([[50.0]]), return_std=True)
        assert std_train.max() < 0.1
        assert std_far[0] == pytest.approx(1.0, abs=1e-6)  # prior std

    def test_normalize_y_restores_scale(self):
        X, y = smooth_1d()
        y_shift = y + 500.0
        gpr = GaussianProcessRegressor(kernel=RBF(1.0), normalize_y=True).fit(X, y_shift)
        pred = gpr.predict(X)
        assert abs(pred.mean() - 500.0) < 5.0

    def test_optimizer_improves_lml(self):
        X, y = smooth_1d(noise=0.05)
        fixed = GaussianProcessRegressor(kernel=RBF(0.05), alpha=1e-4).fit(X, y)
        lml_fixed = fixed.log_marginal_likelihood()
        tuned = GaussianProcessRegressor(
            kernel=RBF(0.05), alpha=1e-4, optimizer="fmin_l_bfgs_b"
        ).fit(X, y)
        assert tuned.log_marginal_likelihood() >= lml_fixed - 1e-9

    def test_default_kernel_constant_times_rbf(self):
        X, y = smooth_1d()
        gpr = GaussianProcessRegressor().fit(X, y)
        assert gpr.kernel_ is not None
        assert gpr.kernel_.theta.shape == (2,)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(alpha=-1.0)


class TestSVR:
    def test_linear_recovers_slope(self):
        x = np.linspace(0, 10, 60).reshape(-1, 1)
        y = 3.0 * x.ravel() + 1.0
        model = LinearSVR(C=100.0, epsilon=0.01).fit(x, y)
        pred = model.predict(x)
        assert root_mean_squared_error(y, pred) < 0.2

    def test_rbf_fits_sine(self):
        X, y = smooth_1d(n=80, noise=0.02)
        model = SVR(kernel="rbf", C=10.0, epsilon=0.01, gamma=1.0).fit(X, y)
        assert root_mean_squared_error(y, model.predict(X)) < 0.15

    def test_epsilon_tube_flattens_fit(self):
        X, y = smooth_1d(n=60)
        wide = SVR(kernel="rbf", epsilon=2.0, gamma=1.0).fit(X, y)
        # amplitude of sin is 1, tube of 2 swallows it -> near-constant fit
        assert wide.predict(X).std() < 0.3

    def test_gamma_scale_matches_manual(self):
        X, y = smooth_1d()
        model = SVR(gamma="scale").fit(X, y)
        assert model.gamma_ == pytest.approx(1.0 / (X.shape[1] * X.var()))

    def test_gamma_auto(self):
        X, y = smooth_1d()
        assert SVR(gamma="auto").fit(X, y).gamma_ == pytest.approx(1.0)

    def test_support_subset(self):
        X, y = smooth_1d(n=50)
        model = SVR(kernel="rbf", C=1.0, epsilon=0.2, gamma=1.0).fit(X, y)
        assert 0 < model.support_.shape[0] <= 50

    def test_validation(self):
        with pytest.raises(ValueError):
            SVR(kernel="poly")
        with pytest.raises(ValueError):
            SVR(C=0.0)
        with pytest.raises(ValueError):
            SVR(epsilon=-0.1)
        with pytest.raises(ValueError):
            SVR(gamma=-1.0).fit([[1.0], [2.0]], [1.0, 2.0])

    def test_feature_mismatch(self):
        X, y = smooth_1d()
        model = SVR().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((3, 2)))


class TestRegistry:
    def test_full_roster(self):
        specs = roster()
        assert len(specs) == 18
        assert [s.paper_id for s in specs] == [f"R{i}" for i in range(1, 19)]

    def test_labels_match_paper(self):
        expected = {
            "R1": "AdaBoostR", "R2": "ARDR", "R3": "Bagging", "R4": "DTR",
            "R5": "ElasticNet", "R6": "GBR", "R7": "GPR", "R8": "HGBR",
            "R9": "HuberR", "R10": "Lasso", "R11": "LR", "R12": "RANSACR",
            "R13": "RFR", "R14": "Ridge", "R15": "SGDR", "R16": "SVM_Linear",
            "R17": "SVM_RBF", "R18": "TheilSenR",
        }
        for pid, label in expected.items():
            assert REGRESSOR_SPECS[pid].label == label

    def test_factories_produce_fresh_instances(self):
        a = make_regressor("R13")
        b = make_regressor("R13")
        assert a is not b

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="R99"):
            make_regressor("R99")

    def test_all_entrants_fit_and_predict(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        y = X @ np.array([1.0, 2.0, -1.0]) + rng.normal(scale=0.1, size=60)
        for spec in roster():
            model = spec.factory()
            pred = model.fit(X, y).predict(X)
            assert pred.shape == (60,), spec.paper_id
            assert np.isfinite(pred).all(), spec.paper_id
