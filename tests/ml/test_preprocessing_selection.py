"""StandardScaler/MinMaxScaler and splitting/windowing utilities —
the exact pipeline steps of the paper's Sec. V.B protocol."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml import (
    KFold,
    LinearRegression,
    MinMaxScaler,
    NotFittedError,
    StandardScaler,
    TimeSeriesSplit,
    cross_val_score,
    make_lag_matrix,
    train_test_split,
)


class TestStandardScaler:
    def test_train_stats_applied_to_test(self):
        train = np.array([[0.0], [10.0]])
        test = np.array([[5.0], [20.0]])
        scaler = StandardScaler().fit(train)
        out = scaler.transform(test)
        assert out[0, 0] == pytest.approx(0.0)  # 5 is the train mean
        assert out[1, 0] == pytest.approx(3.0)  # (20-5)/5

    def test_fit_transform_zero_mean_unit_var(self):
        rng = np.random.default_rng(1)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_zero_variance_column_survives(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit([[1.0, 2.0]] * 3)
        with pytest.raises(ValueError, match="features"):
            scaler.transform([[1.0]])

    def test_with_mean_false(self):
        X = np.array([[2.0], [4.0]])
        scaler = StandardScaler(with_mean=False).fit(X)
        assert scaler.mean_[0] == 0.0

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 40), st.integers(1, 5)),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    def test_inverse_transform_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(back, X, rtol=1e-9, atol=1e-6)


class TestMinMaxScaler:
    def test_range(self):
        X = np.array([[0.0], [5.0], [10.0]])
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == 0.0 and Z.max() == 1.0

    def test_custom_range_roundtrip(self):
        X = np.array([[1.0, -3.0], [4.0, 9.0], [2.0, 0.0]])
        scaler = MinMaxScaler(feature_range=(-1.0, 1.0))
        back = scaler.inverse_transform(scaler.fit_transform(X))
        assert np.allclose(back, X)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 1.0))

    def test_constant_feature(self):
        Z = MinMaxScaler().fit_transform([[3.0], [3.0]])
        assert np.all(np.isfinite(Z))


class TestTrainTestSplit:
    def test_paper_75_25_time_ordered(self):
        x = np.arange(100)
        tr, te = train_test_split(x, test_size=0.25, shuffle=False)
        assert len(tr) == 75 and len(te) == 25
        assert np.array_equal(tr, np.arange(75))  # strictly the earliest block

    def test_multiple_arrays_stay_aligned(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10) * 7
        Xtr, Xte, ytr, yte = train_test_split(X, y, shuffle=True, random_state=3)
        assert np.array_equal(Xtr[:, 0] // 2 * 7, ytr)
        assert np.array_equal(Xte[:, 0] // 2 * 7, yte)

    def test_shuffled_is_permutation(self):
        x = np.arange(30)
        tr, te = train_test_split(x, shuffle=True, random_state=0)
        assert sorted(np.concatenate([tr, te]).tolist()) == list(range(30))

    def test_deterministic_seed(self):
        x = np.arange(30)
        a = train_test_split(x, shuffle=True, random_state=5)
        b = train_test_split(x, shuffle=True, random_state=5)
        assert np.array_equal(a[0], b[0])

    def test_bad_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), test_size=1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), np.arange(9))

    def test_no_arrays(self):
        with pytest.raises(ValueError):
            train_test_split()


class TestMakeLagMatrix:
    def test_window_contents(self):
        s = np.arange(10.0)
        X, y = make_lag_matrix(s, n_lags=3, horizon=1)
        assert X.shape == (7, 3)
        assert np.array_equal(X[0], [0.0, 1.0, 2.0])
        assert y[0] == 3.0
        assert np.array_equal(X[-1], [6.0, 7.0, 8.0])
        assert y[-1] == 9.0

    def test_paper_defaults_ten_lags(self):
        s = np.arange(500.0)
        X, y = make_lag_matrix(s)  # n_lags=10, horizon=1
        assert X.shape == (490, 10)
        assert y[0] == 10.0

    def test_horizon_two(self):
        s = np.arange(10.0)
        X, y = make_lag_matrix(s, n_lags=3, horizon=2)
        assert y[0] == 4.0
        assert X.shape[0] == 6

    def test_too_short(self):
        with pytest.raises(ValueError):
            make_lag_matrix([1.0, 2.0], n_lags=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_lag_matrix(np.arange(10.0), n_lags=0)
        with pytest.raises(ValueError):
            make_lag_matrix(np.arange(10.0), horizon=0)

    def test_perfectly_learnable(self):
        # a linear AR(1) series must be exactly recoverable by OLS on lags
        s = np.linspace(0, 1, 50)
        X, y = make_lag_matrix(s, n_lags=2)
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-10)


class TestFolds:
    def test_kfold_partitions(self):
        folds = list(KFold(n_splits=4).split(np.arange(10)))
        assert len(folds) == 4
        all_test = np.concatenate([te for _, te in folds])
        assert sorted(all_test.tolist()) == list(range(10))
        for tr, te in folds:
            assert set(tr) & set(te) == set()

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.arange(3)))

    def test_timeseries_split_is_causal(self):
        for tr, te in TimeSeriesSplit(n_splits=3).split(np.arange(20)):
            assert tr.max() < te.min()

    def test_cross_val_score_high_on_linear(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        y = X @ np.array([1.0, -2.0]) + 0.5
        scores = cross_val_score(LinearRegression(), X, y)
        assert scores.shape == (5,)
        assert np.all(scores > 0.99)
