"""Behavioural tests for the linear family: exact recovery where theory
says recovery is exact, robustness where robustness is the selling point."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    ARDRegression,
    ElasticNet,
    HuberRegressor,
    Lasso,
    LinearRegression,
    RANSACRegressor,
    Ridge,
    SGDRegressor,
    TheilSenRegressor,
)


def linear_data(n=120, p=4, noise=0.0, seed=0, outliers=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    coef = np.arange(1, p + 1, dtype=float)
    y = X @ coef + 2.5 + rng.normal(scale=noise, size=n)
    if outliers:
        idx = rng.choice(n, size=outliers, replace=False)
        y[idx] += rng.choice([-1, 1], size=outliers) * 50.0
    return X, y, coef


class TestLinearRegression:
    def test_exact_on_noiseless(self):
        X, y, coef = linear_data()
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, coef, atol=1e-10)
        assert model.intercept_ == pytest.approx(2.5, abs=1e-10)

    def test_no_intercept(self):
        X, y, _ = linear_data()
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0

    def test_underdetermined_does_not_crash(self):
        X = np.random.default_rng(0).normal(size=(3, 10))
        y = np.array([1.0, 2.0, 3.0])
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-8)

    def test_feature_mismatch_on_predict(self):
        X, y, _ = linear_data()
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :2])

    @given(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    @settings(max_examples=25)
    def test_recovers_any_univariate_line(self, slope, intercept):
        x = np.linspace(-5, 5, 30).reshape(-1, 1)
        y = slope * x.ravel() + intercept
        model = LinearRegression().fit(x, y)
        assert model.coef_[0] == pytest.approx(slope, abs=1e-8)
        assert model.intercept_ == pytest.approx(intercept, abs=1e-8)


class TestRidge:
    def test_alpha_zero_matches_ols(self):
        X, y, _ = linear_data(noise=0.1)
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=0.0).fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinkage_monotone(self):
        X, y, _ = linear_data(noise=0.1)
        norms = [
            np.linalg.norm(Ridge(alpha=a).fit(X, y).coef_) for a in [0.0, 1.0, 100.0]
        ]
        assert norms[0] >= norms[1] >= norms[2]

    def test_intercept_not_penalized(self):
        X = np.zeros((50, 1))
        y = np.full(50, 7.0)
        model = Ridge(alpha=1000.0).fit(X, y)
        assert model.intercept_ == pytest.approx(7.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0)


class TestLassoElasticNet:
    def test_lasso_kills_irrelevant_features(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 6))
        y = 10.0 * X[:, 0] + rng.normal(scale=0.1, size=200)
        model = Lasso(alpha=0.5).fit(X, y)
        assert abs(model.coef_[0]) > 5.0
        assert np.all(np.abs(model.coef_[1:]) < 0.05)

    def test_alpha_zero_approaches_ols(self):
        X, y, coef = linear_data(noise=0.05)
        model = Lasso(alpha=1e-8, max_iter=5000).fit(X, y)
        assert np.allclose(model.coef_, coef, atol=1e-2)

    def test_huge_alpha_gives_null_model(self):
        X, y, _ = linear_data()
        model = Lasso(alpha=1e6).fit(X, y)
        assert np.allclose(model.coef_, 0.0)
        assert model.intercept_ == pytest.approx(y.mean())

    def test_elasticnet_between_ridge_and_lasso(self):
        X, y, _ = linear_data(noise=0.1, seed=5)
        lasso_nnz = np.count_nonzero(Lasso(alpha=0.5).fit(X, y).coef_)
        enet_nnz = np.count_nonzero(ElasticNet(alpha=0.5, l1_ratio=0.5).fit(X, y).coef_)
        assert enet_nnz >= lasso_nnz

    def test_l1_ratio_validation(self):
        with pytest.raises(ValueError):
            ElasticNet(l1_ratio=1.5)

    def test_converges_and_reports_iterations(self):
        X, y, _ = linear_data(noise=0.1)
        model = ElasticNet(alpha=0.1).fit(X, y)
        assert 1 <= model.n_iter_ <= model.max_iter


class TestSGD:
    def test_approaches_ols_solution(self):
        X, y, coef = linear_data(n=400, noise=0.05, seed=3)
        model = SGDRegressor(random_state=0, max_iter=200).fit(X, y)
        assert np.allclose(model.coef_, coef, atol=0.3)

    def test_seed_reproducibility(self):
        X, y, _ = linear_data(noise=0.1)
        a = SGDRegressor(random_state=11).fit(X, y)
        b = SGDRegressor(random_state=11).fit(X, y)
        assert np.array_equal(a.coef_, b.coef_)

    def test_early_stopping_bounded_iterations(self):
        X, y, _ = linear_data(noise=0.0)
        model = SGDRegressor(random_state=0).fit(X, y)
        assert model.n_iter_ <= model.max_iter


class TestHuber:
    def test_matches_ols_without_outliers(self):
        X, y, coef = linear_data(noise=0.05)
        model = HuberRegressor().fit(X, y)
        assert np.allclose(model.coef_, coef, atol=0.05)

    def test_resists_outliers_better_than_ols(self):
        X, y, coef = linear_data(n=200, noise=0.1, outliers=20, seed=4)
        huber_err = np.linalg.norm(HuberRegressor().fit(X, y).coef_ - coef)
        ols_err = np.linalg.norm(LinearRegression().fit(X, y).coef_ - coef)
        assert huber_err < ols_err

    def test_scale_is_positive(self):
        X, y, _ = linear_data(noise=0.3)
        assert HuberRegressor().fit(X, y).scale_ > 0

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            HuberRegressor(epsilon=0.5)


class TestARD:
    def test_prunes_irrelevant_features(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(250, 8))
        y = 4.0 * X[:, 0] - 3.0 * X[:, 1] + rng.normal(scale=0.1, size=250)
        model = ARDRegression().fit(X, y)
        assert abs(model.coef_[0]) > 3.5
        assert abs(model.coef_[1]) > 2.5
        assert np.all(np.abs(model.coef_[2:]) < 0.1)

    def test_recovers_dense_solution_too(self):
        X, y, coef = linear_data(noise=0.05, seed=8)
        model = ARDRegression().fit(X, y)
        assert np.allclose(model.coef_, coef, atol=0.1)

    def test_exposes_precisions(self):
        X, y, _ = linear_data(noise=0.1)
        model = ARDRegression().fit(X, y)
        assert model.lambda_.shape == (4,)
        assert model.alpha_ > 0


class TestRANSAC:
    def test_ignores_gross_outliers(self):
        X, y, coef = linear_data(n=300, noise=0.05, outliers=60, seed=9)
        model = RANSACRegressor(random_state=0).fit(X, y)
        assert np.allclose(model.estimator_.coef_, coef, atol=0.1)
        # the outliers should be flagged
        assert model.inlier_mask_.sum() <= 300 - 40

    def test_min_samples_validation(self):
        with pytest.raises(ValueError):
            RANSACRegressor(min_samples=10).fit(np.zeros((5, 1)), np.zeros(5))

    def test_custom_threshold(self):
        X, y, _ = linear_data(noise=0.01)
        model = RANSACRegressor(residual_threshold=1.0, random_state=0).fit(X, y)
        assert model.inlier_mask_.all()

    def test_seed_reproducibility(self):
        X, y, _ = linear_data(noise=0.2, outliers=10)
        a = RANSACRegressor(random_state=3).fit(X, y).predict(X)
        b = RANSACRegressor(random_state=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)


class TestTheilSen:
    def test_univariate_median_slope(self):
        # classic Theil-Sen: a single wild point cannot move the slope
        x = np.arange(20, dtype=float).reshape(-1, 1)
        y = 2.0 * x.ravel() + 1.0
        y[-1] += 100.0
        model = TheilSenRegressor(random_state=0).fit(x, y)
        assert model.coef_[0] == pytest.approx(2.0, abs=0.1)

    def test_multivariate_recovery(self):
        X, y, coef = linear_data(n=60, p=3, noise=0.05, seed=12)
        model = TheilSenRegressor(random_state=0, max_subpopulation=2000).fit(X, y)
        assert np.allclose(model.coef_, coef, atol=0.15)

    def test_subsample_validation(self):
        with pytest.raises(ValueError):
            TheilSenRegressor(n_subsamples=99).fit(np.zeros((5, 1)), np.zeros(5))
