"""Estimator plumbing (params/clone/validation) and metric correctness."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml import (
    LinearRegression,
    NotFittedError,
    Ridge,
    clone,
    max_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    median_absolute_error,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.base import check_array, check_X_y


class TestEstimatorPlumbing:
    def test_get_params_reflects_init(self):
        assert Ridge(alpha=0.5).get_params() == {"alpha": 0.5, "fit_intercept": True}

    def test_set_params_roundtrip(self):
        model = Ridge().set_params(alpha=2.0)
        assert model.alpha == 2.0

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            Ridge().set_params(bogus=1)

    def test_clone_is_unfitted_copy(self):
        model = Ridge(alpha=3.0)
        model.fit([[1.0], [2.0], [3.0]], [1.0, 2.0, 3.0])
        fresh = clone(model)
        assert fresh.alpha == 3.0
        assert fresh.coef_ is None

    def test_repr_contains_params(self):
        assert "alpha=0.5" in repr(Ridge(alpha=0.5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict([[1.0]])

    def test_score_is_r2(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = 3.0 * X.ravel() + 1.0
        model = LinearRegression().fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0)


class TestValidation:
    def test_check_array_promotes_1d(self):
        assert check_array([1.0, 2.0]).shape == (2, 1)

    def test_check_array_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[np.nan]])

    def test_check_array_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_array(np.zeros((2, 2, 2)))

    def test_check_array_rejects_empty(self):
        with pytest.raises(ValueError, match="0 samples"):
            check_array(np.zeros((0, 3)))

    def test_check_X_y_length_mismatch(self):
        with pytest.raises(ValueError, match="samples"):
            check_X_y([[1.0], [2.0]], [1.0])

    def test_check_X_y_rejects_inf_target(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0]], [np.inf])


class TestMetricsKnownValues:
    y = np.array([1.0, 2.0, 3.0, 4.0])
    p = np.array([1.0, 2.0, 3.0, 0.0])

    def test_mse(self):
        assert mean_squared_error(self.y, self.p) == pytest.approx(4.0)

    def test_rmse(self):
        assert root_mean_squared_error(self.y, self.p) == pytest.approx(2.0)

    def test_mae(self):
        assert mean_absolute_error(self.y, self.p) == pytest.approx(1.0)

    def test_median_ae(self):
        assert median_absolute_error(self.y, self.p) == pytest.approx(0.0)

    def test_max_error(self):
        assert max_error(self.y, self.p) == pytest.approx(4.0)

    def test_r2_perfect(self):
        assert r2_score(self.y, self.y) == pytest.approx(1.0)

    def test_r2_mean_model_is_zero(self):
        assert r2_score(self.y, np.full(4, self.y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_mape(self):
        assert mean_absolute_percentage_error([1.0, 2.0], [1.1, 1.8]) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


finite_arrays = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=50),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestMetricProperties:
    @given(finite_arrays)
    def test_rmse_zero_iff_equal(self, y):
        assert root_mean_squared_error(y, y) == 0.0

    @given(finite_arrays, st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_mse_shift_equivariance(self, y, delta):
        # shifting predictions by delta gives MSE >= delta-free baseline 0
        assert mean_squared_error(y, y + delta) == pytest.approx(delta**2, rel=1e-6, abs=1e-9)

    @given(finite_arrays)
    def test_rmse_le_max_error(self, y):
        p = y + 1.0
        assert root_mean_squared_error(y, p) <= max_error(y, p) + 1e-12

    @given(finite_arrays)
    def test_mae_le_rmse(self, y):
        p = np.roll(y, 1)
        assert mean_absolute_error(y, p) <= root_mean_squared_error(y, p) + 1e-9
