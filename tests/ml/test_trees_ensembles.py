"""CART and the five ensemble regressors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    AdaBoostRegressor,
    BaggingRegressor,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
    LinearRegression,
    RandomForestRegressor,
    root_mean_squared_error,
)


def friedman_like(n=300, seed=0, noise=0.2):
    """Nonlinear benchmark where trees should beat a linear model."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 5))
    y = (
        10.0 * np.sin(np.pi * X[:, 0] * X[:, 1])
        + 20.0 * (X[:, 2] - 0.5) ** 2
        + 10.0 * X[:, 3]
        + 5.0 * X[:, 4]
        + rng.normal(scale=noise, size=n)
    )
    return X, y


class TestDecisionTree:
    def test_unbounded_tree_memorizes_training_data(self):
        X, y = friedman_like(80, noise=0.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), y, atol=1e-10)

    def test_stump_has_two_leaves(self):
        X, y = friedman_like(100)
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree.depth_ == 1
        assert tree.n_leaves_ == 2

    def test_depth_zero_is_mean(self):
        X, y = friedman_like(50)
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(X), y.mean())

    def test_min_samples_leaf_respected(self):
        X, y = friedman_like(100)
        tree = DecisionTreeRegressor(min_samples_leaf=20).fit(X, y)
        # every leaf mean must come from >= 20 samples: the tree therefore
        # has at most 100/20 leaves
        assert tree.n_leaves_ <= 5

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        tree = DecisionTreeRegressor().fit(X, np.full(30, 3.3))
        assert tree.n_leaves_ == 1
        assert np.allclose(tree.predict(X), 3.3)

    def test_splits_on_informative_feature(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 3))
        y = np.where(X[:, 1] > 0.0, 10.0, -10.0)
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree.feature_[0] == 1
        assert abs(tree.threshold_[0]) < 0.2

    def test_sample_weight_changes_fit(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        w = np.array([100.0, 100.0, 1.0, 1.0])
        tree = DecisionTreeRegressor(max_depth=0)
        unweighted = tree.fit(X, y).predict([[1.5]])[0]
        weighted = DecisionTreeRegressor(max_depth=0).fit(X, y, sample_weight=w).predict([[1.5]])[0]
        assert unweighted == pytest.approx(5.0)
        assert weighted < 1.0

    def test_sample_weight_validation(self):
        X, y = friedman_like(10)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(X, y, sample_weight=np.ones(3))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(X, y, sample_weight=-np.ones(10))

    def test_max_features_validation(self):
        X, y = friedman_like(20)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features=0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features=2.0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features="cube").fit(X, y)

    def test_max_features_sqrt_runs(self):
        X, y = friedman_like(100)
        tree = DecisionTreeRegressor(max_features="sqrt", random_state=0).fit(X, y)
        assert np.isfinite(tree.predict(X)).all()

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_depth_never_exceeds_cap(self, cap):
        X, y = friedman_like(120, seed=7)
        tree = DecisionTreeRegressor(max_depth=cap).fit(X, y)
        assert tree.depth_ <= cap

    def test_deeper_fits_training_better(self):
        X, y = friedman_like(200, seed=3)
        errs = [
            root_mean_squared_error(
                y, DecisionTreeRegressor(max_depth=d).fit(X, y).predict(X)
            )
            for d in [1, 3, 6]
        ]
        assert errs[0] > errs[1] > errs[2]


class TestEnsemblesBeatBaselines:
    def test_forest_beats_single_tree_out_of_sample(self):
        Xtr, ytr = friedman_like(300, seed=0)
        Xte, yte = friedman_like(200, seed=99)
        tree_rmse = root_mean_squared_error(
            yte, DecisionTreeRegressor(random_state=0).fit(Xtr, ytr).predict(Xte)
        )
        rf_rmse = root_mean_squared_error(
            yte,
            RandomForestRegressor(n_estimators=30, random_state=0).fit(Xtr, ytr).predict(Xte),
        )
        assert rf_rmse < tree_rmse

    def test_gbr_beats_linear_on_nonlinear_data(self):
        Xtr, ytr = friedman_like(300, seed=1)
        Xte, yte = friedman_like(200, seed=98)
        lin = root_mean_squared_error(
            yte, LinearRegression().fit(Xtr, ytr).predict(Xte)
        )
        gbr = root_mean_squared_error(
            yte, GradientBoostingRegressor(random_state=0).fit(Xtr, ytr).predict(Xte)
        )
        assert gbr < lin

    def test_hgbr_close_to_gbr(self):
        Xtr, ytr = friedman_like(400, seed=2)
        Xte, yte = friedman_like(200, seed=97)
        gbr = root_mean_squared_error(
            yte, GradientBoostingRegressor(random_state=0).fit(Xtr, ytr).predict(Xte)
        )
        hgbr = root_mean_squared_error(
            yte, HistGradientBoostingRegressor().fit(Xtr, ytr).predict(Xte)
        )
        assert hgbr < 2.0 * gbr  # same ballpark

    def test_adaboost_beats_its_stump_base(self):
        Xtr, ytr = friedman_like(300, seed=4)
        Xte, yte = friedman_like(200, seed=96)
        base = root_mean_squared_error(
            yte, DecisionTreeRegressor(max_depth=3, random_state=0).fit(Xtr, ytr).predict(Xte)
        )
        boosted = root_mean_squared_error(
            yte, AdaBoostRegressor(random_state=0).fit(Xtr, ytr).predict(Xte)
        )
        assert boosted < base


class TestEnsembleMechanics:
    def test_bagging_reproducible(self):
        X, y = friedman_like(150)
        a = BaggingRegressor(random_state=5).fit(X, y).predict(X)
        b = BaggingRegressor(random_state=5).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_forest_reproducible(self):
        X, y = friedman_like(150)
        a = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_forest_different_seeds_differ(self):
        X, y = friedman_like(150)
        a = RandomForestRegressor(n_estimators=10, random_state=1).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=10, random_state=2).fit(X, y).predict(X)
        assert not np.array_equal(a, b)

    def test_n_estimators_honored(self):
        X, y = friedman_like(100)
        model = RandomForestRegressor(n_estimators=7, random_state=0).fit(X, y)
        assert len(model.estimators_) == 7

    def test_adaboost_weighted_median_between_members(self):
        X, y = friedman_like(100, seed=6)
        model = AdaBoostRegressor(n_estimators=10, random_state=0).fit(X, y)
        preds = np.stack([m.predict(X) for m in model.estimators_])
        combined = model.predict(X)
        assert np.all(combined >= preds.min(axis=0) - 1e-9)
        assert np.all(combined <= preds.max(axis=0) + 1e-9)

    def test_adaboost_loss_variants(self):
        X, y = friedman_like(80, seed=7)
        for loss in ("linear", "square", "exponential"):
            model = AdaBoostRegressor(loss=loss, n_estimators=5, random_state=0).fit(X, y)
            assert np.isfinite(model.predict(X)).all()
        with pytest.raises(ValueError):
            AdaBoostRegressor(loss="cubic")

    def test_gbr_training_loss_decreases(self):
        X, y = friedman_like(200, seed=8)
        model = GradientBoostingRegressor(n_estimators=50, random_state=0).fit(X, y)
        assert model.train_score_[-1] < model.train_score_[0]

    def test_gbr_subsample(self):
        X, y = friedman_like(200, seed=9)
        model = GradientBoostingRegressor(subsample=0.5, random_state=0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)

    def test_bagging_without_bootstrap(self):
        X, y = friedman_like(100)
        model = BaggingRegressor(bootstrap=False, max_samples=0.8, random_state=0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_hgbr_bins_capped(self):
        with pytest.raises(ValueError):
            HistGradientBoostingRegressor(max_bins=1000)

    def test_hgbr_min_samples_leaf(self):
        X, y = friedman_like(100)
        model = HistGradientBoostingRegressor(min_samples_leaf=40).fit(X, y)
        # with so few samples per leaf allowed, trees are tiny but valid
        assert np.isfinite(model.predict(X)).all()

    def test_hgbr_handles_discrete_features(self):
        rng = np.random.default_rng(3)
        X = rng.integers(0, 3, size=(200, 2)).astype(float)
        y = X[:, 0] * 3.0 + X[:, 1]
        model = HistGradientBoostingRegressor(min_samples_leaf=5).fit(X, y)
        assert root_mean_squared_error(y, model.predict(X)) < 0.5

    def test_estimator_count_validation(self):
        for cls in (BaggingRegressor, RandomForestRegressor, AdaBoostRegressor,
                    GradientBoostingRegressor):
            with pytest.raises(ValueError):
                cls(n_estimators=0)
        with pytest.raises(ValueError):
            HistGradientBoostingRegressor(max_iter=0)
