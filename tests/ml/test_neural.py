"""MLPRegressor (future-work extension, Sec. VII)."""

import numpy as np
import pytest

from repro.ml import MLPRegressor, NotFittedError, make_regressor, root_mean_squared_error
from repro.ml.registry import EXTENSION_SPECS


def sine_data(n=300, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-3, 3, size=(n, 2))
    y = np.sin(X[:, 0]) + 0.5 * np.cos(2 * X[:, 1]) + rng.normal(scale=noise, size=n)
    return X, y


class TestMLP:
    def test_learns_nonlinear_function(self):
        X, y = sine_data()
        model = MLPRegressor(hidden_layer_sizes=(32, 32), max_iter=300,
                             random_state=0).fit(X, y)
        assert root_mean_squared_error(y, model.predict(X)) < 0.25

    def test_beats_constant_baseline_out_of_sample(self):
        Xtr, ytr = sine_data(seed=1)
        Xte, yte = sine_data(seed=2)
        model = MLPRegressor(hidden_layer_sizes=(32, 32), max_iter=400,
                             random_state=0).fit(Xtr, ytr)
        mlp_rmse = root_mean_squared_error(yte, model.predict(Xte))
        const_rmse = root_mean_squared_error(yte, np.full_like(yte, ytr.mean()))
        assert mlp_rmse < 0.5 * const_rmse

    def test_linear_data_with_identity_activation(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 1.0
        model = MLPRegressor(hidden_layer_sizes=(8,), activation="identity",
                             max_iter=400, random_state=0).fit(X, y)
        assert root_mean_squared_error(y, model.predict(X)) < 0.2

    def test_tanh_activation(self):
        X, y = sine_data(150)
        model = MLPRegressor(hidden_layer_sizes=(16,), activation="tanh",
                             max_iter=150, random_state=0).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_reproducible_with_seed(self):
        X, y = sine_data(100)
        a = MLPRegressor(max_iter=20, random_state=7).fit(X, y).predict(X)
        b = MLPRegressor(max_iter=20, random_state=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_loss_curve_decreases(self):
        X, y = sine_data(200)
        model = MLPRegressor(max_iter=50, random_state=0).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_early_stopping_bounds_epochs(self):
        X = np.zeros((50, 2))
        y = np.zeros(50)
        model = MLPRegressor(max_iter=200, random_state=0).fit(X, y)
        assert model.n_iter_ < 200

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().predict([[0.0, 0.0]])

    def test_feature_mismatch(self):
        X, y = sine_data(50)
        model = MLPRegressor(max_iter=5, random_state=0).fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((3, 5)))

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPRegressor(activation="gelu")
        with pytest.raises(ValueError):
            MLPRegressor(hidden_layer_sizes=(0,))
        with pytest.raises(ValueError):
            MLPRegressor(max_iter=0)

    def test_registered_as_extension_x1(self):
        assert "X1" in EXTENSION_SPECS
        model = make_regressor("X1")
        assert isinstance(model, MLPRegressor)

    def test_runs_through_hecate_pipeline(self):
        from repro.datasets import generate_uq_wireless
        from repro.hecate import evaluate_pipeline

        ds = generate_uq_wireless()
        result = evaluate_pipeline(
            ds.lte, MLPRegressor(hidden_layer_sizes=(16,), max_iter=60,
                                 random_state=0)
        )
        assert np.isfinite(result.rmse)
        # in the same league as the roster's models on the LTE path
        assert result.rmse < 3.0 * ds.lte.std()
