"""End-to-end service-mode tests: same-seed determinism, the admission
ledger, the columnar SLO series, and the re-optimization convergence
probe."""

import json

from repro.framework.service_mode import (
    CONVERGENCE_METRIC,
    COUNTER_METRICS,
    ServiceDriver,
    ServiceResult,
    run_service,
)
from repro.scenarios import (
    ChurnSpec,
    PolicySpec,
    ServiceWorkload,
    TopologySpec,
    get_workload,
    list_workloads,
)

RING = TopologySpec(
    "ring",
    {
        "n_routers": 6,
        "n_host_pairs": 2,
        "rate_mbps": 50.0,
        "host_rate_mbps": 100.0,
    },
)


def quick_workload(**overrides):
    return get_workload("ring-steady").with_overrides(
        duration=overrides.pop("duration", 8.0),
        warmup=overrides.pop("warmup", 2.0),
        **overrides,
    )


class TestDeterminism:
    def test_same_seed_runs_serialize_byte_identical(self):
        """The acceptance bar: two runs of the same workload and seed
        produce JSON artifacts that are equal byte for byte — admission
        counts, latency percentiles, and the retired-set digest."""
        a = run_service(quick_workload(), rate=40.0, seed=5)
        b = run_service(quick_workload(), rate=40.0, seed=5)
        dump = lambda r: json.dumps(r.to_dict(), indent=2, sort_keys=True)  # noqa: E731
        assert dump(a) == dump(b)

    def test_different_seeds_diverge(self):
        a = run_service(quick_workload(), rate=40.0, seed=5)
        b = run_service(quick_workload(), rate=40.0, seed=6)
        assert a.retired_digest != b.retired_digest

    def test_result_round_trips_through_dict(self):
        result = run_service(quick_workload(duration=4.0, warmup=1.0))
        clone = ServiceResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone == result

    def test_overrides_are_recorded(self):
        result = run_service(
            quick_workload(), rate=25.0, duration=4.0, warmup=1.0, seed=9
        )
        assert result.rate == 25.0
        assert result.duration_s == 4.0
        assert result.warmup_s == 1.0
        assert result.seed == 9


class TestLedgerAndStore:
    def test_counters_reconcile_and_flows_retire(self):
        result = run_service(quick_workload(), rate=40.0, seed=3)
        assert result.offered > 0
        assert result.reconciles()
        assert result.admitted + result.rejected + result.deferred_pending == (
            result.offered
        )
        assert result.placed + result.place_failed == result.admitted
        assert result.placed - result.retired == result.active_at_end
        # mean holding 1.5 s over an 8 s run: most flows depart in-run
        assert result.retired > 0
        assert result.place_failed == 0

    def test_counter_rows_land_in_columnar_store(self):
        driver = ServiceDriver(quick_workload(duration=4.0), rate=40.0, seed=3)
        result = driver.run()
        db = driver.sdn.db
        for metric in COUNTER_METRICS:
            assert db.count(metric) == result.batches
        # the final row is the final ledger
        assert db.latest("service:offered") == float(result.offered)
        assert db.latest("service:admitted") == float(result.admitted)
        assert db.latest("service:placed") == float(result.placed)
        assert db.latest("service:active") == float(result.active_at_end)

    def test_placement_percentiles_ordered_and_sampled(self):
        result = run_service(quick_workload(), rate=40.0, seed=3)
        assert result.placement_samples > 0
        assert (
            0.0
            < result.placement_p50_ms
            <= result.placement_p95_ms
            <= result.placement_p99_ms
        )
        # virtual-time queueing delay under an uncontended bucket is
        # bounded by one batch interval (100 ms)
        assert result.placement_p99_ms <= 100.0 + 1e-9

    def test_registered_workloads_present(self):
        names = [w.name for w in list_workloads()]
        assert names == sorted(names)
        for expected in ("fat-tree-churn", "geo-diurnal", "ring-steady"):
            assert expected in names


class TestConvergenceProbe:
    def test_reopt_ticks_fire_on_ring_steady(self):
        result = run_service(quick_workload(duration=12.0), rate=30.0, seed=1)
        assert result.reopt_ticks >= 2
        assert result.migrations >= 0

    def test_episode_opens_on_migration_and_settles_on_quiet_tick(self):
        """Drive the probe directly: a tick with migrations opens an
        episode, further migrating ticks extend it, and the first quiet
        tick closes it with the episode's virtual-time span."""

        class FakeController:
            migrations_total = 0

        driver = ServiceDriver(quick_workload(warmup=0.0))
        sim = driver.sdn.network.sim
        fake = FakeController()

        driver._on_reopt(fake)  # quiet before any episode: no sample
        sim.run(until=1.0)
        fake.migrations_total = 3
        driver._on_reopt(fake)  # episode opens at t=1
        sim.run(until=2.0)
        fake.migrations_total = 5
        driver._on_reopt(fake)  # still unstable
        sim.run(until=3.5)
        driver._on_reopt(fake)  # quiet: settles, span 2.5 s
        assert driver.collector.convergence_s == [2.5]
        assert driver.sdn.db.count(CONVERGENCE_METRIC) == 1

        sim.run(until=4.0)
        driver._on_reopt(fake)  # quiet again: no second sample
        assert len(driver.collector.convergence_s) == 1

    def test_trace_burst_that_stops_lets_the_reoptimizer_settle(self):
        """A trace whose arrivals stop partway: once the population
        drains, re-optimization ticks migrate nothing and any open
        episode must close (no sample leaks past the end)."""
        trace = tuple(0.05 + 0.01 * i for i in range(20))
        workload = ServiceWorkload(
            name="trace-settle",
            description="burst then silence",
            topology=RING,
            churn=ChurnSpec(
                arrival="trace",
                trace=trace,
                mean_holding_s=1.0,
                n_pairs=4,
                admission_rate=500.0,
                admission_burst=64,
            ),
            policy=PolicySpec(reoptimize_every=1.0),
            duration=10.0,
            warmup=0.0,
            seed=2,
        )
        result = run_service(workload)
        assert result.offered == 20
        assert result.reconciles()
        assert result.reopt_ticks >= 8
        # every flow departs well before t=10: the tail ticks are quiet
        assert result.active_at_end == 0
        assert result.retired == result.placed
        if result.migrations > 0:
            # churn caused at least one episode; silence closed it
            assert result.convergence_samples >= 1
