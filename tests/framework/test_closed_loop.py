"""Integration tests of the full Fig. 3/4 closed loop on the emulated
Global P4 Lab testbed."""

import pytest

from repro.core import SelfDrivingNetwork, fig12_capacities, global_p4_lab
from repro.ml import LinearRegression


def build_sdn(reoptimize_every=None, rates=None, delays=None):
    net = global_p4_lab(rates=rates or fig12_capacities(), delays=delays)
    sdn = SelfDrivingNetwork(
        net, model_factory=LinearRegression, reoptimize_every=reoptimize_every
    )
    sdn.add_tunnel("T1", 1, ["MIA", "SAO", "AMS"])
    sdn.add_tunnel("T2", 2, ["MIA", "CHI", "AMS"])
    sdn.add_tunnel("T3", 3, ["MIA", "CAL", "CHI", "AMS"])
    return sdn


class TestFlowPlacement:
    def test_fig4_sequence_runs_end_to_end(self):
        sdn = build_sdn()
        sdn.run(until=35.0)  # warm telemetry past Hecate's training floor
        result = sdn.request_flow(
            flow_name="f1", src="host1", dst="host2", protocol="tcp",
            tos=32, duration=10.0,
        )
        assert result["ok"] and result["controller"]["ok"]
        record = sdn.flow("f1")
        assert record.tunnel == "T1"  # fattest tunnel wins max_bandwidth
        sdn.run(until=50.0)
        assert record.app.goodput_mbps() > 10.0

    def test_bus_log_contains_fig4_conversation(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=5.0)
        topics = [m.topic for m in sdn.bus.log]
        # the Fig. 4 sequence in order: insert -> schedule -> telemetry ->
        # hecate -> freertr reconfiguration
        for topic in ["dashboard.insert_new_flow", "scheduler.new_flow",
                      "telemetry.get", "hecate.ask_path", "freertr.reconfig"]:
            assert topic in topics, topic
        assert topics.index("dashboard.insert_new_flow") < topics.index(
            "hecate.ask_path"
        )

    def test_decisions_are_audited(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=5.0)
        assert len(sdn.decision_log()) == 1
        assert sdn.decision_log()[0]["path"] == "T1"

    def test_flow_without_tunnels_fails_cleanly(self):
        net = global_p4_lab()
        sdn = SelfDrivingNetwork(net, model_factory=LinearRegression)
        result = sdn.request_flow(flow_name="f1", src="host1", dst="host2")
        assert result["controller"]["ok"] is False
        assert "no tunnels" in result["controller"]["error"]

    def test_duplicate_tunnel_rejected(self):
        sdn = build_sdn()
        with pytest.raises(ValueError):
            sdn.add_tunnel("T1", 9, ["MIA", "SAO", "AMS"])

    def test_icmp_flow_placed(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="ping1", src="host1", dst="host2",
                         protocol="icmp", duration=5.0)
        sdn.run(until=45.0)
        app = sdn.flow("ping1").app
        assert app.received > 0


class TestSelfDrivingReoptimization:
    def test_fig12_spread_happens_automatically(self):
        sdn = build_sdn(reoptimize_every=5.0)
        sdn.run(until=35.0)
        for i, tos in enumerate([32, 64, 96], start=1):
            sdn.request_flow(flow_name=f"f{i}", src="host1", dst="host2",
                             protocol="tcp", tos=tos, duration=45.0)
        sdn.run(until=80.0)
        tunnels = sorted(sdn.flow(f"f{i}").tunnel for i in range(1, 4))
        assert tunnels == ["T1", "T2", "T3"]
        total_before = sum(
            sdn.flow(f"f{i}").app.goodput_mbps(36.0, 40.0) for i in range(1, 4)
        )
        total_after = sum(
            sdn.flow(f"f{i}").app.goodput_mbps(55.0, 75.0) for i in range(1, 4)
        )
        assert total_before < 21.0
        assert total_after > 28.0  # paper: ~30 Mbps after the spread

    def test_no_oscillation_once_spread(self):
        sdn = build_sdn(reoptimize_every=5.0)
        sdn.run(until=35.0)
        for i, tos in enumerate([32, 64, 96], start=1):
            sdn.request_flow(flow_name=f"f{i}", src="host1", dst="host2",
                             protocol="tcp", tos=tos, duration=45.0)
        sdn.run(until=80.0)
        for i in range(1, 4):
            assert len(sdn.flow(f"f{i}").migrations) <= 1

    def test_migration_is_single_pbr_touch(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=30.0)
        policy = sdn.router_config.policy("MIA")
        before = policy.reconfigurations
        sdn.migrate_flow("f1", "T2")
        assert policy.reconfigurations == before + 1
        assert sdn.flow("f1").tunnel == "T2"
        assert sdn.flow("f1").migrations[0][1:] == ("T1", "T2")

    def test_migrate_to_same_tunnel_is_noop(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=30.0)
        sdn.migrate_flow("f1", "T1")
        assert sdn.flow("f1").migrations == []

    def test_reoptimize_now_idempotent_when_optimal(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=30.0)
        sdn.controller.reoptimize_now()
        sdn.controller.reoptimize_now()
        assert len(sdn.flow("f1").migrations) == 0


class TestFig11Migration:
    def test_latency_drops_after_manual_migration(self):
        """Fig. 11 via the framework: ping rides T1 (with the 20 ms tc
        delay on MIA-SAO); migrating to T2 drops the one-way latency."""
        sdn = build_sdn(delays={("MIA", "SAO"): 21.0})
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="ping1", src="host1", dst="host2",
                         protocol="icmp", duration=60.0)
        # force T1 first (Hecate may prefer any; this is Fig 11's phase i)
        sdn.migrate_flow("ping1", "T1")
        sdn.run(until=60.0)
        sdn.migrate_flow("ping1", "T2")
        sdn.run(until=85.0)
        app = sdn.flow("ping1").app
        t, rtts = app.rtt_series()
        before = rtts[(t > 40) & (t < 59)].mean()
        after = rtts[t > 61].mean()
        assert before - after > 15.0  # ~20 ms one-way improvement

    def test_dashboard_views_render(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=20.0)
        sdn.run(until=45.0)
        links = sdn.dashboard.render_links([("MIA", "SAO"), ("MIA", "CHI")])
        assert "MIA" in links
        table = sdn.dashboard.flow_table()
        assert "f1" in table and "T1" in table


class TestIncrementalReoptimization:
    def test_unchanged_group_skipped_on_second_tick(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=30.0)
        controller = sdn.controller
        controller.reoptimize_now()
        assert controller.reopt_solved == 1
        # no sim time has passed: membership, link state and telemetry
        # are all identical, so the group must be skipped
        controller.reoptimize_now()
        assert controller.reopt_solved == 1
        assert controller.reopt_skipped == 1

    def test_link_state_change_forces_resolve(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=30.0)
        controller = sdn.controller
        controller.reoptimize_now()
        controller.reoptimize_now()
        solved = controller.reopt_solved
        sdn.network.fail_link("MIA", "SAO")  # on candidate tunnel T1
        controller.reoptimize_now()
        assert controller.reopt_solved == solved + 1

    def test_membership_change_forces_resolve(self):
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=30.0)
        controller = sdn.controller
        controller.reoptimize_now()
        controller.reoptimize_now()
        solved = controller.reopt_solved
        sdn.request_flow(flow_name="f2", src="host1", dst="host2",
                         protocol="tcp", tos=64, duration=30.0)
        controller.reoptimize_now()
        assert controller.reopt_solved == solved + 1

    def test_batched_tick_uses_one_hecate_request(self):
        """A re-optimization tick issues exactly one ask_path_batch
        message no matter how many groups are stale."""
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=30.0)
        before = [m.topic for m in sdn.bus.log].count(
            "hecate.ask_path_batch"
        )
        sdn.controller.reoptimize_now()
        topics = [m.topic for m in sdn.bus.log]
        assert topics.count("hecate.ask_path_batch") == before + 1
        # decisions audit keeps growing through the batch path
        assert sdn.decision_log()

    def test_fig12_spread_still_reaches_all_tunnels(self):
        """The incremental tick must not lose the Fig. 12 behaviour:
        the first solve spreads the three flows over T1-T3."""
        sdn = build_sdn(reoptimize_every=5.0)
        sdn.run(until=35.0)
        for i, tos in enumerate([32, 64, 96], start=1):
            sdn.request_flow(flow_name=f"f{i}", src="host1", dst="host2",
                             protocol="tcp", tos=tos, duration=45.0)
        sdn.run(until=80.0)
        tunnels = sorted(sdn.flow(f"f{i}").tunnel for i in range(1, 4))
        assert tunnels == ["T1", "T2", "T3"]
        # steady state after the spread: ticks keep getting skipped
        assert sdn.controller.reopt_skipped > 0


class TestFlowRateEstimateWindow:
    def test_window_clamped_to_flow_start(self):
        """An early re-optimization tick must average a young flow over
        its actual lifetime, not a 5 s window padded with pre-start
        zeros (which halved the estimate here)."""
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="f1", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=30.0)
        sdn.run(until=37.0)  # flow is 2 s old, now - 5 predates it
        record = sdn.flow("f1")
        app = record.app
        now = sdn.network.sim.now
        estimate = sdn.controller._flow_rate_estimate(record)
        assert estimate == pytest.approx(
            app.goodput_mbps(app.started_at, now)
        )
        diluted = app.goodput_mbps(max(0.0, now - 5.0), now)
        assert estimate > diluted * 2.0  # 35..37 of a [32,37] window

    def test_not_yet_started_flows_excluded_from_reoptimization(self):
        """A placed flow whose start_at lies in the future carries no
        load yet; the optimizer must not migrate live flows to make
        room for it (phased scenarios schedule starts deep into the
        horizon)."""
        sdn = build_sdn()
        sdn.run(until=35.0)
        sdn.request_flow(flow_name="live", src="host1", dst="host2",
                         protocol="tcp", tos=32, duration=30.0)
        sdn.request_flow(flow_name="later", src="host1", dst="host2",
                         protocol="udp", tos=64, rate_mbps=15.0,
                         duration=10.0, start_at=100.0)
        controller = sdn.controller
        controller.reoptimize_now()
        sig = controller._group_snapshots[("MIA", "AMS")]
        assert [name for name, _ in sig[0]] == ["live"]
