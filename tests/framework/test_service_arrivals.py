"""Property-based tests of the service-mode arrival generator.

The open-loop driver's determinism guarantee rests entirely on
:func:`repro.framework.service_mode.generate_schedule` being a pure
function of ``(churn, duration, seed, pairs)`` — these tests pin that,
plus the statistical contract (empirical rate near the configured rate)
and the SLO collector's warmup exclusion.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.service_mode import SLOCollector, generate_schedule
from repro.net.telemetry import TimeSeriesDB
from repro.scenarios import ChurnSpec

PAIRS = (("h1", "h2"), ("h3", "h4"), ("h1", "h4"))


class TestScheduleDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rate=st.floats(min_value=5.0, max_value=120.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_seed_byte_identical(self, seed, rate):
        """Two generations with the same inputs are exactly equal —
        every arrival instant, holding time, name, and pair, bit for
        bit (frozen dataclasses compare by value, floats exactly)."""
        churn = ChurnSpec(rate=rate)
        a = generate_schedule(churn, 20.0, seed, PAIRS)
        b = generate_schedule(churn, 20.0, seed, PAIRS)
        assert a == b

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_diurnal_same_seed_identical(self, seed):
        churn = ChurnSpec(
            rate=40.0, rate_profile="diurnal", diurnal_amplitude=0.7,
            diurnal_period=10.0,
        )
        a = generate_schedule(churn, 20.0, seed, PAIRS)
        b = generate_schedule(churn, 20.0, seed, PAIRS)
        assert a == b

    def test_different_seeds_differ(self):
        churn = ChurnSpec(rate=50.0)
        assert generate_schedule(churn, 10.0, 0, PAIRS) != generate_schedule(
            churn, 10.0, 1, PAIRS
        )


class TestScheduleShape:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rate=st.floats(min_value=5.0, max_value=120.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_arrivals_sorted_in_range_named_in_order(self, seed, rate):
        duration = 15.0
        schedule = generate_schedule(ChurnSpec(rate=rate), duration, seed, PAIRS)
        times = [f.at for f in schedule]
        assert times == sorted(times)
        assert all(0.0 <= t < duration for t in times)
        assert all(f.holding > 0 for f in schedule)
        assert [f.name for f in schedule] == [
            f"svc{i:06d}" for i in range(len(schedule))
        ]
        assert all(1 <= f.tos <= 255 for f in schedule)
        assert all((f.src, f.dst) in PAIRS for f in schedule)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_empirical_rate_within_tolerance(self, seed):
        """The arrival count concentrates around rate * duration: a
        Poisson(lambda) count stays within 5 sqrt(lambda) + 5 of its
        mean for any seed hypothesis can find (a ~5-sigma bound, so the
        test pins the generator's rate without flaking)."""
        rate, duration = 80.0, 40.0
        schedule = generate_schedule(
            ChurnSpec(rate=rate), duration, seed, PAIRS
        )
        expected = rate * duration
        assert abs(len(schedule) - expected) <= 5.0 * np.sqrt(expected) + 5.0

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_diurnal_mean_rate_over_full_periods(self, seed):
        """Over an integer number of diurnal periods the sinusoid
        integrates away, so the count concentrates around the base
        rate exactly like the constant profile."""
        rate, period = 60.0, 10.0
        duration = 4 * period
        schedule = generate_schedule(
            ChurnSpec(
                rate=rate, rate_profile="diurnal",
                diurnal_amplitude=0.8, diurnal_period=period,
            ),
            duration,
            seed,
            PAIRS,
        )
        expected = rate * duration
        assert abs(len(schedule) - expected) <= 5.0 * np.sqrt(expected) + 5.0

    def test_diurnal_trough_at_start_peak_mid_period(self):
        """The diurnal profile's phase is pinned: arrivals cluster
        around the period's middle (peak) and thin out at its edges
        (trough at t=0)."""
        churn = ChurnSpec(
            rate=60.0, rate_profile="diurnal",
            diurnal_amplitude=0.9, diurnal_period=40.0,
        )
        schedule = generate_schedule(churn, 40.0, 3, PAIRS)
        quarter = [0, 0, 0, 0]
        for flow in schedule:
            quarter[min(3, int(flow.at / 10.0))] += 1
        # middle half (rate above base) must out-arrive the outer half
        assert quarter[1] + quarter[2] > quarter[0] + quarter[3]

    def test_trace_replayed_verbatim(self):
        trace = (0.5, 1.25, 1.25, 7.0, 12.0)
        churn = ChurnSpec(arrival="trace", trace=trace)
        schedule = generate_schedule(churn, 10.0, 0, PAIRS)
        # the 12.0 arrival is beyond the 10 s duration and dropped
        assert [f.at for f in schedule] == [0.5, 1.25, 1.25, 7.0]

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_lognormal_holding_mean_parameterization(self, seed):
        """The lognormal is parameterized by its *mean*: the sample
        mean of many holdings lands near mean_holding_s (generous
        bound; the distribution is heavy-tailed)."""
        churn = ChurnSpec(
            rate=100.0, holding="lognormal", mean_holding_s=3.0, sigma=0.6
        )
        schedule = generate_schedule(churn, 40.0, seed, PAIRS)
        sample_mean = float(np.mean([f.holding for f in schedule]))
        assert 2.0 < sample_mean < 4.5


class TestWarmupExclusion:
    @given(
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=30.0),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_only_post_warmup_samples_enter_percentiles(self, arrivals):
        """The percentile pool contains exactly the placements whose
        *arrival* is at or past the warmup boundary — early samples
        never skew steady-state SLOs, late ones are never dropped."""
        warmup = 10.0
        collector = SLOCollector(TimeSeriesDB(), warmup=warmup)
        for at in arrivals:
            collector.record_placement(at, at + 0.05)
        expected = sum(1 for at in arrivals if at >= warmup)
        assert len(collector.placement_ms) == expected
        assert collector.db.count(
            "service:placement_latency_ms"
        ) == expected

    def test_percentiles_of_empty_pool_are_zero(self):
        collector = SLOCollector(TimeSeriesDB(), warmup=5.0)
        assert collector.percentile(collector.placement_ms, 99) == 0.0
