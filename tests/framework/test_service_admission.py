"""Admission-control edge cases: the token bucket in isolation and the
open-loop driver's reject/defer handling end to end."""

import pytest

from repro.framework.service_mode import ServiceDriver, TokenBucket, run_service
from repro.scenarios import ChurnSpec, PolicySpec, ServiceWorkload, TopologySpec

RING = TopologySpec(
    "ring",
    {
        "n_routers": 6,
        "n_host_pairs": 2,
        "rate_mbps": 50.0,
        "host_rate_mbps": 100.0,
    },
)


def make_workload(churn, duration=2.0, warmup=0.0, name="admission-test"):
    return ServiceWorkload(
        name=name,
        description="admission edge-case fixture",
        topology=RING,
        churn=churn,
        policy=PolicySpec(),
        duration=duration,
        warmup=warmup,
        seed=11,
    )


class TestTokenBucket:
    def test_zero_rate_zero_depth_admits_nothing(self):
        bucket = TokenBucket(rate=0.0, depth=0)
        assert not any(bucket.try_take(t * 0.1) for t in range(50))

    def test_burst_exactly_at_depth(self):
        bucket = TokenBucket(rate=0.0, depth=5)
        taken = [bucket.try_take(0.0) for _ in range(6)]
        assert taken == [True] * 5 + [False]

    def test_refill_capped_at_depth(self):
        bucket = TokenBucket(rate=100.0, depth=3)
        for _ in range(3):
            assert bucket.try_take(0.0)
        # an hour of idle accrual still caps at the depth
        taken = [bucket.try_take(3600.0) for _ in range(4)]
        assert taken == [True, True, True, False]

    def test_lazy_refill_tracks_virtual_time(self):
        bucket = TokenBucket(rate=2.0, depth=2)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # drained
        assert bucket.try_take(0.5)  # 0.5 s * 2/s = 1 token back
        assert not bucket.try_take(0.5)
        assert bucket.try_take(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, depth=4)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, depth=-1)


class TestDriverAdmission:
    def test_zero_capacity_reject_mode_rejects_all(self):
        churn = ChurnSpec(
            rate=40.0,
            mean_holding_s=0.5,
            admission_rate=0.0,
            admission_burst=0,
            on_exhausted="reject",
        )
        result = run_service(make_workload(churn))
        assert result.offered > 0
        assert result.admitted == 0
        assert result.placed == 0
        assert result.rejected == result.offered
        assert result.reconciles()

    def test_burst_exactly_at_depth_all_admitted(self):
        """depth simultaneous arrivals with a zero refill rate: the
        burst is admitted in full, arrival depth+1 is rejected."""
        trace = tuple([0.05] * 6 + [0.06])
        churn = ChurnSpec(
            arrival="trace",
            trace=trace,
            mean_holding_s=0.5,
            admission_rate=0.0,
            admission_burst=6,
            on_exhausted="reject",
        )
        result = run_service(make_workload(churn))
        assert result.offered == 7
        assert result.admitted == 6
        assert result.rejected == 1
        assert result.reconciles()

    def test_deferred_requests_replayed_in_submission_order(self):
        """A burst beyond the bucket defers; as tokens return one per
        tick, replays must preserve arrival order — no later arrival
        may overtake a deferred one."""
        trace = tuple([0.05] * 5 + [0.31, 0.52])
        churn = ChurnSpec(
            arrival="trace",
            trace=trace,
            mean_holding_s=30.0,  # nothing departs during the run
            admission_rate=5.0,  # 1 token per 0.2 s
            admission_burst=2,
            batch_interval_s=0.1,
            on_exhausted="defer",
        )
        driver = ServiceDriver(make_workload(churn, duration=3.0))
        result = driver.run()
        assert result.offered == 7
        assert result.deferrals > 0
        assert result.replayed == result.deferrals
        assert result.deferred_pending == 0
        assert result.admitted == 7
        assert result.reconciles()
        submitted = [r.flow_name for r in driver.sdn.scheduler.requests]
        assert submitted == sorted(submitted)
        assert submitted == [f"svc{i:06d}" for i in range(7)]

    def test_late_arrival_queues_behind_deferred_backlog(self):
        """While the defer queue is non-empty, a fresh arrival must not
        grab a token ahead of it even if one is available — it joins
        the back of the queue instead."""
        trace = (0.05, 0.05, 0.05, 1.05)
        churn = ChurnSpec(
            arrival="trace",
            trace=trace,
            mean_holding_s=30.0,
            admission_rate=1.0,
            admission_burst=1,
            batch_interval_s=0.1,
            on_exhausted="defer",
        )
        driver = ServiceDriver(make_workload(churn, duration=5.0))
        result = driver.run()
        # arrival 4 shows up at t=1.05 while svc2 is still queued: it
        # must be counted as a deferral and replay after svc2
        assert result.deferrals == 3
        submitted = [r.flow_name for r in driver.sdn.scheduler.requests]
        assert submitted == [f"svc{i:06d}" for i in range(4)]
        assert result.reconciles()

    def test_defer_mode_counters_reconcile_with_pending_backlog(self):
        """Overload that never drains: the run ends with a non-empty
        defer queue and the ledger still reconciles exactly."""
        churn = ChurnSpec(
            rate=100.0,
            mean_holding_s=30.0,
            admission_rate=10.0,
            admission_burst=4,
            on_exhausted="defer",
        )
        result = run_service(make_workload(churn, duration=2.0))
        assert result.deferred_pending > 0
        assert result.rejected == 0
        assert result.admitted + result.deferred_pending == result.offered
        assert result.reconciles()
