"""Churn-hardening tests: the controller's footprint must track the
*concurrent* population, never lifetime arrivals, and tearing down a
tunnel must evict every cache keyed on it."""

import pytest

from repro.framework.scheduler import FlowRequest
from repro.framework.service_mode import ServiceDriver, _AUDIT_WINDOW
from repro.scenarios import ChurnSpec, PolicySpec, ServiceWorkload, TopologySpec

RING = TopologySpec(
    "ring",
    {
        "n_routers": 6,
        "n_host_pairs": 2,
        "rate_mbps": 50.0,
        "host_rate_mbps": 100.0,
    },
)


def make_driver(churn, duration=10.0, warmup=0.0):
    workload = ServiceWorkload(
        name="churn-test",
        description="bounded-memory fixture",
        topology=RING,
        churn=churn,
        policy=PolicySpec(),
        duration=duration,
        warmup=warmup,
        seed=4,
    )
    return ServiceDriver(workload)


class TestBoundedMemory:
    def test_1k_arrive_depart_cycles_leave_no_residue(self):
        """~1000 full arrive/place/hold/depart cycles: afterwards every
        per-flow structure holds only the still-active population and
        every audit trail respects its retention window.  Before the
        churn-hardening fix, flows, ACLs, scheduler dedup entries and
        group snapshots all grew with lifetime arrivals."""
        driver = make_driver(
            ChurnSpec(
                rate=100.0,
                mean_holding_s=0.3,
                n_pairs=4,
                admission_rate=2000.0,
                admission_burst=256,
            ),
            duration=10.0,
        )
        result = driver.run()
        assert result.offered >= 800  # ~Poisson(1000)
        assert result.placed >= 800
        assert result.retired >= 700  # short holdings: most depart in-run
        assert result.reconciles()

        controller = driver.sdn.controller
        active = result.active_at_end
        # per-flow state tracks concurrency, not lifetime arrivals
        assert len(controller.flows) == active
        assert len(driver.sdn.scheduler._names) == active
        # per-tunnel / per-group state is bounded by the topology
        n_tunnels = len(controller.tunnels)
        assert len(controller._telemetry_cursors) <= n_tunnels
        assert len(controller._group_snapshots) <= len(driver.pairs)
        assert len(driver.sdn.telemetry.path_probes) == n_tunnels
        assert all(
            key[0] in controller.tunnels
            for key in driver.sdn.hecate._forecast_cache
        )
        # audit trails honour their retention windows
        assert len(driver.sdn.bus.log) <= _AUDIT_WINDOW
        assert len(driver.sdn.scheduler.requests) <= _AUDIT_WINDOW
        assert len(controller.decisions) <= _AUDIT_WINDOW

    def test_retired_names_free_for_reuse(self):
        """Scheduler dedup must forget departed flows — resubmitting a
        retired name is a fresh placement, not a duplicate error."""
        driver = make_driver(ChurnSpec(rate=10.0), duration=1.0)
        driver.sdn.network.sim.run(until=0.5)  # first telemetry samples
        request = FlowRequest(
            flow_name="recycled",
            src=driver.pairs[0][0],
            dst=driver.pairs[0][1],
            protocol="udp",
            tos=1,
            duration=5.0,
            rate_mbps=1.0,
        )
        for _ in range(3):
            reply = driver.sdn.scheduler.submit(request)
            assert reply["ok"] and reply["controller"]["ok"]
            driver.sdn.retire_flow("recycled")
        assert "recycled" not in driver.sdn.controller.flows
        # a duplicate while active is still refused
        assert driver.sdn.scheduler.submit(request)["ok"]
        assert not driver.sdn.scheduler.submit(request)["ok"]
        driver.sdn.retire_flow("recycled")


class TestTunnelTeardown:
    def test_remove_tunnel_evicts_every_cache(self):
        driver = make_driver(ChurnSpec(rate=10.0), duration=1.0)
        sdn = driver.sdn
        sdn.network.sim.run(until=0.5)  # first telemetry samples
        controller = sdn.controller
        name = next(iter(controller.tunnels))
        # populate the per-tunnel caches
        sdn.bus.request("hecate.ask_path", paths=[name], horizon=3)
        assert any(k[0] == name for k in sdn.hecate._forecast_cache)
        assert name in sdn.telemetry.path_probes

        controller.remove_tunnel(name)
        assert name not in controller.tunnels
        assert name not in controller._telemetry_cursors
        assert name not in sdn.telemetry.path_probes
        assert not any(k[0] == name for k in sdn.hecate._forecast_cache)
        assert controller._group_snapshots == {}

    def test_remove_tunnel_refuses_while_flows_ride_it(self):
        driver = make_driver(ChurnSpec(rate=10.0), duration=1.0)
        driver.sdn.network.sim.run(until=0.5)  # first telemetry samples
        request = FlowRequest(
            flow_name="rider",
            src=driver.pairs[0][0],
            dst=driver.pairs[0][1],
            protocol="udp",
            tos=1,
            duration=5.0,
            rate_mbps=1.0,
        )
        reply = driver.sdn.scheduler.submit(request)
        assert reply["ok"]
        tunnel = driver.sdn.controller.flows["rider"].tunnel
        with pytest.raises(ValueError, match="rider"):
            driver.sdn.controller.remove_tunnel(tunnel)
        # after retirement the teardown goes through
        driver.sdn.retire_flow("rider")
        driver.sdn.controller.remove_tunnel(tunnel)
        assert tunnel not in driver.sdn.controller.tunnels

    def test_remove_unknown_tunnel_and_flow_raise(self):
        driver = make_driver(ChurnSpec(rate=10.0), duration=1.0)
        with pytest.raises(KeyError):
            driver.sdn.controller.remove_tunnel("no-such-tunnel")
        with pytest.raises(KeyError):
            driver.sdn.controller.remove_flow("no-such-flow")


class TestFlowRemoval:
    def test_remove_flow_unwinds_the_data_plane(self):
        """Retiring a flow must delete its ingress ACL and PBR binding —
        the edge policy returns to its pre-placement size."""
        driver = make_driver(ChurnSpec(rate=10.0), duration=1.0)
        sdn = driver.sdn
        sdn.network.sim.run(until=0.5)  # first telemetry samples
        record_sizes = {}
        for router, policy in sdn.router_config.policies.items():
            record_sizes[router] = (
                len(policy.access_lists),
                len(policy.entries),
            )
        request = FlowRequest(
            flow_name="unwind",
            src=driver.pairs[0][0],
            dst=driver.pairs[0][1],
            protocol="udp",
            tos=7,
            duration=5.0,
            rate_mbps=1.0,
        )
        assert sdn.scheduler.submit(request)["ok"]
        record = sdn.retire_flow("unwind")
        assert record.request.flow_name == "unwind"
        for router, policy in sdn.router_config.policies.items():
            assert record_sizes[router] == (
                len(policy.access_lists),
                len(policy.entries),
            )
        assert "unwind" not in sdn.controller.flows
