"""Scheduler, TelemetryService, Dashboard and assignment optimizer units."""

import numpy as np
import pytest

from repro.bus import MessageBus
from repro.framework import (
    INSERT_FLOW_TOPIC,
    FlowRequest,
    Scheduler,
    TelemetryService,
    sparkline,
)
from repro.framework.dashboard import Dashboard
from repro.hecate.objectives import assign_flows
from repro.topologies import fig12_capacities, global_p4_lab


class TestFlowRequest:
    def test_valid_tcp(self):
        FlowRequest(flow_name="f", src="a", dst="b").validate()

    def test_bad_protocol(self):
        with pytest.raises(ValueError):
            FlowRequest(flow_name="f", src="a", dst="b", protocol="sctp").validate()

    def test_bad_tos(self):
        with pytest.raises(ValueError):
            FlowRequest(flow_name="f", src="a", dst="b", tos=300).validate()

    def test_udp_needs_rate(self):
        with pytest.raises(ValueError):
            FlowRequest(flow_name="f", src="a", dst="b", protocol="udp").validate()

    def test_bad_duration_and_start(self):
        with pytest.raises(ValueError):
            FlowRequest(flow_name="f", src="a", dst="b", duration=0.0).validate()
        with pytest.raises(ValueError):
            FlowRequest(flow_name="f", src="a", dst="b", start_at=-1.0).validate()


class TestScheduler:
    def test_submit_queues_and_forwards(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("scheduler.new_flow", lambda m: seen.append(m.payload["request"]))
        sched = Scheduler(bus)
        result = sched.submit(FlowRequest(flow_name="f1", src="a", dst="b"))
        assert result["ok"]
        assert len(seen) == 1 and seen[0].flow_name == "f1"
        assert len(sched.pending()) == 1

    def test_duplicate_name_rejected(self):
        sched = Scheduler(MessageBus())
        sched.submit(FlowRequest(flow_name="f1", src="a", dst="b"))
        result = sched.submit(FlowRequest(flow_name="f1", src="a", dst="b"))
        assert not result["ok"]
        assert sched.rejected == 1

    def test_insert_flow_topic(self):
        bus = MessageBus()
        sched = Scheduler(bus)
        replies = bus.request(
            INSERT_FLOW_TOPIC, flow_name="f2", src="a", dst="b", tos=5
        )
        assert replies[0]["ok"]
        assert sched.pending()[0].tos == 5

    def test_insert_flow_bad_field(self):
        bus = MessageBus()
        sched = Scheduler(bus)
        replies = bus.request(INSERT_FLOW_TOPIC, flow_name="f", src="a",
                              dst="b", nonsense=1)
        assert replies[0]["ok"] is False


class TestTelemetryService:
    def test_link_sampling_starts(self):
        net = global_p4_lab()
        bus = MessageBus()
        svc = TelemetryService(net, bus)
        svc.start()
        net.run(until=5.0)
        assert len(svc.db) > 0

    def test_path_probe_via_bus(self):
        net = global_p4_lab()
        bus = MessageBus()
        svc = TelemetryService(net, bus)
        svc.start()
        replies = bus.request("telemetry.start", name="T1",
                              path=["MIA", "SAO", "AMS"])
        assert replies[0]["ok"]
        net.run(until=5.0)
        t, v = svc.path_history("T1")
        assert v.size >= 4

    def test_get_topic_returns_series(self):
        net = global_p4_lab()
        bus = MessageBus()
        svc = TelemetryService(net, bus)
        svc.start()
        svc.create_path_probe("T1", ["MIA", "SAO", "AMS"])
        net.run(until=4.0)
        replies = bus.request("telemetry.get", path="T1")
        assert replies[0]["ok"]
        assert len(replies[0]["values"]) >= 3

    def test_get_topic_incremental_cursor(self):
        """``telemetry.get`` with a ``since`` cursor returns only the
        samples appended after it — the Controller's incremental
        getTelemetry pull."""
        net = global_p4_lab()
        bus = MessageBus()
        svc = TelemetryService(net, bus)
        svc.start()
        svc.create_path_probe("T1", ["MIA", "SAO", "AMS"])
        net.run(until=4.0)
        first = bus.request("telemetry.get", path="T1", since=0)[0]
        assert first["ok"] and len(first["values"]) >= 3
        cursor = first["cursor"]
        assert cursor == len(first["values"])
        caught_up = bus.request("telemetry.get", path="T1", since=cursor)[0]
        assert caught_up["values"] == []  # nothing new yet
        assert caught_up["cursor"] == cursor
        net.run(until=8.0)
        more = bus.request("telemetry.get", path="T1", since=cursor)[0]
        assert len(more["values"]) >= 3
        assert more["cursor"] == cursor + len(more["values"])

    def test_get_requires_path(self):
        net = global_p4_lab()
        bus = MessageBus()
        TelemetryService(net, bus)
        replies = bus.request("telemetry.get")
        assert replies[0]["ok"] is False

    def test_probe_idempotent(self):
        net = global_p4_lab()
        svc = TelemetryService(net)
        svc.create_path_probe("T1", ["MIA", "SAO", "AMS"])
        svc.create_path_probe("T1", ["MIA", "SAO", "AMS"])
        assert len(svc.path_probes) == 1

    def test_stop(self):
        net = global_p4_lab()
        svc = TelemetryService(net)
        svc.start()
        net.run(until=2.0)
        svc.stop()
        size_before = len(svc.db.series("link:MIA->SAO:util")[0])
        net.run(until=6.0)
        assert len(svc.db.series("link:MIA->SAO:util")[0]) == size_before


class TestSparkline:
    def test_constant_series(self):
        assert sparkline([1.0, 1.0, 1.0], width=10) == "   "[:1] * 3

    def test_rising_series_rises(self):
        s = sparkline(np.linspace(0, 1, 10), width=10)
        assert s[0] == " " and s[-1] == "@"

    def test_downsampling_to_width(self):
        assert len(sparkline(np.arange(1000.0), width=40)) == 40

    def test_empty(self):
        assert sparkline([], width=5) == "     "


class TestAssignFlows:
    CAPS = dict(fig12_capacities())
    PATHS = {
        "T1": ("MIA", "SAO", "AMS"),
        "T2": ("MIA", "CHI", "AMS"),
        "T3": ("MIA", "CAL", "CHI", "AMS"),
    }

    def test_fig12_spread(self):
        """Three flows piled on T1 are spread one-per-tunnel (35 Mbps)."""
        result = assign_flows(
            current={"f1": "T1", "f2": "T1", "f3": "T1"},
            tunnel_paths=self.PATHS,
            capacities=self.CAPS,
        )
        assert sorted(result.assignment.values()) == ["T1", "T2", "T3"]
        assert result.total_mbps == pytest.approx(35.0)
        assert result.migrations == 2

    def test_stable_assignment_not_churned(self):
        result = assign_flows(
            current={"f1": "T1", "f2": "T2", "f3": "T3"},
            tunnel_paths=self.PATHS,
            capacities=self.CAPS,
        )
        assert result.migrations == 0

    def test_single_flow_takes_fattest_tunnel(self):
        result = assign_flows(
            current={"f1": "T3"},
            tunnel_paths=self.PATHS,
            capacities=self.CAPS,
        )
        assert result.assignment["f1"] == "T1"

    def test_greedy_fallback_matches_small_case(self):
        exhaustive = assign_flows(
            current={"f1": "T1", "f2": "T1", "f3": "T1"},
            tunnel_paths=self.PATHS, capacities=self.CAPS,
        )
        greedy = assign_flows(
            current={"f1": "T1", "f2": "T1", "f3": "T1"},
            tunnel_paths=self.PATHS, capacities=self.CAPS,
            max_enumerate=0,
        )
        assert greedy.total_mbps == pytest.approx(exhaustive.total_mbps)

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_flows({}, self.PATHS, self.CAPS)
        with pytest.raises(ValueError):
            assign_flows({"f": "T1"}, {}, self.CAPS)
        with pytest.raises(KeyError):
            assign_flows({"f": "TX"}, self.PATHS, self.CAPS)


class TestDashboard:
    def test_render_links_and_paths(self):
        net = global_p4_lab()
        bus = MessageBus()
        svc = TelemetryService(net, bus)
        svc.start()
        svc.create_path_probe("T1", ["MIA", "SAO", "AMS"])
        net.run(until=5.0)
        dash = Dashboard(bus, svc.db)
        links_view = dash.render_links([("MIA", "SAO")])
        assert "MIA" in links_view and "[" in links_view
        paths_view = dash.render_paths(["T1"])
        assert "T1" in paths_view

    def test_flow_table_empty(self):
        dash = Dashboard(MessageBus(), None, controller=None)
        assert "no flows" in dash.flow_table()

    def test_request_flow_without_scheduler(self):
        dash = Dashboard(MessageBus(), None)
        assert dash.request_flow(flow_name="f", src="a", dst="b")["ok"] is False
