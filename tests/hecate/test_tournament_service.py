"""Tournament (Fig. 6 shape) and the HecateService bus interface.

The tournament tests pin the *qualitative* findings the paper reports:
which family wins, who is excluded, who trails — not absolute RMSE.
"""

import numpy as np
import pytest

from repro.bus import MessageBus
from repro.datasets import generate_uq_wireless
from repro.hecate import (
    ASK_PATH_BATCH_TOPIC,
    ASK_PATH_TOPIC,
    HecateService,
    PAPER_FIG6_RMSE,
    run_tournament,
)
from repro.ml import LinearRegression
from repro.net.telemetry import TimeSeriesDB


@pytest.fixture(scope="module")
def tournament():
    """One full 18-regressor tournament on the default dataset (shared
    across tests in this module; ~1 minute of model fitting)."""
    return run_tournament(generate_uq_wireless())


class TestTournamentShape:
    def test_all_18_entrants_scored(self, tournament):
        assert len(tournament.entries) == 18
        for e in tournament.entries:
            assert np.isfinite(e.rmse_wifi) and np.isfinite(e.rmse_lte)

    def test_rfr_is_selected_like_the_paper(self, tournament):
        assert tournament.best().label == "RFR"

    def test_rfr_and_gbr_lead_on_wifi(self, tournament):
        """Paper: 'RFR and GBR are the best regression models with the
        lowest RMSE' — in Fig. 6 the separation happens on the WiFi axis
        (WiFi spread 14-23.5 vs LTE spread 6.3-8.3)."""
        included = [e for e in tournament.entries if e.paper_id not in tournament.excluded]
        by_wifi = sorted(included, key=lambda e: e.rmse_wifi)
        assert {by_wifi[0].label, by_wifi[1].label} == {"RFR", "GBR"}

    def test_gpr_excluded_for_being_off_scale(self, tournament):
        """Paper: 'GPR is excluded from the scatter plot due to the high
        RMSE values'."""
        assert "R7" in tournament.excluded
        gpr = tournament.entry("R7")
        others_wifi = [e.rmse_wifi for e in tournament.entries if e.paper_id != "R7"]
        assert gpr.rmse_wifi > 2.0 * np.median(others_wifi)

    def test_gpr_worst_overall(self, tournament):
        worst = max(tournament.entries, key=lambda e: e.distance_to_origin)
        assert worst.paper_id == "R7"

    def test_lasso_and_elasticnet_trail_on_wifi(self, tournament):
        """Paper Fig. 6: Lasso (23.46) and ElasticNet (22.39) sit far
        right on the WiFi axis."""
        lasso = tournament.entry("R10").rmse_wifi
        enet = tournament.entry("R5").rmse_wifi
        included = [
            e.rmse_wifi for e in tournament.entries
            if e.paper_id not in tournament.excluded
        ]
        threshold = np.percentile(included, 75)
        assert lasso > threshold
        assert enet > threshold

    def test_scatter_omits_excluded(self, tournament):
        labels = [p[0] for p in tournament.scatter_points()]
        assert "GPR" not in labels
        assert len(labels) == 18 - len(tournament.excluded)

    def test_paper_reference_table_complete(self):
        assert set(PAPER_FIG6_RMSE) == {f"R{i}" for i in range(1, 19)}

    def test_unknown_entry_lookup(self, tournament):
        with pytest.raises(KeyError):
            tournament.entry("R99")


class TestTournamentOptions:
    def test_subset_of_entrants(self):
        ds = generate_uq_wireless()
        result = run_tournament(ds, entrants=["R11", "R14"])
        assert [e.paper_id for e in result.entries] == ["R11", "R14"]

    def test_gpr_standard_mode_is_less_catastrophic(self):
        ds = generate_uq_wireless()
        paper_mode = run_tournament(ds, entrants=["R7"], gpr_paper_mode=True)
        standard = run_tournament(ds, entrants=["R7"], gpr_paper_mode=False)
        assert (
            standard.entry("R7").rmse_lte < paper_mode.entry("R7").rmse_lte
        )


def seeded_db(paths=("T1", "T2"), n=60, levels=(5.0, 15.0)):
    """Telemetry history where T2 consistently has more headroom."""
    db = TimeSeriesDB()
    rng = np.random.default_rng(0)
    for path, level in zip(paths, levels):
        for t in range(n):
            db.insert(f"path:{path}:available_mbps", float(t),
                      level + rng.normal(scale=0.3))
            db.insert(f"path:{path}:latency_ms", float(t), 100.0 - level)
            db.insert(f"path:{path}:util", float(t), 1.0 - level / 20.0)
    return db


class TestHecateService:
    def test_recommends_path_with_most_headroom(self):
        service = HecateService(seeded_db(), model_factory=LinearRegression)
        rec = service.recommend(["T1", "T2"])
        assert rec.path == "T2"
        assert rec.trained
        assert set(rec.forecasts) == {"T1", "T2"}
        assert len(rec.forecasts["T2"]) == 10

    def test_min_latency_objective(self):
        service = HecateService(seeded_db(), model_factory=LinearRegression)
        rec = service.recommend(["T1", "T2"], objective="min_latency")
        assert rec.path == "T2"  # latency = 100 - level

    def test_cold_start_falls_back_to_last_value(self):
        db = TimeSeriesDB()
        for t in range(5):  # too little to train
            db.insert("path:T1:available_mbps", float(t), 3.0)
            db.insert("path:T2:available_mbps", float(t), 9.0)
        service = HecateService(db, model_factory=LinearRegression)
        rec = service.recommend(["T1", "T2"])
        assert rec.path == "T2"
        assert not rec.trained
        assert rec.forecasts["T2"] == [9.0] * 10

    def test_unknown_path_raises(self):
        service = HecateService(seeded_db(), model_factory=LinearRegression)
        with pytest.raises(KeyError):
            service.recommend(["nope"])

    def test_unknown_objective_raises(self):
        service = HecateService(seeded_db(), model_factory=LinearRegression)
        with pytest.raises(ValueError):
            service.recommend(["T1"], objective="fastest")

    def test_forecast_cache_skips_refit_until_new_sample(self):
        """Forecasts are cached on the store cursor: asking about an
        unchanged series (e.g. many placements within one telemetry
        interval) reuses the fitted forecast; one new sample refits."""
        db = seeded_db()
        service = HecateService(db, model_factory=LinearRegression)
        first = service.forecast_path("T1")
        assert service.fits == 1
        again = service.forecast_path("T1")
        assert again is first  # identical history -> cached object
        assert service.fits == 1
        assert service.forecast_cache_hits == 1
        db.insert("path:T1:available_mbps", 60.0, 5.0)
        refreshed = service.forecast_path("T1")
        assert refreshed is not first
        assert service.fits == 2

    def test_forecast_cache_keyed_on_horizon(self):
        service = HecateService(seeded_db(), model_factory=LinearRegression)
        short = service.forecast_path("T1", horizon=10)
        long = service.forecast_path("T1", horizon=20)
        assert len(short.available_mbps) == 10
        assert len(long.available_mbps) == 20
        assert service.fits == 2  # different horizon -> its own fit
        # alternating horizons must not evict each other's entries
        assert service.forecast_path("T1", horizon=10) is short
        assert service.forecast_path("T1", horizon=20) is long
        assert service.fits == 2
        assert service.forecast_cache_hits == 2

    def test_bus_interface(self):
        bus = MessageBus()
        HecateService(seeded_db(), bus=bus, model_factory=LinearRegression)
        replies = bus.request(ASK_PATH_TOPIC, paths=["T1", "T2"])
        assert len(replies) == 1
        assert replies[0]["ok"] and replies[0]["path"] == "T2"

    def test_bus_errors_reported_in_reply(self):
        bus = MessageBus()
        HecateService(seeded_db(), bus=bus, model_factory=LinearRegression)
        replies = bus.request(ASK_PATH_TOPIC, paths=["ghost"])
        assert replies[0]["ok"] is False

    def test_forecasts_are_non_negative(self):
        db = TimeSeriesDB()
        rng = np.random.default_rng(1)
        for t in range(80):  # headroom trending to zero
            db.insert("path:T1:available_mbps", float(t),
                      max(0.0, 8.0 - 0.1 * t) + rng.normal(scale=0.2))
        service = HecateService(db, model_factory=LinearRegression)
        forecast = service.forecast_path("T1", horizon=20)
        assert (forecast.available_mbps >= 0.0).all()


class TestHecateBatchRecommendations:
    def test_one_recommendation_per_group(self):
        service = HecateService(seeded_db(), model_factory=LinearRegression)
        recs = service.recommend_batch([
            {"paths": ["T1", "T2"], "objective": "max_bandwidth"},
            {"paths": ["T1", "T2"], "objective": "min_latency"},
        ])
        assert [r.path for r in recs] == ["T2", "T2"]
        assert [r.objective for r in recs] == ["max_bandwidth", "min_latency"]

    def test_batch_matches_individual_recommendations(self):
        batched = HecateService(seeded_db(), model_factory=LinearRegression)
        single = HecateService(seeded_db(), model_factory=LinearRegression)
        groups = [{"paths": ["T1", "T2"]}, {"paths": ["T2"]}]
        recs = batched.recommend_batch(groups)
        for group, rec in zip(groups, recs):
            alone = single.recommend(group["paths"])
            assert rec.path == alone.path
            assert rec.forecasts == alone.forecasts

    def test_shared_paths_forecast_once(self):
        """The point of batching: a tunnel shared by N groups is fitted
        once, not N times."""
        calls = []
        service = HecateService(seeded_db(), model_factory=LinearRegression)
        original = service.forecast_path

        def counting(path, horizon=10):
            calls.append(path)
            return original(path, horizon=horizon)

        service.forecast_path = counting
        service.recommend_batch([
            {"paths": ["T1", "T2"]},
            {"paths": ["T1", "T2"]},
            {"paths": ["T2"]},
        ])
        assert sorted(calls) == ["T1", "T2"]

    def test_empty_batch_rejected(self):
        service = HecateService(seeded_db(), model_factory=LinearRegression)
        with pytest.raises(ValueError):
            service.recommend_batch([])

    def test_bus_batch_interface(self):
        bus = MessageBus()
        HecateService(seeded_db(), bus=bus, model_factory=LinearRegression)
        replies = bus.request(
            ASK_PATH_BATCH_TOPIC,
            groups=[{"paths": ["T1", "T2"]}, {"paths": ["T1"]}],
        )
        assert len(replies) == 1 and replies[0]["ok"]
        recs = replies[0]["recommendations"]
        assert all(r["ok"] for r in recs)
        assert [r["path"] for r in recs] == ["T2", "T1"]

    def test_bus_batch_isolates_group_failures(self):
        """A group whose forecast fails (no telemetry for its tunnel)
        must not void the other groups' recommendations."""
        bus = MessageBus()
        HecateService(seeded_db(), bus=bus, model_factory=LinearRegression)
        replies = bus.request(
            ASK_PATH_BATCH_TOPIC,
            groups=[{"paths": ["T1", "T2"]},
                    {"paths": ["ghost"]},
                    {"paths": ["T2"]}],
        )
        assert replies[0]["ok"]
        healthy, broken, alone = replies[0]["recommendations"]
        assert healthy["ok"] and healthy["path"] == "T2"
        assert broken["ok"] is False and "ghost" in broken["error"]
        assert alone["ok"] and alone["path"] == "T2"

    def test_bus_batch_empty_rejected(self):
        bus = MessageBus()
        HecateService(seeded_db(), bus=bus, model_factory=LinearRegression)
        replies = bus.request(ASK_PATH_BATCH_TOPIC, groups=[])
        assert replies[0]["ok"] is False
