"""Exponential-smoothing forecasters (future-work extension, Sec. VII)."""

import numpy as np
import pytest

from repro.hecate import (
    HoltLinear,
    HoltWinters,
    SimpleExpSmoothing,
    TimeSeriesQoSPredictor,
)


class TestSES:
    def test_constant_series_forecasts_constant(self):
        model = SimpleExpSmoothing(alpha=0.5).fit(np.full(50, 7.0))
        assert np.allclose(model.forecast(5), 7.0)

    def test_level_tracks_recent_values(self):
        s = np.concatenate([np.full(50, 0.0), np.full(50, 10.0)])
        model = SimpleExpSmoothing(alpha=0.5).fit(s)
        assert model.forecast(1)[0] == pytest.approx(10.0, abs=0.1)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            SimpleExpSmoothing(alpha=0.0)
        with pytest.raises(ValueError):
            SimpleExpSmoothing(alpha=1.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SimpleExpSmoothing().forecast(1)

    def test_empty_series(self):
        with pytest.raises(ValueError):
            SimpleExpSmoothing().fit([])

    def test_steps_validation(self):
        model = SimpleExpSmoothing().fit([1.0, 2.0])
        with pytest.raises(ValueError):
            model.forecast(0)


class TestHoltLinear:
    def test_extends_linear_trend(self):
        s = 2.0 + 0.5 * np.arange(100)
        model = HoltLinear(alpha=0.8, beta=0.5).fit(s)
        forecast = model.forecast(4)
        expected = 2.0 + 0.5 * np.arange(100, 104)
        assert np.allclose(forecast, expected, atol=0.2)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            HoltLinear().fit([1.0])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HoltLinear(alpha=0.0)
        with pytest.raises(ValueError):
            HoltLinear(beta=2.0)


class TestHoltWinters:
    def test_recovers_seasonal_pattern(self):
        season = np.array([0.0, 5.0, 10.0, 5.0])
        s = np.tile(season, 30) + 20.0
        model = HoltWinters(season_length=4, alpha=0.4, beta=0.05, gamma=0.3).fit(s)
        forecast = model.forecast(8)
        expected = np.tile(season, 2) + 20.0
        assert np.allclose(forecast, expected, atol=1.0)

    def test_trend_plus_season(self):
        season = np.array([-2.0, 2.0])
        n = 80
        s = np.tile(season, n // 2) + 0.1 * np.arange(n)
        model = HoltWinters(season_length=2).fit(s)
        f = model.forecast(2)
        assert f[1] - f[0] == pytest.approx(2 * -(-2.0) + 0.1, abs=1.5)

    def test_too_short_series(self):
        with pytest.raises(ValueError):
            HoltWinters(season_length=10).fit(np.arange(15.0))

    def test_season_length_validation(self):
        with pytest.raises(ValueError):
            HoltWinters(season_length=1)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            HoltWinters(season_length=4, gamma=0.0)


class TestAdapter:
    def test_predict_next_matches_forecast_head(self):
        s = 1.0 + 0.3 * np.arange(60)
        adapter = TimeSeriesQoSPredictor(HoltLinear).fit(s)
        assert adapter.predict_next(s) == pytest.approx(adapter.forecast(s, 3)[0])

    def test_usable_in_place_of_qos_predictor(self):
        """Same call surface the HecateService/QoSPredictor consumers use."""
        s = np.full(40, 9.0)
        adapter = TimeSeriesQoSPredictor(SimpleExpSmoothing).fit(s)
        forecast = adapter.forecast(s, steps=10)
        assert forecast.shape == (10,)
        assert np.allclose(forecast, 9.0)

    def test_forecasts_track_bandwidth_series(self):
        from repro.datasets import generate_uq_wireless

        ds = generate_uq_wireless()
        adapter = TimeSeriesQoSPredictor(HoltLinear)
        forecast = adapter.forecast(ds.lte[:375], steps=10)
        # stays within the physical range of the series
        assert forecast.min() > -20.0 and forecast.max() < 2 * ds.lte.max()
