"""The pluggable objective registry and the app-aware chooser."""

import numpy as np
import pytest

from repro.hecate.objectives import (
    OBJECTIVES,
    ObjectiveSpec,
    PathForecast,
    _REGISTRY,
    choose_max_qoe,
    get_objective,
    list_objectives,
    objective_names,
    register_objective,
)

BUILTINS = (
    "max_bandwidth", "max_qoe", "min_latency", "min_max_utilization",
)


def _forecast(name, mbps, latency_ms=0.0, jitter_ms=0.0, loss_rate=0.0):
    return PathForecast(
        name=name,
        available_mbps=np.full(4, float(mbps)),
        latency_ms=latency_ms,
        jitter_ms=jitter_ms,
        loss_rate=loss_rate,
    )


class TestRegistry:
    def test_builtins_are_registered_sorted(self):
        assert objective_names() == BUILTINS
        assert [s.name for s in list_objectives()] == list(BUILTINS)

    def test_mapping_facade_keeps_call_style(self):
        fat = _forecast("fat", 50.0)
        thin = _forecast("thin", 5.0)
        assert OBJECTIVES["max_bandwidth"]([thin, fat]) is fat
        assert sorted(OBJECTIVES) == list(BUILTINS)
        assert len(OBJECTIVES) == len(BUILTINS)
        with pytest.raises(KeyError):
            OBJECTIVES["no_such_objective"]

    def test_only_max_qoe_is_app_aware(self):
        aware = [s.name for s in list_objectives() if s.app_aware]
        assert aware == ["max_qoe"]

    def test_duplicate_registration_is_an_error(self):
        spec = get_objective("max_bandwidth")
        with pytest.raises(ValueError, match="already registered"):
            register_objective(spec)

    def test_get_objective_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="max_bandwidth"):
            get_objective("fastest")

    def test_plugin_objective_round_trips(self):
        spec = ObjectiveSpec(
            name="test_first_path",
            description="always the first candidate (test plugin)",
            chooser=lambda forecasts, app_class="generic": forecasts[0],
        )
        register_objective(spec)
        try:
            assert "test_first_path" in objective_names()
            first = _forecast("a", 1.0)
            assert OBJECTIVES["test_first_path"]([first]) is first
        finally:
            del _REGISTRY["test_first_path"]
        assert "test_first_path" not in objective_names()


class TestChooseMaxQoe:
    def test_voip_prefers_the_low_latency_path(self):
        far = _forecast("far", 50.0, latency_ms=300.0)
        near = _forecast("near", 1.0, latency_ms=2.0)
        assert choose_max_qoe([far, near], "voip") is near
        # bandwidth-first objectives disagree on the same forecasts
        assert OBJECTIVES["max_bandwidth"]([far, near], "voip") is far

    def test_video_prefers_the_fat_path(self):
        far = _forecast("far", 50.0, latency_ms=300.0)
        near = _forecast("near", 1.0, latency_ms=2.0)
        assert choose_max_qoe([far, near], "video") is far

    def test_generic_degrades_to_max_bandwidth(self):
        far = _forecast("far", 50.0, latency_ms=300.0)
        near = _forecast("near", 1.0, latency_ms=2.0)
        assert choose_max_qoe([far, near]) is far
        assert choose_max_qoe([far, near], "generic") is far

    def test_loss_and_jitter_forecasts_matter(self):
        lossy = _forecast("lossy", 10.0, latency_ms=2.0, loss_rate=0.2)
        clean = _forecast("clean", 10.0, latency_ms=2.0)
        assert choose_max_qoe([lossy, clean], "voip") is clean
        jittery = _forecast("jittery", 10.0, jitter_ms=120.0)
        assert choose_max_qoe([jittery, clean], "voip") is clean

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError, match="no candidate paths"):
            choose_max_qoe([], "voip")


class TestPathForecastFields:
    def test_jitter_and_loss_default_to_zero(self):
        forecast = PathForecast("p", np.ones(3), 1.0, 0.5)
        assert forecast.jitter_ms == 0.0
        assert forecast.loss_rate == 0.0
        assert forecast.mean_available == 1.0
