"""Q-learning path selector (RL extension, paper Secs. II.A & VII)."""

import pytest

from repro.hecate.rl import QLearningPathSelector, TunnelEnv
from repro.topologies import TUNNEL1, TUNNEL2, TUNNEL3, fig12_capacities

PATHS = {"T1": TUNNEL1, "T2": TUNNEL2, "T3": TUNNEL3}


def make_env(seed=0, **kwargs):
    return TunnelEnv(PATHS, fig12_capacities(), random_state=seed, **kwargs)


class TestTunnelEnv:
    def test_state_shape_and_bounds(self):
        env = make_env()
        state = env.reset()
        assert len(state) == 3
        assert all(0 <= s < env.n_bins for s in state)

    def test_empty_network_rewards_bottleneck(self):
        env = make_env(max_background=0)
        env.reset()
        rewards = [env.step(a) for a in range(env.n_actions)]
        # T1=20, T2=10, T3=5 bottlenecks with no competition
        assert rewards == [pytest.approx(20.0), pytest.approx(10.0),
                           pytest.approx(5.0)]

    def test_background_reduces_reward(self):
        env = make_env(max_background=0)
        env.reset()
        free = env.step(0)
        env._background = {"T1": 3, "T2": 0, "T3": 0}
        loaded = env.step(0)
        assert loaded < free

    def test_oracle_prefers_empty_tunnel(self):
        env = make_env(max_background=0)
        env.reset()
        env._background = {"T1": 3, "T2": 0, "T3": 0}
        # T1 shared 4 ways (5 each) vs T2 free (10)
        assert env.tunnel_names[env.best_action()] == "T2"

    def test_invalid_action(self):
        env = make_env()
        env.reset()
        with pytest.raises(ValueError):
            env.step(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            TunnelEnv({}, {})
        with pytest.raises(ValueError):
            TunnelEnv(PATHS, fig12_capacities(), n_bins=1)


class TestQLearning:
    def test_learns_near_oracle_policy(self):
        env = make_env(seed=1)
        agent = QLearningPathSelector(env, random_state=2).train(episodes=3000)
        assert agent.accuracy_vs_oracle(trials=150) > 0.85

    def test_untrained_agent_is_worse(self):
        env = make_env(seed=3)
        trained = QLearningPathSelector(env, random_state=4).train(episodes=3000)
        fresh = QLearningPathSelector(make_env(seed=3), random_state=4)
        assert trained.accuracy_vs_oracle(100) > fresh.accuracy_vs_oracle(100)

    def test_recommend_returns_tunnel_name(self):
        env = make_env(seed=5)
        agent = QLearningPathSelector(env, random_state=6).train(episodes=500)
        env.reset()
        assert agent.recommend() in PATHS

    def test_greedy_choice_avoids_congestion(self):
        env = make_env(seed=7)
        agent = QLearningPathSelector(env, random_state=8).train(episodes=4000)
        # force a state with T1 saturated: reward should steer to T2
        env._background = {"T1": 3, "T2": 0, "T3": 0}
        state = env.observe()
        action = agent.select(state, greedy=True)
        reward = env.step(action)
        assert reward >= env.step(0) - 1e-9  # at least as good as picking T1

    def test_q_table_grows_with_experience(self):
        env = make_env(seed=9)
        agent = QLearningPathSelector(env, random_state=10).train(episodes=200)
        assert len(agent.q_table) > 1
        assert agent.episodes_trained == 200

    def test_hyperparameter_validation(self):
        env = make_env()
        with pytest.raises(ValueError):
            QLearningPathSelector(env, alpha=0.0)
        with pytest.raises(ValueError):
            QLearningPathSelector(env, epsilon=1.5)
