"""QoS predictor pipeline, path objectives and the Sec. III LP solvers."""

import numpy as np
import pytest

from repro.hecate import (
    PathForecast,
    QoSPredictor,
    choose_max_bandwidth,
    choose_min_latency,
    choose_min_max_utilization,
    evaluate_pipeline,
    solve_min_cost,
    solve_min_delay,
    solve_min_max_utilization,
)
from repro.ml import LinearRegression, NotFittedError, Ridge


def linear_series(n=200, slope=0.1, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    return 10.0 + slope * np.arange(n) + rng.normal(scale=noise, size=n)


class TestQoSPredictor:
    def test_one_step_prediction_on_linear_trend(self):
        s = linear_series()
        pred = QoSPredictor(LinearRegression(), n_lags=5).fit(s)
        nxt = pred.predict_next(s)
        assert nxt == pytest.approx(10.0 + 0.1 * 200, abs=0.01)

    def test_recursive_forecast_extends_trend(self):
        s = linear_series()
        pred = QoSPredictor(LinearRegression(), n_lags=5).fit(s)
        forecast = pred.forecast(s, steps=10)
        expected = 10.0 + 0.1 * np.arange(200, 210)
        assert np.allclose(forecast, expected, atol=0.05)

    def test_forecast_default_is_paper_10_steps(self):
        s = linear_series()
        pred = QoSPredictor(LinearRegression()).fit(s)
        assert pred.forecast(s).shape == (10,)

    def test_scaling_is_transparent(self):
        s = linear_series(noise=0.5, seed=2)
        scaled = QoSPredictor(Ridge(), n_lags=5, scale=True).fit(s).predict_next(s)
        raw = QoSPredictor(Ridge(), n_lags=5, scale=False).fit(s).predict_next(s)
        # Ridge is not scale-invariant but predictions should land close
        assert scaled == pytest.approx(raw, rel=0.05)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            QoSPredictor(LinearRegression()).predict_next(np.arange(20.0))

    def test_short_history_raises(self):
        pred = QoSPredictor(LinearRegression(), n_lags=10).fit(linear_series())
        with pytest.raises(ValueError):
            pred.predict_next(np.arange(5.0))

    def test_short_series_raises(self):
        with pytest.raises(ValueError):
            QoSPredictor(LinearRegression(), n_lags=10).fit(np.arange(5.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            QoSPredictor(LinearRegression(), n_lags=0)
        pred = QoSPredictor(LinearRegression()).fit(linear_series())
        with pytest.raises(ValueError):
            pred.forecast(linear_series(), steps=0)


class TestEvaluatePipeline:
    def test_near_zero_rmse_on_noiseless_trend(self):
        result = evaluate_pipeline(linear_series(), LinearRegression())
        assert result.rmse < 1e-6
        assert result.predictions.shape == result.observed.shape

    def test_observed_matches_raw_series_tail(self):
        s = linear_series()
        result = evaluate_pipeline(s, LinearRegression(), n_lags=10, test_size=0.25)
        # observed values are the unscaled test-series targets
        assert np.allclose(result.observed, s[result.test_start_index:], atol=1e-9)

    def test_too_short_series(self):
        with pytest.raises(ValueError):
            evaluate_pipeline(np.arange(12.0), LinearRegression(), n_lags=10)


class TestObjectives:
    def forecasts(self):
        return [
            PathForecast("T1", np.array([5.0, 5.0]), latency_ms=40.0,
                         bottleneck_utilization=0.9),
            PathForecast("T2", np.array([8.0, 9.0]), latency_ms=10.0,
                         bottleneck_utilization=0.5),
            PathForecast("T3", np.array([7.0, 6.0]), latency_ms=25.0,
                         bottleneck_utilization=0.2),
        ]

    def test_max_bandwidth_picks_t2(self):
        assert choose_max_bandwidth(self.forecasts()).name == "T2"

    def test_min_latency_picks_t2(self):
        assert choose_min_latency(self.forecasts()).name == "T2"

    def test_min_max_util_picks_t3(self):
        assert choose_min_max_utilization(self.forecasts()).name == "T3"

    def test_empty_and_duplicates_rejected(self):
        with pytest.raises(ValueError):
            choose_max_bandwidth([])
        dupes = [
            PathForecast("T1", np.array([1.0])),
            PathForecast("T1", np.array([2.0])),
        ]
        with pytest.raises(ValueError):
            choose_max_bandwidth(dupes)


class TestMinCostLP:
    def test_direct_path_preferred_until_saturation(self):
        split = solve_min_cost(h=5.0, c_sd=10.0, c_sid=10.0)
        assert split.x_sd == pytest.approx(5.0)
        assert split.x_sid == pytest.approx(0.0)

    def test_overflow_spills_to_indirect(self):
        split = solve_min_cost(h=15.0, c_sd=10.0, c_sid=10.0)
        assert split.x_sd == pytest.approx(10.0)
        assert split.x_sid == pytest.approx(5.0)
        assert split.objective == pytest.approx(10.0 + 2 * 5.0)

    def test_conservation(self):
        split = solve_min_cost(h=7.3, c_sd=10.0, c_sid=10.0)
        assert split.total == pytest.approx(7.3)

    def test_infeasible_demand(self):
        with pytest.raises(ValueError, match="infeasible"):
            solve_min_cost(h=25.0, c_sd=10.0, c_sid=10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_min_cost(h=-1.0, c_sd=1.0, c_sid=1.0)
        with pytest.raises(ValueError):
            solve_min_cost(h=1.0, c_sd=0.0, c_sid=1.0)


class TestMinMaxLP:
    def test_equal_capacities_split_evenly(self):
        split = solve_min_max_utilization(h=10.0, c_sd=20.0, c_sid=20.0)
        assert split.x_sd == pytest.approx(5.0)
        assert split.objective == pytest.approx(0.25)

    def test_unequal_capacities_equalize_utilization(self):
        split = solve_min_max_utilization(h=12.0, c_sd=30.0, c_sid=10.0)
        u_sd = split.x_sd / 30.0
        u_sid = split.x_sid / 10.0
        assert u_sd == pytest.approx(u_sid, abs=1e-6)
        assert split.objective == pytest.approx(12.0 / 40.0)

    def test_objective_below_one_iff_feasible(self):
        split = solve_min_max_utilization(h=39.9, c_sd=30.0, c_sid=10.0)
        assert split.objective < 1.0 + 1e-9


class TestMinDelay:
    def test_small_demand_prefers_direct(self):
        # the indirect term is doubled, so light demand rides direct only
        split = solve_min_delay(h=1.0, c=10.0)
        assert split.x_sid < split.x_sd

    def test_heavy_demand_splits(self):
        split = solve_min_delay(h=15.0, c=10.0)
        assert split.x_sd > 0 and split.x_sid > 0
        assert split.total == pytest.approx(15.0)

    def test_solution_is_stationary_point(self):
        h, c = 8.0, 10.0
        split = solve_min_delay(h, c)
        # interior optimum: derivatives of the two terms balance
        d_direct = c / (c - split.x_sd) ** 2
        d_indirect = 2.0 * c / (c - split.x_sid) ** 2
        assert d_direct == pytest.approx(d_indirect, rel=1e-4)

    def test_objective_increases_with_demand(self):
        objs = [solve_min_delay(h, 10.0).objective for h in [2.0, 8.0, 14.0]]
        assert objs[0] < objs[1] < objs[2]

    def test_infeasible(self):
        with pytest.raises(ValueError):
            solve_min_delay(h=20.0, c=10.0)
        with pytest.raises(ValueError):
            solve_min_delay(h=1.0, c=0.0)
