"""Hybrid flow-class backend: classification, epochs, calibration,
determinism.

The calibration tolerances asserted here are the documented contract of
the backend (see ARCHITECTURE.md "Hybrid backend"):

- **throughput** — on the small scenario suite, hybrid aggregate
  throughput stays within ``THROUGHPUT_RTOL`` (relative) of a pure DES
  run of the same workload;
- **latency** — hybrid reports a *lower bound*: foreground latency is
  genuine packet-level sRTT/RTT, background flows report propagation
  delay only (no queueing), so hybrid mean latency must be positive
  whenever DES reports latency, and must not exceed the DES mean by
  more than ``LATENCY_ABS_SLACK_MS``.
"""

import dataclasses
import json

import pytest

from repro.net.background import BackgroundEpoch
from repro.net.fluid import max_min_fair_weighted
from repro.scenarios import (
    FlowClassSpec,
    ScenarioRunner,
    get_scenario,
    split_requests,
)
from repro.scenarios.hybrid import (
    background_epochs,
    epoch_edges,
    quantize_edges,
    solve_epochs,
)
from repro.framework.scheduler import FlowRequest

#: documented calibration tolerance: hybrid vs DES aggregate throughput
THROUGHPUT_RTOL = 0.25
#: documented latency slack: hybrid may exceed the DES mean by at most
#: this (it is normally *below*, being queueing-free for background)
LATENCY_ABS_SLACK_MS = 3.0


def _req(name, protocol="tcp", **kwargs):
    defaults = dict(src="h0a", dst="h0b", duration=10.0)
    if protocol == "udp":
        defaults["rate_mbps"] = 1.0
    defaults.update(kwargs)
    return FlowRequest(flow_name=name, protocol=protocol, **defaults)


class TestSplitRequests:
    def test_elephants_promoted_mice_demoted(self):
        requests = [_req("elephant0"), _req("mouse1"), _req("elephant2"),
                    _req("fg-probe"), _req("u3")]
        fg, bg = split_requests(requests, FlowClassSpec())
        assert [r.flow_name for r in fg] == [
            "elephant0", "elephant2", "fg-probe"
        ]
        assert [r.flow_name for r in bg] == ["mouse1", "u3"]

    def test_budget_caps_promotion_in_offered_order(self):
        requests = [_req(f"elephant{i}") for i in range(5)]
        fg, bg = split_requests(
            requests, FlowClassSpec(max_foreground=3)
        )
        assert [r.flow_name for r in fg] == [
            "elephant0", "elephant1", "elephant2"
        ]
        assert [r.flow_name for r in bg] == ["elephant3", "elephant4"]

    def test_custom_patterns(self):
        requests = [_req("bulk-a"), _req("mouse0")]
        fg, bg = split_requests(
            requests, FlowClassSpec(foreground=("bulk-*",))
        )
        assert [r.flow_name for r in fg] == ["bulk-a"]
        assert [r.flow_name for r in bg] == ["mouse0"]

    def test_no_matches_means_everything_background(self):
        requests = [_req("u0"), _req("u1")]
        fg, bg = split_requests(requests, FlowClassSpec())
        assert fg == [] and len(bg) == 2

    def test_icmp_probes_always_promoted(self):
        """A probe demoted to the fluid domain would silently disable
        the measurement it exists to make — promotion ignores both the
        globs and the budget."""
        requests = [_req("mouse0"), _req("ping1", protocol="icmp")]
        fg, bg = split_requests(
            requests, FlowClassSpec(foreground=(), max_foreground=0)
        )
        assert [r.flow_name for r in fg] == ["ping1"]
        assert [r.flow_name for r in bg] == ["mouse0"]


class TestEpochEdges:
    def test_grid_plus_failure_and_phase_edges(self):
        from repro.scenarios.failures import FailureEvent

        plan = (FailureEvent(at=2.5, action="fail", a="r0", b="r1"),)
        edges = epoch_edges(
            10.0, plan, (0.33,), FlowClassSpec(epoch_s=2.0)
        )
        assert edges[0] == 0.0 and edges[-1] == 10.0
        assert 2.5 in edges  # failure event is an exact edge
        assert pytest.approx(3.3) == [e for e in edges if 3.2 < e < 3.4][0]
        for k in (2.0, 4.0, 6.0, 8.0):
            assert k in edges

    def test_grid_coarsens_to_max_epochs(self):
        edges = epoch_edges(
            1000.0, (), (), FlowClassSpec(epoch_s=0.001, max_epochs=50)
        )
        assert len(edges) <= 52

    def test_none_epoch_s_disables_grid(self):
        edges = epoch_edges(10.0, (), (), FlowClassSpec(epoch_s=None))
        assert edges == [0.0, 10.0]

    def test_quantize_keeps_exact_edges_within_budget(self):
        exact = {0.0, 1.25, 7.5, 10.0}
        assert quantize_edges(
            exact, 10.0, (), (), FlowClassSpec(max_epochs=256)
        ) == sorted(exact)

    def test_quantize_coalesces_beyond_budget(self):
        exact = {0.0, 10.0} | {i * 0.001 for i in range(1, 5000)}
        edges = quantize_edges(
            exact, 10.0, (), (), FlowClassSpec(epoch_s=1.0, max_epochs=64)
        )
        assert len(edges) == 11  # the 1 s grid, not 5000 flow edges


class TestSolveEpochs:
    CAPS = {("a", "b"): 10.0, ("b", "a"): 10.0}

    def test_rate_caps_and_probe_exclusion(self):
        spans = {"udp": (0.0, 10.0), "tcp": (0.0, 10.0),
                 "probe": (0.0, 10.0)}
        paths = {name: ("a", "b") for name in spans}
        solves = solve_epochs(
            spans, paths, self.CAPS, {"udp": 2.0}, {"probe"}, (),
            [0.0, 10.0],
        )
        assert len(solves) == 1
        rates = solves[0].rates
        assert rates["udp"] == pytest.approx(2.0)
        assert rates["tcp"] == pytest.approx(8.0)
        assert "probe" not in rates  # instrument, not load
        assert solves[0].overlaps["probe"] == pytest.approx(10.0)

    def test_failure_blacks_out_crossing_flows(self):
        from repro.scenarios.failures import FailureEvent

        spans = {"f": (0.0, 10.0)}
        paths = {"f": ("a", "b")}
        plan = (
            FailureEvent(at=4.0, action="fail", a="a", b="b"),
            FailureEvent(at=6.0, action="restore", a="a", b="b"),
        )
        solves = solve_epochs(
            spans, paths, self.CAPS, {}, set(), plan, [0.0, 4.0, 6.0, 10.0]
        )
        assert solves[0].blacked == ()
        assert solves[1].blacked == ("f",)
        assert "f" not in solves[1].rates
        assert solves[2].blacked == ()
        assert solves[2].rates["f"] == pytest.approx(10.0)

    def test_partial_overlap_credits_fraction(self):
        spans = {"late": (7.5, 10.0)}
        paths = {"late": ("a", "b")}
        solves = solve_epochs(
            spans, paths, self.CAPS, {}, set(), (), [0.0, 5.0, 10.0]
        )
        assert "late" not in solves[0].overlaps
        assert solves[1].overlaps["late"] == pytest.approx(2.5)

    def test_background_epochs_sum_loads_along_hops(self):
        spans = {"m1": (0.0, 10.0), "m2": (0.0, 5.0)}
        paths = {"m1": ("a", "b", "c"), "m2": ("a", "b")}
        caps = {("a", "b"): 10.0, ("b", "c"): 10.0}
        solves = solve_epochs(
            spans, paths, caps, {}, set(), (), [0.0, 10.0]
        )
        epochs = background_epochs(solves, {"m1", "m2"}, paths)
        assert len(epochs) == 1
        loads = epochs[0].loads
        # m1: 5 Mbps whole epoch; m2: 5 Mbps for half the epoch -> 2.5
        assert loads[("a", "b")] == pytest.approx(5.0 + 2.5)
        assert loads[("b", "c")] == pytest.approx(5.0)

    def test_foreground_claimants_never_become_load(self):
        spans = {"elephant": (0.0, 10.0), "mouse": (0.0, 10.0)}
        paths = {name: ("a", "b") for name in spans}
        solves = solve_epochs(
            spans, paths, self.CAPS, {}, set(), (), [0.0, 10.0]
        )
        epochs = background_epochs(solves, {"mouse"}, paths)
        # the elephant claimed half the link in the solve, but only the
        # mouse's share lands on the wire as background
        assert epochs[0].loads[("a", "b")] == pytest.approx(5.0)


class TestHybridRunner:
    def test_deterministic_and_classified(self):
        scenario = get_scenario("wan-elephant-mice").quick(
            horizon=6.0, warmup=2.0
        )
        first = ScenarioRunner(scenario, backend="hybrid")
        r1 = first.run()
        r2 = ScenarioRunner(scenario, backend="hybrid").run()
        assert r1 == r2
        assert r1.backend == "hybrid"
        assert [r.flow_name for r in first.foreground] == [
            "elephant0", "elephant1"
        ]
        assert len(first.background) == 6
        # every flow shows up exactly once in the merged result
        assert r1.placed == r1.offered == 8
        assert set(r1.per_flow_mbps) == {
            r.flow_name for r in first.requests
        }

    @pytest.mark.parametrize("name", ["wan-elephant-mice", "ring-uniform"])
    def test_calibrated_against_des(self, name):
        """The documented tolerance: hybrid tracks DES aggregate
        throughput within THROUGHPUT_RTOL, and reports a latency lower
        bound (queueing-free background) within LATENCY_ABS_SLACK_MS
        above the DES mean."""
        scenario = get_scenario(name).quick(horizon=8.0, warmup=2.0)
        des = ScenarioRunner(scenario, backend="des").run()
        hybrid = ScenarioRunner(scenario, backend="hybrid").run()
        assert hybrid.total_throughput_mbps == pytest.approx(
            des.total_throughput_mbps, rel=THROUGHPUT_RTOL
        )
        assert hybrid.mean_latency_ms > 0.0
        assert (
            hybrid.mean_latency_ms
            <= des.mean_latency_ms + LATENCY_ABS_SLACK_MS
        )

    def test_background_load_is_visible_to_telemetry(self):
        """Mice never cross the packet domain, but the controller's
        telemetry must still see their load on the links."""
        scenario = get_scenario("wan-elephant-mice").quick(
            horizon=6.0, warmup=2.0
        )
        runner = ScenarioRunner(scenario, backend="hybrid")
        runner.run()
        db = runner.sdn.db
        peak = 0.0
        for metric in db.metrics():
            if metric.startswith("link:") and metric.endswith(":mbps"):
                _, values = db.series(metric)
                if values.size:
                    peak = max(peak, float(values.max()))
        # mice alone offer ~6 x a few Mbps; some link must have shown
        # more carried Mbps than the elephants alone could produce
        assert peak > 0.0
        assert runner.network.sim.events_processed > 0

    def test_hybrid_uses_far_fewer_events_than_des(self):
        scenario = get_scenario("p4lab-bursty-udp").quick(
            horizon=6.0, warmup=2.0
        )
        des = ScenarioRunner(scenario, backend="des").run()
        hybrid = ScenarioRunner(scenario, backend="hybrid").run()
        # every p4lab-bursty flow is background (no elephants): the
        # packet domain only carries telemetry ticks
        assert hybrid.sim_events < des.sim_events / 5

    def test_scale_scenario_smoke(self):
        """The smallest scale scenario runs through the hybrid backend
        at a short horizon: all 2k flows placed, nothing rejected."""
        scenario = get_scenario("scale-fat-tree-2k").quick(
            horizon=3.0, warmup=1.0
        )
        result = ScenarioRunner(scenario, backend="hybrid").run()
        assert result.offered == 2000
        assert result.placed == 2000
        assert result.rejected == 0
        assert result.total_throughput_mbps > 0.0
        assert result.sim_events > 0

    def test_fig11_probe_stays_packet_level_on_hybrid(self):
        """The paper's latency-migration probe must be emulated, not
        aggregated: on hybrid it is foreground and reports a real RTT,
        exactly as on des."""
        scenario = get_scenario("fig11-latency-migration").quick()
        runner = ScenarioRunner(scenario, backend="hybrid")
        result = runner.run()
        assert [r.flow_name for r in runner.foreground] == ["ping1"]
        assert runner.background == []
        assert result.placed == 1
        assert result.per_flow_mbps["ping1"] == 0.0  # instrument
        assert result.mean_latency_ms > 0.0

    def test_epoch_schedule_is_installed_and_cleared(self):
        scenario = get_scenario("wan-elephant-mice").quick(
            horizon=6.0, warmup=2.0
        )
        runner = ScenarioRunner(scenario, backend="hybrid")
        runner.run()
        # after the final epoch the background must be cleared
        for key, link in runner.network.links.items():
            for node_name in key:
                assert link.background_from(
                    runner.network.node(node_name)
                ) == 0.0


class TestWeightedSolver:
    """``max_min_fair_weighted`` contract: a class entry of integer
    weight k is exactly k unit flows riding the same path."""

    CAPS = {("a", "b"): 8.0, ("b", "c"): 100.0}

    def test_integer_weight_equals_duplicated_unit_flows(self):
        weighted = max_min_fair_weighted(
            {"fg": ["a", "b"], "class:0": ["a", "b", "c"]},
            self.CAPS,
            bounds={},
            weights={"fg": 1.0, "class:0": 3.0},
        )
        unit = max_min_fair_weighted(
            {"fg": ["a", "b"], "m0": ["a", "b", "c"],
             "m1": ["a", "b", "c"], "m2": ["a", "b", "c"]},
            self.CAPS,
            bounds={},
            weights={},  # default weight 1 everywhere
        )
        # the bottleneck (a,b) splits 1:3 — one share to fg, three to
        # the class; the class total equals the sum of the three mice
        assert weighted["fg"] == pytest.approx(unit["fg"])
        assert weighted["class:0"] == pytest.approx(
            unit["m0"] + unit["m1"] + unit["m2"]
        )
        assert weighted["fg"] == pytest.approx(2.0)
        assert weighted["class:0"] == pytest.approx(6.0)

    def test_fractional_weight_scales_the_share(self):
        # a half-populated class (time-averaged 0.5 concurrent members)
        # claims half a fair share
        rates = max_min_fair_weighted(
            {"fg": ["a", "b"], "class:0": ["a", "b"]},
            self.CAPS,
            bounds={},
            weights={"class:0": 0.5},
        )
        assert rates["fg"] == pytest.approx(8.0 / 1.5)
        assert rates["class:0"] == pytest.approx(0.5 * 8.0 / 1.5)

    def test_zero_weight_class_gets_nothing_and_claims_nothing(self):
        rates = max_min_fair_weighted(
            {"fg": ["a", "b"], "class:0": ["a", "b"]},
            self.CAPS,
            bounds={},
            weights={"class:0": 0.0},
        )
        assert rates["class:0"] == 0.0
        assert rates["fg"] == pytest.approx(8.0)

    def test_bounded_class_pins_and_reshares(self):
        # a CBR-bounded class pins at its aggregate ceiling; the elastic
        # foreground flow soaks up the rest of the bottleneck
        rates = max_min_fair_weighted(
            {"fg": ["a", "b"], "class:0": ["a", "b"]},
            self.CAPS,
            bounds={"class:0": 1.0},
            weights={"class:0": 2.0},
        )
        assert rates["class:0"] == pytest.approx(1.0)
        assert rates["fg"] == pytest.approx(7.0)


class TestAggregateMice:
    """``FlowClassSpec(aggregate_background=True)``: mice become
    per-tunnel flow classes; the run must agree with per-flow hybrid."""

    @staticmethod
    def _aggregate(scenario):
        return dataclasses.replace(
            scenario,
            classes=dataclasses.replace(
                scenario.classes, aggregate_background=True
            ),
        )

    def test_agrees_with_per_flow_hybrid(self):
        scenario = get_scenario("wan-elephant-mice").quick(
            horizon=6.0, warmup=2.0
        )
        per_flow = ScenarioRunner(scenario, backend="hybrid").run()
        aggregate = ScenarioRunner(
            self._aggregate(scenario), backend="hybrid"
        ).run()
        # identical admission: routing and spreading are unchanged
        assert aggregate.placed == per_flow.placed
        assert aggregate.offered == per_flow.offered
        assert aggregate.rejected == per_flow.rejected
        # the weighted-class solve is the same allocation whenever the
        # member spans cover their epochs; on this scenario the two
        # modes must agree tightly, not just within backend tolerance
        assert aggregate.total_throughput_mbps == pytest.approx(
            per_flow.total_throughput_mbps, rel=0.05
        )
        assert aggregate.mean_latency_ms == pytest.approx(
            per_flow.mean_latency_ms, rel=0.05
        )

    def test_result_reports_classes_not_mice(self):
        scenario = self._aggregate(
            get_scenario("wan-elephant-mice").quick(horizon=6.0, warmup=2.0)
        )
        runner = ScenarioRunner(scenario, backend="hybrid")
        result = runner.run()
        assert result.background_flows == len(runner.background) == 6
        assert 1 <= result.background_classes <= result.background_flows
        assert result.background_mbps > 0.0
        # per-flow table carries the foreground only; mice appear as
        # class totals in background_mbps
        assert set(result.per_flow_mbps) == {
            r.flow_name for r in runner.foreground
        }

    def test_round_trips_through_json(self):
        scenario = self._aggregate(
            get_scenario("wan-elephant-mice").quick(horizon=4.0, warmup=1.0)
        )
        result = ScenarioRunner(scenario, backend="hybrid").run()
        restored = type(result).from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored == result

    def test_deterministic(self):
        scenario = self._aggregate(
            get_scenario("wan-elephant-mice").quick(horizon=4.0, warmup=1.0)
        )
        r1 = ScenarioRunner(scenario, backend="hybrid").run()
        r2 = ScenarioRunner(scenario, backend="hybrid").run()
        assert r1 == r2


class TestHybridSweepDeterminism:
    def test_jobs1_and_jobs2_are_byte_identical(self):
        """The acceptance check: a hybrid-backend sweep must render
        byte-identical JSON whether executed serially or over two
        worker processes."""
        from repro.sweep import SweepEngine, SweepSpec, aggregate, render_json

        spec = SweepSpec(
            scenarios=("scale-fat-tree-2k",),
            seeds=(0, 1),
            backends=("hybrid",),
            overrides={"horizon": 3.0, "warmup": 1.0},
        )
        serial = SweepEngine(spec, jobs=1, cache=None).run()
        parallel = SweepEngine(spec, jobs=2, cache=None).run()
        blob_1 = render_json(
            serial.runs, serial.results,
            aggregate(serial.runs, serial.results),
        )
        blob_2 = render_json(
            parallel.runs, parallel.results,
            aggregate(parallel.runs, parallel.results),
        )
        assert blob_1 == blob_2
        payload = json.loads(blob_1)  # and it is valid JSON
        # the columnar store's sample count is part of the rendered
        # result: a telemetry refactor that changed sampling volume (or
        # made it nondeterministic) must fail here, not ship silently
        samples = [
            run["result"]["telemetry_samples"] for run in payload["runs"]
        ]
        assert all(s > 0 for s in samples)


class TestBackendValidation:
    def test_scenario_accepts_hybrid(self):
        scenario = get_scenario("ring-uniform").with_overrides(
            backend="hybrid"
        )
        assert scenario.backend == "hybrid"

    def test_runner_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ScenarioRunner(get_scenario("ring-uniform"), backend="warp")

    def test_sweep_accepts_hybrid_axis(self):
        from repro.sweep import SweepSpec

        spec = SweepSpec(scenarios=("ring-uniform",), backends=("hybrid",))
        assert spec.expand()[0].backend == "hybrid"

    def test_flow_class_spec_validation(self):
        with pytest.raises(ValueError, match="epoch_s"):
            FlowClassSpec(epoch_s=0.0)
        with pytest.raises(ValueError, match="max_epochs"):
            FlowClassSpec(max_epochs=0)
        with pytest.raises(ValueError, match="max_foreground"):
            FlowClassSpec(max_foreground=-1)

    def test_epoch_type_rejects_empty(self):
        with pytest.raises(ValueError):
            BackgroundEpoch(1.0, 1.0)
