"""Application-aware QoE across the stack: the acceptance scenario,
cross-backend per-class aggregates, and the extended result schema.

The agreement tolerances asserted here are the documented contract of
the QoE layer (see docs/QOE.md "Backend agreement"):

- **mean MOS** — on ``qoe-mixed-steady``, fluid and hybrid mean MOS
  stay within ``MEAN_QOE_ABS_TOL`` of a pure DES run;
- **per-class MOS** — each class mean stays within
  ``CLASS_QOE_ABS_TOL``.  Fluid/hybrid-background samples carry
  propagation delay but zero queueing/jitter/loss, so they are an
  optimistic bound, widest for loss-sensitive classes under congestion.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import ScenarioRunner, ScenarioResult, get_scenario

#: documented agreement bound: fluid/hybrid vs DES mean MOS
MEAN_QOE_ABS_TOL = 0.5
#: documented agreement bound: fluid/hybrid vs DES per-class mean MOS
CLASS_QOE_ABS_TOL = 1.0

_RESULTS = {}


def _result(backend, objective=None):
    """One quick run per (backend, objective), cached for the module."""
    key = (backend, objective)
    if key not in _RESULTS:
        scenario = get_scenario("qoe-mixed-steady")
        if objective is not None:
            scenario = scenario.with_overrides(
                policy=dataclasses.replace(
                    scenario.policy, objective=objective
                )
            )
        _RESULTS[key] = ScenarioRunner(scenario, backend=backend).run()
    return _RESULTS[key]


class TestAcceptance:
    """ISSUE acceptance: on the mixed scenario, max_qoe must beat
    max_bandwidth on mean predicted MOS under congestion."""

    def test_max_qoe_beats_max_bandwidth(self):
        qoe = _result("des", "max_qoe")
        bandwidth = _result("des", "max_bandwidth")
        assert qoe.mean_qoe > bandwidth.mean_qoe

    def test_the_gain_comes_from_voip_placement(self):
        """max_bandwidth herds VoIP onto the fat 300 ms tunnel with the
        congesting classes; max_qoe sends it to the thin 2 ms one."""
        qoe = _result("des", "max_qoe")
        bandwidth = _result("des", "max_bandwidth")
        assert (
            qoe.qoe_per_class["voip"]
            > bandwidth.qoe_per_class["voip"] + 0.5
        )
        # video and bulk ride the fat tunnel under both objectives
        for app in ("video", "bulk"):
            assert qoe.qoe_per_class[app] == pytest.approx(
                bandwidth.qoe_per_class[app], abs=0.2
            )

    def test_acceptance_comparison_is_deterministic(self):
        repeat = ScenarioRunner(
            get_scenario("qoe-mixed-steady"), backend="des"
        ).run()
        assert repeat == _result("des", "max_qoe")


class TestBackendAgreement:
    @pytest.mark.parametrize("backend", ["des", "fluid", "hybrid"])
    def test_per_class_aggregates_present(self, backend):
        result = _result(backend)
        assert result.qoe_flows == 5
        assert set(result.qoe_per_class) == {"bulk", "video", "voip"}
        assert 1.0 <= result.mean_qoe <= 5.0
        for mos in result.qoe_per_class.values():
            assert 1.0 <= mos <= 5.0

    @pytest.mark.parametrize("backend", ["fluid", "hybrid"])
    def test_mean_qoe_within_documented_bound(self, backend):
        des = _result("des")
        other = _result(backend)
        assert other.mean_qoe == pytest.approx(
            des.mean_qoe, abs=MEAN_QOE_ABS_TOL
        )

    @pytest.mark.parametrize("backend", ["fluid", "hybrid"])
    def test_per_class_qoe_within_documented_bound(self, backend):
        des = _result("des")
        other = _result(backend)
        for app, mos in des.qoe_per_class.items():
            assert other.qoe_per_class[app] == pytest.approx(
                mos, abs=CLASS_QOE_ABS_TOL
            )


class TestResultQoeFields:
    @settings(max_examples=25, deadline=None)
    @given(
        mean_qoe=st.floats(0.0, 5.0, allow_nan=False),
        qoe_flows=st.integers(0, 10_000),
        qoe_per_class=st.dictionaries(
            st.sampled_from(["video", "voip", "bulk", "gaming"]),
            st.floats(1.0, 5.0, allow_nan=False),
            max_size=4,
        ),
    )
    def test_round_trip_is_exact(self, mean_qoe, qoe_flows, qoe_per_class):
        """to_dict -> json -> from_dict must reproduce the QoE fields
        exactly, floats included (the sweep cache relies on it)."""
        result = dataclasses.replace(
            _result("fluid"),
            mean_qoe=mean_qoe,
            qoe_flows=qoe_flows,
            qoe_per_class=qoe_per_class,
        )
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = ScenarioResult.from_dict(payload)
        assert rebuilt == result
        assert rebuilt.qoe_per_class == qoe_per_class

    def test_legacy_payload_defaults_to_no_qoe(self):
        """Artifacts written before the QoE fields existed must load
        with empty aggregates, not raise."""
        payload = _result("fluid").to_dict()
        for key in ("mean_qoe", "qoe_flows", "qoe_per_class"):
            del payload[key]
        rebuilt = ScenarioResult.from_dict(payload)
        assert rebuilt.mean_qoe == 0.0
        assert rebuilt.qoe_flows == 0
        assert rebuilt.qoe_per_class == {}

    def test_summary_reports_per_class_mos(self):
        summary = _result("des").summary()
        assert "mean MOS over 5 flows" in summary
        assert "voip:" in summary

    def test_summary_omits_qoe_for_unclassified_scenarios(self):
        scenario = get_scenario("ring-uniform").quick()
        result = ScenarioRunner(scenario, backend="fluid").run()
        assert result.qoe_flows == 0
        assert result.qoe_per_class == {}
        assert "MOS" not in result.summary()
