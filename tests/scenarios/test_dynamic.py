"""Dynamic scenarios: phase compilation, program builders, both
backends, and sweep-engine determinism across worker counts."""

import numpy as np
import pytest

from repro.scenarios import (
    FailureSpec,
    Scenario,
    ScenarioRunner,
    TopologySpec,
    TrafficPhase,
    TrafficSpec,
    compile_phases,
    diurnal_phases,
    elephant_schedule_phases,
    flash_crowd_phases,
    get_scenario,
    list_scenarios,
    plan_failures,
)

RING = TopologySpec("ring", {"n_routers": 6, "n_host_pairs": 2,
                             "rate_mbps": 50.0, "host_rate_mbps": 100.0})


def ring_network():
    return RING.build()


class TestTrafficPhase:
    def test_at_frac_range_enforced(self):
        with pytest.raises(ValueError):
            TrafficPhase(at_frac=1.0, traffic=TrafficSpec())
        with pytest.raises(ValueError):
            TrafficPhase(at_frac=-0.1, traffic=TrafficSpec())

    def test_scenario_requires_increasing_phases(self):
        phases = (
            TrafficPhase(0.5, TrafficSpec("uniform", 2)),
            TrafficPhase(0.25, TrafficSpec("uniform", 2)),
        )
        with pytest.raises(ValueError):
            Scenario(name="x", description="", topology=RING, phases=phases)
        with pytest.raises(ValueError):
            Scenario(name="x", description="", topology=RING, phases=())

    def test_duplicate_at_frac_rejected(self):
        phases = (
            TrafficPhase(0.25, TrafficSpec("uniform", 2)),
            TrafficPhase(0.25, TrafficSpec("uniform", 3)),
        )
        with pytest.raises(ValueError):
            Scenario(name="x", description="", topology=RING, phases=phases)


class TestCompilePhases:
    PHASES = (
        TrafficPhase(0.0, TrafficSpec("uniform", 3), "base"),
        TrafficPhase(0.5, TrafficSpec("uniform", 5), "surge"),
    )

    def test_flows_land_in_their_phase_windows(self):
        requests = compile_phases(
            ring_network(), self.PHASES, 40.0, np.random.default_rng(0)
        )
        assert len(requests) == 8
        base = [r for r in requests if r.flow_name.startswith("p0.")]
        surge = [r for r in requests if r.flow_name.startswith("p1.")]
        assert len(base) == 3 and len(surge) == 5
        # uniform starts in the first quarter of each phase window
        assert all(0.0 <= r.start_at <= 5.0 for r in base)
        assert all(20.0 <= r.start_at <= 25.0 for r in surge)

    def test_names_and_tos_unique_across_phases(self):
        requests = compile_phases(
            ring_network(), self.PHASES, 40.0, np.random.default_rng(0)
        )
        names = [r.flow_name for r in requests]
        tosses = [r.tos for r in requests]
        assert len(set(names)) == len(names)
        assert len(set(tosses)) == len(tosses)
        assert all(1 <= t <= 255 for t in tosses)

    def test_deterministic_per_seed(self):
        first = compile_phases(
            ring_network(), self.PHASES, 40.0, np.random.default_rng(7)
        )
        second = compile_phases(
            ring_network(), self.PHASES, 40.0, np.random.default_rng(7)
        )
        assert first == second
        third = compile_phases(
            ring_network(), self.PHASES, 40.0, np.random.default_rng(8)
        )
        assert first != third

    def test_tos_budget_enforced(self):
        phases = tuple(
            TrafficPhase(i / 4, TrafficSpec("uniform", 70))
            for i in range(4)
        )
        with pytest.raises(ValueError):
            compile_phases(
                ring_network(), phases, 40.0, np.random.default_rng(0)
            )


class TestProgramBuilders:
    def test_diurnal_trough_peak_shape(self):
        phases = diurnal_phases(n_phases=6, peak_flows=9, trough_flows=2)
        assert len(phases) == 6
        counts = [p.traffic.n_flows for p in phases]
        assert counts[0] == 2  # trough at t=0
        assert max(counts) == 9  # peak mid-run
        assert counts[3] == max(counts)
        fracs = [p.at_frac for p in phases]
        assert fracs == sorted(set(fracs))

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_phases(n_phases=1)
        with pytest.raises(ValueError):
            diurnal_phases(peak_flows=1, trough_flows=5)

    def test_flash_crowd_window(self):
        phases = flash_crowd_phases(
            base_flows=2, spike_flows=8, spike_at=0.3, spike_len=0.2,
            hot_host="h1",
        )
        assert [p.label for p in phases] == [
            "pre-crowd", "flash-crowd", "recovery",
        ]
        assert phases[1].traffic.pattern == "hotspot"
        assert phases[1].traffic.params["hot_host"] == "h1"
        with pytest.raises(ValueError):
            flash_crowd_phases(spike_at=0.9, spike_len=0.2)

    def test_elephant_schedule_waves(self):
        phases = elephant_schedule_phases(waves=(2, 4), mice_per_wave=3)
        assert len(phases) == 2
        assert phases[0].traffic.params["n_elephants"] == 2
        assert phases[1].traffic.params["n_elephants"] == 4
        assert phases[1].traffic.n_flows == 7
        with pytest.raises(ValueError):
            elephant_schedule_phases(waves=())


class TestRollingFailures:
    def test_region_sweeps_one_link_at_a_time(self):
        net = ring_network()
        plan = plan_failures(
            net,
            FailureSpec("rolling", {"count": 3, "at": 10.0, "dwell": 5.0}),
            40.0,
            np.random.default_rng(0),
        )
        fails = [e for e in plan if e.action == "fail"]
        restores = [e for e in plan if e.action == "restore"]
        assert len(fails) == 3 and len(restores) == 3
        # each link recovers exactly when the next goes down
        assert [e.at for e in fails] == [10.0, 15.0, 20.0]
        assert [e.at for e in restores] == [15.0, 20.0, 25.0]
        assert len({(e.a, e.b) for e in fails}) == 3

    def test_explicit_links_validated(self):
        net = ring_network()
        with pytest.raises(KeyError):
            plan_failures(
                net,
                FailureSpec("rolling", {"links": [("r0", "nope")]}),
                40.0,
                np.random.default_rng(0),
            )


class TestDynamicScenarioRuns:
    def test_registry_has_at_least_six_dynamic_scenarios(self):
        dynamic = [s for s in list_scenarios() if s.phases]
        assert len(dynamic) >= 6
        assert all(s.phases == tuple(sorted(
            s.phases, key=lambda p: p.at_frac
        )) for s in dynamic)

    def test_quick_override_rescales_not_truncates(self):
        """Phase starts are horizon fractions: a shorter horizon keeps
        every phase (scaled), so quick test runs still exercise the full
        dynamic shape."""
        scenario = get_scenario("ring-diurnal").quick(horizon=8.0)
        runner = ScenarioRunner(scenario, backend="fluid")
        runner.setup()
        prefixes = {r.flow_name.split(".")[0] for r in runner.requests}
        assert prefixes == {f"p{i}" for i in range(len(scenario.phases))}

    def test_fluid_offered_load_varies_over_phases(self):
        result = ScenarioRunner(
            get_scenario("fat-tree-flash-crowd"), backend="fluid"
        ).run()
        assert result.placed == result.offered == 16  # 3 + 10 + 3
        assert result.total_throughput_mbps > 0.0

    def test_des_dynamic_run_is_deterministic(self):
        scenario = get_scenario("ring-flash-udp").quick(
            horizon=6.0, warmup=1.0
        )
        first = ScenarioRunner(scenario, backend="des").run()
        second = ScenarioRunner(scenario, backend="des").run()
        assert first == second
        assert first.placed == first.offered > 0

    def test_rolling_failure_scenario_blacks_out_epochs(self):
        result = ScenarioRunner(
            get_scenario("geo-rolling-failures"), backend="fluid"
        ).run()
        assert result.failure_events == 6
        assert result.drops >= 1  # at least one (flow, epoch) outage


class TestCrossProcessDeterminism:
    def test_result_stable_across_hash_seeds(self):
        """Regression: fluid results must not depend on PYTHONHASHSEED
        (set-iteration order once leaked into max-min rate dicts, whose
        float-sum order flipped assignment ties between processes —
        which pool workers inherit, but fresh CLI invocations do not)."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[2] / "src")
        code = (
            "from repro.scenarios import ScenarioRunner, get_scenario\n"
            "r = ScenarioRunner(get_scenario('ring-diurnal'),"
            " backend='fluid', seed=0).run()\n"
            "print(sorted(r.per_flow_mbps.items()))\n"
        )
        outputs = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src, env.get("PYTHONPATH")) if p
            )
            outputs.append(
                subprocess.run(
                    [sys.executable, "-c", code],
                    capture_output=True, text=True, env=env, check=True,
                ).stdout
            )
        assert outputs[0] == outputs[1]


class TestSweepDeterminism:
    def test_jobs2_byte_identical_to_jobs1(self, tmp_path):
        """Dynamic scenarios through the sweep engine: parallel execution
        must be byte-identical to serial (ordered collection + per-cell
        seeding survive the phase machinery)."""
        from repro.sweep import SweepEngine, SweepSpec, render_json

        spec = SweepSpec(
            scenarios=("ring-diurnal", "wan-elephant-schedule"),
            seeds=(0, 1),
            backends=("fluid",),
        )
        serial = SweepEngine(spec, jobs=1).run()
        parallel = SweepEngine(spec, jobs=2).run()
        assert serial.results == parallel.results
        from repro.sweep import aggregate

        assert render_json(
            serial.runs, serial.results, aggregate(serial.runs, serial.results)
        ) == render_json(
            parallel.runs,
            parallel.results,
            aggregate(parallel.runs, parallel.results),
        )
