"""ScenarioRunner: determinism, both backends, failure handling."""

import dataclasses

import pytest

from repro.scenarios import ScenarioRunner, get_scenario, list_scenarios

# the scale tier (2k-10k flows) is exercised by tests/scenarios/
# test_hybrid.py and the weekly scale-smoke CI job, not by every-builtin
# loops: per-flow fluid runs at that size are exactly what the hybrid
# backend exists to avoid
ALL_NAMES = [s.name for s in list_scenarios(include_scale=False)]

# cheap-to-emulate scenarios used for packet-level determinism checks
DES_FAST = ["fig11-latency-migration", "p4lab-bursty-udp", "line-link-flap"]


class TestFluidBackend:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_builtin_runs_and_is_deterministic(self, name):
        scenario = get_scenario(name).quick(horizon=8.0, warmup=2.0)
        first = ScenarioRunner(scenario, backend="fluid").run()
        second = ScenarioRunner(scenario, backend="fluid").run()
        assert first == second
        assert first.backend == "fluid"
        assert first.placed == first.offered
        assert first.rejected == 0
        assert first.total_throughput_mbps >= 0.0
        assert first.tunnels >= 1

    def test_seed_changes_the_workload(self):
        scenario = get_scenario("ring-uniform").quick()
        base = ScenarioRunner(scenario, backend="fluid").run()
        other = ScenarioRunner(scenario, backend="fluid", seed=99).run()
        assert base.seed != other.seed
        # different seeds draw different host pairs / start times
        assert base.per_flow_mbps != other.per_flow_mbps or base != other

    def test_icmp_probes_are_not_credited_with_capacity(self):
        """An ICMP probe is a latency instrument: 0 Mbps on both backends,
        not the path's full capacity."""
        scenario = get_scenario("fig11-latency-migration").quick()
        result = ScenarioRunner(scenario, backend="fluid").run()
        assert result.per_flow_mbps["ping1"] == 0.0
        assert result.total_throughput_mbps == 0.0

    def test_min_latency_objective_picks_lowest_delay_tunnel(self):
        """fig11 declares min_latency: the fluid backend must land the
        probe on T2 (2 ms), not the throughput-tied default T1 (22 ms)."""
        scenario = get_scenario("fig11-latency-migration").quick()
        result = ScenarioRunner(scenario, backend="fluid").run()
        assert result.mean_latency_ms == pytest.approx(2.0, abs=0.1)

    def test_udp_rate_caps_leave_capacity_to_elastic_flows(self):
        """Bounded max-min: a 2 Mbps CBR flow must not pin a co-bottlenecked
        TCP flow to half the link."""
        from repro.scenarios.runner import _max_min_with_bounds

        rates = _max_min_with_bounds(
            {"udp": ("a", "b"), "tcp": ("a", "b")},
            {("a", "b"): 50.0},
            {"udp": 2.0},
        )
        assert rates["udp"] == pytest.approx(2.0)
        assert rates["tcp"] == pytest.approx(48.0)

    def test_per_flow_objective_survives_policy_override(self):
        """Explicit non-default per-flow objectives win over the scenario
        policy; default-objective flows inherit the policy's."""
        from repro.scenarios import PolicySpec, TrafficSpec

        scenario = get_scenario("fig11-latency-migration").quick().with_overrides(
            policy=PolicySpec(objective="max_bandwidth"),
            traffic=TrafficSpec("explicit", n_flows=1, params={"flows": [
                {"flow_name": "ping1", "src": "host1", "dst": "host2",
                 "protocol": "icmp", "duration": 8.0,
                 "objective": "min_latency"},
            ]}),
        )
        runner = ScenarioRunner(scenario, backend="des")
        runner.run()
        decision = runner.sdn.decision_log()[0]
        assert decision["objective"] == "min_latency"

    def test_node_down_rejects_restore_before_failure(self):
        from repro.scenarios import FailureSpec

        scenario = get_scenario("geo-node-failure").quick().with_overrides(
            failures=FailureSpec("node_down",
                                 {"at": 20.0, "restore_at": 10.0}),
        )
        with pytest.raises(ValueError, match="restore_at"):
            ScenarioRunner(scenario, backend="fluid").setup()

    def test_failure_epochs_reduce_delivery(self):
        healthy = get_scenario("line-baseline").quick()
        flapping = get_scenario("line-link-flap").quick()
        # same single-path topology family; the flap must cost throughput
        r_flap = ScenarioRunner(flapping, backend="fluid").run()
        assert r_flap.failure_events == 2
        assert r_flap.drops >= 1  # (flow, epoch) outages on the only path
        r_healthy = ScenarioRunner(healthy, backend="fluid").run()
        assert r_healthy.drops == 0


class TestDesBackend:
    @pytest.mark.parametrize("name", DES_FAST)
    def test_fixed_seed_is_bit_deterministic(self, name):
        scenario = get_scenario(name).quick(horizon=6.0, warmup=2.0)
        first = ScenarioRunner(scenario, backend="des").run()
        second = ScenarioRunner(scenario, backend="des").run()
        assert first == second

    def test_runs_through_the_full_framework(self):
        scenario = get_scenario("p4lab-bursty-udp").quick(horizon=6.0, warmup=2.0)
        runner = ScenarioRunner(scenario, backend="des")
        result = runner.run()
        assert result.placed == result.offered > 0
        assert result.total_throughput_mbps > 0.0
        assert result.reconfigurations > 0  # ACL + PBR per placement
        # the framework conversation really happened over the bus
        topics = {m.topic for m in runner.sdn.bus.log}
        assert "hecate.ask_path" in topics
        assert "freertr.reconfig" in topics

    def test_link_flap_drops_packets_and_heals(self):
        scenario = get_scenario("line-link-flap").quick(horizon=6.0, warmup=2.0)
        result = ScenarioRunner(scenario, backend="des").run()
        assert result.failure_events == 2
        assert result.drops > 0  # blackout on the only path
        # traffic resumed after restore: flows still delivered something
        assert result.total_throughput_mbps > 0.0

    def test_staged_use_matches_auto_run(self):
        scenario = get_scenario("p4lab-bursty-udp").quick(horizon=6.0, warmup=2.0)
        auto = ScenarioRunner(scenario, backend="des").run()
        staged = ScenarioRunner(scenario, backend="des").setup()
        staged.sdn.run(until=scenario.warmup)
        staged.inject_traffic()
        staged.arm_failures()
        staged.sdn.run(until=scenario.warmup + scenario.horizon)
        assert staged.collect() == auto

    def test_collect_before_setup_raises(self):
        runner = ScenarioRunner(get_scenario("line-baseline").quick())
        with pytest.raises(RuntimeError):
            runner.collect()

    def test_result_is_frozen(self):
        scenario = get_scenario("fig11-latency-migration").quick(
            horizon=4.0, warmup=1.0
        )
        result = ScenarioRunner(scenario, backend="des").run()
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.drops = 0


class TestCrossBackend:
    def test_same_workload_on_both_backends(self):
        """Both backends must see the identical offered load and tunnels."""
        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        fluid = ScenarioRunner(scenario, backend="fluid").setup()
        des = ScenarioRunner(scenario, backend="des").setup()
        assert fluid.requests == des.requests
        assert fluid.tunnels == des.tunnels
        assert fluid.failure_plan == des.failure_plan

    def test_fig12_scenario_backends_agree_on_steady_state(self):
        """At full horizon the paper scenario's packet-level aggregate
        approximates the fluid max-min prediction (the Fig. 12 claim)."""
        scenario = get_scenario("fig12-flow-aggregation").with_overrides(
            horizon=40.0, warmup=35.0
        )
        fluid = ScenarioRunner(scenario, backend="fluid").run()
        # fluid sees the post-spread allocation: 20 + 10 + 5 = 35 Mbps
        assert fluid.total_throughput_mbps == pytest.approx(35.0, abs=1.0)


class TestResultSerialization:
    def _result(self, backend):
        scenario = get_scenario("ring-uniform").quick(horizon=6.0, warmup=2.0)
        return ScenarioRunner(scenario, backend=backend).run()

    @pytest.mark.parametrize("backend", ["fluid", "des"])
    def test_json_round_trip_is_exact(self, backend):
        """to_dict -> json -> from_dict must reproduce the result exactly,
        floats included (workers and the sweep cache both rely on it)."""
        import json

        from repro.scenarios import ScenarioResult

        result = self._result(backend)
        payload = json.loads(json.dumps(result.to_dict()))
        assert ScenarioResult.from_dict(payload) == result

    def test_to_dict_emits_builtins_only(self):
        result = self._result("fluid")
        payload = result.to_dict()
        assert all(type(k) is str for k in payload)
        assert type(payload["total_throughput_mbps"]) is float
        assert type(payload["drops"]) is int
        assert all(
            type(k) is str and type(v) is float
            for k, v in payload["per_flow_mbps"].items()
        )

    def test_from_dict_coerces_numeric_types(self):
        """JSON writers elsewhere may have stored 60 for 60.0 (or vice
        versa); from_dict normalises both directions."""
        from repro.scenarios import ScenarioResult

        payload = self._result("fluid").to_dict()
        payload["horizon_s"] = int(payload["horizon_s"])
        payload["drops"] = float(payload["drops"])
        rebuilt = ScenarioResult.from_dict(payload)
        assert type(rebuilt.horizon_s) is float
        assert type(rebuilt.drops) is int

    def test_from_dict_missing_field_raises(self):
        from repro.scenarios import ScenarioResult

        payload = self._result("fluid").to_dict()
        del payload["migrations"]
        with pytest.raises(KeyError):
            ScenarioResult.from_dict(payload)

    def test_from_dict_ignores_unknown_fields(self):
        from repro.scenarios import ScenarioResult

        payload = self._result("fluid").to_dict()
        payload["introduced_in_a_future_version"] = 1
        assert ScenarioResult.from_dict(payload) == self._result("fluid")

    def test_from_dict_rejects_unknown_backend_name(self):
        """A result claiming a backend nobody registered is a corrupt or
        foreign artifact — refuse it loudly instead of tabulating it."""
        from repro.scenarios import ScenarioResult

        payload = self._result("fluid").to_dict()
        payload["backend"] = "ns3"
        with pytest.raises(ValueError, match="unknown backend 'ns3'"):
            ScenarioResult.from_dict(payload)
        with pytest.raises(ValueError, match="registered backends"):
            ScenarioResult.from_dict(payload)

    def test_from_dict_accepts_any_registered_backend(self):
        from repro.scenarios import ScenarioResult

        payload = self._result("fluid").to_dict()
        payload["backend"] = "emulation-mock"
        assert ScenarioResult.from_dict(payload).backend == "emulation-mock"


class TestZeroTraffic:
    """A scenario offering no flows must produce an empty result, not a
    crash — sweeps legitimately include idle baselines."""

    def _scenario(self):
        from repro.scenarios import TrafficSpec

        return get_scenario("line-baseline").quick().with_overrides(
            traffic=TrafficSpec("uniform", n_flows=0)
        )

    @pytest.mark.parametrize("backend", ["fluid", "des"])
    def test_runs_and_summarises_empty_flow_set(self, backend):
        result = ScenarioRunner(self._scenario(), backend=backend).run()
        assert result.offered == result.placed == 0
        assert result.per_flow_mbps == {}
        assert result.total_throughput_mbps == 0.0
        assert result.min_flow_mbps == 0.0
        assert result.mean_latency_ms == 0.0
        text = result.summary()  # must not raise on the empty flow set
        assert "0/0 placed" in text
