"""Scenario registry: contents, constructibility, spec plumbing."""

import numpy as np
import pytest

from repro.scenarios import (
    FailureSpec,
    PolicySpec,
    Scenario,
    ScenarioRunner,
    TopologySpec,
    TrafficSpec,
    derive_tunnels,
    generate_traffic,
    get_scenario,
    list_scenarios,
    plan_failures,
    register,
)


class TestRegistry:
    def test_at_least_ten_builtins(self):
        assert len(list_scenarios()) >= 10

    def test_names_sorted_and_unique(self):
        names = [s.name for s in list_scenarios()]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_paper_scenarios_present(self):
        assert get_scenario("fig11-latency-migration").tunnels is not None
        assert get_scenario("fig12-flow-aggregation").tunnels is not None

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        existing = list_scenarios()[0]
        with pytest.raises(ValueError, match="already registered"):
            register(existing)

    def test_every_builtin_has_description_and_valid_backend(self):
        from repro.scenarios import BACKENDS

        for scenario in list_scenarios():
            assert scenario.description
            assert scenario.backend in BACKENDS

    def test_scale_tier_is_tagged_and_excludable(self):
        scale = [s for s in list_scenarios() if "scale" in s.tags]
        assert len(scale) >= 4
        assert all(s.name.startswith("scale-") for s in scale)
        assert all(s.backend == "hybrid" for s in scale)
        assert all(s.traffic.n_flows >= 2000 for s in scale)
        small = list_scenarios(include_scale=False)
        assert not [s for s in small if "scale" in s.tags]
        assert len(small) + len(scale) == len(list_scenarios())


class TestSpecPlumbing:
    def test_every_builtin_topology_builds(self):
        for scenario in list_scenarios():
            network = scenario.topology.build()
            assert network.hosts and network.routers

    def test_every_builtin_generates_traffic_deterministically(self):
        for scenario in list_scenarios():
            network = scenario.topology.build()
            first = generate_traffic(
                network, scenario.traffic, scenario.horizon,
                np.random.default_rng(scenario.seed),
            )
            second = generate_traffic(
                network, scenario.traffic, scenario.horizon,
                np.random.default_rng(scenario.seed),
            )
            assert first == second
            assert len(first) >= 1

    def test_every_builtin_derives_tunnels(self):
        for scenario in list_scenarios():
            runner = ScenarioRunner(scenario, backend="fluid").setup()
            assert len(runner.tunnels) >= 1
            for _, _, path in runner.tunnels:
                assert len(path) >= 2

    def test_unknown_topology_kind(self):
        with pytest.raises(KeyError, match="unknown topology"):
            TopologySpec("moebius").build()

    def test_generated_flows_have_distinct_tos(self):
        """PBR steers by (src, dst, tos): a shared ToS would conflate two
        flows of the same host pair, so every flow gets its own byte."""
        network = TopologySpec("line", {"n_routers": 3}).build()
        requests = generate_traffic(
            network, TrafficSpec("uniform", n_flows=40), 60.0,
            np.random.default_rng(0),
        )
        tos_values = [r.tos for r in requests]
        assert len(set(tos_values)) == len(tos_values)
        assert all(0 < t <= 255 for t in tos_values)

    def test_flow_budget_beyond_tos_space_rejected(self):
        network = TopologySpec("line", {"n_routers": 3}).build()
        with pytest.raises(ValueError, match="ToS"):
            generate_traffic(network, TrafficSpec("uniform", n_flows=300),
                             60.0, np.random.default_rng(0))

    def test_unknown_traffic_pattern(self):
        network = TopologySpec("line", {"n_routers": 3}).build()
        with pytest.raises(KeyError, match="unknown traffic pattern"):
            generate_traffic(network, TrafficSpec("fractal"), 10.0,
                             np.random.default_rng(0))

    def test_unknown_failure_kind(self):
        network = TopologySpec("line", {"n_routers": 3}).build()
        with pytest.raises(KeyError, match="unknown failure kind"):
            plan_failures(network, FailureSpec("meteor"), 10.0,
                          np.random.default_rng(0))

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            Scenario(name="x", description="x",
                     topology=TopologySpec("line"), backend="quantum")

    def test_with_overrides_keeps_original(self):
        base = get_scenario("line-baseline")
        short = base.quick(horizon=5.0, warmup=1.0)
        assert short.horizon == 5.0 and base.horizon == 30.0
        assert short.name == base.name

    def test_failure_plan_is_time_ordered(self):
        scenario = get_scenario("ring-link-flap")
        network = scenario.topology.build()
        plan = plan_failures(network, scenario.failures, scenario.horizon,
                             np.random.default_rng(0))
        assert [e.at for e in plan] == sorted(e.at for e in plan)
        assert {e.action for e in plan} == {"fail", "restore"}

    def test_node_down_fails_every_link_of_the_node(self):
        scenario = get_scenario("geo-node-failure")
        network = scenario.topology.build()
        plan = plan_failures(network, scenario.failures, scenario.horizon,
                             np.random.default_rng(scenario.seed))
        failed = [e for e in plan if e.action == "fail"]
        assert failed
        # all fail events share one router endpoint: the downed node
        common = set.intersection(*({e.a, e.b} for e in failed))
        assert len(common) == 1

    def test_derive_tunnels_respects_k_paths(self):
        scenario = get_scenario("ring-uniform")
        network = scenario.topology.build()
        requests = generate_traffic(
            network, scenario.traffic, scenario.horizon,
            np.random.default_rng(scenario.seed),
        )
        tunnels = derive_tunnels(network, requests, k_paths=1)
        pairs = {(path[0], path[-1]) for _, _, path in tunnels}
        assert len(tunnels) == len(pairs)  # exactly one tunnel per pair


class TestPolicySpec:
    def test_defaults(self):
        policy = PolicySpec()
        assert policy.objective == "max_bandwidth"
        assert policy.model == "linear"
        assert policy.reoptimize_every is None

    def test_unknown_model_raises_at_setup(self):
        scenario = get_scenario("line-baseline").with_overrides(
            policy=PolicySpec(model="oracle")
        )
        with pytest.raises(KeyError, match="unknown model"):
            ScenarioRunner(scenario, backend="des").setup()
