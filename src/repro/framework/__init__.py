"""repro.framework — the Hecate-PolKA integration framework (Figs. 3-4).

Services over a shared message bus: TelemetryService (agents + time-series
DB), Scheduler (flow intake), Controller (telemetry -> Hecate -> PolKA
sequence + self-driving re-optimization), Dashboard (link-occupation
views), and the :class:`SelfDrivingNetwork` façade that wires all of them
to an emulated testbed.
"""

from .controller import Controller, FlowRecord, TunnelInfo
from .dashboard import Dashboard, sparkline
from .orchestrator import SelfDrivingNetwork
from .scheduler import INSERT_FLOW_TOPIC, NEW_FLOW_TOPIC, FlowRequest, Scheduler
from .telemetry_service import (
    TELEMETRY_GET_TOPIC,
    TELEMETRY_START_TOPIC,
    TelemetryService,
)

__all__ = [
    "SelfDrivingNetwork",
    "Controller", "FlowRecord", "TunnelInfo",
    "Scheduler", "FlowRequest", "INSERT_FLOW_TOPIC", "NEW_FLOW_TOPIC",
    "TelemetryService", "TELEMETRY_GET_TOPIC", "TELEMETRY_START_TOPIC",
    "Dashboard", "sparkline",
]
