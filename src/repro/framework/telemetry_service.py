"""Telemetry Service (Fig. 3/4): owns the time-series DB and the agents.

Fig. 4's ``startTelemetry``/``createTelemetry`` pair maps to
:meth:`TelemetryService.start` (arming the per-link collector) and
:meth:`TelemetryService.create_path_probe` (per-tunnel agents).  The
Controller retrieves stored history with ``getTelemetry`` — topic
``telemetry.get`` — as "a dataset of time-indexed values".

What lands in the DB, at every ``interval`` seconds of virtual time
(metric-name schema shared with the Dashboard and Hecate):

==============================  ==========================================
metric                          meaning
==============================  ==========================================
``link:A->B:mbps``              achieved directed throughput, last interval
``link:A->B:util``              that throughput / configured link rate
``link:A->B:drops``             packets tail-dropped in the interval
``path:NAME:available_mbps``    bottleneck headroom along tunnel ``NAME``
                                (the series Hecate forecasts)
``path:NAME:latency_ms``        propagation + current-queue estimate
``path:NAME:util``              bottleneck-link utilization
==============================  ==========================================

Creating a tunnel implicitly arms its path probe (the Controller calls
:meth:`create_path_probe` from ``register_tunnel``), so Hecate can be
asked about a path the moment one sample exists: with fewer than
``HecateService.MIN_TRAIN_SAMPLES`` observations it falls back to the
latest raw measurement instead of a trained forecast — the cold-start
behaviour a freshly deployed controller needs.  Bus access
(``telemetry.get`` / ``telemetry.start``) exists so remote components
never touch the DB object directly, mirroring the paper's
service-over-message-queue layering.  ``telemetry.get`` accepts an
optional ``since`` cursor (returned by the previous reply) and then
serves only the samples appended since — the incremental read that
keeps the Controller's per-placement and per-reoptimization telemetry
pulls O(new samples) on long runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.bus import Message, MessageBus
from repro.net.telemetry import LinkTelemetryCollector, PathTelemetryProbe, TimeSeriesDB
from repro.net.topology import Network

__all__ = ["TelemetryService", "TELEMETRY_GET_TOPIC", "TELEMETRY_START_TOPIC"]

TELEMETRY_GET_TOPIC = "telemetry.get"
TELEMETRY_START_TOPIC = "telemetry.start"


class TelemetryService:
    def __init__(
        self,
        network: Network,
        bus: Optional[MessageBus] = None,
        interval: float = 1.0,
    ):
        self.network = network
        self.interval = interval
        self.db = TimeSeriesDB()
        self.link_collector = LinkTelemetryCollector(network, self.db, interval)
        self.path_probes: Dict[str, PathTelemetryProbe] = {}
        self.started = False
        if bus is not None:
            bus.subscribe(TELEMETRY_GET_TOPIC, self._on_get)
            bus.subscribe(TELEMETRY_START_TOPIC, self._on_start)

    # ------------------------------------------------------------ control

    def start(self, at: float = 0.0) -> "TelemetryService":
        """Fig. 4 startTelemetry: begin periodic link sampling."""
        if not self.started:
            self.link_collector.start(at)
            self.started = True
        return self

    def create_path_probe(self, name: str, path: Sequence[str], at: float = 0.0) -> None:
        """Fig. 4 createTelemetry: arm an agent on one named path."""
        if name in self.path_probes:
            return
        probe = PathTelemetryProbe(
            self.network, self.db, name, path, interval=self.interval
        )
        probe.start(at)
        self.path_probes[name] = probe

    def remove_path_probe(self, name: str) -> bool:
        """Disarm and forget one path's agent (tunnel teardown).

        The probe stops sampling immediately; its already-recorded
        series stay in the DB.  Returns whether the probe existed —
        removing an unknown name is a no-op, so teardown paths can call
        this unconditionally."""
        probe = self.path_probes.pop(name, None)
        if probe is None:
            return False
        probe.stop()
        return True

    def stop(self) -> None:
        self.link_collector.stop()
        for probe in self.path_probes.values():
            probe.stop()
        self.started = False

    # ------------------------------------------------------------- access

    def path_history(self, name: str, metric: str = "available_mbps"):
        return self.db.series(f"path:{name}:{metric}")

    def _on_get(self, message: Message):
        """``telemetry.get``: full history, or — when the payload carries
        a ``since`` cursor — only the samples appended after it (the
        incremental read the Controller's hot loop uses; resending the
        returned ``cursor`` next time keeps the reply O(new samples)
        instead of O(history))."""
        metric = message.payload.get("metric", "available_mbps")
        path = message.payload.get("path")
        if path is None:
            return {"ok": False, "error": "missing 'path'"}
        key = f"path:{path}:{metric}"
        since = message.payload.get("since")
        if since is None:
            t, v = self.db.series(key)
            cursor = self.db.count(key)
        else:
            t, v, cursor = self.db.window_since(key, int(since))
        return {
            "ok": True,
            "path": path,
            "metric": metric,
            "cursor": cursor,
            "t": [float(x) for x in t],
            "values": [float(x) for x in v],
        }

    def _on_start(self, message: Message):
        path = message.payload.get("path")
        name = message.payload.get("name")
        if path and name:
            self.create_path_probe(name, path)
            return {"ok": True, "probe": name}
        self.start()
        return {"ok": True, "probe": None}
