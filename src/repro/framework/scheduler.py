"""Scheduler (Fig. 3/4): accepts user flow requests, hands them to the
Controller.

Fig. 4's sequence — Dashboard ``insertNewFlow`` -> Scheduler
``requestScheduler`` -> Controller ``newFlow`` — runs over the message
bus: the Scheduler subscribes to ``dashboard.insert_new_flow``,
validates each request (:meth:`FlowRequest.validate` — protocol, ToS
byte, positive duration, UDP rate), rejects duplicates by flow name, and
republishes accepted requests on ``scheduler.new_flow`` for the
Controller to place.  The reply dict propagates the Controller's verdict
back to the caller, so a Dashboard user sees both "request accepted" and
"flow placed on tunnel X" (or the reason it wasn't) from one call.

:class:`FlowRequest` is the framework's *lingua franca* for offered
load: the Dashboard builds one per user request, the scenario suite's
traffic patterns (:mod:`repro.scenarios.traffic`) generate lists of them,
and the Controller turns each into an access-list + PBR entry + traffic
application.  ``tos`` is the flow's ToS tag — the field the ingress
access-lists match on, and therefore what lets PBR steer flows of the
same host pair independently (the Fig. 12 trick); ``objective`` is
forwarded verbatim to Hecate.

Rejected requests are counted in :attr:`Scheduler.rejected` and never
reach the Controller; accepted ones are retained in order in
:attr:`Scheduler.requests` as the audit trail of offered load.

Churn support: a long-lived service admits and retires flows forever,
so the per-name dedup map must shrink when flows depart
(:meth:`Scheduler.retire`) and the audit trail may be bounded to the
most recent ``audit_limit`` requests; the :attr:`Scheduler.submitted` /
:attr:`Scheduler.rejected` counters carry the lifetime totals either
way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, MutableSequence, Optional

from repro.bus import Message, MessageBus
from repro.net.qoe import APP_CLASSES as _VALID_APP_CLASSES

__all__ = ["FlowRequest", "Scheduler", "INSERT_FLOW_TOPIC", "NEW_FLOW_TOPIC"]

INSERT_FLOW_TOPIC = "dashboard.insert_new_flow"
NEW_FLOW_TOPIC = "scheduler.new_flow"

_VALID_PROTOCOLS = ("tcp", "udp", "icmp")


@dataclass(frozen=True)
class FlowRequest:
    """One user-requested flow.

    ``tos`` is the flow's ToS tag (how PBR tells flows apart in the
    Fig. 12 experiment); ``objective`` is forwarded to Hecate.
    """

    flow_name: str
    src: str
    dst: str
    protocol: str = "tcp"
    tos: int = 0
    duration: float = 60.0
    start_at: float = 0.0
    rate_mbps: Optional[float] = None  # UDP only
    objective: str = "max_bandwidth"
    #: UDP only: send this many packets back-to-back per timer tick
    #: (see repro.net.apps.UdpFlow), trading pacing granularity for a
    #: proportionally smaller simulator event count at scale.
    train_packets: int = 1
    #: application class (see repro.net.qoe.APP_CLASSES): which QoE
    #: model scores this flow; "generic" flows have none and are
    #: excluded from QoE aggregates.
    app_class: str = "generic"

    def validate(self) -> None:
        if self.protocol not in _VALID_PROTOCOLS:
            raise ValueError(
                f"protocol must be one of {_VALID_PROTOCOLS}, got {self.protocol!r}"
            )
        if not 0 <= self.tos <= 255:
            raise ValueError(f"tos must be a byte, got {self.tos}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.start_at < 0:
            raise ValueError("start_at must be non-negative")
        if self.protocol == "udp" and (self.rate_mbps is None or self.rate_mbps <= 0):
            raise ValueError("udp flows need a positive rate_mbps")
        if self.train_packets < 1:
            raise ValueError("train_packets must be >= 1")
        if self.app_class not in _VALID_APP_CLASSES:
            raise ValueError(
                f"app_class must be one of {_VALID_APP_CLASSES}, "
                f"got {self.app_class!r}"
            )


class Scheduler:
    """Queues flow requests and notifies the Controller (Fig. 4)."""

    def __init__(self, bus: MessageBus, audit_limit: Optional[int] = None):
        if audit_limit is not None and audit_limit < 1:
            raise ValueError(f"audit_limit must be >= 1, got {audit_limit}")
        self.bus = bus
        self.requests: MutableSequence[FlowRequest] = (
            [] if audit_limit is None else deque(maxlen=audit_limit)
        )
        self.submitted: int = 0
        self.rejected: int = 0
        self._names: Dict[str, FlowRequest] = {}
        bus.subscribe(INSERT_FLOW_TOPIC, self._on_insert)

    def submit(self, request: FlowRequest) -> Dict:
        """Validate, queue and forward one request (requestScheduler)."""
        try:
            request.validate()
            if request.flow_name in self._names:
                raise ValueError(f"duplicate flow name {request.flow_name!r}")
        except ValueError as exc:
            self.rejected += 1
            return {"ok": False, "error": str(exc)}
        self.requests.append(request)
        self.submitted += 1
        self._names[request.flow_name] = request
        replies = self.bus.request(NEW_FLOW_TOPIC, request=request)
        result = {"ok": True, "flow_name": request.flow_name}
        if replies:
            result["controller"] = replies[0]
        return result

    def retire(self, flow_name: str) -> bool:
        """Forget a departed flow's name so the dedup map stays bounded
        under sustained churn (the audit trail keeps its entry until the
        ``audit_limit`` window slides past it).  Returns whether the
        name was known; retiring frees the name for reuse."""
        return self._names.pop(flow_name, None) is not None

    def _on_insert(self, message: Message) -> Dict:
        payload = dict(message.payload)
        try:
            request = FlowRequest(**payload)
        except TypeError as exc:
            self.rejected += 1
            return {"ok": False, "error": str(exc)}
        return self.submit(request)

    def pending(self) -> List[FlowRequest]:
        return list(self.requests)
