"""Open-loop service mode: sustained flow churn against the framework.

Scenarios (:mod:`repro.scenarios`) evaluate a *finite* offered load over
a fixed horizon; a deployed controller instead faces an endless stream
of flows arriving, holding, and departing.  This module is that
operating regime: an open-loop driver generates Poisson (or
trace-driven) arrivals with exponential/lognormal holding times, pushes
them through the real Scheduler -> Controller pipeline over the message
bus, retires each flow when its holding time expires, and measures the
steady-state service-level behaviour — placement latency percentiles,
admission outcomes, and re-optimization convergence — in the columnar
telemetry store.

Layers
------
:func:`generate_schedule`
    The entire arrival schedule is a pure, precomputed function of
    ``(ChurnSpec, duration, seed)``: one ``numpy`` generator, a fixed
    per-arrival draw order, diurnal rates via thinning at the peak rate.
    Same seed, byte-identical schedule — the foundation every
    determinism guarantee above it rests on.
:class:`TokenBucket`
    The admission controller: ``admission_rate`` tokens/second, depth
    ``admission_burst``, refilled lazily on virtual time.  Exhaustion
    either rejects (counted, dropped) or defers (queued, replayed in
    submission order once tokens return).
:class:`SLOCollector`
    Steady-state metrics in the columnar store: one
    :class:`~repro.net.telemetry.ColumnGroup` row of admission counters
    per batch tick, plus per-placement latency and per-settle
    re-optimization convergence series.  Samples arriving before
    ``warmup`` are excluded from percentiles (counters always cover the
    whole run).
:class:`ServiceDriver` / :func:`run_service`
    Batches due arrivals every ``batch_interval_s`` of virtual time,
    admits through the bucket, submits via the Scheduler, schedules each
    admitted flow's departure, and retires it end to end (Controller
    record, PBR entry, ACL, Scheduler dedup entry) when it fires.

Determinism
-----------
Placement latency is *virtual-time* queueing delay — arrival instant to
the batch tick that admitted the flow (batching plus any deferral wait).
No wall-clock value enters :class:`ServiceResult`, so two same-seed runs
serialize to byte-identical JSON; ``retired_digest`` (sha256 over the
sorted retired-flow names) pins the retired set without embedding
thousands of names in every artifact.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.net.telemetry import TimeSeriesDB
from repro.scenarios.runner import MODEL_FACTORIES, derive_tunnels_for_pairs
from repro.scenarios.spec import ChurnSpec, ServiceWorkload
from repro.scenarios.traffic import host_pairs

from .orchestrator import SelfDrivingNetwork
from .scheduler import FlowRequest

__all__ = [
    "ScheduledFlow",
    "generate_schedule",
    "TokenBucket",
    "SLOCollector",
    "ServiceResult",
    "ServiceDriver",
    "run_service",
]

#: Retention for the audit trails a long-lived service must bound
#: (bus log, scheduler request trail, controller decision log).
_AUDIT_WINDOW = 4096

#: Columnar layout of the per-batch-tick admission counter row.
COUNTER_METRICS = (
    "service:offered",
    "service:admitted",
    "service:rejected",
    "service:deferred",
    "service:placed",
    "service:active",
)

PLACEMENT_LATENCY_METRIC = "service:placement_latency_ms"
CONVERGENCE_METRIC = "service:reopt_convergence_s"


# --------------------------------------------------------------- arrivals


@dataclass(frozen=True)
class ScheduledFlow:
    """One precomputed arrival: when it arrives, how long it holds,
    which host pair it joins.  ``tos`` cycles through the 255 non-zero
    ToS bytes so concurrent flows of one pair stay distinguishable to
    the ingress access-lists (same trick as the scenario traffic)."""

    index: int
    name: str
    at: float
    holding: float
    src: str
    dst: str
    tos: int


def _draw_holding(rng: np.random.Generator, churn: ChurnSpec) -> float:
    if churn.holding == "exponential":
        return float(rng.exponential(churn.mean_holding_s))
    # lognormal parameterized by its *mean*: mu = ln(mean) - sigma^2/2
    mu = float(np.log(churn.mean_holding_s) - churn.sigma**2 / 2.0)
    return float(rng.lognormal(mean=mu, sigma=churn.sigma))


def generate_schedule(
    churn: ChurnSpec,
    duration: float,
    seed: int,
    pairs: Sequence[Tuple[str, str]],
) -> Tuple[ScheduledFlow, ...]:
    """The full arrival schedule, precomputed and deterministic.

    One ``default_rng(seed)`` with a fixed per-arrival draw order —
    inter-arrival gap, thinning uniform (diurnal only), holding time,
    pair index — so the schedule is a pure function of
    ``(churn, duration, seed, pairs)`` and a same-seed rerun reproduces
    it byte for byte.

    ``rate_profile="diurnal"`` uses thinning: candidates are drawn at
    the peak rate ``rate * (1 + amplitude)`` and kept with probability
    ``rate(t) / peak``, where ``rate(t)`` follows a sinusoid with its
    trough at t=0 and peak half a period in.  Thinning keeps the draw
    count coupled to the seed alone (no numerical integration of the
    rate curve), which is what keeps diurnal schedules deterministic.
    """
    if not pairs:
        raise ValueError("need at least one (src, dst) host pair")
    rng = np.random.default_rng(seed)
    flows: List[ScheduledFlow] = []

    def emit(at: float) -> None:
        index = len(flows)
        holding = _draw_holding(rng, churn)
        pair_idx = int(rng.integers(0, len(pairs)))
        src, dst = pairs[pair_idx]
        flows.append(
            ScheduledFlow(
                index=index,
                name=f"svc{index:06d}",
                at=float(at),
                holding=holding,
                src=src,
                dst=dst,
                tos=(index % 255) + 1,
            )
        )

    if churn.arrival == "trace":
        for at in churn.trace or ():
            if at >= duration:
                break
            emit(at)
        return tuple(flows)

    if churn.rate_profile == "constant":
        t = float(rng.exponential(1.0 / churn.rate))
        while t < duration:
            emit(t)
            t += float(rng.exponential(1.0 / churn.rate))
        return tuple(flows)

    # diurnal: thinning at the peak rate
    peak = churn.rate * (1.0 + churn.diurnal_amplitude)
    omega = 2.0 * np.pi / churn.diurnal_period
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= duration:
            break
        accept = float(rng.random())
        rate_t = churn.rate * (
            1.0 + churn.diurnal_amplitude * np.sin(omega * t - np.pi / 2.0)
        )
        if accept < rate_t / peak:
            emit(t)
    return tuple(flows)


# -------------------------------------------------------------- admission


class TokenBucket:
    """Virtual-time token bucket: ``rate`` tokens/second, depth
    ``depth``, starting full.  Lazy refill — tokens accrue continuously
    between :meth:`try_take` calls, capped at the depth — so a burst of
    exactly ``depth`` simultaneous arrivals is admitted in full and a
    zero-rate zero-depth bucket admits nothing."""

    def __init__(self, rate: float, depth: int):
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.rate = float(rate)
        self.depth = float(depth)
        self.tokens = float(depth)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.depth, self.tokens + (now - self._last) * self.rate)
            self._last = now

    def try_take(self, now: float) -> bool:
        """Consume one token at virtual time ``now`` if available."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


# ------------------------------------------------------------------- SLO


class SLOCollector:
    """Steady-state service metrics in the columnar store.

    Per batch tick, one row of cumulative admission counters
    (:data:`COUNTER_METRICS`); per placement, the virtual-time queueing
    latency; per re-optimization settle, the convergence time.  Samples
    whose *arrival* predates ``warmup`` never enter the percentile
    pools — the warm-up transient (empty network, cold caches) would
    otherwise understate steady-state queueing."""

    def __init__(self, db: TimeSeriesDB, warmup: float):
        self.db = db
        self.warmup = warmup
        self._counters = db.column_group(list(COUNTER_METRICS))
        self.placement_ms: List[float] = []
        self.convergence_s: List[float] = []

    def record_tick(self, t: float, row: Sequence[float]) -> None:
        self._counters.append(t, row)

    def record_placement(self, arrived_at: float, placed_at: float) -> None:
        latency_ms = (placed_at - arrived_at) * 1000.0
        if arrived_at >= self.warmup:
            self.placement_ms.append(latency_ms)
            self.db.insert(PLACEMENT_LATENCY_METRIC, placed_at, latency_ms)

    def record_convergence(self, settled_at: float, settle_s: float) -> None:
        if settled_at >= self.warmup:
            self.convergence_s.append(settle_s)
            self.db.insert(CONVERGENCE_METRIC, settled_at, settle_s)

    @staticmethod
    def percentile(samples: Sequence[float], q: float) -> float:
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


# ----------------------------------------------------------------- result


@dataclass(frozen=True)
class ServiceResult:
    """One service-mode run's deterministic outcome.

    Every field is a pure function of ``(workload, overrides, seed)`` —
    virtual-time latencies, counters, and the sha256 digest of the
    sorted retired-flow names — so ``to_dict`` output (and therefore its
    JSON serialization) is byte-identical across same-seed runs.  The
    admission counters reconcile exactly::

        admitted + rejected + deferred_pending == offered
        placed + place_failed                  == admitted
        placed - retired                       == active_at_end
    """

    workload: str
    seed: int
    rate: float
    duration_s: float
    warmup_s: float
    tunnels: int
    batches: int
    offered: int
    admitted: int
    rejected: int
    deferrals: int
    replayed: int
    deferred_pending: int
    placed: int
    place_failed: int
    retired: int
    active_at_end: int
    placement_p50_ms: float
    placement_p95_ms: float
    placement_p99_ms: float
    placement_samples: int
    reopt_ticks: int
    migrations: int
    convergence_p50_s: float
    convergence_p95_s: float
    convergence_samples: int
    retired_digest: str
    sim_events: int
    telemetry_samples: int

    _FIELD_TYPES = {
        "workload": str,
        "seed": int,
        "rate": float,
        "duration_s": float,
        "warmup_s": float,
        "tunnels": int,
        "batches": int,
        "offered": int,
        "admitted": int,
        "rejected": int,
        "deferrals": int,
        "replayed": int,
        "deferred_pending": int,
        "placed": int,
        "place_failed": int,
        "retired": int,
        "active_at_end": int,
        "placement_p50_ms": float,
        "placement_p95_ms": float,
        "placement_p99_ms": float,
        "placement_samples": int,
        "reopt_ticks": int,
        "migrations": int,
        "convergence_p50_s": float,
        "convergence_p95_s": float,
        "convergence_samples": int,
        "retired_digest": str,
        "sim_events": int,
        "telemetry_samples": int,
    }

    def reconciles(self) -> bool:
        """Exact admission-ledger check (see the class docstring)."""
        return (
            self.admitted + self.rejected + self.deferred_pending == self.offered
            and self.placed + self.place_failed == self.admitted
            and self.placed - self.retired == self.active_at_end
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of plain builtins (inverse of :meth:`from_dict`);
        numpy scalars are coerced so artifacts never embed dtypes."""
        return {
            name: coerce(getattr(self, name))
            for name, coerce in self._FIELD_TYPES.items()
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServiceResult":
        return cls(
            **{
                name: coerce(payload[name])
                for name, coerce in cls._FIELD_TYPES.items()
            }
        )

    def summary(self) -> str:
        lines = [
            f"service {self.workload} seed={self.seed} "
            f"rate={self.rate:g}/s duration={self.duration_s:g}s "
            f"warmup={self.warmup_s:g}s ({self.tunnels} tunnels, "
            f"{self.batches} batch ticks)",
            f"  admission : {self.offered} offered = {self.admitted} admitted"
            f" + {self.rejected} rejected + {self.deferred_pending} still "
            f"deferred ({self.deferrals} deferrals, {self.replayed} replayed)"
            + ("" if self.reconciles() else "  ** UNRECONCILED **"),
            f"  placement : {self.placed} placed, {self.place_failed} failed, "
            f"{self.retired} retired, {self.active_at_end} active at end",
            f"  latency   : p50={self.placement_p50_ms:.2f} ms  "
            f"p95={self.placement_p95_ms:.2f} ms  "
            f"p99={self.placement_p99_ms:.2f} ms  "
            f"({self.placement_samples} samples past warmup)",
            f"  reopt     : {self.reopt_ticks} ticks, {self.migrations} "
            f"migrations, convergence p50={self.convergence_p50_s:.2f}s "
            f"p95={self.convergence_p95_s:.2f}s "
            f"({self.convergence_samples} settles)",
            f"  volume    : sim_events={self.sim_events}  "
            f"telemetry_samples={self.telemetry_samples}  "
            f"retired_digest={self.retired_digest[:16]}",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------- driver


class ServiceDriver:
    """Runs one :class:`~repro.scenarios.spec.ServiceWorkload`.

    Construction builds the topology, wires a
    :class:`SelfDrivingNetwork` with bounded audit trails and (by
    default) control-plane-only placement, derives candidate tunnels for
    the workload's host pairs, and precomputes the arrival schedule;
    :meth:`run` then walks virtual time in ``batch_interval_s`` quanta:

    1. advance the simulator to the tick (telemetry, re-optimization,
       departures fire);
    2. replay the defer queue FIFO, stopping at the first token miss so
       submission order is preserved;
    3. admit the newly-due arrivals through the token bucket (behind any
       still-deferred request, which would otherwise be overtaken);
    4. append the cumulative counter row to the columnar store.

    Admitted flows are submitted through the Scheduler (the Fig. 4 path
    the Dashboard uses), their departures scheduled as simulator events
    that retire them end to end.
    """

    def __init__(
        self,
        workload: ServiceWorkload,
        rate: Optional[float] = None,
        duration: Optional[float] = None,
        warmup: Optional[float] = None,
        seed: Optional[int] = None,
        objective: Optional[str] = None,
    ):
        overrides: Dict[str, Any] = {}
        if duration is not None:
            overrides["duration"] = duration
        if warmup is not None:
            overrides["warmup"] = warmup
        if seed is not None:
            overrides["seed"] = seed
        if rate is not None:
            overrides["churn"] = dataclasses.replace(workload.churn, rate=rate)
        if objective is not None:
            overrides["policy"] = dataclasses.replace(
                workload.policy, objective=objective
            )
        self.workload = workload.with_overrides(**overrides) if overrides else workload
        churn = self.workload.churn
        policy = self.workload.policy

        network = self.workload.topology.build()
        try:
            model_factory = MODEL_FACTORIES[policy.model]
        except KeyError:
            raise ValueError(
                f"unknown model {policy.model!r}; "
                f"choose from {sorted(MODEL_FACTORIES)}"
            ) from None
        self.sdn = SelfDrivingNetwork(
            network,
            model_factory=model_factory,
            telemetry_interval=policy.telemetry_interval,
            reoptimize_every=policy.reoptimize_every,
            reopt_threshold_mbps=policy.reopt_threshold_mbps,
            launch_apps=churn.launch_apps,
            bus_log_limit=_AUDIT_WINDOW,
            audit_limit=_AUDIT_WINDOW,
            decision_log_limit=_AUDIT_WINDOW,
        )
        self.pairs = host_pairs(network)[: churn.n_pairs]
        router_pairs: List[Tuple[str, str]] = []
        seen = set()
        for src, dst in self.pairs:
            pair = (network.edge_router_of(src), network.edge_router_of(dst))
            if pair not in seen:
                seen.add(pair)
                router_pairs.append(pair)
        for name, tid, path in derive_tunnels_for_pairs(
            network, router_pairs, policy.k_paths
        ):
            self.sdn.add_tunnel(name, tid, path)
        self.schedule = generate_schedule(
            churn, self.workload.duration, self.workload.seed, self.pairs
        )
        self.bucket = TokenBucket(churn.admission_rate, churn.admission_burst)
        self.collector = SLOCollector(self.sdn.db, self.workload.warmup)
        # admission ledger
        self.admitted = 0
        self.rejected = 0
        self.deferrals = 0  # defer *events* (a flow may defer repeatedly)
        self.replayed = 0  # admissions that waited in the defer queue
        self.placed = 0
        self.place_failed = 0
        self.retired_names: List[str] = []
        # the defer queue is provably drained: replay runs every batch
        # tick and admission tokens refill continuously, so its depth is
        # bounded by one tick's arrivals, not the run length
        self._defer_q: Deque[ScheduledFlow] = deque()  # repro-lint: disable=RL008
        self._deferred_once: set = set()
        # convergence probe state (see _on_reopt)
        self._last_migrations = 0
        self._unstable_since: Optional[float] = None
        self.sdn.controller.on_reopt = self._on_reopt

    # ------------------------------------------------------- internals

    def _on_reopt(self, controller: Any) -> None:
        """Convergence probe: a re-optimization episode opens at the
        first tick that migrates flows and settles at the next tick that
        migrates none; the settle time is the episode's duration in
        virtual time."""
        now = self.sdn.network.sim.now
        delta = controller.migrations_total - self._last_migrations
        self._last_migrations = controller.migrations_total
        if delta > 0:
            if self._unstable_since is None:
                self._unstable_since = now
        elif self._unstable_since is not None:
            self.collector.record_convergence(now, now - self._unstable_since)
            self._unstable_since = None

    def _submit(self, flow: ScheduledFlow, now: float) -> None:
        """Admit one flow: Scheduler -> Controller placement, departure
        event, SLO sample.  Caller has already taken the token."""
        churn = self.workload.churn
        request = FlowRequest(
            flow_name=flow.name,
            src=flow.src,
            dst=flow.dst,
            protocol=churn.protocol,
            tos=flow.tos,
            duration=flow.holding,
            start_at=0.0,
            rate_mbps=churn.rate_mbps if churn.protocol == "udp" else None,
            objective=self.workload.policy.objective,
        )
        self.admitted += 1
        if flow.index in self._deferred_once:
            self.replayed += 1
        reply = self.sdn.scheduler.submit(request)
        verdict = reply.get("controller", {})
        if not (reply.get("ok") and verdict.get("ok")):
            self.place_failed += 1
            return
        self.placed += 1
        self.collector.record_placement(flow.at, now)
        name = flow.name
        self.sdn.network.sim.schedule_at(
            now + flow.holding, lambda: self._retire(name)
        )

    def _retire(self, flow_name: str) -> None:
        self.sdn.retire_flow(flow_name)
        self.retired_names.append(flow_name)

    # ------------------------------------------------------------- run

    def run(self) -> ServiceResult:
        churn = self.workload.churn
        duration = self.workload.duration
        interval = churn.batch_interval_s
        n_batches = max(1, int(np.ceil(duration / interval)))
        sim = self.sdn.network.sim
        next_arrival = 0  # pointer into the precomputed schedule
        defer_mode = churn.on_exhausted == "defer"
        for k in range(n_batches):
            now = min((k + 1) * interval, duration)
            sim.run(until=now)
            # 1. replay deferred requests FIFO; the first token miss
            #    stops the replay so submission order is never inverted
            while self._defer_q and self.bucket.try_take(now):
                self._submit(self._defer_q.popleft(), now)
            # 2. newly-due arrivals, behind anything still deferred
            while (
                next_arrival < len(self.schedule)
                and self.schedule[next_arrival].at <= now
            ):
                flow = self.schedule[next_arrival]
                next_arrival += 1
                if defer_mode and self._defer_q:
                    self._defer_q.append(flow)
                    self._deferred_once.add(flow.index)
                    self.deferrals += 1
                elif self.bucket.try_take(now):
                    self._submit(flow, now)
                elif defer_mode:
                    self._defer_q.append(flow)
                    self._deferred_once.add(flow.index)
                    self.deferrals += 1
                else:
                    self.rejected += 1
            self.collector.record_tick(
                now,
                (
                    float(next_arrival),
                    float(self.admitted),
                    float(self.rejected),
                    float(len(self._defer_q)),
                    float(self.placed),
                    float(len(self.sdn.controller.flows)),
                ),
            )
        return self._result(n_batches)

    def _result(self, n_batches: int) -> ServiceResult:
        controller = self.sdn.controller
        digest = hashlib.sha256(
            ",".join(sorted(self.retired_names)).encode()
        ).hexdigest()
        pct = self.collector.percentile
        return ServiceResult(
            workload=self.workload.name,
            seed=self.workload.seed,
            rate=self.workload.churn.rate,
            duration_s=self.workload.duration,
            warmup_s=self.workload.warmup,
            tunnels=len(controller.tunnels),
            batches=n_batches,
            offered=len(self.schedule),
            admitted=self.admitted,
            rejected=self.rejected,
            deferrals=self.deferrals,
            replayed=self.replayed,
            deferred_pending=len(self._defer_q),
            placed=self.placed,
            place_failed=self.place_failed,
            retired=len(self.retired_names),
            active_at_end=len(controller.flows),
            placement_p50_ms=pct(self.collector.placement_ms, 50),
            placement_p95_ms=pct(self.collector.placement_ms, 95),
            placement_p99_ms=pct(self.collector.placement_ms, 99),
            placement_samples=len(self.collector.placement_ms),
            reopt_ticks=controller.reopt_ticks,
            migrations=controller.migrations_total,
            convergence_p50_s=pct(self.collector.convergence_s, 50),
            convergence_p95_s=pct(self.collector.convergence_s, 95),
            convergence_samples=len(self.collector.convergence_s),
            retired_digest=digest,
            sim_events=self.sdn.network.sim.events_processed,
            telemetry_samples=self.sdn.db.total_samples(),
        )


def run_service(
    workload: ServiceWorkload,
    rate: Optional[float] = None,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
    seed: Optional[int] = None,
    objective: Optional[str] = None,
) -> ServiceResult:
    """Build a :class:`ServiceDriver` for ``workload`` (with optional
    rate/duration/warmup/seed/objective overrides) and run it to
    completion."""
    return ServiceDriver(
        workload,
        rate=rate,
        duration=duration,
        warmup=warmup,
        seed=seed,
        objective=objective,
    ).run()
