"""Dashboard (Fig. 3/4): the user's window into the framework.

Provides the two halves of the paper's Dashboard:

- **input** — :meth:`Dashboard.request_flow` is the ``insertNewFlow``
  entry point: it publishes the request on
  ``dashboard.insert_new_flow`` and returns the Scheduler's (and,
  nested, the Controller's) verdict.  The Dashboard never talks to the
  Controller directly; like every component here it only knows the bus.
- **output** — the "link occupation graphs" the paper shows its users,
  rendered terminal-first: :meth:`Dashboard.render_links` (per-link
  utilization sparklines), :meth:`Dashboard.render_paths` (per-tunnel
  available bandwidth) and :meth:`Dashboard.flow_table` (active flows,
  their tunnels and migration counts).

:func:`sparkline` is the rendering primitive: it bins an arbitrary-
length series down to a fixed character width (mean per bin) and maps
values onto a ten-character density ramp, so a whole telemetry history
reads as one line of ASCII.  Fixed ``lo``/``hi`` bounds keep multiple
lines comparable (utilization is always drawn on 0..1).

All views read the same :class:`~repro.net.telemetry.TimeSeriesDB` the
Telemetry Service writes (metric schema documented in
:mod:`repro.framework.telemetry_service`), so what the user sees is
exactly what Hecate decides from.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bus import MessageBus
from repro.net.telemetry import TimeSeriesDB

from .controller import Controller
from .scheduler import INSERT_FLOW_TOPIC

__all__ = ["Dashboard", "sparkline"]

_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60,
              lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """Render a series as a fixed-width ASCII sparkline."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return " " * width
    if values.size > width:
        # average-bin down to width
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([
            values[a:b].mean() if b > a else values[min(a, values.size - 1)]
            for a, b in zip(edges[:-1], edges[1:])
        ])
    lo = float(values.min() if lo is None else lo)
    hi = float(values.max() if hi is None else hi)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[0] * len(values)
    idx = ((values - lo) / span * (len(_SPARK_CHARS) - 1)).round().astype(int)
    idx = np.clip(idx, 0, len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[i] for i in idx)


class Dashboard:
    def __init__(self, bus: MessageBus, db: TimeSeriesDB,
                 controller: Optional[Controller] = None):
        self.bus = bus
        self.db = db
        self.controller = controller

    # --------------------------------------------------------- user entry

    def request_flow(self, **kwargs) -> Dict:
        """Fig. 4 insertNewFlow: publish a flow request to the Scheduler."""
        replies = self.bus.request(INSERT_FLOW_TOPIC, **kwargs)
        if not replies:
            return {"ok": False, "error": "no scheduler subscribed"}
        return replies[0]

    # ----------------------------------------------------------- displays

    def link_occupation(self, a: str, b: str) -> Tuple[np.ndarray, np.ndarray]:
        """Utilization series for the directed link ``a -> b``."""
        return self.db.series(f"link:{a}->{b}:util")

    def render_links(self, links: Sequence[Tuple[str, str]], width: int = 50) -> str:
        """The paper's link-occupation graphs, one sparkline per link."""
        lines = ["link occupation (utilization 0..1)"]
        for a, b in links:
            _, util = self.link_occupation(a, b)
            spark = sparkline(util, width=width, lo=0.0, hi=1.0)
            last = util[-1] if util.size else 0.0
            lines.append(f"  {a:>6s}->{b:<6s} [{spark}] {last:5.2f}")
        return "\n".join(lines)

    def render_paths(self, names: Sequence[str], width: int = 50) -> str:
        lines = ["path available bandwidth (Mbps)"]
        for name in names:
            _, avail = self.db.series(f"path:{name}:available_mbps")
            spark = sparkline(avail, width=width)
            last = avail[-1] if avail.size else 0.0
            lines.append(f"  {name:>6s} [{spark}] {last:7.2f}")
        return "\n".join(lines)

    def flow_table(self) -> str:
        """Active flows, their tunnels and migration counts."""
        if self.controller is None or not self.controller.flows:
            return "no flows placed"
        lines = [f"{'flow':12s}{'proto':7s}{'tos':5s}{'tunnel':8s}{'migrations':>11s}"]
        for name, record in self.controller.flows.items():
            request = record.request
            lines.append(
                f"{name:12s}{request.protocol:7s}{request.tos:<5d}"
                f"{record.tunnel:8s}{len(record.migrations):>11d}"
            )
        return "\n".join(lines)
