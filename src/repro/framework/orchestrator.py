"""SelfDrivingNetwork: one object wiring the whole Fig. 3 architecture.

Construction assembles, over a shared message bus and simulator:
Network (emulated testbed) + RouterConfigService (PolKA/freeRtr service)
+ TelemetryService + HecateService (Optimizer) + Scheduler + Controller +
Dashboard.  This is the public façade the examples and experiments use —
the closest thing to "deploying the framework" on the emulated testbed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.bus import MessageBus
from repro.freertr.service import RouterConfigService
from repro.hecate.service import HecateService, default_model_factory
from repro.net.topology import Network

from .controller import Controller, FlowRecord
from .dashboard import Dashboard
from .scheduler import FlowRequest, Scheduler
from .telemetry_service import TelemetryService

__all__ = ["SelfDrivingNetwork"]


class SelfDrivingNetwork:
    """The integrated Hecate-PolKA framework on an emulated testbed.

    Parameters
    ----------
    network:
        A built :class:`repro.net.Network` (e.g.
        :func:`repro.topologies.global_p4_lab`).
    model_factory:
        Regressor used by Hecate's predictor (default: the paper's RFR).
    telemetry_interval:
        Sampling period for link and path telemetry (the paper collects
        at predefined intervals; 1 s like its second-granularity data).
    reoptimize_every:
        If set, the Controller re-asks Hecate this often and migrates
        flows whose recommendation changed.
    """

    def __init__(
        self,
        network: Network,
        model_factory: Callable[[], object] = default_model_factory,
        telemetry_interval: float = 1.0,
        reoptimize_every: Optional[float] = None,
    ):
        self.network = network
        self.bus = MessageBus()
        self.router_config = RouterConfigService(network, self.bus)
        self.telemetry = TelemetryService(
            network, self.bus, interval=telemetry_interval
        )
        self.hecate = HecateService(
            self.telemetry.db, bus=self.bus, model_factory=model_factory
        )
        self.scheduler = Scheduler(self.bus)
        self.controller = Controller(
            network, self.bus, self.telemetry, reoptimize_every=reoptimize_every
        )
        self.dashboard = Dashboard(self.bus, self.telemetry.db, self.controller)
        self.telemetry.start()

    # ------------------------------------------------------------- setup

    def add_tunnel(self, name: str, tunnel_id: int, path: Sequence[str]) -> None:
        """Register a candidate PolKA tunnel (creates route + telemetry)."""
        self.controller.register_tunnel(name, tunnel_id, path)

    # -------------------------------------------------------------- flows

    def request_flow(self, **kwargs) -> Dict:
        """User-level entry point (Dashboard -> Scheduler -> Controller)."""
        return self.dashboard.request_flow(**kwargs)

    def flow(self, name: str) -> FlowRecord:
        return self.controller.flows[name]

    def migrate_flow(self, flow_name: str, tunnel_name: str) -> None:
        self.controller.migrate_flow(flow_name, tunnel_name)

    # ---------------------------------------------------------------- run

    def run(self, until: float) -> None:
        self.network.run(until)

    @property
    def db(self):
        return self.telemetry.db

    def decision_log(self) -> List[Dict]:
        return list(self.controller.decisions)
