"""SelfDrivingNetwork: one object wiring the whole Fig. 3 architecture.

The paper's contribution is an *integration*: six services that only
talk through a message queue, closing the telemetry -> ML -> routing
loop.  Constructing a :class:`SelfDrivingNetwork` assembles exactly that
picture over one shared :class:`~repro.bus.MessageBus` and one
deterministic simulator clock:

========================  =================================================
component                 role (Fig. 3 name)
========================  =================================================
``network``               the emulated testbed (virtualized Global P4 Lab)
``router_config``         PolKA/freeRtr reconfiguration service, topic
                          ``freertr.reconfig``
``telemetry``             Telemetry Service + time-series DB, topics
                          ``telemetry.start`` / ``telemetry.get``
``hecate``                the ML Optimizer, topic ``hecate.ask_path``
``scheduler``             user-request intake, topic ``scheduler.new_flow``
``controller``            closes the loop: placement, PBR binds, migration
``dashboard``             user entry point + terminal "link occupation"
                          views, topic ``dashboard.insert_new_flow``
========================  =================================================

Lifecycle: construct (telemetry starts sampling immediately), register
candidate tunnels with :meth:`add_tunnel`, advance virtual time with
:meth:`run` until Hecate has history, then :meth:`request_flow` — the
full Fig. 4 sequence executes synchronously over the bus and the traffic
application starts inside the simulation.  Everything is deterministic:
two identically-constructed instances driven identically produce
bit-identical telemetry, decisions and flow metrics (the property the
scenario suite's reproducibility tests pin down).

This façade is what examples, experiments and the scenario runner
(:mod:`repro.scenarios`) all build on — the closest thing in this repo
to "deploying the framework" on a testbed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.bus import MessageBus
from repro.freertr.service import RouterConfigService
from repro.hecate.service import HecateService, default_model_factory
from repro.net.topology import Network

from .controller import Controller, FlowRecord
from .dashboard import Dashboard
from .scheduler import Scheduler
from .telemetry_service import TelemetryService

__all__ = ["SelfDrivingNetwork"]


class SelfDrivingNetwork:
    """The integrated Hecate-PolKA framework on an emulated testbed.

    Parameters
    ----------
    network:
        A built :class:`repro.net.Network` (e.g.
        :func:`repro.topologies.global_p4_lab`).
    model_factory:
        Regressor used by Hecate's predictor (default: the paper's RFR).
    telemetry_interval:
        Sampling period for link and path telemetry (the paper collects
        at predefined intervals; 1 s like its second-granularity data).
    reoptimize_every:
        If set, the Controller re-asks Hecate this often and migrates
        flows whose recommendation changed.
    reopt_threshold_mbps:
        Telemetry movement (Mbps per candidate link) below which an
        unchanged flow group is skipped by the incremental
        re-optimization tick.
    launch_apps:
        When False the Controller places flows on the control plane only
        (ACL + PBR + record) without packet-level traffic apps — the
        mode the open-loop service driver runs in.
    bus_log_limit / audit_limit / decision_log_limit:
        Optional bounds on the bus audit log, the Scheduler's request
        trail and the Controller's decision log.  Finite scenarios keep
        the unbounded defaults; a long-lived service must bound all
        three or its footprint grows with lifetime arrivals.
    """

    def __init__(
        self,
        network: Network,
        model_factory: Callable[[], object] = default_model_factory,
        telemetry_interval: float = 1.0,
        reoptimize_every: Optional[float] = None,
        reopt_threshold_mbps: float = 1.0,
        launch_apps: bool = True,
        bus_log_limit: Optional[int] = None,
        audit_limit: Optional[int] = None,
        decision_log_limit: Optional[int] = None,
    ):
        self.network = network
        self.bus = MessageBus(log_limit=bus_log_limit)
        self.router_config = RouterConfigService(network, self.bus)
        self.telemetry = TelemetryService(
            network, self.bus, interval=telemetry_interval
        )
        self.hecate = HecateService(
            self.telemetry.db, bus=self.bus, model_factory=model_factory
        )
        self.scheduler = Scheduler(self.bus, audit_limit=audit_limit)
        self.controller = Controller(
            network,
            self.bus,
            self.telemetry,
            reoptimize_every=reoptimize_every,
            reopt_threshold_mbps=reopt_threshold_mbps,
            launch_apps=launch_apps,
            decision_log_limit=decision_log_limit,
        )
        self.dashboard = Dashboard(self.bus, self.telemetry.db, self.controller)
        self.telemetry.start()

    # ------------------------------------------------------------- setup

    def add_tunnel(self, name: str, tunnel_id: int, path: Sequence[str]) -> None:
        """Register a candidate PolKA tunnel (creates route + telemetry)."""
        self.controller.register_tunnel(name, tunnel_id, path)

    # -------------------------------------------------------------- flows

    def request_flow(self, **kwargs) -> Dict:
        """User-level entry point (Dashboard -> Scheduler -> Controller)."""
        return self.dashboard.request_flow(**kwargs)

    def flow(self, name: str) -> FlowRecord:
        return self.controller.flows[name]

    def migrate_flow(self, flow_name: str, tunnel_name: str) -> None:
        self.controller.migrate_flow(flow_name, tunnel_name)

    def retire_flow(self, flow_name: str) -> FlowRecord:
        """Tear down a departed flow end to end: Controller state (app,
        PBR entry, access-list, group snapshot) and the Scheduler's
        dedup entry — the full inverse of :meth:`request_flow`, so a
        long-lived deployment's footprint tracks *concurrent* flows."""
        record = self.controller.remove_flow(flow_name)
        self.scheduler.retire(flow_name)
        return record

    # ---------------------------------------------------------------- run

    def run(self, until: float) -> None:
        self.network.run(until)

    @property
    def db(self):
        return self.telemetry.db

    def decision_log(self) -> List[Dict]:
        return list(self.controller.decisions)
