"""Controller (Fig. 3/4): the component that closes the loop.

On ``scheduler.new_flow`` it executes the Fig. 4 sequence:

1. ``getTelemetry`` — pull each candidate tunnel's stored history;
2. ``askHecatePath`` — request a recommendation from the Hecate service;
3. ``configureTunnel`` — install the flow's access-list and point its PBR
   entry at the chosen tunnel (one freeRtr reconfiguration message);
4. start the traffic application on the end hosts.

A periodic re-optimization loop (enabled with ``reoptimize_every``) then
keeps asking Hecate and re-points PBR entries when the recommendation
changes — the "self-driving" behaviour the paper targets; each change is
one edge-router touch, never a core reconfiguration.

Re-optimization is **incremental**: each (ingress, egress) flow group
carries a signature of its membership, the up/down state of every link
its candidate tunnels cross, and the latest telemetry-carried Mbps per
link.  A tick only re-solves groups whose signature moved — membership
changed, a link changed state, or telemetry drifted beyond
``reopt_threshold_mbps`` since the group's last solve (drift accumulates
against the last *solved* snapshot, so slow creep still triggers).
Forecasts for all stale groups go to Hecate in one batched request
(``hecate.ask_path_batch``), which fits each tunnel's regressor once no
matter how many groups share it.

Multi-pair deployments (the scenario suite runs traffic between many
edge pairs at once) rely on two behaviours beyond the paper's single
MIA->AMS testbed: candidate tunnels are filtered by the *egress* edge of
the flow's destination (see :meth:`Controller._candidates_for`), and
links downed by failure injection advertise near-zero capacity to the
assignment optimizer so re-optimization steers flows around outages.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, MutableSequence, Optional, Sequence, Tuple

from repro.bus import Message, MessageBus
from repro.freertr.service import RECONFIG_TOPIC
from repro.hecate.objectives import assign_flows
from repro.hecate.service import ASK_PATH_BATCH_TOPIC, ASK_PATH_TOPIC, EVICT_PATH_TOPIC
from repro.net.apps import PingApp, TcpFlow, UdpFlow
from repro.net.topology import Network

from .scheduler import NEW_FLOW_TOPIC, FlowRequest
from .telemetry_service import TELEMETRY_GET_TOPIC, TelemetryService

__all__ = ["Controller", "TunnelInfo", "FlowRecord", "select_candidates"]


def select_candidates(
    paths_by_name: Dict[str, Tuple[str, ...]], ingress: str, egress: str
) -> List[str]:
    """The candidate-tunnel rule, shared by the Controller and the
    scenario runner's fluid backend so both backends place flows by the
    same policy.

    Prefer tunnels terminating at the flow's egress edge (packets leaving
    another egress would fall back to FIB forwarding for the tail of the
    journey); when none match — e.g. a single-egress deployment
    registered before the destination's edge was known — fall back to
    every tunnel from the ingress, the pre-multi-pair behaviour.
    Preserves the mapping's insertion (registration) order.
    """
    from_ingress = [
        name for name, path in paths_by_name.items() if path[0] == ingress
    ]
    matching = [
        name for name in from_ingress if paths_by_name[name][-1] == egress
    ]
    return matching or from_ingress


@dataclass(frozen=True)
class TunnelInfo:
    """A registered candidate tunnel."""

    name: str  # telemetry/Hecate key, e.g. "T1"
    tunnel_id: int  # freeRtr interface number
    path: Tuple[str, ...]

    @property
    def ingress(self) -> str:
        return self.path[0]

    @property
    def egress(self) -> str:
        return self.path[-1]


@dataclass
class FlowRecord:
    """One placed flow: its request, current tunnel, app and history."""

    request: FlowRequest
    acl_name: str
    tunnel: str
    app: Optional[object]  # None under launch_apps=False (control-plane only)
    placed_at: float = 0.0
    migrations: List[Tuple[float, str, str]] = field(default_factory=list)

    @property
    def starts_at(self) -> float:
        """Absolute simulation time the flow begins sending."""
        return self.placed_at + self.request.start_at

    @property
    def stops_at(self) -> float:
        """Absolute simulation time the flow finishes sending."""
        return self.starts_at + self.request.duration


class Controller:
    def __init__(
        self,
        network: Network,
        bus: MessageBus,
        telemetry: TelemetryService,
        reoptimize_every: Optional[float] = None,
        reopt_threshold_mbps: float = 1.0,
        launch_apps: bool = True,
        decision_log_limit: Optional[int] = None,
    ):
        if decision_log_limit is not None and decision_log_limit < 1:
            raise ValueError(
                f"decision_log_limit must be >= 1, got {decision_log_limit}"
            )
        self.network = network
        self.bus = bus
        self.telemetry = telemetry
        self.reoptimize_every = reoptimize_every
        self.reopt_threshold_mbps = reopt_threshold_mbps
        #: False -> place flows on the control plane only (ACL + PBR +
        #: FlowRecord) without starting packet-level traffic apps.  The
        #: open-loop service driver uses this: at hundreds of placements
        #: per second the DES cannot afford per-packet events, and the
        #: admission/SLO behaviour under test is purely control-plane.
        self.launch_apps = launch_apps
        self.tunnels: Dict[str, TunnelInfo] = {}
        self.flows: Dict[str, FlowRecord] = {}
        #: audit of Hecate recommendations; bounded to the most recent
        #: ``decision_log_limit`` when set (long-lived service mode)
        self.decisions: MutableSequence[Dict] = (
            [] if decision_log_limit is None else deque(maxlen=decision_log_limit)
        )
        self.reopt_solved = 0  # groups re-solved across all ticks
        self.reopt_skipped = 0  # groups skipped as unchanged
        self.reopt_ticks = 0  # periodic ticks executed
        self.migrations_total = 0  # lifetime PBR re-binds
        self.removed_flows = 0  # lifetime flow teardowns
        #: optional hook invoked after every periodic re-optimization
        #: tick with this controller — the service driver's convergence
        #: probe (it watches migrations_total settle between ticks)
        self.on_reopt: Optional[Callable[["Controller"], None]] = None
        self._group_snapshots: Dict[Tuple[str, str], Tuple] = {}
        #: tunnel name -> telemetry.get cursor: each retrieval pulls only
        #: the samples recorded since the previous one (incremental
        #: getTelemetry; O(new samples) instead of O(history) per ask)
        self._telemetry_cursors: Dict[str, int] = {}
        self._reopt_armed = False
        bus.subscribe(NEW_FLOW_TOPIC, self._on_new_flow)

    # ------------------------------------------------------------ tunnels

    def register_tunnel(self, name: str, tunnel_id: int, path: Sequence[str]) -> None:
        """Create the PolKA tunnel (freeRtr message) + telemetry probe."""
        if name in self.tunnels:
            raise ValueError(f"duplicate tunnel name {name!r}")
        path = tuple(path)
        replies = self.bus.request(
            RECONFIG_TOPIC,
            command="create_tunnel",
            router=path[0],
            tunnel_id=tunnel_id,
            path=list(path),
        )
        if not replies or not replies[0].get("ok"):
            raise RuntimeError(f"tunnel creation failed: {replies}")
        self.telemetry.create_path_probe(name, path)
        self.tunnels[name] = TunnelInfo(name=name, tunnel_id=tunnel_id, path=path)

    def remove_tunnel(self, name: str) -> None:
        """Tear down one candidate tunnel and every cache keyed on it.

        Refuses while any flow still rides the tunnel (migrate or
        remove those first).  Evicts the telemetry probe, the incremental
        getTelemetry cursor and Hecate's cached forecasts — the
        per-tunnel state that would otherwise outlive the tunnel — and
        drops every group snapshot, since removing a candidate changes
        any group's assignment problem."""
        if name not in self.tunnels:
            raise KeyError(f"unknown tunnel {name!r}")
        riders = sorted(
            fn for fn, record in self.flows.items() if record.tunnel == name
        )
        if riders:
            raise ValueError(
                f"tunnel {name!r} still carries flows {riders}; "
                "migrate or remove them first"
            )
        del self.tunnels[name]
        self._telemetry_cursors.pop(name, None)
        self._group_snapshots.clear()
        self.telemetry.remove_path_probe(name)
        self.bus.request(EVICT_PATH_TOPIC, path=name)

    def _candidates_for(self, ingress: str, egress: str) -> List[TunnelInfo]:
        """Tunnels usable by a flow entering at ``ingress`` towards a host
        behind ``egress`` (the shared :func:`select_candidates` rule)."""
        names = select_candidates(
            {t.name: t.path for t in self.tunnels.values()}, ingress, egress
        )
        return [self.tunnels[name] for name in names]

    # ------------------------------------------------------------- placing

    def _edge_router_of(self, host_name: str) -> str:
        return self.network.edge_router_of(host_name)

    def _get_telemetry(self, tunnel_name: str) -> None:
        """Fig. 4 getTelemetry for one tunnel, incrementally: the reply
        carries only samples recorded since our stored cursor (a flow
        storm placing thousands of flows at one instant retrieves each
        tunnel's history once, then length-zero increments)."""
        replies = self.bus.request(
            TELEMETRY_GET_TOPIC,
            path=tunnel_name,
            since=self._telemetry_cursors.get(tunnel_name, 0),
        )
        if replies and replies[0].get("ok"):
            self._telemetry_cursors[tunnel_name] = replies[0]["cursor"]

    def _ask_hecate(
        self,
        candidates: List[TunnelInfo],
        objective: str,
        app_class: str = "generic",
    ) -> Dict:
        # Fig. 4 getTelemetry: the Controller retrieves stored history
        for tunnel in candidates:
            self._get_telemetry(tunnel.name)
        replies = self.bus.request(
            ASK_PATH_TOPIC,
            paths=[t.name for t in candidates],
            objective=objective,
            app_class=app_class,
        )
        if not replies or not replies[0].get("ok"):
            raise RuntimeError(f"Hecate request failed: {replies}")
        return replies[0]

    def _acl_rules_for(self, request: FlowRequest) -> List[str]:
        src_ip = self.network.hosts[request.src].ip
        dst_ip = self.network.hosts[request.dst].ip
        if not src_ip or not dst_ip:
            raise ValueError(
                f"hosts {request.src}/{request.dst} need IPs for ACL matching"
            )
        return [
            f"permit {request.protocol} {src_ip} 255.255.255.255 "
            f"{dst_ip} 255.255.255.255 tos {request.tos}"
        ]

    def _configure_tunnel(self, request: FlowRequest, acl_name: str,
                          tunnel: TunnelInfo) -> None:
        router = tunnel.ingress
        replies = self.bus.request(
            RECONFIG_TOPIC, command="add_acl", router=router,
            name=acl_name, rules=self._acl_rules_for(request),
        )
        if not replies or not replies[0].get("ok"):
            raise RuntimeError(f"ACL install failed: {replies}")
        replies = self.bus.request(
            RECONFIG_TOPIC, command="bind_pbr", router=router,
            acl=acl_name, tunnel_id=tunnel.tunnel_id,
        )
        if not replies or not replies[0].get("ok"):
            raise RuntimeError(f"PBR bind failed: {replies}")

    def _launch_app(self, request: FlowRequest):
        if not self.launch_apps:
            return None
        src = self.network.hosts[request.src]
        dst = self.network.hosts[request.dst]
        if request.protocol == "tcp":
            return TcpFlow(src, dst, tos=request.tos,
                           duration=request.duration).start(at=request.start_at)
        if request.protocol == "udp":
            return UdpFlow(src, dst, rate_mbps=request.rate_mbps,
                           duration=request.duration,
                           tos=request.tos,
                           train_packets=request.train_packets,
                           ).start(at=request.start_at)
        return PingApp(src, dst, interval=1.0, tos=request.tos).start(
            at=request.start_at
        )

    def place_flow(self, request: FlowRequest) -> FlowRecord:
        """The full Fig. 4 newFlow sequence."""
        ingress = self._edge_router_of(request.src)
        egress = self._edge_router_of(request.dst)
        candidates = self._candidates_for(ingress, egress)
        if not candidates:
            raise RuntimeError(f"no tunnels registered at ingress {ingress!r}")
        recommendation = self._ask_hecate(
            candidates, request.objective, request.app_class
        )
        self.decisions.append(recommendation)
        chosen = self.tunnels[recommendation["path"]]
        acl_name = f"acl_{request.flow_name}"
        self._configure_tunnel(request, acl_name, chosen)
        app = self._launch_app(request)
        record = FlowRecord(
            request=request, acl_name=acl_name, tunnel=chosen.name, app=app,
            placed_at=self.network.sim.now,
        )
        self.flows[request.flow_name] = record
        if self.reoptimize_every is not None and not self._reopt_armed:
            self._reopt_armed = True
            self.network.sim.schedule(self.reoptimize_every, self._reoptimize_tick)
        return record

    def _on_new_flow(self, message: Message) -> Dict:
        request: FlowRequest = message.payload["request"]
        try:
            record = self.place_flow(request)
        except (RuntimeError, ValueError, KeyError) as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, "tunnel": record.tunnel, "acl": record.acl_name}

    # ------------------------------------------------------ self-driving

    def migrate_flow(self, flow_name: str, tunnel_name: str) -> None:
        """Re-point one flow's PBR entry (a single edge-router touch)."""
        record = self.flows[flow_name]
        if record.tunnel == tunnel_name:
            return
        tunnel = self.tunnels[tunnel_name]
        old = record.tunnel
        replies = self.bus.request(
            RECONFIG_TOPIC, command="bind_pbr", router=tunnel.ingress,
            acl=record.acl_name, tunnel_id=tunnel.tunnel_id,
        )
        if not replies or not replies[0].get("ok"):
            raise RuntimeError(f"PBR re-bind failed: {replies}")
        record.tunnel = tunnel_name
        record.migrations.append((self.network.sim.now, old, tunnel_name))
        self.migrations_total += 1

    def remove_flow(self, flow_name: str) -> FlowRecord:
        """Retire one placed flow: stop its app, unbind its PBR entry,
        delete its access-list, and drop its group snapshot.

        The inverse of :meth:`place_flow`, and the operation sustained
        churn exercises thousands of times — everything keyed on the
        flow must go, or the controller's footprint grows with lifetime
        arrivals instead of concurrent flows.  Returns the record."""
        record = self.flows.pop(flow_name, None)
        if record is None:
            raise KeyError(f"unknown flow {flow_name!r}")
        if record.app is not None:
            record.app.stop()
        router = self.tunnels[record.tunnel].ingress
        replies = self.bus.request(
            RECONFIG_TOPIC, command="unbind_pbr", router=router,
            acl=record.acl_name,
        )
        if not replies or not replies[0].get("ok"):
            raise RuntimeError(f"PBR unbind failed: {replies}")
        replies = self.bus.request(
            RECONFIG_TOPIC, command="remove_acl", router=router,
            name=record.acl_name,
        )
        if not replies or not replies[0].get("ok"):
            raise RuntimeError(f"ACL removal failed: {replies}")
        # membership changed -> the group must re-solve next tick anyway,
        # so dropping its snapshot unconditionally is both correct and O(1)
        egress = self._edge_router_of(record.request.dst)
        self._group_snapshots.pop(
            (self.tunnels[record.tunnel].ingress, egress), None
        )
        self.removed_flows += 1
        return record

    def _flow_rate_estimate(self, record: FlowRecord) -> float:
        """Recent throughput of a managed flow (Mbps).

        The averaging window is clamped to the flow's actual start: a
        flow one second old must be averaged over that second, not over
        a five-second window padded with pre-start zeros (which diluted
        early estimates and skewed the first re-optimization tick).
        """
        app = record.app
        now = self.network.sim.now
        if app is None:
            # control-plane-only placement: fall back to the requested
            # rate (UDP) or a nominal trickle, the best estimate we have
            return record.request.rate_mbps or 0.1
        if isinstance(app, TcpFlow):
            started = app.started_at if app.started_at is not None else now
            return app.goodput_mbps(max(started, now - 5.0), now)
        if isinstance(app, UdpFlow):
            return app.rate_mbps
        return 0.1  # ICMP probes are negligible load

    def _effective_link_capacities(
        self, active: Dict[str, str]
    ) -> Dict[Tuple[str, str], float]:
        """Link capacities minus *unmanaged* load.

        The assignment optimizer must not count capacity consumed by
        traffic it cannot move.  Unmanaged load per link = telemetry-
        measured carried Mbps minus the managed flows' own contribution
        (each flow's recent rate along its current tunnel), with a small
        hysteresis so measurement jitter between the two estimators does
        not fabricate phantom congestion.
        """
        managed: Dict[Tuple[str, str], float] = {}
        for name, tunnel_name in active.items():
            rate = self._flow_rate_estimate(self.flows[name])
            for hop in zip(self.tunnels[tunnel_name].path[:-1],
                           self.tunnels[tunnel_name].path[1:]):
                managed[hop] = managed.get(hop, 0.0) + rate
        caps: Dict[Tuple[str, str], float] = {}
        for tunnel in self.tunnels.values():
            for a, b in zip(tunnel.path[:-1], tunnel.path[1:]):
                if (a, b) in caps:
                    continue
                link = self.network.link(a, b)
                if not link.up:
                    # failure injection: a down link black-holes traffic,
                    # so any tunnel crossing it must look useless to the
                    # assignment optimizer (near-zero, not zero, keeps
                    # max-min fair allocation well-defined)
                    caps[(a, b)] = 1e-3
                    continue
                link_rate = link.rate_mbps
                carried_now = self.telemetry.db.latest(f"link:{a}->{b}:mbps")
                unmanaged = max(
                    0.0, carried_now - managed.get((a, b), 0.0) - 0.5
                )
                caps[(a, b)] = max(0.5, link_rate - unmanaged)
        return caps

    def _group_signature(
        self,
        flows: Dict[str, str],
        tunnel_paths: Dict[str, Tuple[str, ...]],
    ) -> Tuple:
        """What one (ingress, egress) group's solve depended on:
        membership, link up/down state, and telemetry-carried Mbps for
        every link its candidate tunnels cross."""
        membership = tuple(sorted(flows.items()))
        links = sorted(
            {
                hop
                for path in tunnel_paths.values()
                for hop in zip(path[:-1], path[1:])
            }
        )
        state = []
        carried = []
        for a, b in links:
            state.append(((a, b), self.network.link(a, b).up))
            carried.append(
                ((a, b), self.telemetry.db.latest(f"link:{a}->{b}:mbps"))
            )
        return membership, tuple(state), tuple(carried)

    def _signature_moved(self, previous: Tuple, current: Tuple) -> bool:
        """Did anything this group's solve depends on change enough to
        re-solve?  Membership and link state compare exactly; telemetry
        compares against the last *solved* snapshot, so slow drift
        accumulates until it crosses the threshold."""
        if previous[0] != current[0] or previous[1] != current[1]:
            return True
        baseline = dict(previous[2])
        for link, mbps in current[2]:
            if link not in baseline:
                return True
            if abs(mbps - baseline[link]) > self.reopt_threshold_mbps:
                return True
        return False

    def _ask_hecate_batch(
        self, groups: List[Tuple[List[TunnelInfo], str, str]]
    ) -> None:
        """The Fig. 4 getTelemetry + askHecatePath sequence for every
        stale group in one batched request: telemetry is retrieved once
        per unique tunnel and Hecate fits each tunnel's regressor once
        no matter how many groups share it.  Each group is
        ``(candidates, objective, app_class)`` — the flows' own
        objective and class, not a hard-coded default, so the audit
        trail records the recommendation the group actually asked for."""
        seen = set()
        for candidates, _, _ in groups:
            for tunnel in candidates:
                if tunnel.name not in seen:
                    seen.add(tunnel.name)
                    self._get_telemetry(tunnel.name)
        replies = self.bus.request(
            ASK_PATH_BATCH_TOPIC,
            groups=[
                {
                    "paths": [t.name for t in candidates],
                    "objective": objective,
                    "app_class": app_class,
                }
                for candidates, objective, app_class in groups
            ],
        )
        if replies and replies[0].get("ok"):
            # per-group isolation: a group whose forecast failed (e.g. a
            # tunnel with no telemetry yet) loses only its own audit
            # entry, never its neighbours'
            self.decisions.extend(
                entry
                for entry in replies[0]["recommendations"]
                if entry.get("ok")
            )
        # forecasting failure must not stall reallocation

    def _group_intent(self, flows: Dict[str, str]) -> Tuple[str, str]:
        """One group's (objective, app_class) for the batched ask: the
        members' unanimous value, or the neutral default when a mixed
        group can't be represented by a single recommendation."""
        requests = [self.flows[name].request for name in flows]
        objectives = {r.objective for r in requests}
        classes = {r.app_class for r in requests}
        return (
            objectives.pop() if len(objectives) == 1 else "max_bandwidth",
            classes.pop() if len(classes) == 1 else "generic",
        )

    def reoptimize_now(self) -> None:
        """One incremental re-optimization pass over all active flows.

        Groups flows by (ingress, egress), skips every group whose
        signature (membership, candidate-link state, telemetry) has not
        moved since its last solve, batches the Hecate forecasts for the
        stale groups into one request, then solves each stale group's
        joint flow->tunnel assignment on the fluid model and applies any
        migrations — each one a single PBR re-bind at the ingress edge.
        """
        # only flows currently sending: a placed-but-not-yet-started flow
        # (phased scenarios schedule starts deep into the horizon) must
        # not be balanced as if it already carried its load — that let
        # the optimizer migrate live flows to make room for 0 Mbps ones
        now = self.network.sim.now
        active = {
            name: record.tunnel
            for name, record in self.flows.items()
            if record.starts_at <= now < record.stops_at
        }
        if not active:
            return
        # group by (ingress, egress): flows can only use tunnels from
        # their own edge towards their destination's edge
        by_edges: Dict[Tuple[str, str], Dict[str, str]] = {}
        for name, tunnel in active.items():
            key = (
                self.tunnels[tunnel].ingress,
                self._edge_router_of(self.flows[name].request.dst),
            )
            by_edges.setdefault(key, {})[name] = tunnel
        stale = []
        for key, flows in by_edges.items():
            candidates = self._candidates_for(*key)
            tunnel_paths = {t.name: t.path for t in candidates}
            for tunnel in flows.values():
                # a flow may sit on a fallback tunnel outside the egress-
                # filtered candidate set; keep it assignable regardless
                tunnel_paths.setdefault(tunnel, self.tunnels[tunnel].path)
            signature = self._group_signature(flows, tunnel_paths)
            previous = self._group_snapshots.get(key)
            if previous is not None and not self._signature_moved(
                previous, signature
            ):
                self.reopt_skipped += 1
                continue
            stale.append((key, flows, candidates, tunnel_paths, signature))
        if not stale:
            return
        self._ask_hecate_batch(
            [
                (candidates, *self._group_intent(flows))
                for _, flows, candidates, _, _ in stale
            ]
        )
        for key, flows, _candidates, tunnel_paths, signature in stale:
            result = assign_flows(
                current=flows,
                tunnel_paths=tunnel_paths,
                capacities=self._effective_link_capacities(flows),
            )
            self.reopt_solved += 1
            for name, tunnel in result.assignment.items():
                if tunnel != flows[name]:
                    self.migrate_flow(name, tunnel)
            # snapshot the POST-assignment membership: an unchanged group
            # next tick means "same flows on the tunnels we just chose"
            self._group_snapshots[key] = (
                tuple(sorted(result.assignment.items())),
                signature[1],
                signature[2],
            )

    def _reoptimize_tick(self) -> None:
        self.reoptimize_now()
        self.reopt_ticks += 1
        if self.on_reopt is not None:
            self.on_reopt(self)
        self.network.sim.schedule(self.reoptimize_every, self._reoptimize_tick)
