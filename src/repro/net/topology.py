"""Network assembly: topology graph -> wired devices + PolKA domain + FIBs.

:class:`Network` is the emulator's façade.  Declare hosts, routers and
links; :meth:`build` then

1. numbers every router port deterministically (sorted neighbour names),
2. assigns PolKA node IDs and builds the :class:`~repro.polka.routing.PolkaDomain`,
3. computes hop-count-shortest FIB entries towards every host,
4. instantiates the rate/delay/queue link objects on a shared simulator.

Impairment methods (:meth:`set_link_rate`, :meth:`set_link_delay`) mirror
the VirtualBox bandwidth caps and ``tc netem`` delay the paper injects
into its virtual testbed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import networkx as nx

from repro.polka.routing import PolkaDomain

from .devices import Host, Node, Router
from .links import Link
from .sim import Simulator

__all__ = ["Network"]


class Network:
    def __init__(self, sim: Optional[Simulator] = None):
        self.sim = sim or Simulator()
        self.graph = nx.Graph()
        self.hosts: Dict[str, Host] = {}
        self.routers: Dict[str, Router] = {}
        self.links: Dict[frozenset, Link] = {}
        self.polka: Optional[PolkaDomain] = None
        self._built = False

    # ------------------------------------------------------------- declare

    def add_host(self, name: str, ip: str = "") -> Host:
        self._ensure_not_built()
        if name in self.hosts or name in self.routers:
            raise ValueError(f"duplicate node name {name!r}")
        host = Host(self.sim, name, ip=ip)
        self.hosts[name] = host
        self.graph.add_node(name, kind="host")
        return host

    def add_router(self, name: str, edge: bool = False) -> Router:
        self._ensure_not_built()
        if name in self.hosts or name in self.routers:
            raise ValueError(f"duplicate node name {name!r}")
        router = Router(self.sim, name, edge=edge)
        self.routers[name] = router
        self.graph.add_node(name, kind="router")
        return router

    def add_link(
        self,
        a: str,
        b: str,
        rate_mbps: float = 1000.0,
        delay_ms: float = 0.1,
        queue_packets: int = 100,
    ) -> None:
        self._ensure_not_built()
        for end in (a, b):
            if end not in self.hosts and end not in self.routers:
                raise ValueError(f"unknown node {end!r}")
        if self.graph.has_edge(a, b):
            raise ValueError(f"duplicate link {a}<->{b}")
        self.graph.add_edge(
            a, b, rate_mbps=rate_mbps, delay_ms=delay_ms, queue_packets=queue_packets
        )

    def _ensure_not_built(self) -> None:
        if self._built:
            raise RuntimeError("network already built; declare before build()")

    # --------------------------------------------------------------- build

    def node(self, name: str) -> Node:
        if name in self.hosts:
            return self.hosts[name]
        if name in self.routers:
            return self.routers[name]
        raise KeyError(f"unknown node {name!r}")

    def build(self) -> "Network":
        if self._built:
            return self
        # 1. deterministic port numbering on routers (hosts use port 0..)
        adjacency: Dict[str, Dict[str, int]] = {}
        for rname in self.routers:
            neighbours = sorted(self.graph.neighbors(rname))
            adjacency[rname] = {nbr: i for i, nbr in enumerate(neighbours)}
        # 2. PolKA identities over the router fabric
        self.polka = PolkaDomain(adjacency)
        for rname, router in self.routers.items():
            router.polka_node = self.polka.node(rname)
        # 3. physical links
        for a, b, attrs in self.graph.edges(data=True):
            node_a, node_b = self.node(a), self.node(b)
            link = Link(
                self.sim,
                node_a,
                node_b,
                rate_mbps=attrs["rate_mbps"],
                delay_ms=attrs["delay_ms"],
                queue_packets=attrs["queue_packets"],
            )
            port_a = adjacency.get(a, {}).get(b, len(node_a.ports))
            port_b = adjacency.get(b, {}).get(a, len(node_b.ports))
            node_a.attach(port_a, link)
            node_b.attach(port_b, link)
            self.links[frozenset((a, b))] = link
        # 4. FIBs: hop-count shortest path towards every host
        self._rebuild_fibs()
        self._built = True
        return self

    def _rebuild_fibs(self) -> None:
        healthy = nx.subgraph_view(
            self.graph,
            filter_edge=lambda a, b: not self.graph[a][b].get("failed", False),
        )
        for rname, router in self.routers.items():
            router.fib.clear()
            for hname in self.hosts:
                try:
                    path = nx.shortest_path(healthy, rname, hname)
                except nx.NetworkXNoPath:
                    continue
                if len(path) < 2:
                    continue
                router.fib[hname] = router.port_of[path[1]]

    # --------------------------------------------------------- impairments

    def link(self, a: str, b: str) -> Link:
        try:
            return self.links[frozenset((a, b))]
        except KeyError:
            raise KeyError(f"no link {a}<->{b}") from None

    def set_link_rate(self, a: str, b: str, rate_mbps: float) -> None:
        """VirtualBox-style bandwidth cap, changeable at runtime."""
        if rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        self.link(a, b).rate_mbps = float(rate_mbps)

    def set_link_delay(self, a: str, b: str, delay_ms: float) -> None:
        """tc-netem-style one-way delay, changeable at runtime."""
        if delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")
        self.link(a, b).delay_ms = float(delay_ms)

    def fail_link(self, a: str, b: str) -> None:
        """Failure injection: the link black-holes traffic and FIBs
        reconverge around it (PolKA routeIDs are untouched — steering
        around a failure is the edge's job, e.g. via
        :class:`repro.polka.failover.FailoverTable`)."""
        link = self.link(a, b)
        link.up = False
        self.graph[a][b]["failed"] = True
        self._rebuild_fibs()

    def restore_link(self, a: str, b: str) -> None:
        link = self.link(a, b)
        link.up = True
        self.graph[a][b].pop("failed", None)
        self._rebuild_fibs()

    # ------------------------------------------------------------- queries

    def edge_router_of(self, host_name: str) -> str:
        """The router a host's single uplink attaches to.

        The one canonical implementation of this lookup — the Controller,
        traffic generators and scenario runner all resolve ingress/egress
        edges through it, so a future multi-homed-host model only needs
        changing here.
        """
        if host_name not in self.hosts:
            raise KeyError(f"unknown host {host_name!r}")
        for neighbour in self.graph.neighbors(host_name):
            if neighbour in self.routers:
                return neighbour
        raise ValueError(f"host {host_name!r} has no router uplink")

    def router_path(self, path: Iterable[str]) -> List[str]:
        """Validate that ``path`` crosses only known routers."""
        path = list(path)
        for hop in path:
            if hop not in self.routers:
                raise ValueError(f"{hop!r} is not a router")
        return path

    def path_capacity_mbps(self, path: List[str]) -> float:
        """Min link rate along a node path (static bottleneck capacity)."""
        return min(
            self.link(a, b).rate_mbps for a, b in zip(path[:-1], path[1:])
        )

    def path_delay_ms(self, path: List[str]) -> float:
        """Sum of one-way propagation delays along a node path."""
        return sum(
            self.link(a, b).delay_ms for a, b in zip(path[:-1], path[1:])
        )

    def run(self, until: float) -> None:
        if not self._built:
            raise RuntimeError("call build() before run()")
        self.sim.run(until=until)
