"""Application QoE models: the rate/latency/jitter/loss -> MOS layer.

Every scenario used to optimize generic flows for mbps and latency;
this module gives flows an *application class* and a model that maps
the network-level metrics onto a 1-5 mean-opinion-score (MOS), so the
thing the controller optimizes is the thing the application
experiences (the AMPF premise: per-app classification and per-app
objectives end to end).

Three concrete models ship:

``video``
    A bitrate-ladder model: the sustainable rate picks the highest
    ladder rung, the rung's perceptual quality sets the base MOS, and
    a rebuffer term (rate shortfall vs the lowest rung) plus a
    startup-latency term subtract from it — the classic
    ladder-plus-rebuffering shape of DASH QoE models.

``voip``
    The ITU-T G.107 E-model, simplified: an R-factor starting at 93.2
    is reduced by a one-way-delay impairment ``Id`` and an effective
    equipment/loss impairment ``Ie_eff`` driven by packet loss and
    jitter (jitter beyond the de-jitter buffer converts to loss), then
    mapped to MOS via the standard cubic.  Capped at 4.5 like real
    narrowband MOS.

``bulk``
    Throughput-utility: a concave (logarithmic) utility of achieved
    rate against a reference rate — latency/jitter-insensitive, which
    is exactly why a QoE-aware objective routes bulk *around* the
    delay-sensitive classes.

The ``generic`` class has no model and is *excluded* from QoE
aggregates: pre-existing scenarios keep empty ``qoe_per_class``.

This module is a leaf: it imports nothing from the framework and is
fully typed (mypy runs over it in CI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "APP_CLASSES",
    "APP_MODELS",
    "AppQoEModel",
    "VideoModel",
    "VoipModel",
    "BulkModel",
    "FlowQoSSample",
    "predicted_mos",
    "aggregate_qoe",
    "rate_to_mos",
]

MOS_MIN = 1.0
MOS_MAX = 5.0


def _clamp(value: float, lo: float = MOS_MIN, hi: float = MOS_MAX) -> float:
    return max(lo, min(hi, value))


@dataclass(frozen=True)
class FlowQoSSample:
    """One flow's network-level QoS as the backends measured it."""

    rate_mbps: float
    latency_ms: float = 0.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0


class AppQoEModel:
    """Base class: a named rate/latency/jitter/loss -> MOS mapping."""

    name = "generic"
    description = "no model; excluded from QoE aggregates"

    def mos(self, sample: FlowQoSSample) -> float:
        raise NotImplementedError


class VideoModel(AppQoEModel):
    """Bitrate ladder + rebuffer model for adaptive streaming video.

    ``ladder`` maps sustainable Mbps rungs to perceptual quality MOS
    (240p ... 4K-ish).  Below the lowest rung the player rebuffers:
    quality degrades linearly with the shortfall.  Startup/interaction
    latency subtracts mildly (video is buffered, not conversational).
    """

    name = "video"
    description = "bitrate ladder + rebuffer model (DASH-style)"

    #: (sustainable Mbps, quality MOS) rungs, ascending
    ladder: Tuple[Tuple[float, float], ...] = (
        (0.5, 2.0),
        (1.2, 3.0),
        (2.5, 3.8),
        (5.0, 4.4),
        (8.0, 4.8),
    )
    #: ms of one-way delay per MOS point lost to startup sluggishness
    latency_penalty_per_ms: float = 1.0 / 400.0

    def mos(self, sample: FlowQoSSample) -> float:
        rate = max(0.0, sample.rate_mbps)
        base_rate, base_q = self.ladder[0]
        if rate < base_rate:
            # rebuffering regime: quality collapses toward MOS 1 with
            # the shortfall fraction
            quality = MOS_MIN + (base_q - MOS_MIN) * (rate / base_rate)
        else:
            quality = base_q
            for rung_rate, rung_q in self.ladder:
                if rate >= rung_rate:
                    quality = rung_q
            # smooth interpolation toward the next rung keeps the
            # objective's score strictly rate-monotone between rungs
            for (lo_r, lo_q), (hi_r, hi_q) in zip(
                self.ladder, self.ladder[1:]
            ):
                if lo_r <= rate < hi_r:
                    frac = (rate - lo_r) / (hi_r - lo_r)
                    quality = lo_q + (hi_q - lo_q) * frac
        quality -= sample.latency_ms * self.latency_penalty_per_ms
        # loss forces retransmits/skips even with buffering
        quality -= 8.0 * max(0.0, sample.loss_rate)
        return _clamp(quality)


class VoipModel(AppQoEModel):
    """ITU-T E-model (G.107), simplified to the terms telemetry feeds.

    ``R = 93.2 - Id(delay) - Ie_eff(loss, jitter)`` with the standard
    cubic R -> MOS mapping, clamped to the narrowband ceiling 4.5.
    Jitter beyond the de-jitter buffer budget converts to effective
    loss; a rate below the codec's requirement starves frames and
    converts to loss too.
    """

    name = "voip"
    description = "E-model MOS from delay, jitter and loss (G.107)"

    codec_rate_mbps: float = 0.064  # G.711-ish with overheads
    jitter_budget_ms: float = 20.0  # de-jitter buffer absorbs this
    bpl: float = 25.1  # packet-loss robustness (G.113 App. I)

    def mos(self, sample: FlowQoSSample) -> float:
        d = max(0.0, sample.latency_ms)
        # delay impairment Id: gentle slope, knee at 177.3 ms
        delay_impairment = 0.024 * d
        if d > 177.3:
            delay_impairment += 0.11 * (d - 177.3)
        # effective loss: wire loss + jitter overflow + codec starvation
        loss = max(0.0, sample.loss_rate)
        jitter_over = max(0.0, sample.jitter_ms - self.jitter_budget_ms)
        loss += min(0.5, jitter_over / 100.0)
        if 0.0 < sample.rate_mbps < self.codec_rate_mbps:
            loss += min(
                0.5, 1.0 - sample.rate_mbps / self.codec_rate_mbps
            )
        loss_pct = 100.0 * min(1.0, loss)
        loss_impairment = 95.0 * loss_pct / (loss_pct + self.bpl)
        r = 93.2 - delay_impairment - loss_impairment
        if r <= 0.0:
            return MOS_MIN
        mos = 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r)
        return _clamp(mos, MOS_MIN, 4.5)


class BulkModel(AppQoEModel):
    """Concave throughput utility for bulk transfer / backup traffic.

    ``MOS = 1 + 3.8 * log(1 + rate/ref) / log(1 + max/ref)`` — strictly
    rate-monotone, saturating, insensitive to delay and jitter.
    """

    name = "bulk"
    description = "completion-time utility: concave in achieved rate"

    reference_mbps: float = 5.0  # rate at which bulk feels "fine"
    saturation_mbps: float = 100.0

    def mos(self, sample: FlowQoSSample) -> float:
        rate = max(0.0, sample.rate_mbps)
        span = math.log1p(self.saturation_mbps / self.reference_mbps)
        utility = math.log1p(rate / self.reference_mbps) / span
        # heavy loss stalls the transfer regardless of nominal rate
        utility *= max(0.0, 1.0 - 2.0 * sample.loss_rate)
        return _clamp(MOS_MIN + (MOS_MAX - 1.2 - MOS_MIN) * utility)


#: every class a FlowRequest may carry; "generic" has no model
APP_CLASSES: Tuple[str, ...] = ("generic", "video", "voip", "bulk")

APP_MODELS: Dict[str, AppQoEModel] = {
    model.name: model
    for model in (VideoModel(), VoipModel(), BulkModel())
}


def predicted_mos(
    app_class: str,
    rate_mbps: float,
    latency_ms: float = 0.0,
    jitter_ms: float = 0.0,
    loss_rate: float = 0.0,
) -> float:
    """MOS the given app class would experience under these metrics.

    ``generic`` (and unknown classes) score a neutral 3.0 so an
    app-aware objective never prefers a path *because* the flow is
    unclassified.
    """
    model = APP_MODELS.get(app_class)
    if model is None:
        return 3.0
    return model.mos(
        FlowQoSSample(
            rate_mbps=rate_mbps,
            latency_ms=latency_ms,
            jitter_ms=jitter_ms,
            loss_rate=loss_rate,
        )
    )


def aggregate_qoe(
    samples: Iterable[Tuple[str, FlowQoSSample]],
) -> Tuple[Dict[str, float], float, int]:
    """Fold per-flow ``(app_class, sample)`` pairs into result fields.

    Returns ``(qoe_per_class, mean_qoe, qoe_flows)`` — per-class mean
    MOS (name-sorted dict), the mean over every *classified* flow, and
    how many flows that is.  ``generic`` flows are skipped, so
    scenarios without app classes aggregate to ``({}, 0.0, 0)``.
    """
    per_class: Dict[str, List[float]] = {}
    for app_class, sample in samples:
        model = APP_MODELS.get(app_class)
        if model is None:
            continue
        per_class.setdefault(app_class, []).append(model.mos(sample))
    qoe_per_class = {
        name: float(sum(scores) / len(scores))
        for name, scores in sorted(per_class.items())
    }
    all_scores = [s for scores in per_class.values() for s in scores]
    mean_qoe = (
        float(sum(all_scores) / len(all_scores)) if all_scores else 0.0
    )
    return qoe_per_class, mean_qoe, len(all_scores)


def rate_to_mos(
    app_class: str,
    rates_mbps: Iterable[float],
    latency_ms: float = 0.0,
    jitter_ms: float = 0.0,
    loss_rate: float = 0.0,
) -> List[float]:
    """Map a rate series through one class's rate->MOS curve.

    The ML tournament uses this to turn a bandwidth telemetry series
    into a predicted-MOS target series (same series length, same lag
    features — only the regressand changes).
    """
    return [
        predicted_mos(
            app_class,
            float(rate),
            latency_ms=latency_ms,
            jitter_ms=jitter_ms,
            loss_rate=loss_rate,
        )
        for rate in rates_mbps
    ]
