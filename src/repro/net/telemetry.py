"""Telemetry collection and a small time-series store.

Mirrors the paper's telemetry service (Fig. 3/4): agents sample per-link
byte counters (what ``bwm-ng`` showed on the VMs) and per-path
latency/available-bandwidth estimates at fixed intervals; samples land in
a time-series database keyed by metric name; the Controller later reads
windows of history out of it and hands them to Hecate for forecasting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .topology import Network

__all__ = ["TimeSeriesDB", "LinkTelemetryCollector", "PathTelemetryProbe"]


class TimeSeriesDB:
    """Metric name -> append-only list of (t, value)."""

    def __init__(self) -> None:
        self._data: Dict[str, List[Tuple[float, float]]] = {}

    def insert(self, metric: str, t: float, value: float) -> None:
        self._data.setdefault(metric, []).append((float(t), float(value)))

    def metrics(self) -> List[str]:
        return sorted(self._data)

    def series(self, metric: str) -> Tuple[np.ndarray, np.ndarray]:
        rows = self._data.get(metric, [])
        if not rows:
            return np.array([]), np.array([])
        arr = np.asarray(rows)
        return arr[:, 0], arr[:, 1]

    def window(self, metric: str, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        t, v = self.series(metric)
        if t.size == 0:
            return t, v
        mask = (t >= t0) & (t < t1)
        return t[mask], v[mask]

    def last(self, metric: str, n: int = 1) -> np.ndarray:
        _, v = self.series(metric)
        return v[-n:]

    def latest(self, metric: str, default: float = 0.0) -> float:
        """The most recent value of ``metric``, without materialising
        the whole history (``series`` converts the append-only list to
        an array — O(samples) — which always-on paths like the
        Controller's per-tick group signatures must not pay)."""
        rows = self._data.get(metric)
        return rows[-1][1] if rows else default

    def __len__(self) -> int:
        return len(self._data)


class LinkTelemetryCollector:
    """Samples per-link, per-direction counters every ``interval`` seconds.

    Records, for each directed link ``a->b``:

    - ``link:a->b:mbps``     achieved throughput over the last interval
    - ``link:a->b:util``     that throughput / configured rate
    - ``link:a->b:drops``    packets tail-dropped in the interval

    A direction's fluid background load (hybrid backend, see
    :meth:`repro.net.links.Link.set_background_from`) is folded into the
    throughput and utilization samples: the controller and Hecate must
    see mice-class load even though it never crosses the link packet by
    packet.
    """

    def __init__(self, network: Network, db: TimeSeriesDB, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.db = db
        self.interval = interval
        self._last_bytes: Dict[str, int] = {}
        self._last_drops: Dict[str, int] = {}
        self._running = False

    def start(self, at: float = 0.0) -> "LinkTelemetryCollector":
        self._running = True
        self.network.sim.schedule(at, self._sample)
        return self

    def stop(self) -> None:
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.network.sim.now
        for key, link in self.network.links.items():
            a, b = sorted(key)
            for src_name, dst_name in ((a, b), (b, a)):
                node = self.network.node(src_name)
                stats = link.stats_from(node)
                tag = f"{src_name}->{dst_name}"
                prev_b = self._last_bytes.get(tag, 0)
                prev_d = self._last_drops.get(tag, 0)
                delta_bytes = stats.tx_bytes - prev_b
                delta_drops = stats.dropped_packets - prev_d
                self._last_bytes[tag] = stats.tx_bytes
                self._last_drops[tag] = stats.dropped_packets
                mbps = delta_bytes * 8.0 / self.interval / 1e6
                mbps += link.background_from(node)
                self.db.insert(f"link:{tag}:mbps", now, mbps)
                self.db.insert(f"link:{tag}:util", now, mbps / link.rate_mbps)
                self.db.insert(f"link:{tag}:drops", now, delta_drops)
        self.network.sim.schedule(self.interval, self._sample)


@dataclass
class PathObservation:
    """One telemetry snapshot of a named path."""

    t: float
    available_mbps: float
    latency_ms: float
    bottleneck_util: float


class PathTelemetryProbe:
    """Derives per-path QoS metrics from link telemetry.

    For a named router path, each sample records:

    - ``path:NAME:available_mbps`` — min over links of
      ``capacity - carried traffic`` (the headroom Hecate forecasts),
    - ``path:NAME:latency_ms`` — propagation plus a queueing estimate from
      current queue depths,
    - ``path:NAME:util`` — utilization of the bottleneck link.
    """

    def __init__(
        self,
        network: Network,
        db: TimeSeriesDB,
        name: str,
        path: Sequence[str],
        interval: float = 1.0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        self.network = network
        self.db = db
        self.name = name
        self.path = list(path)
        self.interval = interval
        self._last_bytes: Dict[str, int] = {}
        self._running = False
        self.observations: List[PathObservation] = []

    def start(self, at: float = 0.0) -> "PathTelemetryProbe":
        self._running = True
        self.network.sim.schedule(at, self._sample)
        return self

    def stop(self) -> None:
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.network.sim.now
        available = np.inf
        worst_util = 0.0
        latency = 0.0
        for a, b in zip(self.path[:-1], self.path[1:]):
            link = self.network.link(a, b)
            node = self.network.node(a)
            stats = link.stats_from(node)
            tag = f"{a}->{b}"
            delta = stats.tx_bytes - self._last_bytes.get(tag, 0)
            self._last_bytes[tag] = stats.tx_bytes
            carried = delta * 8.0 / self.interval / 1e6
            carried += link.background_from(node)
            headroom = max(link.rate_mbps - carried, 0.0)
            available = min(available, headroom)
            worst_util = max(worst_util, carried / link.rate_mbps)
            queue_bytes = link.queue_depth_from(node) * 1500
            latency += link.delay_ms + queue_bytes * 8.0 / (link.rate_mbps * 1e3)
        obs = PathObservation(
            t=now,
            available_mbps=float(available),
            latency_ms=float(latency),
            bottleneck_util=float(worst_util),
        )
        self.observations.append(obs)
        self.db.insert(f"path:{self.name}:available_mbps", now, obs.available_mbps)
        self.db.insert(f"path:{self.name}:latency_ms", now, obs.latency_ms)
        self.db.insert(f"path:{self.name}:util", now, obs.bottleneck_util)
        self.network.sim.schedule(self.interval, self._sample)
