"""Telemetry collection and a columnar time-series store.

Mirrors the paper's telemetry service (Fig. 3/4): agents sample per-link
byte counters (what ``bwm-ng`` showed on the VMs) and per-path
latency/available-bandwidth estimates at fixed intervals; samples land in
a time-series database keyed by metric name; the Controller later reads
windows of history out of it and hands them to Hecate for forecasting.

The store is **columnar**: metrics that are sampled together (every
``link:*`` series of one collector, the three series of one path probe)
share a single time axis and one ``(samples, metrics)`` value matrix
(:class:`ColumnGroup`), appended a whole row at a time.  Appends are
amortised O(1) (growable ring-style chunks, capacity doubling), windowed
reads are O(log n + k) via ``searchsorted`` on the shared time axis, and
``last``/``latest``/``series`` return zero-copy (read-only) views — the
always-on paths the Controller polls every tick never re-materialise a
history.  :meth:`TimeSeriesDB.window_since` adds an incremental cursor
read on top: a reader keeps the integer cursor from its previous call
and receives only the samples appended since, which is what lets the
re-optimization loop and Hecate's forecast cache skip untouched series
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .topology import Network

__all__ = [
    "TimeSeriesDB",
    "ColumnGroup",
    "LinkTelemetryCollector",
    "PathTelemetryProbe",
    "MIN_RATE_MBPS",
]

#: Below this configured rate a direction has no usable capacity (a
#: failed or administratively zeroed link): its ``util`` sample is 0.0
#: by definition instead of a division blow-up — the ``mbps`` series
#: still reports whatever the direction carried.
MIN_RATE_MBPS = 1e-6

#: Initial per-group capacity (rows); doubled on exhaustion.
_INITIAL_CAPACITY = 256


def _empty() -> np.ndarray:
    out = np.empty(0, dtype=np.float64)
    out.flags.writeable = False
    return out


class ColumnGroup:
    """Metrics sampled together: one shared time axis, one value matrix.

    The write handle the telemetry agents hold: :meth:`append` writes a
    whole row — one timestamp, one value per metric — as two numpy
    assignments, no per-metric Python loop.  Reads go through the owning
    :class:`TimeSeriesDB`, which maps each metric name onto its column.
    """

    __slots__ = ("names", "_t", "_v", "n", "sorted")

    def __init__(self, names: Sequence[str]):
        self.names = tuple(names)
        if not self.names:
            raise ValueError("a column group needs at least one metric")
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate metric names in group: {names}")
        self._t = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._v = np.empty(
            (_INITIAL_CAPACITY, len(self.names)), dtype=np.float64
        )
        self.n = 0
        #: cleared the first time an append goes backwards in time;
        #: windowed reads then fall back from bisection to a mask.
        self.sorted = True

    @property
    def width(self) -> int:
        return len(self.names)

    def _grow(self, need: int) -> None:
        capacity = max(self._t.size * 2, need)
        t = np.empty(capacity, dtype=np.float64)
        v = np.empty((capacity, self.width), dtype=np.float64)
        t[: self.n] = self._t[: self.n]
        v[: self.n] = self._v[: self.n]
        self._t, self._v = t, v

    # ------------------------------------------------------------ writes

    def append(self, t: float, values: Sequence[float]) -> None:
        """Append one sample row across every metric of the group."""
        if len(values) != self.width:
            # checked explicitly: numpy would silently broadcast a
            # length-1 row across every column instead of raising
            raise ValueError(
                f"row has {len(values)} values for {self.width} metrics"
            )
        n = self.n
        if n >= self._t.size:
            self._grow(n + 1)
        if n and t < self._t[n - 1]:
            self.sorted = False
        self._t[n] = t
        self._v[n] = values
        self.n = n + 1

    def _append_one(self, t: float, value: float) -> None:
        """Width-1 fast path (``TimeSeriesDB.insert``)."""
        n = self.n
        if n >= self._t.size:
            self._grow(n + 1)
        if n and t < self._t[n - 1]:
            self.sorted = False
        self._t[n] = t
        self._v[n, 0] = value
        self.n = n + 1

    def _extend(self, ts: np.ndarray, values: np.ndarray) -> None:
        """Width-1 bulk append (``TimeSeriesDB.insert_many``)."""
        count = ts.size
        if count == 0:
            return
        need = self.n + count
        if need > self._t.size:
            self._grow(need)
        if self.sorted and (
            (self.n and ts[0] < self._t[self.n - 1])
            or (count > 1 and bool(np.any(np.diff(ts) < 0.0)))
        ):
            self.sorted = False
        self._t[self.n : need] = ts
        self._v[self.n : need, 0] = values
        self.n = need

    # ------------------------------------------------------------- reads

    def times(self) -> np.ndarray:
        view = self._t[: self.n]
        view.flags.writeable = False
        return view

    def column(self, col: int) -> np.ndarray:
        view = self._v[: self.n, col]
        view.flags.writeable = False
        return view


class TimeSeriesDB:
    """Metric name -> columnar (t, value) series.

    The read API is shape/dtype-compatible with the original
    list-of-tuples store (every method returns ``float64`` arrays, empty
    arrays for unknown metrics), but returns **read-only views** into
    the columnar backing instead of materialised copies.  A view taken
    before a growth reallocation stays valid — it sees the snapshot it
    was taken over, never a torn read.
    """

    def __init__(self) -> None:
        #: metric name -> (owning group, column index)
        self._columns: Dict[str, Tuple[ColumnGroup, int]] = {}

    # ------------------------------------------------------------ writes

    def _own_column(self, metric: str) -> Tuple[ColumnGroup, int]:
        """The metric's (group, column), creating a standalone
        single-column group on first write; rejects individual writes
        into a metric owned by a wider group (they would desynchronise
        the group's shared time axis)."""
        entry = self._columns.get(metric)
        if entry is None:
            entry = (ColumnGroup((metric,)), 0)
            self._columns[metric] = entry
        elif entry[0].width != 1:
            raise ValueError(
                f"metric {metric!r} belongs to a column group; append "
                "whole rows through the ColumnGroup handle"
            )
        return entry

    def insert(self, metric: str, t: float, value: float) -> None:
        self._own_column(metric)[0]._append_one(float(t), float(value))

    def insert_many(
        self, metric: str, ts: Sequence[float], values: Sequence[float]
    ) -> None:
        """Bulk append one metric (vectorised; one capacity check)."""
        ts = np.asarray(ts, dtype=np.float64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if ts.size != values.size:
            raise ValueError(
                f"mismatched lengths: {ts.size} timestamps, "
                f"{values.size} values"
            )
        self._own_column(metric)[0]._extend(ts, values)

    def column_group(self, metrics: Sequence[str]) -> ColumnGroup:
        """A shared write handle for metrics sampled together.

        Re-requesting the identical layout returns the existing group
        (so a stopped collector can restart); any other overlap with
        already-registered metrics is an error.
        """
        metrics = tuple(metrics)
        first = self._columns.get(metrics[0]) if metrics else None
        if first is not None and first[0].names == metrics:
            return first[0]
        taken = [name for name in metrics if name in self._columns]
        if taken:
            raise ValueError(
                f"metrics already registered: {taken[:3]}"
                f"{'...' if len(taken) > 3 else ''}"
            )
        group = ColumnGroup(metrics)
        for col, name in enumerate(metrics):
            self._columns[name] = (group, col)
        return group

    # ------------------------------------------------------------- reads

    def metrics(self) -> List[str]:
        return sorted(self._columns)

    def count(self, metric: str) -> int:
        """Samples recorded for ``metric`` (0 if unknown) — also the
        cursor value :meth:`window_since` returns once caught up."""
        entry = self._columns.get(metric)
        return entry[0].n if entry else 0

    def total_samples(self) -> int:
        """Samples across all metrics (a deterministic volume figure)."""
        return sum(entry[0].n for entry in self._columns.values())

    def series(self, metric: str) -> Tuple[np.ndarray, np.ndarray]:
        entry = self._columns.get(metric)
        if entry is None:
            return _empty(), _empty()
        group, col = entry
        return group.times(), group.column(col)

    def window(
        self,
        metric: str,
        t0: float,
        t1: float,
        include_end: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Samples with ``t0 <= t <= t1`` (``t < t1`` when
        ``include_end=False``).

        The upper bound is **inclusive** by default: a reader asking for
        "the last W seconds up to now" must see a sample stamped exactly
        *now* (probe and reader commonly fire at the same simulated
        instant; the old half-open bound silently dropped the newest
        sample).  O(log n + k) on in-order series; falls back to a mask
        scan if the series was ever appended out of order.
        """
        t, v = self.series(metric)
        if t.size == 0:
            return t, v
        group = self._columns[metric][0]
        if group.sorted:
            i0 = int(np.searchsorted(t, t0, side="left"))
            i1 = int(
                np.searchsorted(t, t1, side="right" if include_end else "left")
            )
            return t[i0:i1], v[i0:i1]
        mask = (t >= t0) & ((t <= t1) if include_end else (t < t1))
        return t[mask], v[mask]

    def window_since(
        self, metric: str, cursor: int
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Incremental read: samples appended after ``cursor``.

        ``cursor`` is the value returned by the previous call (0 to
        start).  Returns ``(t, values, new_cursor)``; when nothing was
        appended the arrays are empty and the cursor is unchanged, which
        is the signal callers use to skip recomputation (e.g. Hecate's
        forecast cache).  O(1) plus the size of the increment.
        """
        entry = self._columns.get(metric)
        if entry is None:
            return _empty(), _empty(), 0
        group, col = entry
        start = min(max(int(cursor), 0), group.n)
        return group.times()[start:], group.column(col)[start:], group.n

    def last(self, metric: str, n: int = 1) -> np.ndarray:
        """The last ``n`` values as a zero-copy tail view (O(1), never
        materialises the history; ``n <= 0`` returns an empty array)."""
        entry = self._columns.get(metric)
        if entry is None or n <= 0:
            return _empty()
        group, col = entry
        return group.column(col)[max(group.n - n, 0) :]

    def latest(self, metric: str, default: float = 0.0) -> float:
        """The most recent value of ``metric``, O(1)."""
        entry = self._columns.get(metric)
        if entry is None or entry[0].n == 0:
            return default
        group, col = entry
        return float(group._v[group.n - 1, col])

    def __len__(self) -> int:
        return len(self._columns)


def _guarded_inverse(rates: np.ndarray) -> np.ndarray:
    """1/rate per direction, with unusable rates (< MIN_RATE_MBPS)
    mapped to 0 so utilization divisions can never produce inf/NaN."""
    return np.where(
        rates >= MIN_RATE_MBPS,
        1.0 / np.maximum(rates, MIN_RATE_MBPS),
        0.0,
    )


class LinkTelemetryCollector:
    """Samples per-link, per-direction counters every ``interval`` s.

    Records, for each directed link ``a->b``:

    - ``link:a->b:mbps``     achieved throughput over the last interval
    - ``link:a->b:util``     that throughput / configured rate
    - ``link:a->b:drops``    packets tail-dropped in the interval

    A direction's fluid background load (hybrid backend, see
    :meth:`repro.net.links.Link.set_background_from`) is folded into the
    throughput and utilization samples: the controller and Hecate must
    see mice-class load even though it never crosses the link packet by
    packet.  Because of that folding (and because counters are sampled
    on interval edges while rates can change mid-interval), ``util`` may
    legitimately exceed 1.0 — it reports *offered* load against the
    configured rate, not a clipped occupancy.  Directions whose
    configured rate is below :data:`MIN_RATE_MBPS` (failed or zeroed
    links) report ``util`` 0.0 by definition.

    One sample tick is a single vectorised pass: counters for every
    directed link are gathered into arrays, deltas/rates/utilizations
    are computed with numpy, and the whole tick lands in the store as
    one :class:`ColumnGroup` row append.  The link *set* is captured
    when sampling begins (``Network.add_link`` is build-time only), but
    rates are re-read every tick, so runtime impairments
    (``Network.set_link_rate``) show up in ``util`` immediately.
    """

    def __init__(self, network: Network, db: TimeSeriesDB, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.db = db
        self.interval = interval
        self._running = False
        self._group: Optional[ColumnGroup] = None
        self._dirs: Tuple = ()
        self._n = 0

    def start(self, at: float = 0.0) -> "LinkTelemetryCollector":
        self._running = True
        if self._group is None and self.network.links:
            self._build_columns()
        self.network.sim.schedule(at, self._sample)
        return self

    def stop(self) -> None:
        self._running = False

    def _build_columns(self) -> None:
        dirs = []
        tags = []
        links = []
        for key, link in self.network.links.items():
            a, b = sorted(key)
            for src_name, dst_name in ((a, b), (b, a)):
                node = self.network.node(src_name)
                dirs.append(link.direction_from(node))
                tags.append(f"{src_name}->{dst_name}")
                links.append(link)
        self._dirs = tuple(dirs)
        self._links = tuple(links)
        self._n = len(dirs)
        self._prev_bytes = np.zeros(self._n, dtype=np.float64)
        self._prev_drops = np.zeros(self._n, dtype=np.float64)
        self._row = np.empty(3 * self._n, dtype=np.float64)
        self._scale = 8.0 / self.interval / 1e6
        self._group = self.db.column_group(
            [f"link:{tag}:mbps" for tag in tags]
            + [f"link:{tag}:util" for tag in tags]
            + [f"link:{tag}:drops" for tag in tags]
        )

    def _sample(self) -> None:
        if not self._running:
            return
        if self._group is None and self.network.links:
            self._build_columns()  # built with links after a bare start
        if self._group is not None:
            now = self.network.sim.now
            n = self._n
            dirs = self._dirs
            tx = np.fromiter(
                (d.stats.tx_bytes for d in dirs), np.float64, count=n
            )
            drops = np.fromiter(
                (d.stats.dropped_packets for d in dirs), np.float64, count=n
            )
            bg = np.fromiter(
                (d.background_mbps for d in dirs), np.float64, count=n
            )
            # rates re-read every tick: set_link_rate is runtime-legal
            rates = np.fromiter(
                (lnk.rate_mbps for lnk in self._links), np.float64, count=n
            )
            row = self._row
            mbps = row[:n]
            np.subtract(tx, self._prev_bytes, out=mbps)
            mbps *= self._scale
            mbps += bg
            np.multiply(mbps, _guarded_inverse(rates), out=row[n : 2 * n])
            np.subtract(drops, self._prev_drops, out=row[2 * n :])
            self._prev_bytes = tx
            self._prev_drops = drops
            self._group.append(now, row)
        self.network.sim.schedule(self.interval, self._sample)


@dataclass
class PathObservation:
    """One telemetry snapshot of a named path."""

    t: float
    available_mbps: float
    latency_ms: float
    bottleneck_util: float
    jitter_ms: float = 0.0
    loss_rate: float = 0.0


class PathTelemetryProbe:
    """Derives per-path QoS metrics from link telemetry.

    For a named router path, each sample records:

    - ``path:NAME:available_mbps`` — min over links of
      ``capacity - carried traffic`` (the headroom Hecate forecasts),
    - ``path:NAME:latency_ms`` — propagation plus a queueing estimate from
      current queue depths,
    - ``path:NAME:util`` — utilization of the bottleneck link,
    - ``path:NAME:jitter_ms`` — RFC 3550-style smoothed latency
      variation (``J += (|dLatency| - J) / 16`` per sample), the jitter
      the VoIP MOS model scores,
    - ``path:NAME:loss`` — this interval's dropped-packet fraction
      along the path (drops / transmitted, both as deltas).

    Like the link collector, one sample is a single vectorised pass over
    the path's hops and one 5-column row append (the five series share
    their time axis).  The same rate guard applies: hops with no usable
    configured rate contribute 0 utilization and headroom.
    """

    def __init__(
        self,
        network: Network,
        db: TimeSeriesDB,
        name: str,
        path: Sequence[str],
        interval: float = 1.0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        self.network = network
        self.db = db
        self.name = name
        self.path = list(path)
        self.interval = interval
        self._running = False
        self._group: Optional[ColumnGroup] = None
        self.observations: List[PathObservation] = []

    def start(self, at: float = 0.0) -> "PathTelemetryProbe":
        self._running = True
        if self._group is None:
            self._build_columns()
        self.network.sim.schedule(at, self._sample)
        return self

    def stop(self) -> None:
        self._running = False

    def _build_columns(self) -> None:
        dirs = []
        links = []
        for a, b in zip(self.path[:-1], self.path[1:]):
            link = self.network.link(a, b)
            node = self.network.node(a)
            dirs.append(link.direction_from(node))
            links.append(link)
        self._dirs = tuple(dirs)
        self._links = tuple(links)
        self._prev_bytes = np.zeros(len(dirs), dtype=np.float64)
        self._prev_drops = np.zeros(len(dirs), dtype=np.float64)
        self._prev_pkts = np.zeros(len(dirs), dtype=np.float64)
        self._prev_latency_ms: Optional[float] = None
        self._jitter_ms = 0.0
        self._row = np.empty(5, dtype=np.float64)
        self._scale = 8.0 / self.interval / 1e6
        self._group = self.db.column_group(
            [
                f"path:{self.name}:available_mbps",
                f"path:{self.name}:latency_ms",
                f"path:{self.name}:util",
                f"path:{self.name}:jitter_ms",
                f"path:{self.name}:loss",
            ]
        )

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.network.sim.now
        dirs = self._dirs
        k = len(dirs)
        tx = np.fromiter((d.stats.tx_bytes for d in dirs), np.float64, count=k)
        drops = np.fromiter(
            (d.stats.dropped_packets for d in dirs), np.float64, count=k
        )
        pkts = np.fromiter(
            (d.stats.tx_packets for d in dirs), np.float64, count=k
        )
        depth = np.fromiter(
            (len(d.queue) for d in dirs), np.float64, count=k
        )
        bg = np.fromiter(
            (d.background_mbps for d in dirs), np.float64, count=k
        )
        # rates/delays re-read every tick: set_link_rate/set_link_delay
        # are runtime-legal impairments the probe must track live
        rates = np.fromiter(
            (lnk.rate_mbps for lnk in self._links), np.float64, count=k
        )
        prop_ms = sum(lnk.delay_ms for lnk in self._links)
        # one 1500 B packet's serialization time per hop (ms)
        queue_ms_per_pkt = 12.0 / np.maximum(rates, MIN_RATE_MBPS)
        carried = tx - self._prev_bytes
        carried *= self._scale
        carried += bg
        self._prev_bytes = tx
        headroom = np.maximum(rates - carried, 0.0)
        latency_ms = prop_ms + float(np.dot(depth, queue_ms_per_pkt))
        # jitter: smoothed latency variation between consecutive samples
        if self._prev_latency_ms is not None:
            d_lat = abs(latency_ms - self._prev_latency_ms)
            self._jitter_ms += (d_lat - self._jitter_ms) / 16.0
        self._prev_latency_ms = latency_ms
        # loss: this interval's dropped fraction of attempted packets
        dropped = float(np.sum(drops - self._prev_drops))
        attempted = float(np.sum(pkts - self._prev_pkts)) + dropped
        self._prev_drops = drops
        self._prev_pkts = pkts
        loss_rate = dropped / attempted if attempted > 0 else 0.0
        obs = PathObservation(
            t=now,
            available_mbps=float(headroom.min()),
            latency_ms=latency_ms,
            bottleneck_util=float(np.max(carried * _guarded_inverse(rates))),
            jitter_ms=self._jitter_ms,
            loss_rate=loss_rate,
        )
        self.observations.append(obs)
        row = self._row
        row[0] = obs.available_mbps
        row[1] = obs.latency_ms
        row[2] = obs.bottleneck_util
        row[3] = obs.jitter_ms
        row[4] = obs.loss_rate
        self._group.append(now, row)
        self.network.sim.schedule(self.interval, self._sample)
