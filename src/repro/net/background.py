"""Fluid background load applied to an emulated network, per epoch.

The hybrid scenario backend models its mice/background flow classes in
the fluid domain (:func:`repro.net.fluid.max_min_fair`) and injects the
resulting aggregate as a per-link *background load term* into the packet
emulator (:meth:`repro.net.links.Link.set_background_from`).  This
module is the bridge: a :class:`BackgroundEpoch` holds one solved
interval's directed link loads, :func:`apply_background` writes one
epoch's loads onto every link direction of a network, and
:func:`install_background_schedule` schedules the whole timeline onto
the simulator — **one coalesced event per epoch edge** (a single
callback applies every link's update), not one event per link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Mapping, Tuple

from .sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Network

__all__ = [
    "BackgroundEpoch",
    "apply_background",
    "install_background_schedule",
]


@dataclass(frozen=True)
class BackgroundEpoch:
    """One interval of solved background load.

    ``loads`` maps **directed** ``(a, b)`` node pairs to the aggregate
    background Mbps transmitting out of ``a`` towards ``b`` during
    ``[t0, t1)``; directions not present carry zero background.
    """

    t0: float
    t1: float
    loads: Mapping[Tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.t1 <= self.t0:
            raise ValueError(f"empty epoch [{self.t0}, {self.t1})")


def apply_background(
    network: "Network", loads: Mapping[Tuple[str, str], float]
) -> None:
    """Write one epoch's directed loads onto every link direction.

    Directions absent from ``loads`` are cleared to zero, so applying
    epochs in sequence never leaks a previous epoch's load; an empty
    mapping resets the whole network to pure packet-level behaviour.
    Raises ``KeyError`` if a load names a link the network doesn't have.
    """
    seen = set()
    for key, link in network.links.items():
        a, b = sorted(key)
        for src, dst in ((a, b), (b, a)):
            node = network.node(src)
            mbps = float(loads.get((src, dst), 0.0))
            link.set_background_from(node, mbps)
            if (src, dst) in loads:
                seen.add((src, dst))
    unknown = set(loads) - seen
    if unknown:
        raise KeyError(
            f"background loads name links absent from the network: "
            f"{sorted(unknown)}"
        )


def install_background_schedule(
    network: "Network",
    epochs: List[BackgroundEpoch],
    offset: float = 0.0,
) -> List[Event]:
    """Schedule every epoch's load application on the network simulator.

    One event per epoch edge (each applying *all* link updates in one
    callback — coalesced, never per-link), plus a final event clearing
    the background at the last epoch's end.  ``offset`` shifts epoch
    times to absolute simulator time (the runner passes the end of
    warmup).  Returns the scheduled events so a caller can cancel the
    remainder of a timeline.
    """
    events: List[Event] = []
    for epoch in epochs:
        events.append(
            network.sim.schedule_at(
                offset + epoch.t0,
                lambda loads=epoch.loads: apply_background(network, loads),
            )
        )
    if epochs:
        events.append(
            network.sim.schedule_at(
                offset + epochs[-1].t1,
                lambda: apply_background(network, {}),
            )
        )
    return events
