"""Hosts and routers.

Routers implement both forwarding planes the paper contrasts:

* **table-based** — a FIB of ``destination host -> output port`` computed
  from the topology (the role OSPF/static routes play on freeRtr);
* **PolKA source routing** — if a packet carries a ``route_id`` the router
  ignores its tables entirely and computes ``route_id mod node_id``
  (:class:`repro.polka.routing.PolkaNode`), the stateless core behaviour.

Edge routers additionally run a *classifier* installed by the freeRtr
config layer (:mod:`repro.freertr`): it matches new packets against
access-lists + PBR and returns the PolKA tunnel to encapsulate into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.polka.routing import PolkaNode

from .links import Link
from .packets import Packet
from .sim import Simulator

__all__ = ["Node", "Host", "Router", "RouterStats"]


class Node:
    """Anything with ports: base for Host and Router."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.ports: Dict[int, Link] = {}
        self.port_of: Dict[str, int] = {}  # neighbour name -> port

    def attach(self, port: int, link: Link) -> None:
        if port in self.ports:
            raise ValueError(f"{self.name}: port {port} already attached")
        self.ports[port] = link
        self.port_of[link.other(self).name] = port

    def send_out(self, port: int, packet: Packet) -> bool:
        try:
            link = self.ports[port]
        except KeyError:
            raise KeyError(f"{self.name}: no link on port {port}") from None
        return link.send_from(self, packet)

    def receive(self, packet: Packet, link: Link) -> None:  # pragma: no cover
        raise NotImplementedError


class Host(Node):
    """An end host: owns an IP, runs apps, answers pings.

    Incoming data packets are dispatched to per-flow receive hooks that
    applications register; unclaimed traffic is counted so tests can
    assert on misdelivery.
    """

    def __init__(self, sim: Simulator, name: str, ip: str = ""):
        super().__init__(sim, name)
        self.ip = ip
        self.flow_handlers: Dict[int, Callable[[Packet], None]] = {}
        self.received_unclaimed: int = 0
        self.rx_log: List[Tuple[float, int, int]] = []  # (t, flow_id, bytes)

    @property
    def uplink_port(self) -> int:
        if not self.ports:
            raise RuntimeError(f"host {self.name} has no link")
        return next(iter(self.ports))

    def register_flow(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        self.flow_handlers[flow_id] = handler

    def unregister_flow(self, flow_id: int) -> None:
        """Drop a flow's handler (idempotent).  Retired flows must not
        pin their applications in the handler map forever — under
        sustained churn that map is the host-side leak.  Packets still
        in flight for the flow land in ``received_unclaimed``."""
        self.flow_handlers.pop(flow_id, None)

    def send_packet(self, packet: Packet) -> bool:
        packet.created_at = self.sim.now if packet.created_at == 0.0 else packet.created_at
        return self.send_out(self.uplink_port, packet)

    def receive(self, packet: Packet, link: Link) -> None:
        if packet.dst != self.name:
            self.received_unclaimed += 1
            return
        if packet.protocol == "icmp":
            reply = Packet(
                src=self.name,
                dst=packet.src,
                size=packet.size,
                protocol="icmp-reply",
                tos=packet.tos,
                flow_id=packet.flow_id,
                seq=packet.seq,
                src_ip=self.ip,
                dst_ip=packet.src_ip,
                created_at=packet.created_at,  # echo the original timestamp
            )
            self.send_packet(reply)
            return
        self.rx_log.append((self.sim.now, packet.flow_id, packet.size))
        handler = self.flow_handlers.get(packet.flow_id)
        if handler is not None:
            handler(packet)
        elif packet.protocol != "icmp-reply":
            self.received_unclaimed += 1

    def received_bytes(self, flow_id: Optional[int] = None) -> int:
        return sum(
            b for _, f, b in self.rx_log if flow_id is None or f == flow_id
        )


@dataclass
class RouterStats:
    forwarded: int = 0
    polka_forwarded: int = 0
    encapsulated: int = 0
    decapsulated: int = 0
    dropped_no_route: int = 0
    dropped_ttl: int = 0
    dropped_queue_full: int = 0


class Router(Node):
    """A router with a FIB, an optional PolKA node identity and (for edge
    routers) a freeRtr-style classifier."""

    def __init__(self, sim: Simulator, name: str, edge: bool = False):
        super().__init__(sim, name)
        self.edge = edge
        self.fib: Dict[str, int] = {}  # dst host name -> output port
        self.polka_node: Optional[PolkaNode] = None
        # classifier(packet) -> (route_id, egress_router_name) or None
        self.classifier: Optional[
            Callable[[Packet], Optional[Tuple[int, str]]]
        ] = None
        self.stats = RouterStats()

    # ------------------------------------------------------------ forwarding

    def receive(self, packet: Packet, link: Link) -> None:
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.stats.dropped_ttl += 1
            return
        self._forward(packet)

    def inject(self, packet: Packet) -> None:
        """Locally originated traffic (used by tests and probes)."""
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        # 1. tunnel egress: strip the PolKA header, deliver by table
        if packet.route_id is not None and packet.tunnel_egress == self.name:
            packet.decapsulated()
            self.stats.decapsulated += 1

        # 2. PolKA core: stateless residue forwarding
        if packet.route_id is not None:
            if self.polka_node is None:
                self.stats.dropped_no_route += 1
                return
            port = self.polka_node.forward(packet.route_id)
            self.stats.polka_forwarded += 1
            self._transmit(port, packet)
            return

        # 3. edge ingress: classify and encapsulate new flows
        if self.edge and self.classifier is not None:
            binding = self.classifier(packet)
            if binding is not None:
                route_id, egress = binding
                packet.route_id = route_id
                packet.tunnel_egress = egress
                self.stats.encapsulated += 1
                if self.polka_node is not None:
                    port = self.polka_node.forward(route_id)
                    self.stats.polka_forwarded += 1
                    self._transmit(port, packet)
                    return

        # 4. plain table-based forwarding
        port = self.fib.get(packet.dst)
        if port is None:
            self.stats.dropped_no_route += 1
            return
        self.stats.forwarded += 1
        self._transmit(port, packet)

    def _transmit(self, port: int, packet: Packet) -> None:
        if port not in self.ports:
            self.stats.dropped_no_route += 1
            return
        if not self.send_out(port, packet):
            self.stats.dropped_queue_full += 1
