"""Packet model.

One mutable dataclass serves every protocol in the emulator; the PolKA
encapsulation is the ``route_id`` field (set by the ingress edge router,
cleared by the egress edge), mirroring how freeRtr pushes the polynomial
routeID header onto tunnelled traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Packet", "DATA_MTU", "ACK_SIZE", "ICMP_SIZE"]

DATA_MTU = 1500  # bytes, standard Ethernet MTU used by the emulated iperf
ACK_SIZE = 40  # bytes, TCP ACK
ICMP_SIZE = 64  # bytes, default ping payload

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A packet in flight.

    Attributes
    ----------
    src, dst:
        Host names (stable identifiers; IPs live on the hosts).
    src_ip, dst_ip:
        Dotted-quad strings used by freeRtr-style access lists.
    protocol:
        ``"tcp"``, ``"udp"``, ``"icmp"`` or ``"icmp-reply"``.
    tos:
        Type-of-Service byte; the paper's Fig. 12 distinguishes its three
        flows by ToS, and PBR matches on it.
    flow_id:
        Application flow identifier (ties packets to their sender app).
    seq / ack:
        Sequence number of data packets; ``ack`` marks ACK segments and
        carries the acknowledged sequence number.
    route_id:
        PolKA polynomial routeID when tunnelled, else None.
    tunnel_egress:
        Name of the edge router that must decapsulate (the tunnel
        destination configured in freeRtr's ``tunnel destination``).
    ttl:
        Hop budget; routers drop at zero to contain forwarding loops.
    """

    src: str
    dst: str
    size: int
    protocol: str = "udp"
    tos: int = 0
    flow_id: int = 0
    seq: int = 0
    ack: Optional[int] = None
    src_ip: str = ""
    dst_ip: str = ""
    route_id: Optional[int] = None
    tunnel_egress: Optional[str] = None
    created_at: float = 0.0
    ttl: int = 64
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def is_ack(self) -> bool:
        return self.ack is not None

    def decapsulated(self) -> "Packet":
        """Strip the PolKA header (egress edge behaviour)."""
        self.route_id = None
        self.tunnel_egress = None
        return self
