"""Traffic applications: ping, TCP (AIMD), UDP/CBR and iperf-style reports.

These substitute for the ``ping``, ``iperf3`` and ``bwm-ng`` tools in the
paper's virtual testbed.  The TCP model is a deliberately compact
NewReno-flavoured AIMD: slow start to ``ssthresh``, congestion avoidance
(+1 MSS per RTT), multiplicative decrease on retransmission timeout, EWMA
RTT estimation for the RTO.  That is enough to reproduce the *shapes* the
paper's Figs. 11-12 rely on — bottleneck saturation, fair sharing among
competing flows and throughput steps after a PBR path change — without
modelling SACK blocks or byte-level reassembly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .devices import Host
from .packets import ACK_SIZE, DATA_MTU, ICMP_SIZE, Packet
from .sim import Event, Simulator

__all__ = ["PingApp", "TcpFlow", "UdpFlow", "FlowReport"]

_flow_ids = iter(range(1, 1_000_000))


def _next_flow_id() -> int:
    return next(_flow_ids)


class PingApp:
    """Periodic ICMP echo with RTT capture (the paper's Fig. 11 probe)."""

    def __init__(
        self,
        host: Host,
        dst: Host,
        interval: float = 1.0,
        count: Optional[int] = None,
        tos: int = 0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.host = host
        self.dst = dst
        self.interval = interval
        self.count = count
        self.tos = tos
        self.flow_id = _next_flow_id()
        self.rtts: List[Tuple[float, float]] = []  # (send time, rtt ms)
        self.sent = 0
        self.lost_so_far = 0
        self._pending: Dict[int, float] = {}
        host.register_flow(self.flow_id, self._on_reply)

    def start(self, at: float = 0.0) -> "PingApp":
        self.host.sim.schedule(at, self._tick)
        return self

    def stop(self) -> None:
        self.count = self.sent  # no further ticks send anything
        # retire the receive handler so a departed probe cannot pin
        # itself in the host's handler map (collected RTTs are kept)
        self.host.unregister_flow(self.flow_id)
        self._pending.clear()

    def _tick(self) -> None:
        if self.count is not None and self.sent >= self.count:
            return
        seq = self.sent
        self.sent += 1
        packet = Packet(
            src=self.host.name,
            dst=self.dst.name,
            size=ICMP_SIZE,
            protocol="icmp",
            tos=self.tos,
            flow_id=self.flow_id,
            seq=seq,
            src_ip=self.host.ip,
            dst_ip=self.dst.ip,
            created_at=self.host.sim.now,
        )
        self._pending[seq] = self.host.sim.now
        self.host.send_packet(packet)
        self.host.sim.schedule(self.interval, self._tick)

    def _on_reply(self, packet: Packet) -> None:
        sent_at = self._pending.pop(packet.seq, None)
        if sent_at is None:
            return
        rtt_ms = (self.host.sim.now - sent_at) * 1e3
        self.rtts.append((sent_at, rtt_ms))

    # ------------------------------------------------------------- results

    @property
    def received(self) -> int:
        return len(self.rtts)

    @property
    def loss_rate(self) -> float:
        outstanding = len(self._pending)
        if self.sent == 0:
            return 0.0
        return outstanding / self.sent

    def rtt_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(send times, RTTs in ms) as arrays, time-ordered."""
        if not self.rtts:
            return np.array([]), np.array([])
        arr = np.asarray(self.rtts)
        return arr[:, 0], arr[:, 1]


@dataclass
class FlowReport:
    """iperf3-style summary of a finished (or sampled) flow."""

    flow_id: int
    src: str
    dst: str
    duration_s: float
    bytes_delivered: int
    mean_mbps: float
    retransmits: int
    interval_mbps: List[float] = field(default_factory=list)
    #: RFC 3550 smoothed inter-arrival jitter (UDP) — what the VoIP
    #: MOS model consumes; 0.0 where the app doesn't measure it
    jitter_ms: float = 0.0
    #: mean one-way transit time of delivered packets (UDP)
    mean_latency_ms: float = 0.0
    loss_rate: float = 0.0


class TcpFlow:
    """Bulk TCP transfer with AIMD congestion control.

    Parameters
    ----------
    host, dst:
        Sender and receiver hosts.
    tos:
        ToS byte stamped on every segment (PBR match key in Fig. 12).
    duration:
        Seconds of sending after ``start``; the flow keeps the pipe full
        the whole time (iperf-style), rather than sending a fixed volume.
    """

    MSS = DATA_MTU
    INITIAL_CWND = 2.0
    INITIAL_SSTHRESH = 64.0
    MAX_CWND = 512.0
    MIN_RTO = 0.2

    def __init__(
        self,
        host: Host,
        dst: Host,
        tos: int = 0,
        duration: float = 60.0,
    ):
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.host = host
        self.dst = dst
        self.tos = tos
        self.duration = duration
        self.flow_id = _next_flow_id()
        self.sim: Simulator = host.sim

        self.cwnd = self.INITIAL_CWND
        self.ssthresh = self.INITIAL_SSTHRESH
        self.next_seq = 0
        self.inflight: Dict[int, Event] = {}  # seq -> timeout event
        self.first_tx: Dict[int, float] = {}  # seq -> send time (RTT sampling)
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.retransmits = 0
        self.bytes_acked = 0
        self.ack_log: List[Tuple[float, int]] = []  # (t, bytes)
        self.started_at: Optional[float] = None
        self.stop_at: Optional[float] = None
        self._start_event: Optional[Event] = None
        self._stopped = False

        # receiver side: count delivered bytes, ack every segment
        dst.register_flow(self.flow_id, self._receiver_on_data)
        host.register_flow(self.flow_id, self._sender_on_ack)

    # -------------------------------------------------------------- sender

    def start(self, at: float = 0.0) -> "TcpFlow":
        def begin():
            if self._stopped:
                return
            self.started_at = self.sim.now
            self.stop_at = self.sim.now + self.duration
            self._pump()

        self._start_event = self.sim.schedule(at, begin)
        return self

    def stop(self) -> None:
        """Tear the flow down now: stop sending, cancel every pending
        retransmission timer and unregister both hosts' handlers.

        Collected results (``ack_log``, ``goodput_mbps``) stay valid;
        the flow simply ends at the current instant instead of at its
        scheduled ``stop_at``.  Idempotent — the retirement path of a
        long-lived service calls this for every departing flow."""
        self._stopped = True
        if self._start_event is not None:
            self._start_event.cancel()
        if self.stop_at is None or self.sim.now < self.stop_at:
            self.stop_at = self.sim.now
        for event in self.inflight.values():
            event.cancel()
        self.inflight.clear()
        self.first_tx.clear()
        self.host.unregister_flow(self.flow_id)
        self.dst.unregister_flow(self.flow_id)

    @property
    def _sending(self) -> bool:
        return self.stop_at is not None and self.sim.now < self.stop_at

    def _rto(self) -> float:
        if self.srtt is None:
            return 1.0
        return max(self.MIN_RTO, self.srtt + 4.0 * self.rttvar)

    def _pump(self) -> None:
        while self._sending and len(self.inflight) < int(self.cwnd):
            seq = self.next_seq
            self.next_seq += 1
            self._transmit(seq, first=True)

    def _transmit(self, seq: int, first: bool) -> None:
        packet = Packet(
            src=self.host.name,
            dst=self.dst.name,
            size=self.MSS,
            protocol="tcp",
            tos=self.tos,
            flow_id=self.flow_id,
            seq=seq,
            src_ip=self.host.ip,
            dst_ip=self.dst.ip,
            created_at=self.sim.now,
        )
        if first:
            self.first_tx[seq] = self.sim.now
        self.host.send_packet(packet)
        timeout = self.sim.schedule(self._rto(), lambda: self._on_timeout(seq))
        old = self.inflight.get(seq)
        if old is not None:
            old.cancel()
        self.inflight[seq] = timeout

    def _on_timeout(self, seq: int) -> None:
        if seq not in self.inflight:
            return
        # multiplicative decrease; retransmit the lost segment
        self.retransmits += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self.first_tx.pop(seq, None)  # Karn: no RTT sample from retransmit
        if self._sending or True:  # always retransmit outstanding data
            self._transmit(seq, first=False)

    def _sender_on_ack(self, packet: Packet) -> None:
        seq = packet.ack
        timer = self.inflight.pop(seq, None)
        if timer is None:
            return  # duplicate/ack for already-retired segment
        timer.cancel()
        sent_at = self.first_tx.pop(seq, None)
        if sent_at is not None:
            sample = self.sim.now - sent_at
            if self.srtt is None:
                self.srtt = sample
                self.rttvar = sample / 2.0
            else:
                self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
                self.srtt = 0.875 * self.srtt + 0.125 * sample
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start
        else:
            self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, self.MAX_CWND)
        self.bytes_acked += self.MSS
        self.ack_log.append((self.sim.now, self.MSS))
        self._pump()

    # ------------------------------------------------------------ receiver

    def _receiver_on_data(self, packet: Packet) -> None:
        ack = Packet(
            src=self.dst.name,
            dst=self.host.name,
            size=ACK_SIZE,
            protocol="tcp",
            tos=packet.tos,
            flow_id=self.flow_id,
            seq=0,
            ack=packet.seq,
            src_ip=self.dst.ip,
            dst_ip=self.host.ip,
        )
        self.dst.send_packet(ack)

    # ------------------------------------------------------------- results

    def goodput_mbps(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Mean acked throughput over [t0, t1] (defaults: whole lifetime)."""
        if self.started_at is None:
            return 0.0
        t0 = self.started_at if t0 is None else t0
        t1 = (self.stop_at if self.stop_at is not None else self.sim.now) if t1 is None else t1
        if t1 <= t0:
            return 0.0
        total = sum(b for t, b in self.ack_log if t0 <= t < t1)
        return total * 8.0 / (t1 - t0) / 1e6

    def interval_mbps(self, bin_s: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """Per-interval throughput series (iperf3's per-second report)."""
        if self.started_at is None or not self.ack_log:
            return np.array([]), np.array([])
        t = np.asarray([x[0] for x in self.ack_log])
        b = np.asarray([x[1] for x in self.ack_log], dtype=np.float64)
        end = self.stop_at if self.stop_at is not None else t.max()
        edges = np.arange(self.started_at, end + bin_s, bin_s)
        sums, _ = np.histogram(t, bins=edges, weights=b)
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, sums * 8.0 / bin_s / 1e6

    def report(self, bin_s: float = 1.0) -> FlowReport:
        _, series = self.interval_mbps(bin_s)
        return FlowReport(
            flow_id=self.flow_id,
            src=self.host.name,
            dst=self.dst.name,
            duration_s=self.duration,
            bytes_delivered=self.bytes_acked,
            mean_mbps=self.goodput_mbps(),
            retransmits=self.retransmits,
            interval_mbps=series.tolist(),
        )


class UdpFlow:
    """Constant-bit-rate UDP sender (no feedback, no retransmission).

    ``train_packets`` batches the sender's timer: instead of one
    scheduler event per packet, each tick emits a back-to-back *train*
    of up to that many packets and sleeps one inter-packet interval per
    packet sent.  The total packet count equals the strictly-paced
    sender's (the final train is clipped to the flow's remaining packet
    budget, so a short flow never overshoots its CBR rate); only the
    pacing granularity coarsens, and the event count drops by the train
    length — the knob scale-tier scenarios use to keep thousands of
    mice affordable in pure DES runs.  The default of 1 preserves the
    original strictly-paced behaviour.
    """

    def __init__(
        self,
        host: Host,
        dst: Host,
        rate_mbps: float,
        duration: float = 60.0,
        tos: int = 0,
        packet_size: int = DATA_MTU,
        train_packets: int = 1,
    ):
        if rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if train_packets < 1:
            raise ValueError("train_packets must be >= 1")
        self.host = host
        self.dst = dst
        self.rate_mbps = rate_mbps
        self.duration = duration
        self.tos = tos
        self.packet_size = packet_size
        self.train_packets = int(train_packets)
        self.flow_id = _next_flow_id()
        self.sent_packets = 0
        self.received_bytes = 0
        self.rx_log: List[Tuple[float, int]] = []
        # RFC 3550 jitter: smoothed |delta transit| between consecutive
        # arrivals, J += (|D| - J) / 16 (seconds internally)
        self._jitter_s = 0.0
        self._last_transit_s: Optional[float] = None
        self._transit_sum_s = 0.0
        self._transit_n = 0
        self._start_time: Optional[float] = None
        self._stop_time: Optional[float] = None
        self._packet_budget = 0
        self._start_event = None
        self._stopped = False
        dst.register_flow(self.flow_id, self._on_data)

    def start(self, at: float = 0.0) -> "UdpFlow":
        def begin():
            if self._stopped:
                return
            self._start_time = self.host.sim.now
            self._stop_time = self.host.sim.now + self.duration
            # the strictly-paced sender ticks once per interval while
            # now < stop, i.e. ceil(duration / interval) packets; train
            # batching must emit exactly that many, never more
            interval = self.packet_size * 8.0 / (self.rate_mbps * 1e6)
            self._packet_budget = int(math.ceil(self.duration / interval))
            self._tick()

        self._start_event = self.host.sim.schedule(at, begin)
        return self

    def stop(self) -> None:
        """Stop sending now and unregister the receiver's handler.

        The next timer tick (if any is pending) sees the moved
        ``_stop_time`` and does nothing; results collected so far
        (``delivered_mbps``, ``loss_rate``) stay valid.  Idempotent."""
        self._stopped = True
        if self._start_event is not None:
            self._start_event.cancel()
        if self._stop_time is None or self.host.sim.now < self._stop_time:
            self._stop_time = self.host.sim.now
        self.dst.unregister_flow(self.flow_id)

    def _tick(self) -> None:
        if self.host.sim.now >= self._stop_time:
            return
        budget_left = self._packet_budget - self.sent_packets
        if budget_left <= 0:
            return
        for _ in range(min(self.train_packets, budget_left)):
            packet = Packet(
                src=self.host.name,
                dst=self.dst.name,
                size=self.packet_size,
                protocol="udp",
                tos=self.tos,
                flow_id=self.flow_id,
                seq=self.sent_packets,
                src_ip=self.host.ip,
                dst_ip=self.dst.ip,
                created_at=self.host.sim.now,
            )
            self.host.send_packet(packet)
            self.sent_packets += 1
        interval = self.packet_size * 8.0 / (self.rate_mbps * 1e6)
        self.host.sim.schedule(self.train_packets * interval, self._tick)

    def _on_data(self, packet: Packet) -> None:
        self.received_bytes += packet.size
        self.rx_log.append((self.dst.sim.now, packet.size))
        if packet.created_at is not None:
            transit = self.dst.sim.now - packet.created_at
            self._transit_sum_s += transit
            self._transit_n += 1
            if self._last_transit_s is not None:
                d = abs(transit - self._last_transit_s)
                self._jitter_s += (d - self._jitter_s) / 16.0
            self._last_transit_s = transit

    def delivered_mbps(self) -> float:
        """Mean delivered rate over the flow's *active window* — from
        the first send to min(now, scheduled stop), extended to the last
        arrival when packets outlive the sender.

        Averaging over the receive-log span instead (the original
        definition) breaks down for short or train-batched flows: a
        mouse whose whole lifetime fits in one back-to-back packet train
        would report the link's serialization rate, not the trickle it
        actually carried.
        """
        if not self.rx_log or self._start_time is None:
            return 0.0
        end = min(self.host.sim.now, self._stop_time)
        end = max(end, self.rx_log[-1][0])
        window = end - self._start_time
        if window <= 0:
            return 0.0
        return self.received_bytes * 8.0 / window / 1e6

    @property
    def loss_rate(self) -> float:
        if self.sent_packets == 0:
            return 0.0
        return 1.0 - (self.received_bytes / self.packet_size) / self.sent_packets

    @property
    def jitter_ms(self) -> float:
        """RFC 3550 smoothed inter-arrival jitter in milliseconds."""
        return self._jitter_s * 1e3

    @property
    def mean_latency_ms(self) -> float:
        """Mean one-way transit time of delivered packets (ms)."""
        if self._transit_n == 0:
            return 0.0
        return self._transit_sum_s / self._transit_n * 1e3

    def report(self) -> FlowReport:
        """iperf3/RTCP-style summary: rate, jitter, latency and loss."""
        return FlowReport(
            flow_id=self.flow_id,
            src=self.host.name,
            dst=self.dst.name,
            duration_s=self.duration,
            bytes_delivered=self.received_bytes,
            mean_mbps=self.delivered_mbps(),
            retransmits=0,
            jitter_ms=self.jitter_ms,
            mean_latency_ms=self.mean_latency_ms,
            loss_rate=self.loss_rate,
        )
