"""Point-to-point links: rate limiting, propagation delay, FIFO queues.

Each :class:`Link` is full-duplex — two independent :class:`_Direction`
objects each modelling a serializing transmitter with a tail-drop FIFO.
This is the component that substitutes for the paper's VirtualBox NIC rate
limits and ``tc``-injected delay: capacity comes from the serialization
rate, latency from ``delay_ms``, and congestion from the bounded queue.
Per-direction byte/packet/drop counters feed :mod:`repro.net.telemetry`.

Each direction additionally carries a **background load term**
(:meth:`Link.set_background_from`): an aggregate Mbps of traffic that is
modelled in the fluid domain rather than packet-by-packet (the hybrid
scenario backend's mice/background flow classes).  Background load
shrinks the direction's *effective* serialization rate — foreground
packets serialize at ``rate - background`` — and is folded into
telemetry, so the controller sees the link as busy even though no
background packet ever enters the queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, TYPE_CHECKING

from .packets import Packet
from .sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .devices import Node

__all__ = ["Link", "LinkStats", "MIN_EFFECTIVE_RATE_FRACTION"]

#: Background load can slow a direction down to this fraction of its
#: configured rate, never below: an over-subscribed fluid class must not
#: stall the packet domain entirely (serialization times would diverge).
MIN_EFFECTIVE_RATE_FRACTION = 0.01


@dataclass
class LinkStats:
    """Per-direction counters (monotonic; telemetry samples deltas)."""

    tx_packets: int = 0
    tx_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    queue_peak: int = 0


class _Direction:
    """One transmit direction: serializer + tail-drop FIFO."""

    def __init__(self, sim: Simulator, link: "Link", deliver: Callable[[Packet], None]):
        self.sim = sim
        self.link = link
        self.deliver = deliver
        self.queue: Deque[Packet] = deque()
        self.busy = False
        self.stats = LinkStats()
        self.background_mbps = 0.0

    def effective_rate_mbps(self) -> float:
        """Serialization rate left to packet-level traffic after the
        fluid background class took its share (floored at
        :data:`MIN_EFFECTIVE_RATE_FRACTION` of the configured rate)."""
        floor = self.link.rate_mbps * MIN_EFFECTIVE_RATE_FRACTION
        return max(self.link.rate_mbps - self.background_mbps, floor)

    def send(self, packet: Packet) -> bool:
        """Enqueue for transmission; False (and a drop) when the queue is
        full or the link is administratively/physically down."""
        if not self.link.up or len(self.queue) >= self.link.queue_packets:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            return False
        self.queue.append(packet)
        self.stats.queue_peak = max(self.stats.queue_peak, len(self.queue))
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        self.busy = True
        packet = self.queue.popleft()
        tx_time = packet.size * 8.0 / (self.effective_rate_mbps() * 1e6)
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size

        def done(p=packet):
            # serialization finished: start next packet, deliver this one
            # after propagation delay
            self.sim.schedule(self.link.delay_ms / 1e3, lambda: self.deliver(p))
            self._start_next()

        self.sim.schedule(tx_time, done)


class Link:
    """Full-duplex link between two nodes.

    Parameters
    ----------
    rate_mbps:
        Serialization rate per direction (the VirtualBox bandwidth cap in
        the paper's testbed).
    delay_ms:
        One-way propagation delay (the ``tc`` delay in the paper).
    queue_packets:
        FIFO depth per direction; tail drop beyond it.
    """

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        node_b: "Node",
        rate_mbps: float = 1000.0,
        delay_ms: float = 0.1,
        queue_packets: int = 100,
    ):
        if rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        if delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")
        if queue_packets < 1:
            raise ValueError("queue_packets must be >= 1")
        self.sim = sim
        self.node_a = node_a
        self.node_b = node_b
        self.rate_mbps = float(rate_mbps)
        self.delay_ms = float(delay_ms)
        self.queue_packets = int(queue_packets)
        self.up = True  # failure injection: down links black-hole traffic
        self._ab = _Direction(sim, self, lambda p: node_b.receive(p, self))
        self._ba = _Direction(sim, self, lambda p: node_a.receive(p, self))

    def endpoints(self):
        return self.node_a, self.node_b

    def other(self, node: "Node") -> "Node":
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node.name} is not attached to this link")

    def send_from(self, node: "Node", packet: Packet) -> bool:
        """Transmit ``packet`` out of ``node`` towards the other end."""
        if node is self.node_a:
            return self._ab.send(packet)
        if node is self.node_b:
            return self._ba.send(packet)
        raise ValueError(f"{node.name} is not attached to this link")

    def stats_from(self, node: "Node") -> LinkStats:
        """Counters for the direction transmitting out of ``node``."""
        if node is self.node_a:
            return self._ab.stats
        if node is self.node_b:
            return self._ba.stats
        raise ValueError(f"{node.name} is not attached to this link")

    def _direction_from(self, node: "Node") -> _Direction:
        if node is self.node_a:
            return self._ab
        if node is self.node_b:
            return self._ba
        raise ValueError(f"{node.name} is not attached to this link")

    def direction_from(self, node: "Node") -> _Direction:
        """The transmit direction out of ``node``: a stable handle whose
        ``stats`` / ``queue`` / ``background_mbps`` the vectorised
        telemetry collectors read in bulk each tick (resolving the
        direction once at start instead of per sample)."""
        return self._direction_from(node)

    def set_background_from(self, node: "Node", mbps: float) -> None:
        """Set the fluid background load (Mbps) transmitting out of
        ``node``; takes effect from the next packet serialization."""
        if mbps < 0:
            raise ValueError(f"background load must be >= 0, got {mbps}")
        self._direction_from(node).background_mbps = float(mbps)

    def background_from(self, node: "Node") -> float:
        """Current background load (Mbps) out of ``node``."""
        return self._direction_from(node).background_mbps

    def queue_depth_from(self, node: "Node") -> int:
        if node is self.node_a:
            return len(self._ab.queue)
        return len(self._ba.queue)

    def __repr__(self) -> str:
        return (
            f"Link({self.node_a.name}<->{self.node_b.name}, "
            f"{self.rate_mbps} Mbps, {self.delay_ms} ms)"
        )
