"""repro.net — packet-level discrete-event network emulator.

Substitutes for the paper's RARE/freeRtr + VirtualBox virtual testbed:
rate-limited links with propagation delay and tail-drop queues, routers
with both table-based FIBs and PolKA residue forwarding, ping/TCP/UDP
traffic apps, telemetry sampling into a time-series store, plus a fluid
max-min model for closed-form cross-checks.
"""

from .apps import FlowReport, PingApp, TcpFlow, UdpFlow
from .background import BackgroundEpoch, apply_background, install_background_schedule
from .devices import Host, Node, Router, RouterStats
from .fluid import FluidFlow, max_min_fair, max_min_fair_bounded, total_throughput
from .links import Link, LinkStats
from .packets import ACK_SIZE, DATA_MTU, ICMP_SIZE, Packet
from .sim import Event, EventBudgetExceeded, Simulator
from .telemetry import LinkTelemetryCollector, PathTelemetryProbe, TimeSeriesDB
from .topology import Network

__all__ = [
    "Simulator", "Event", "EventBudgetExceeded",
    "Packet", "DATA_MTU", "ACK_SIZE", "ICMP_SIZE",
    "Link", "LinkStats",
    "Node", "Host", "Router", "RouterStats",
    "Network",
    "PingApp", "TcpFlow", "UdpFlow", "FlowReport",
    "TimeSeriesDB", "LinkTelemetryCollector", "PathTelemetryProbe",
    "FluidFlow", "max_min_fair", "max_min_fair_bounded", "total_throughput",
    "BackgroundEpoch", "apply_background", "install_background_schedule",
]
