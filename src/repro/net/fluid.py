"""Closed-form max-min fair throughput model (fluid approximation).

The packet-level emulator answers *how* flows behave over time; this
module answers *where they should converge*: given each flow's path and
the link capacities, progressive filling computes the max-min fair rate
allocation that competing AIMD flows approximate in steady state.

Two solver implementations share one saturation rule:

- a **vectorized** solver over a flow x link incidence matrix (numpy),
  the default for the wide flow sets dynamic-scenario sweeps produce;
- the original **scalar** dict-based solver, kept as a fallback and as
  the cross-check oracle the property tests compare against.

Capacity keys are **directed** ``(a, b)`` node pairs.  Lookup tries the
exact direction first and falls back to the reversed key, so legacy
undirected capacity maps (one entry per full-duplex link, shared by both
directions) still work; :func:`link_capacities` emits both directions of
every built link so opposite-direction flows no longer compete for one
shared entry.

Used as (a) a fast cross-check of the Fig. 12 experiment, (b) the
ablation benchmark comparing fluid vs. packet-level predictions, and
(c) the per-epoch solver behind the scenario suite's fluid backend.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Network

__all__ = [
    "FluidFlow",
    "max_min_fair",
    "max_min_fair_bounded",
    "max_min_fair_weighted",
    "total_throughput",
    "link_capacities",
]

#: A link is saturated when its remaining capacity falls below this
#: fraction of its original capacity.  Relative, not absolute: on a
#: large-capacity grid the float residue of ``remaining -= inc * users``
#: can exceed any fixed epsilon (ulp(1e17) is ~16), which under the old
#: absolute test left the bottleneck unsaturated and ended progressive
#: filling early with under-allocated rates.
_REL_EPS = 1e-9

#: Below this many flows the scalar solver wins (no matrix setup cost).
_VECTOR_MIN_FLOWS = 24


@dataclass(frozen=True)
class FluidFlow:
    """A flow abstracted to the ordered set of directed links it crosses."""

    name: str
    links: Tuple[Tuple[str, str], ...]

    @staticmethod
    def from_path(name: str, path: Sequence[str]) -> "FluidFlow":
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        return FluidFlow(name=name, links=tuple(zip(path[:-1], path[1:])))


def _canonicalize(
    flows: Sequence[FluidFlow],
    capacities: Mapping[Tuple[str, str], float],
) -> Tuple[Dict[str, List[Tuple[str, str]]], Dict[Tuple[str, str], float]]:
    """Resolve every flow's links onto capacity keys.

    Directed lookup first, reversed fallback second — so a directed
    capacity map gives each direction its own budget while an undirected
    one (legacy) shares a single entry between both directions.  Returns
    ``(flow name -> canonical keys, key -> capacity)`` restricted to the
    links some flow actually crosses.
    """
    flow_links: Dict[str, List[Tuple[str, str]]] = {}
    caps: Dict[Tuple[str, str], float] = {}
    for flow in flows:
        canon = []
        for link in flow.links:
            if link in capacities:
                key = link
            else:
                rev = (link[1], link[0])
                if rev not in capacities:
                    raise KeyError(f"no capacity declared for link {link}")
                key = rev
            canon.append(key)
            caps.setdefault(key, float(capacities[key]))
        if flow.name in flow_links:
            raise ValueError(f"duplicate flow name {flow.name!r}")
        flow_links[flow.name] = canon
    return flow_links, caps


def _fill_scalar(
    flow_links: Dict[str, List[Tuple[str, str]]],
    caps: Dict[Tuple[str, str], float],
) -> Dict[str, float]:
    """Dict-based progressive filling (the reference implementation).

    A flow crossing a link more than once (e.g. both directions of an
    undirected capacity entry) consumes capacity once per traversal —
    the same multiplicity rule the vectorized incidence matrix encodes,
    so the two implementations stay interchangeable.
    """
    remaining = dict(caps)
    sat_eps = {link: _REL_EPS * max(1.0, cap) for link, cap in caps.items()}
    flow_counts = {f: Counter(links) for f, links in flow_links.items()}
    # rates is inserted in flow_links (input) order, never set-iteration
    # order: downstream float sums over rates.values() must not depend
    # on PYTHONHASHSEED, or exact ties in assign_flows' lexicographic
    # scoring flip between processes and parallel sweeps lose their
    # byte-for-byte determinism
    rates: Dict[str, float] = {f: 0.0 for f in flow_links}
    active = set(flow_links)
    while active:
        # per-link traversal count over active flows; the tightest link
        # constrains the common increment
        usage: Dict[Tuple[str, str], int] = {}
        for f in active:
            for link, count in flow_counts[f].items():
                usage[link] = usage.get(link, 0) + count
        increment = min(
            remaining[link] / users for link, users in usage.items()
        )
        if increment < 0.0:
            increment = 0.0
        # apply increment, find newly saturated links
        for f in flow_links:
            if f in active:
                rates[f] += increment
        for link, users in usage.items():
            remaining[link] -= increment * users
        saturated = {l for l, r in remaining.items() if r <= sat_eps[l]}
        frozen = {
            f for f in active if any(l in saturated for l in flow_counts[f])
        }
        if not frozen:
            # the increment underflowed without saturating any link
            # (float residue on the tightest link); stop deterministically
            # rather than spinning on ever-smaller increments
            break
        active -= frozen
    return rates


def _fill_vector(
    flow_links: Dict[str, List[Tuple[str, str]]],
    caps: Dict[Tuple[str, str], float],
) -> Dict[str, float]:
    """Vectorized progressive filling over a link x flow incidence matrix.

    Each round computes every link's active user count with one
    matrix-vector product, takes the global tightest increment, applies
    it, and freezes all flows crossing newly saturated links — the same
    rule as :func:`_fill_scalar`, so both agree to float precision.
    """
    names = list(flow_links)
    keys = list(caps)
    key_index = {key: i for i, key in enumerate(keys)}
    incidence = np.zeros((len(keys), len(names)))
    for j, name in enumerate(names):
        for key in flow_links[name]:
            incidence[key_index[key], j] += 1.0
    cap = np.array([caps[key] for key in keys])
    remaining = cap.copy()
    sat_eps = _REL_EPS * np.maximum(cap, 1.0)
    rates = np.zeros(len(names))
    active = np.ones(len(names), dtype=bool)
    # every round freezes at least one flow or breaks, so <= n_flows rounds
    for _ in range(len(names)):
        users = incidence @ active
        used = users > 0.0
        if not used.any():
            break
        increment = float(np.min(remaining[used] / users[used]))
        if increment < 0.0:
            increment = 0.0
        rates[active] += increment
        remaining[used] -= increment * users[used]
        saturated = remaining <= sat_eps
        frozen = active & (incidence[saturated].sum(axis=0) > 0.0)
        if not frozen.any():
            break  # increment underflow: stop deterministically
        active &= ~frozen
        if not active.any():
            break
    return {name: float(rates[j]) for j, name in enumerate(names)}


def max_min_fair(
    flows: Sequence[FluidFlow],
    capacities: Mapping[Tuple[str, str], float],
    method: str = "auto",
) -> Dict[str, float]:
    """Progressive-filling max-min fair allocation.

    All flows grow at the same rate until some link saturates; flows
    crossing saturated links freeze, remaining capacity is recomputed,
    and the process repeats.  Raises ``KeyError`` if a flow crosses a
    link not present in ``capacities`` (directed lookup with reversed
    fallback).

    ``method`` selects the implementation: ``"vector"`` (numpy incidence
    matrix), ``"scalar"`` (reference dicts), or ``"auto"`` (vectorized
    from :data:`_VECTOR_MIN_FLOWS` flows up, scalar below, where each is
    fastest).  Both produce identical allocations to ~1e-9.
    """
    if method not in ("auto", "vector", "scalar"):
        raise ValueError(
            f"method must be 'auto', 'vector' or 'scalar', got {method!r}"
        )
    flow_links, caps = _canonicalize(flows, capacities)
    if not flow_links:
        return {}
    if method == "scalar" or (
        method == "auto" and len(flow_links) < _VECTOR_MIN_FLOWS
    ):
        return _fill_scalar(flow_links, caps)
    return _fill_vector(flow_links, caps)


def max_min_fair_bounded(
    flow_paths: Mapping[str, Sequence[str]],
    capacities: Mapping[Tuple[str, str], float],
    bounds: Mapping[str, float],
) -> Dict[str, float]:
    """Max-min fair allocation with per-flow rate ceilings.

    Water-filling with bounds: flows whose fair share exceeds their
    ceiling (CBR UDP senders) are pinned at the ceiling, their usage is
    subtracted from link capacities, and the unbounded flows re-share
    the remainder — so elastic flows soak up what rigid ones leave,
    matching what AIMD does at packet level.  ``flow_paths`` maps flow
    name to its node path; converges in at most ``len(bounds)`` rounds.
    """
    rates: Dict[str, float] = {}
    pending = {name: tuple(path) for name, path in flow_paths.items()}
    remaining = dict(capacities)
    while pending:
        fair = max_min_fair(
            [FluidFlow.from_path(n, p) for n, p in pending.items()], remaining
        )
        capped = {
            name for name, rate in fair.items()
            if name in bounds and rate > bounds[name]
        }
        if not capped:
            rates.update(fair)
            break
        for name in sorted(capped):
            rate = bounds[name]
            rates[name] = rate
            path = pending[name]
            for hop in zip(path[:-1], path[1:]):
                # directed lookup, reversed fallback — the same key
                # resolution max_min_fair applies
                key = hop if hop in remaining else (hop[1], hop[0])
                remaining[key] = max(0.0, remaining[key] - rate)
            del pending[name]
    return rates


def _fill_vector_weighted(
    flow_links: Dict[str, List[Tuple[str, str]]],
    caps: Dict[Tuple[str, str], float],
    weights: Dict[str, float],
) -> Dict[str, float]:
    """Weighted progressive filling: flow ``f`` grows at ``weights[f]``
    times the common fill level, so a flow-class aggregate standing in
    for ``w`` identical flows claims exactly the share those ``w`` flows
    would have claimed individually.  With all weights 1 this reduces to
    :func:`_fill_vector` (the property tests pin integer-weight
    equivalence against duplicated unweighted flows).
    """
    names = list(flow_links)
    keys = list(caps)
    key_index = {key: i for i, key in enumerate(keys)}
    incidence = np.zeros((len(keys), len(names)))
    for j, name in enumerate(names):
        for key in flow_links[name]:
            incidence[key_index[key], j] += 1.0
    weight = np.array([float(weights.get(name, 1.0)) for name in names])
    cap = np.array([caps[key] for key in keys])
    remaining = cap.copy()
    sat_eps = _REL_EPS * np.maximum(cap, 1.0)
    rates = np.zeros(len(names))
    active = weight > 0.0  # zero-weight flows never claim capacity
    for _ in range(len(names)):
        users = incidence @ (weight * active)
        used = users > 0.0
        if not used.any():
            break
        increment = float(np.min(remaining[used] / users[used]))
        if increment < 0.0:
            increment = 0.0
        rates[active] += increment * weight[active]
        remaining[used] -= increment * users[used]
        saturated = remaining <= sat_eps
        frozen = active & (incidence[saturated].sum(axis=0) > 0.0)
        if not frozen.any():
            break  # increment underflow: stop deterministically
        active &= ~frozen
        if not active.any():
            break
    return {name: float(rates[j]) for j, name in enumerate(names)}


def max_min_fair_weighted(
    flow_paths: Mapping[str, Sequence[str]],
    capacities: Mapping[Tuple[str, str], float],
    bounds: Mapping[str, float],
    weights: Mapping[str, float],
) -> Dict[str, float]:
    """Weighted max-min fair allocation with per-flow rate ceilings.

    The solver behind the hybrid backend's *aggregate-mice* mode: each
    entry in ``flow_paths`` is either a real (foreground) flow with
    weight 1, or a flow-class aggregate whose ``weights`` entry is the
    time-averaged number of member flows concurrently active — the class
    then claims ``weight`` fair shares per filling round, exactly what
    its members would have claimed as individual flows on the same path.
    ``bounds`` caps rigid aggregates (e.g. the summed offered load of
    CBR members) by water-filling, the same pin-and-reshare loop as
    :func:`max_min_fair_bounded`: capped entries are pinned at their
    ceiling, their usage leaves the link budgets, and the elastic rest
    re-share the remainder.

    Weights absent from ``weights`` default to 1.0; zero-weight entries
    are reported at 0.0 and never claim capacity.  Returned rates are
    per *entry* (an aggregate's rate is the whole class's Mbps).
    """
    rates: Dict[str, float] = {}
    pending = {name: tuple(path) for name, path in flow_paths.items()}
    remaining = dict(capacities)
    while pending:
        flow_links, caps = _canonicalize(
            [FluidFlow.from_path(n, p) for n, p in pending.items()],
            remaining,
        )
        fair = _fill_vector_weighted(
            flow_links, caps, {n: weights.get(n, 1.0) for n in pending}
        )
        capped = {
            name for name, rate in fair.items()
            if name in bounds and rate > bounds[name]
        }
        if not capped:
            rates.update(fair)
            break
        for name in sorted(capped):
            rate = bounds[name]
            rates[name] = rate
            path = pending[name]
            for hop in zip(path[:-1], path[1:]):
                # directed lookup, reversed fallback — the same key
                # resolution max_min_fair applies
                key = hop if hop in remaining else (hop[1], hop[0])
                remaining[key] = max(0.0, remaining[key] - rate)
            del pending[name]
    return rates


def total_throughput(rates: Mapping[str, float]) -> float:
    return float(sum(rates.values()))


def link_capacities(network: "Network") -> Dict[Tuple[str, str], float]:
    """Directed per-link capacities of a built :class:`Network`.

    Both directions of every full-duplex link are emitted, each with the
    link's full rate, so opposite-direction flows draw on independent
    budgets (the physical links are full duplex; the old single
    ``tuple(sorted(key))`` entry wrongly made them compete).  This is
    the bridge the scenario runner's fluid backend uses to evaluate a
    declared topology without running packets through it.
    """
    caps: Dict[Tuple[str, str], float] = {}
    for key, link in network.links.items():
        a, b = sorted(key)
        caps[(a, b)] = link.rate_mbps
        caps[(b, a)] = link.rate_mbps
    return caps
