"""Closed-form max-min fair throughput model (fluid approximation).

The packet-level emulator answers *how* flows behave over time; this
module answers *where they should converge*: given each flow's path and
the link capacities, progressive filling computes the max-min fair rate
allocation that competing AIMD flows approximate in steady state.

Used as (a) a fast cross-check of the Fig. 12 experiment, and (b) the
ablation benchmark comparing fluid vs. packet-level predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .topology import Network

__all__ = ["FluidFlow", "max_min_fair", "total_throughput", "link_capacities"]


@dataclass(frozen=True)
class FluidFlow:
    """A flow abstracted to the ordered set of directed links it crosses."""

    name: str
    links: Tuple[Tuple[str, str], ...]

    @staticmethod
    def from_path(name: str, path: Sequence[str]) -> "FluidFlow":
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        return FluidFlow(
            name=name, links=tuple(zip(path[:-1], path[1:]))
        )


def max_min_fair(
    flows: Sequence[FluidFlow],
    capacities: Mapping[Tuple[str, str], float],
) -> Dict[str, float]:
    """Progressive-filling max-min fair allocation.

    All flows grow at the same rate until some link saturates; flows
    crossing saturated links freeze, remaining capacity is recomputed, and
    the process repeats.  Raises ``KeyError`` if a flow crosses a link not
    present in ``capacities`` (direction-insensitive lookup).
    """

    def cap(link: Tuple[str, str]) -> Tuple[Tuple[str, str], float]:
        if link in capacities:
            return link, float(capacities[link])
        rev = (link[1], link[0])
        if rev in capacities:
            return rev, float(capacities[rev])
        raise KeyError(f"no capacity declared for link {link}")

    # normalize every flow's links onto canonical capacity keys
    flow_links: Dict[str, List[Tuple[str, str]]] = {}
    remaining: Dict[Tuple[str, str], float] = {}
    for flow in flows:
        canon = []
        for link in flow.links:
            key, c = cap(link)
            canon.append(key)
            remaining.setdefault(key, c)
        if flow.name in flow_links:
            raise ValueError(f"duplicate flow name {flow.name!r}")
        flow_links[flow.name] = canon

    rates: Dict[str, float] = {}
    active = set(flow_links)
    while active:
        # tightest link constrains the common increment
        increment = min(
            remaining[link] / sum(1 for f in active if link in flow_links[f])
            for f in active
            for link in flow_links[f]
        )
        # apply increment, find newly saturated links
        for f in active:
            rates[f] = rates.get(f, 0.0) + increment
        for link in list(remaining):
            users = sum(1 for f in active if link in flow_links[f])
            if users:
                remaining[link] -= increment * users
        saturated = {l for l, r in remaining.items() if r <= 1e-12}
        frozen = {
            f for f in active if any(l in saturated for l in flow_links[f])
        }
        if not frozen:
            # no link saturated -> all remaining flows are unconstrained;
            # cannot happen with finite capacities, guard anyway
            break
        active -= frozen
    return rates


def total_throughput(rates: Mapping[str, float]) -> float:
    return float(sum(rates.values()))


def link_capacities(network: "Network") -> Dict[Tuple[str, str], float]:
    """Static per-link capacities of a built :class:`Network`.

    Keys are sorted endpoint-name pairs (one entry per full-duplex link,
    matching :func:`max_min_fair`'s direction-insensitive lookup).  This
    is the bridge the scenario runner's fluid backend uses to evaluate a
    declared topology without running packets through it.
    """
    return {
        tuple(sorted(key)): link.rate_mbps
        for key, link in network.links.items()
    }
