"""Deterministic discrete-event simulator core.

Events are totally ordered by ``(time, sequence)``; the sequence counter
breaks ties FIFO so runs are bit-reproducible regardless of callback
contents.  Everything in :mod:`repro.net` — link transmission, queueing,
application timers — is expressed as events on one :class:`Simulator`.

Scheduler
---------
The queue is a **two-tier calendar**: a *near* binary heap covering the
window ``[now, near_end)`` plus an unsorted *far* overflow bucket for
everything at or beyond ``near_end``.  Entries are plain
``(time, seq, event)`` tuples, so every heap comparison resolves in C on
the leading float (and on the integer sequence only for exact-time ties)
— the scale tier previously spent a third of its wall clock in a
Python-level ``Event.__lt__`` under ``heapq`` churn.  When the near heap
drains, the calendar *advances*: the earliest far entries are batch-
promoted (one linear partition + one ``heapify``, never per-event
``heappush``) into a fresh window.  Because far entries are only ever
promoted in ``(time, seq)``-sorted position, the processing order is
bit-identical to a single global heap — the tie-break contract is
structural, not incidental, and is pinned by a 100k-event equivalence
test against a reference heap in ``tests/net/test_sim_loop.py``.

The two tiers keep the *working set* small: packet-level events churn
microseconds ahead of ``now`` and never pay log-cost proportional to the
thousands of far-future flow starts, failure injections and background
epoch edges a scale-tier scenario schedules up front.

Scale hardening
---------------
Two features keep the loop honest under the scale-tier workloads the
hybrid backend drives through it:

- **budget enforcement** — :meth:`Simulator.run` never silently stops at
  ``max_events``: it raises :class:`EventBudgetExceeded` *before*
  processing an event beyond the budget (so a saturated scenario cannot
  report a partial-horizon result as final), or — when the caller opts
  into ``on_budget="truncate"`` — emits a loud :class:`RuntimeWarning`
  and sets :attr:`Simulator.truncated` so the caller can mark its own
  result as partial;
- **event coalescing** — wide simultaneous updates must cost one heap
  operation, not hundreds: the hybrid backend folds all of an epoch's
  link re-weightings into a single callback
  (:func:`repro.net.background.install_background_schedule`), and
  :meth:`Simulator.schedule_batch` offers the same collapse as a
  first-class primitive for callers holding a list of callbacks.
"""

from __future__ import annotations

import heapq
import itertools
import math
import warnings
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["Event", "EventBudgetExceeded", "Simulator"]


class EventBudgetExceeded(RuntimeError):
    """``max_events`` was spent with events still pending.

    Raised *before* the budget-breaking event is processed, so the
    simulator state is exactly "budget exhausted", never "budget plus
    whatever else happened to be popped".
    """

    def __init__(self, max_events: int, now: float, until: Optional[float]):
        self.max_events = max_events
        self.now = now
        self.until = until
        horizon = "the queue drained" if until is None else f"t={until:g}"
        super().__init__(
            f"simulation spent its budget of {max_events} events at "
            f"t={now:g} before reaching {horizon}; the workload is "
            "saturated or livelocked (raise max_events only if this "
            "scale is intended)"
        )


class Event:
    """A scheduled callback; cancel with :meth:`cancel`.

    Events never participate in queue ordering themselves — the
    scheduler orders ``(time, seq)`` tuple entries and carries the event
    as an opaque payload — so this is a plain slotted handle, not an
    ordered dataclass.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[[], None]
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time!r}, seq={self.seq}{state})"


#: One queue entry: ``(time, seq, event)``.  ``seq`` is unique, so tuple
#: comparison never reaches the (incomparable) event payload.
_Entry = Tuple[float, int, Event]


class Simulator:
    """Event loop with virtual time in seconds.

    ``near_window`` is the width (in virtual seconds) of the calendar's
    near window: events due within it sit in the sorted near heap,
    everything later waits unsorted in the far bucket until the window
    advances.  The default suits the packet workloads in this repo
    (microsecond event spacing under second-scale horizons); correctness
    never depends on it — any positive width yields the identical event
    order.
    """

    def __init__(self, near_window: float = 0.5) -> None:
        if near_window <= 0:
            raise ValueError(f"near_window must be positive, got {near_window}")
        self.now: float = 0.0
        self._near: List[_Entry] = []  # heap; all times < _near_end
        self._far: List[_Entry] = []  # unsorted; all times >= _near_end
        self._near_window = float(near_window)
        self._near_end: float = float(near_window)
        self._seq = itertools.count()
        self.events_processed: int = 0
        #: set by ``run(..., on_budget="truncate")`` when the budget ran
        #: out; callers must surface it (a truncated run is not a result)
        self.truncated: bool = False

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` seconds from now (>= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        event = Event(time, next(self._seq), callback)
        if time < self._near_end:
            heapq.heappush(self._near, (time, event.seq, event))
        else:
            self._far.append((time, event.seq, event))
        return event

    def schedule_batch(
        self, delay: float, callbacks: Sequence[Callable[[], None]]
    ) -> Event:
        """Coalesce ``callbacks`` into one event ``delay`` seconds from
        now; they run back-to-back, in order, at the same instant.

        One queue entry instead of ``len(callbacks)`` — the cheap way to
        apply a wide simultaneous update (e.g. re-weighting every link
        at a background-load epoch edge).  Cancelling the returned event
        cancels the whole batch.
        """
        callbacks = list(callbacks)

        def run_all() -> None:
            for callback in callbacks:
                callback()

        return self.schedule(delay, run_all)

    def _advance(self) -> bool:
        """Promote the earliest far entries into a fresh near window.

        Called only when the near heap is empty.  One linear partition
        of the far bucket plus one ``heapify`` — O(len(far)) — instead
        of a ``heappush`` per event; entries promoted together can never
        be reordered against entries left behind because the window
        boundary separates them strictly by time.  Returns False when
        the far bucket is empty too (the simulator is idle).
        """
        far = self._far
        if not far:
            return False
        lo = min(entry[0] for entry in far)
        end = lo + self._near_window
        if end <= lo:  # float underflow at a huge timestamp
            end = math.nextafter(lo, math.inf)
        near: List[_Entry] = []
        keep: List[_Entry] = []
        for entry in far:
            (near if entry[0] < end else keep).append(entry)
        heapq.heapify(near)
        self._near = near
        self._far = keep
        self._near_end = end
        return True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        near = self._near
        while True:
            while near and near[0][2].cancelled:
                heapq.heappop(near)
            if near:
                return near[0][0]
            if not self._advance():
                return None
            near = self._near

    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued (both tiers)."""
        return sum(
            1
            for tier in (self._near, self._far)
            for entry in tier
            if not entry[2].cancelled
        )

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        near = self._near
        while True:
            while near:
                time, _seq, event = heapq.heappop(near)
                if event.cancelled:
                    continue
                self.now = time
                self.events_processed += 1
                event.callback()
                return True
            if not self._advance():
                return False
            near = self._near

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
        on_budget: str = "raise",
    ) -> None:
        """Drain events, optionally stopping once virtual time passes
        ``until``.

        ``max_events`` bounds the number of events processed by *this
        call*.  Hitting the bound with work still pending is never
        silent: the default raises :class:`EventBudgetExceeded` before
        the budget-breaking event runs, and ``on_budget="truncate"``
        instead warns loudly, sets :attr:`truncated`, and leaves the
        remaining events queued — the caller must then treat any metrics
        it collects as partial-horizon, not final.
        """
        if on_budget not in ("raise", "truncate"):
            raise ValueError(
                f"on_budget must be 'raise' or 'truncate', got {on_budget!r}"
            )
        processed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                if until is not None:
                    self.now = max(self.now, until)
                return
            if until is not None and next_time > until:
                self.now = until
                return
            if processed >= max_events:
                if on_budget == "truncate":
                    self.truncated = True
                    warnings.warn(
                        f"simulation truncated at t={self.now:g}: "
                        f"{max_events} events spent with work pending; "
                        "metrics collected from this run are partial",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    return
                raise EventBudgetExceeded(max_events, self.now, until)
            self.step()
            processed += 1
