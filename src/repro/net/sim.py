"""Deterministic discrete-event simulator core.

A single binary heap of ``(time, sequence, callback)`` entries; the
sequence counter breaks ties FIFO so runs are bit-reproducible regardless
of callback contents.  Everything in :mod:`repro.net` — link transmission,
queueing, application timers — is expressed as events on one
:class:`Simulator`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback; cancel with :meth:`cancel`."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event loop with virtual time in seconds."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self.events_processed: int = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` seconds from now (>= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Drain events, optionally stopping once virtual time passes ``until``.

        ``max_events`` is a runaway guard: exceeding it raises rather than
        hanging a test run forever.
        """
        processed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                if until is not None:
                    self.now = max(self.now, until)
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events before t={until}"
                )
