"""Deterministic discrete-event simulator core.

A single binary heap of ``(time, sequence, callback)`` entries; the
sequence counter breaks ties FIFO so runs are bit-reproducible regardless
of callback contents.  Everything in :mod:`repro.net` — link transmission,
queueing, application timers — is expressed as events on one
:class:`Simulator`.

Scale hardening
---------------
Two features keep the loop honest under the scale-tier workloads the
hybrid backend drives through it:

- **budget enforcement** — :meth:`Simulator.run` never silently stops at
  ``max_events``: it raises :class:`EventBudgetExceeded` *before*
  processing an event beyond the budget (so a saturated scenario cannot
  report a partial-horizon result as final), or — when the caller opts
  into ``on_budget="truncate"`` — emits a loud :class:`RuntimeWarning`
  and sets :attr:`Simulator.truncated` so the caller can mark its own
  result as partial;
- **event coalescing** — wide simultaneous updates must cost one heap
  operation, not hundreds: the hybrid backend folds all of an epoch's
  link re-weightings into a single callback
  (:func:`repro.net.background.install_background_schedule`), and
  :meth:`Simulator.schedule_batch` offers the same collapse as a
  first-class primitive for callers holding a list of callbacks.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

__all__ = ["Event", "EventBudgetExceeded", "Simulator"]


class EventBudgetExceeded(RuntimeError):
    """``max_events`` was spent with events still pending.

    Raised *before* the budget-breaking event is processed, so the
    simulator state is exactly "budget exhausted", never "budget plus
    whatever else happened to be popped".
    """

    def __init__(self, max_events: int, now: float, until: Optional[float]):
        self.max_events = max_events
        self.now = now
        self.until = until
        horizon = "the queue drained" if until is None else f"t={until:g}"
        super().__init__(
            f"simulation spent its budget of {max_events} events at "
            f"t={now:g} before reaching {horizon}; the workload is "
            "saturated or livelocked (raise max_events only if this "
            "scale is intended)"
        )


@dataclass(order=True)
class Event:
    """A scheduled callback; cancel with :meth:`cancel`."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event loop with virtual time in seconds."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self.events_processed: int = 0
        #: set by ``run(..., on_budget="truncate")`` when the budget ran
        #: out; callers must surface it (a truncated run is not a result)
        self.truncated: bool = False

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` seconds from now (>= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_batch(
        self, delay: float, callbacks: Sequence[Callable[[], None]]
    ) -> Event:
        """Coalesce ``callbacks`` into one event ``delay`` seconds from
        now; they run back-to-back, in order, at the same instant.

        One heap entry instead of ``len(callbacks)`` — the cheap way to
        apply a wide simultaneous update (e.g. re-weighting every link
        at a background-load epoch edge).  Cancelling the returned event
        cancels the whole batch.
        """
        callbacks = list(callbacks)

        def run_all() -> None:
            for callback in callbacks:
                callback()

        return self.schedule(delay, run_all)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pending_events(self) -> int:
        """Live (non-cancelled) events still in the heap."""
        return sum(1 for event in self._heap if not event.cancelled)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
        on_budget: str = "raise",
    ) -> None:
        """Drain events, optionally stopping once virtual time passes
        ``until``.

        ``max_events`` bounds the number of events processed by *this
        call*.  Hitting the bound with work still pending is never
        silent: the default raises :class:`EventBudgetExceeded` before
        the budget-breaking event runs, and ``on_budget="truncate"``
        instead warns loudly, sets :attr:`truncated`, and leaves the
        remaining events queued — the caller must then treat any metrics
        it collects as partial-horizon, not final.
        """
        if on_budget not in ("raise", "truncate"):
            raise ValueError(
                f"on_budget must be 'raise' or 'truncate', got {on_budget!r}"
            )
        processed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                if until is not None:
                    self.now = max(self.now, until)
                return
            if until is not None and next_time > until:
                self.now = until
                return
            if processed >= max_events:
                if on_budget == "truncate":
                    self.truncated = True
                    warnings.warn(
                        f"simulation truncated at t={self.now:g}: "
                        f"{max_events} events spent with work pending; "
                        "metrics collected from this run are partial",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    return
                raise EventBudgetExceeded(max_events, self.now, until)
            self.step()
            processed += 1
