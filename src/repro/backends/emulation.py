"""Emulation bridge: compile a Scenario into an external-driver plan.

The paper evaluated its framework on a real programmable testbed; this
module is the adapter that closes the simulate-then-deploy loop.  An
:class:`EmulationBackend` does no simulation itself — it *compiles* the
prepared scenario into a :class:`CommandPlan` (hosts, links, per-flow
iperf/ping-style commands with explicit source-routed paths, failure
cues), hands the plan to an :class:`EmulationDriver`, and parses the
driver's raw iperf/ping-formatted text back into a
:class:`~repro.scenarios.result.ScenarioResult`.

The driver contract (see docs/BACKENDS.md) is deliberately narrow —
``run(plan) -> str`` — so a driver can be a Mininet harness, an SSH
fan-out to a FABRIC slice, or the in-process
:class:`MockEmulationDriver` shipped here, which computes deterministic
max-min-fair rates from the plan's own topology and formats them as
iperf/ping output.  The mock makes the whole adapter — compilation,
driver dispatch, output parsing, reconciliation — testable in tier-1
without a testbed, and doubles as the reference for what output real
drivers must produce.

Flow placement reuses the fluid backend's assignment
(:func:`repro.backends.fluid.assign_fluid` — the Controller's own
candidate rule), so an emulation run exercises the same paths the
simulation backends would pick.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.net.fluid import link_capacities, max_min_fair_bounded
from repro.scenarios.result import ScenarioResult

from .base import (
    BackendCapabilities,
    ExecutionBackend,
    RunContext,
    register_backend,
)
from .fluid import assign_fluid

__all__ = [
    "FlowCommand",
    "FailureCue",
    "CommandPlan",
    "EmulationDriver",
    "MockEmulationDriver",
    "EmulationBackend",
    "compile_plan",
    "parse_driver_output",
]

#: assumed UDP datagram payload, bytes (iperf's classic default).
_UDP_DATAGRAM_BYTES = 1470


@dataclass(frozen=True)
class FlowCommand:
    """One traffic source the driver must launch on ``src``."""

    flow_name: str
    src: str
    dst: str
    protocol: str  # "tcp" | "udp" | "icmp"
    start_at: float  # seconds after traffic start
    duration: float
    rate_mbps: Optional[float]
    #: full source-routed node path, src host .. dst host — the PolKA
    #: path the driver must pin (route header, static routes, ...).
    path: Tuple[str, ...]
    #: rendered reference invocation (iperf/ping style).
    command: str


@dataclass(frozen=True)
class FailureCue:
    """One link-state change the driver must apply at ``at`` seconds."""

    at: float
    action: str  # "fail" | "restore"
    a: str
    b: str
    command: str


@dataclass(frozen=True)
class CommandPlan:
    """Everything an external driver needs to replay one scenario."""

    scenario: str
    seed: int
    horizon: float
    warmup: float
    hosts: Tuple[str, ...]
    #: (a, b, rate_mbps, delay_ms) per physical link.
    links: Tuple[Tuple[str, str, float, float], ...]
    #: server commands to start first (one per receiving host/port).
    servers: Tuple[str, ...]
    flows: Tuple[FlowCommand, ...]
    probes: Tuple[FlowCommand, ...]
    failures: Tuple[FailureCue, ...]
    #: flows the planner could not route (no candidate tunnel).
    unplaced: int = 0
    failure_events: int = field(default=0)


class EmulationDriver(Protocol):
    """An external executor: runs a :class:`CommandPlan`, returns the
    concatenated raw iperf/ping-formatted output (driver contract in
    docs/BACKENDS.md)."""

    def run(self, plan: CommandPlan) -> str:
        """Execute the plan and return its raw text output."""
        ...


def compile_plan(context: RunContext) -> CommandPlan:
    """Compile the prepared run into an external-driver command plan."""
    assert context.network is not None
    network = context.network
    scenario = context.scenario
    capacities = link_capacities(network)
    router_paths, _migrations, unplaced = assign_fluid(context, capacities)

    links = tuple(
        sorted(
            (*sorted(key), float(link.rate_mbps), float(link.delay_ms))
            for key, link in network.links.items()
        )
    )
    flows: List[FlowCommand] = []
    probes: List[FlowCommand] = []
    server_hosts: List[str] = []
    for request in context.requests:
        router_path = router_paths.get(request.flow_name)
        if router_path is None:
            continue
        path = (request.src,) + tuple(router_path) + (request.dst,)
        if request.protocol == "icmp":
            count = max(1, int(min(request.duration, scenario.horizon)))
            command = f"ping -c {count} -i 1 {request.dst}"
            probes.append(
                FlowCommand(
                    flow_name=request.flow_name,
                    src=request.src,
                    dst=request.dst,
                    protocol="icmp",
                    start_at=request.start_at,
                    duration=request.duration,
                    rate_mbps=None,
                    path=path,
                    command=command,
                )
            )
            continue
        if request.dst not in server_hosts:
            server_hosts.append(request.dst)
        command = f"iperf -c {request.dst} -p 5001 -t {request.duration:g}"
        if request.protocol == "udp" and request.rate_mbps:
            command += f" -u -b {request.rate_mbps:g}M"
        flows.append(
            FlowCommand(
                flow_name=request.flow_name,
                src=request.src,
                dst=request.dst,
                protocol=request.protocol,
                start_at=request.start_at,
                duration=request.duration,
                rate_mbps=request.rate_mbps,
                path=path,
                command=command,
            )
        )
    servers = tuple(f"{host}: iperf -s -p 5001" for host in server_hosts)
    failures = tuple(
        FailureCue(
            at=event.at,
            action=event.action,
            a=event.a,
            b=event.b,
            command=(
                f"link {'down' if event.action == 'fail' else 'up'} "
                f"{event.a} {event.b} @ {event.at:g}s"
            ),
        )
        for event in context.failure_plan
    )
    return CommandPlan(
        scenario=scenario.name,
        seed=context.seed,
        horizon=scenario.horizon,
        warmup=scenario.warmup,
        hosts=tuple(sorted(network.hosts)),
        links=links,
        servers=servers,
        flows=tuple(flows),
        probes=tuple(probes),
        failures=failures,
        unplaced=unplaced,
        failure_events=len(context.failure_plan),
    )


# --------------------------------------------------------------- the mock


def _down_intervals(
    plan: CommandPlan,
) -> Dict[Tuple[str, str], List[Tuple[float, float]]]:
    """Per-link outage windows [fail, restore) from the failure cues."""
    down: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    open_at: Dict[Tuple[str, str], float] = {}
    for cue in sorted(plan.failures, key=lambda c: (c.at, c.a, c.b)):
        key = (cue.a, cue.b) if cue.a < cue.b else (cue.b, cue.a)
        if cue.action == "fail":
            open_at.setdefault(key, cue.at)
        elif key in open_at:
            down.setdefault(key, []).append((open_at.pop(key), cue.at))
    for key, start in open_at.items():
        down.setdefault(key, []).append((start, plan.horizon))
    return down


def _is_down(
    path: Tuple[str, ...],
    at: float,
    down: Dict[Tuple[str, str], List[Tuple[float, float]]],
) -> bool:
    for a, b in zip(path[:-1], path[1:]):
        key = (a, b) if a < b else (b, a)
        for start, end in down.get(key, ()):
            if start <= at < end:
                return True
    return False


class MockEmulationDriver:
    """Deterministic in-process stand-in for a real testbed driver.

    Computes each epoch's max-min fair rates
    (:func:`repro.net.fluid.max_min_fair_bounded`) from the plan's own
    topology and source-routed paths — no simulator, no wall clock, no
    randomness — then renders the numbers in the iperf/ping text format
    real drivers produce.  Flows crossing a failed link receive nothing
    for the outage window; UDP reports the equivalent datagram loss.
    """

    def run(self, plan: CommandPlan) -> str:
        capacities: Dict[Tuple[str, str], float] = {}
        delays: Dict[Tuple[str, str], float] = {}
        for a, b, rate_mbps, delay_ms in plan.links:
            capacities[(a, b)] = rate_mbps
            capacities[(b, a)] = rate_mbps
            delays[(a, b)] = delay_ms
            delays[(b, a)] = delay_ms
        down = _down_intervals(plan)
        horizon = plan.horizon

        spans = {
            f.flow_name: (
                min(f.start_at, horizon),
                min(f.start_at + f.duration, horizon),
            )
            for f in plan.flows
        }
        edges = {0.0, horizon}
        edges.update(t for span in spans.values() for t in span)
        edges.update(c.at for c in plan.failures if 0.0 < c.at < horizon)
        grid = sorted(edges)

        by_name = {f.flow_name: f for f in plan.flows}
        delivered = {name: 0.0 for name in spans}
        outage_s = {name: 0.0 for name in spans}
        for t0, t1 in zip(grid[:-1], grid[1:]):
            if t1 <= t0:
                continue
            active = [
                name
                for name, (s0, s1) in spans.items()
                if s0 < t1 and s1 > t0
            ]
            live = {
                name: by_name[name].path
                for name in active
                if not _is_down(by_name[name].path, t0, down)
            }
            for name in active:
                if name not in live:
                    outage_s[name] += t1 - t0
            bounds = {
                name: by_name[name].rate_mbps
                for name in live
                if by_name[name].protocol == "udp"
                and by_name[name].rate_mbps
            }
            rates = max_min_fair_bounded(live, capacities, bounds)
            for name, rate in rates.items():
                delivered[name] += rate * (t1 - t0)

        lines = [
            f"=== emulation scenario={plan.scenario} seed={plan.seed} "
            f"horizon={plan.horizon:g}s flows={len(plan.flows)} "
            f"probes={len(plan.probes)} ==="
        ]
        for cue in plan.failures:
            lines.append(f"EVENT {cue.command}")
        for flow in plan.flows:
            s0, s1 = spans[flow.flow_name]
            span = s1 - s0
            mbps = delivered[flow.flow_name] / span if span > 0 else 0.0
            mbytes = mbps * span / 8.0
            route = ">".join(flow.path)
            lines.append(
                f"--- flow {flow.flow_name} {flow.protocol} "
                f"{flow.src} > {flow.dst} via {route} ---"
            )
            if flow.protocol == "udp" and flow.rate_mbps:
                sent = max(
                    1,
                    int(
                        flow.rate_mbps * 1e6 * span
                        / (8 * _UDP_DATAGRAM_BYTES)
                    ),
                )
                lost = int(round(
                    sent * (outage_s[flow.flow_name] / span)
                )) if span > 0 else sent
                pct = 100.0 * lost / sent
                jitter = sum(
                    delays[(a, b)]
                    for a, b in zip(flow.path[:-1], flow.path[1:])
                ) * 0.01
                lines.append(
                    f"[  3]  0.0-{span:.1f} sec  {mbytes:.2f} MBytes  "
                    f"{mbps:.3f} Mbits/sec   {jitter:.3f} ms  "
                    f"{lost}/{sent} ({pct:.2f}%)"
                )
            else:
                lines.append(
                    f"[  3]  0.0-{span:.1f} sec  {mbytes:.2f} MBytes  "
                    f"{mbps:.3f} Mbits/sec"
                )
        for probe in plan.probes:
            s0 = min(probe.start_at, horizon)
            s1 = min(probe.start_at + probe.duration, horizon)
            span = s1 - s0
            sent = max(1, int(span))
            outage = 0.0
            for t0, t1 in zip(grid[:-1], grid[1:]):
                if t0 >= s1 or t1 <= s0:
                    continue
                if _is_down(probe.path, t0, down):
                    outage += min(t1, s1) - max(t0, s0)
            lost = int(round(sent * (outage / span))) if span > 0 else sent
            received = sent - lost
            loss_pct = int(round(100.0 * lost / sent))
            rtt = 2.0 * sum(
                delays[(a, b)]
                for a, b in zip(probe.path[:-1], probe.path[1:])
            )
            lines.append(
                f"--- probe {probe.flow_name} icmp "
                f"{probe.src} > {probe.dst} ---"
            )
            lines.append(
                f"{sent} packets transmitted, {received} received, "
                f"{loss_pct}% packet loss, time {int(span * 1000)}ms"
            )
            lines.append(
                f"rtt min/avg/max/mdev = "
                f"{rtt:.3f}/{rtt:.3f}/{rtt:.3f}/0.000 ms"
            )
        return "\n".join(lines) + "\n"


# ------------------------------------------------------------- the parser

_FLOW_HEADER = re.compile(r"^--- (flow|probe) (\S+) (\S+) ")
#: UDP server-side report: bw, jitter, lost/total (MININET-style iperf).
_UDP_REPORT = re.compile(
    r"([\d.]+)\s+Mbits/sec\s+([\d.]+)\s+ms\s+(\d+)/(\d+)"
)
_TCP_REPORT = re.compile(r"([\d.]+)\s+Mbits/sec")
_PING_LOSS = re.compile(
    r"(\d+) packets transmitted, (\d+) received, (\d+)% packet loss"
)
_PING_RTT = re.compile(
    r"rtt min/avg/max/mdev = ([\d.]+)/([\d.]+)/([\d.]+)/([\d.]+)"
)


def parse_driver_output(
    plan: CommandPlan, raw: str
) -> Tuple[Dict[str, float], List[float], int]:
    """Parse raw driver text into (per-flow Mbps, latency samples, drops).

    Reconciliation is strict: every flow and probe in the plan must have
    a report section in the output, otherwise the driver lost a flow and
    the run cannot be trusted — ``ValueError``, not a silent 0.
    """
    sections: Dict[str, List[str]] = {}
    current: Optional[str] = None
    for line in raw.splitlines():
        header = _FLOW_HEADER.match(line)
        if header:
            current = header.group(2)
            sections[current] = []
        elif current is not None:
            sections[current].append(line)

    per_flow: Dict[str, float] = {}
    latencies: List[float] = []
    drops = 0
    for flow in plan.flows:
        body = sections.get(flow.flow_name)
        if body is None:
            raise ValueError(
                f"driver output is missing flow {flow.flow_name!r}; "
                "the run cannot be reconciled"
            )
        text = "\n".join(body)
        udp = _UDP_REPORT.search(text)
        if udp:
            per_flow[flow.flow_name] = float(udp.group(1))
            drops += int(udp.group(3))
            continue
        tcp = _TCP_REPORT.search(text)
        if tcp is None:
            raise ValueError(
                f"no iperf bandwidth report for flow {flow.flow_name!r}"
            )
        per_flow[flow.flow_name] = float(tcp.group(1))
    for probe in plan.probes:
        body = sections.get(probe.flow_name)
        if body is None:
            raise ValueError(
                f"driver output is missing probe {probe.flow_name!r}; "
                "the run cannot be reconciled"
            )
        text = "\n".join(body)
        per_flow[probe.flow_name] = 0.0
        loss = _PING_LOSS.search(text)
        if loss:
            drops += int(loss.group(1)) - int(loss.group(2))
        rtt = _PING_RTT.search(text)
        if rtt:
            latencies.append(float(rtt.group(2)))
    return per_flow, latencies, drops


@register_backend
class EmulationBackend(ExecutionBackend):
    """Adapter from Scenario to an external emulation driver.

    Registered as ``emulation-mock`` with the in-process deterministic
    driver; a real testbed integration subclasses (or instantiates) this
    with its own :class:`EmulationDriver` and registers under its own
    name — compilation, parsing and reconciliation are shared.
    """

    name = "emulation-mock"

    def __init__(self, driver: Optional[EmulationDriver] = None) -> None:
        super().__init__()
        self.driver: EmulationDriver = (
            driver if driver is not None else MockEmulationDriver()
        )
        self.plan: Optional[CommandPlan] = None
        self.raw_output: Optional[str] = None

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        return BackendCapabilities(
            name=cls.name,
            description="external-driver emulation bridge with the "
            "deterministic in-process mock driver",
            external=True,
        )

    def execute(self) -> None:
        context = self._bound_context()
        self.plan = compile_plan(context)
        self.raw_output = self.driver.run(self.plan)

    def collect(self) -> ScenarioResult:
        context = self._bound_context()
        if self.plan is None or self.raw_output is None:
            raise RuntimeError("emulation backend: call execute() first")
        plan = self.plan
        per_flow, latencies, drops = parse_driver_output(
            plan, self.raw_output
        )
        placed = len(plan.flows) + len(plan.probes)
        return ScenarioResult(
            scenario=plan.scenario,
            backend=self.name,
            seed=plan.seed,
            horizon_s=plan.horizon,
            warmup_s=plan.warmup,
            tunnels=len(context.tunnels),
            offered=len(context.requests),
            placed=placed,
            rejected=plan.unplaced,
            per_flow_mbps=per_flow,
            total_throughput_mbps=float(sum(per_flow.values())),
            min_flow_mbps=float(min(per_flow.values())) if per_flow else 0.0,
            mean_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
            max_latency_ms=float(max(latencies)) if latencies else 0.0,
            drops=drops,
            migrations=0,
            reconfigurations=0,
            failure_events=plan.failure_events,
        )
