"""Pluggable execution backends (see docs/BACKENDS.md).

Importing this package registers the four in-tree backends — ``des``,
``fluid``, ``hybrid`` and ``emulation-mock``; the registry functions in
:mod:`repro.backends.base` load them lazily, so most callers just use
``get_backend(name)`` / ``backend_names()`` and never import this
package directly.
"""

from .base import (
    BackendCapabilities,
    ExecutionBackend,
    RunContext,
    backend_names,
    get_backend,
    is_registered,
    list_backends,
    register_backend,
)

# isort: off — import order IS registration order: the CLI's --backend
# choices and `repro backends list` present backends in this sequence.
from .des import DesBackend
from .fluid import FluidBackend
from .hybrid import HybridAggregateBackend, HybridBackend
from .emulation import (
    CommandPlan,
    EmulationBackend,
    EmulationDriver,
    FailureCue,
    FlowCommand,
    MockEmulationDriver,
    compile_plan,
    parse_driver_output,
)

# isort: on

__all__ = [
    "BackendCapabilities",
    "ExecutionBackend",
    "RunContext",
    "register_backend",
    "get_backend",
    "backend_names",
    "list_backends",
    "is_registered",
    "DesBackend",
    "FluidBackend",
    "HybridBackend",
    "HybridAggregateBackend",
    "EmulationBackend",
    "EmulationDriver",
    "MockEmulationDriver",
    "CommandPlan",
    "FlowCommand",
    "FailureCue",
    "compile_plan",
    "parse_driver_output",
]
