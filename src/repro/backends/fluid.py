"""``fluid`` backend: closed-form epoch-sliced max-min steady states.

The horizon is sliced into capacity epochs at every flow start/stop and
failure event, the joint flow->tunnel assignment is solved with the same
candidate rule the packet-level Controller uses
(:func:`repro.framework.controller.select_candidates` +
:func:`repro.hecate.objectives.assign_flows`), and each epoch's max-min
fair rates come from :func:`repro.net.fluid.max_min_fair` — the
steady state the packet level should approximate.

``solve_inputs`` and ``delivered_from`` are module functions because the
hybrid backend shares them for its background class; they take the
prepared :class:`~repro.backends.base.RunContext` so the numbers are
byte-identical to the pre-extraction ``ScenarioRunner._run_fluid``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.framework.controller import select_candidates
from repro.framework.scheduler import FlowRequest
from repro.hecate.objectives import assign_flows
from repro.net.fluid import link_capacities
from repro.net.qoe import FlowQoSSample, aggregate_qoe, predicted_mos
from repro.scenarios.hybrid import quantize_edges, solve_epochs
from repro.scenarios.result import ScenarioResult

from .base import (
    BackendCapabilities,
    ExecutionBackend,
    RunContext,
    register_backend,
)

__all__ = [
    "FluidBackend",
    "assign_fluid",
    "solve_inputs",
    "delivered_from",
    "fluid_qoe",
]


def _bottleneck_mbps(
    path: Tuple[str, ...],
    capacities: Dict[Tuple[str, str], float],
) -> float:
    """Min configured capacity along a router path (directed lookup
    with the reversed-key fallback max_min_fair uses)."""
    caps = [
        capacities.get((a, b), capacities.get((b, a), 0.0))
        for a, b in zip(path[:-1], path[1:])
    ]
    return min(caps) if caps else 0.0


def assign_fluid(
    context: RunContext,
    capacities: Dict[Tuple[str, str], float],
) -> Tuple[Dict[str, Tuple[str, ...]], int, int]:
    """Assign flows to tunnels per (ingress, egress) group, honouring
    the scenario objective: ``min_latency`` puts every flow on its
    group's lowest-delay tunnel (what Hecate recommends in DES when
    latency forecasts dominate); ``max_qoe`` scores each candidate
    with the flow's own app model (rate estimate = tunnel bottleneck
    shared across the group, latency = the path's propagation delay)
    and places every flow on its best-MOS tunnel; the
    bandwidth-flavoured objectives solve the joint throughput
    assignment.

    Returns (flow -> router path, migrations off the default tunnel,
    unplaceable-flow count)."""
    assert context.network is not None
    network = context.network
    by_name = {name: path for name, _, path in context.tunnels}
    objective = context.scenario.policy.objective
    groups: Dict[Tuple[str, str], List[FlowRequest]] = {}
    for request in context.requests:
        pair = (
            network.edge_router_of(request.src),
            network.edge_router_of(request.dst),
        )
        groups.setdefault(pair, []).append(request)
    paths: Dict[str, Tuple[str, ...]] = {}
    migrations = 0
    unplaced = 0
    for (ingress, egress), members in groups.items():
        # the Controller's own candidate rule, so fluid-vs-DES
        # differences come from modelling, never placement policy
        candidates = select_candidates(by_name, ingress, egress)
        if not candidates:
            unplaced += len(members)
            continue
        if objective == "min_latency":
            best = min(
                candidates,
                key=lambda n: network.path_delay_ms(list(by_name[n])),
            )
            for request in members:
                paths[request.flow_name] = by_name[best]
            migrations += len(members) if best != candidates[0] else 0
            continue
        if objective == "max_qoe":
            # per-flow independent choice: each app class ranks the
            # same candidates differently (VoIP by delay, video/bulk
            # by rate), which is the whole point of the objective
            share = float(len(members))
            for request in members:
                best = max(
                    candidates,
                    key=lambda n: (
                        predicted_mos(
                            request.app_class,
                            _bottleneck_mbps(by_name[n], capacities)
                            / share,
                            latency_ms=network.path_delay_ms(
                                list(by_name[n])
                            ),
                        ),
                        _bottleneck_mbps(by_name[n], capacities),
                    ),
                )
                paths[request.flow_name] = by_name[best]
                migrations += 1 if best != candidates[0] else 0
            continue
        current = {r.flow_name: candidates[0] for r in members}
        result = assign_flows(
            current=current,
            tunnel_paths={name: by_name[name] for name in candidates},
            capacities=capacities,
        )
        migrations += result.migrations
        for flow_name, tunnel_name in result.assignment.items():
            paths[flow_name] = by_name[tunnel_name]
    return paths, migrations, unplaced


def solve_inputs(
    context: RunContext,
    paths: Dict[str, Tuple[str, ...]],
    requests: Optional[Sequence[FlowRequest]] = None,
) -> Tuple[
    Dict[str, Tuple[float, float]],
    Dict[str, float],
    Set[str],
    Tuple[float, ...],
]:
    """The epoch solver's workload view, shared by the fluid and
    hybrid backends: per-flow horizon-clamped spans (placed flows
    only), CBR rate caps, the ICMP probe set, and phase fractions.
    ``requests`` restricts the view to a subset of the offered
    flows (aggregate-mice mode passes the foreground only; the
    background never exists per-flow there).

    ICMP probes send a packet per second — inelastic, negligible
    load; modelling them as elastic flows would credit them with
    the whole path capacity (DES reports them at 0 Mbps too).
    """
    if requests is None:
        requests = context.requests
    horizon = context.scenario.horizon
    spans = {
        r.flow_name: (
            min(r.start_at, horizon),
            min(r.start_at + r.duration, horizon),
        )
        for r in requests
        if r.flow_name in paths
    }
    rate_caps = {
        r.flow_name: r.rate_mbps
        for r in requests
        if r.protocol == "udp" and r.rate_mbps
    }
    probes = {r.flow_name for r in requests if r.protocol == "icmp"}
    phase_fracs = (
        tuple(p.at_frac for p in context.scenario.phases)
        if context.scenario.phases is not None
        else ()
    )
    return spans, rate_caps, probes, phase_fracs


def delivered_from(
    solves: Sequence,
    names: Set[str],
) -> Tuple[Dict[str, float], int]:
    """Mbps-seconds delivered per flow in ``names`` across all
    solved epochs, plus that class's (flow, epoch) outage count.

    ``names`` is a set, so the result dict is built in *sorted* order:
    downstream ``sum()``s over it must not depend on str-hash ordering
    (pre-extraction they did, which made ``total_throughput_mbps`` /
    ``background_mbps`` wobble in the last ulp with PYTHONHASHSEED)."""
    delivered: Dict[str, float] = {name: 0.0 for name in sorted(names)}
    outages = 0
    for solve in solves:
        outages += sum(1 for n in solve.blacked if n in names)
        for name, rate in solve.rates.items():
            if name in names:
                delivered[name] += rate * solve.overlaps[name]
    return delivered, outages


def fluid_qoe(
    context: RunContext,
    per_flow: Dict[str, float],
    paths: Dict[str, Tuple[str, ...]],
) -> Tuple[Dict[str, float], float, int]:
    """Per-class QoE from fluid rates and propagation delays.

    The fluid model has no queues, so each flow's sample is its epoch-
    average rate plus the path's propagation delay with zero jitter and
    loss — an *optimistic* bound relative to DES (documented agreement
    bounds live in tests/scenarios/test_qoe_scenarios.py and
    docs/QOE.md).
    """
    assert context.network is not None
    classes = {r.flow_name: r.app_class for r in context.requests}
    samples = [
        (
            classes.get(name, "generic"),
            FlowQoSSample(
                rate_mbps=rate,
                latency_ms=context.network.path_delay_ms(
                    list(paths[name])
                ),
            ),
        )
        for name, rate in per_flow.items()
        if name in paths
    ]
    return aggregate_qoe(samples)


@register_backend
class FluidBackend(ExecutionBackend):
    """Closed-form evaluation: epoch-sliced max-min steady states."""

    name = "fluid"

    def __init__(self) -> None:
        super().__init__()
        self._result: Optional[ScenarioResult] = None

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        return BackendCapabilities(
            name=cls.name,
            description="closed-form fluid model: epoch-sliced max-min "
            "fair steady states, no packet events",
            fluid_model=True,
        )

    def execute(self) -> None:
        context = self._bound_context()
        assert context.network is not None and self.scenario is not None
        scenario = self.scenario
        horizon = scenario.horizon
        capacities = link_capacities(context.network)
        paths, migrations, unplaced = assign_fluid(context, capacities)
        spans, rate_caps, probes, phase_fracs = solve_inputs(context, paths)

        boundaries = {0.0, horizon}
        boundaries.update(t for span in spans.values() for t in span)
        boundaries.update(
            e.at for e in context.failure_plan if 0.0 < e.at < horizon
        )
        # phase transitions are epoch edges even when a phase offers no
        # flows (the fluid model re-solves at every transition)
        boundaries.update(f * horizon for f in phase_fracs if 0.0 < f < 1.0)
        # exact flow edges while they fit the epoch budget; the coalesced
        # grid beyond it (scale-tier flow counts)
        edges = quantize_edges(
            boundaries,
            horizon,
            context.failure_plan,
            phase_fracs,
            scenario.classes,
        )
        solves = solve_epochs(
            spans,
            paths,
            capacities,
            rate_caps,
            probes,
            context.failure_plan,
            edges,
        )
        delivered, outages = delivered_from(solves, set(spans))

        per_flow = {
            name: delivered[name] / (span[1] - span[0])
            if span[1] > span[0] else 0.0
            for name, span in spans.items()
        }
        latencies = [
            context.network.path_delay_ms(list(paths[name]))
            for name in spans
        ]
        qoe_per_class, mean_qoe, qoe_flows = fluid_qoe(
            context, per_flow, paths
        )
        self._result = ScenarioResult(
            scenario=scenario.name,
            backend="fluid",
            seed=context.seed,
            horizon_s=horizon,
            warmup_s=0.0,
            tunnels=len(context.tunnels),
            offered=len(context.requests),
            placed=len(spans),
            rejected=unplaced,
            per_flow_mbps=per_flow,
            total_throughput_mbps=float(sum(delivered.values()) / horizon),
            min_flow_mbps=float(min(per_flow.values())) if per_flow else 0.0,
            mean_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
            max_latency_ms=float(max(latencies)) if latencies else 0.0,
            drops=outages,
            migrations=migrations,
            reconfigurations=0,
            failure_events=len(context.failure_plan),
            mean_qoe=mean_qoe,
            qoe_flows=qoe_flows,
            qoe_per_class=qoe_per_class,
        )

    def collect(self) -> ScenarioResult:
        if self._result is None:
            raise RuntimeError("fluid backend: call execute() first")
        return self._result
