"""``des`` backend: packet-level discrete-event emulation.

The full framework conversation — message bus, freeRtr config service,
telemetry agents, Hecate, scheduler, controller, dashboard — assembled
by the runner into ``context.sdn``, warmed for ``scenario.warmup``
seconds, offered every flow through the Dashboard exactly like a user
would, with the failure plan scheduled on the simulator.

The metric-collection helpers live here as module functions over the
:class:`~repro.backends.base.RunContext` so the runner's staged API
(``setup()`` / drive ``runner.sdn`` yourself / ``collect()``) shares
byte-identical accounting with the backend-driven path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.net.apps import PingApp, TcpFlow, UdpFlow
from repro.net.qoe import FlowQoSSample, aggregate_qoe
from repro.scenarios.result import ScenarioResult

from .base import (
    BackendCapabilities,
    ExecutionBackend,
    RunContext,
    register_backend,
)

__all__ = [
    "DesBackend",
    "collect_des",
    "des_flow_metrics",
    "des_drop_count",
    "des_qoe_samples",
]


def des_qoe_samples(
    context: RunContext,
) -> List[Tuple[str, FlowQoSSample]]:
    """Per-flow ``(app_class, QoS sample)`` pairs from the app objects.

    The measurements come from what each app actually experienced —
    TCP's smoothed RTT and retransmit ratio, UDP's RFC 3550 jitter and
    one-way transit, loss counters — not from path telemetry, so the
    QoE aggregate is grounded in per-flow reality.  Generic flows are
    included here (``aggregate_qoe`` filters them) so callers can reuse
    the pairs for other per-class accounting.
    """
    assert context.network is not None and context.sdn is not None
    now = context.network.sim.now
    classes = {r.flow_name: r.app_class for r in context.requests}
    samples: List[Tuple[str, FlowQoSSample]] = []
    for name, record in context.sdn.controller.flows.items():
        app = record.app
        app_class = classes.get(name, "generic")
        if isinstance(app, TcpFlow):
            end = now if app.stop_at is None else min(app.stop_at, now)
            sent = app.bytes_acked // app.MSS + app.retransmits
            samples.append(
                (
                    app_class,
                    FlowQoSSample(
                        rate_mbps=app.goodput_mbps(t1=end),
                        # one-way ~ srtt/2 (the model wants mouth-to-ear)
                        latency_ms=(app.srtt or 0.0) * 1e3 / 2.0,
                        jitter_ms=app.rttvar * 1e3 / 2.0,
                        loss_rate=app.retransmits / sent if sent else 0.0,
                    ),
                )
            )
        elif isinstance(app, UdpFlow):
            samples.append(
                (
                    app_class,
                    FlowQoSSample(
                        rate_mbps=app.delivered_mbps(),
                        latency_ms=app.mean_latency_ms,
                        jitter_ms=app.jitter_ms,
                        loss_rate=app.loss_rate,
                    ),
                )
            )
    return samples


def des_flow_metrics(
    context: RunContext,
) -> Tuple[Dict[str, float], List[float]]:
    """Per-flow Mbps and latency samples from the packet domain."""
    assert context.network is not None and context.sdn is not None
    now = context.network.sim.now
    per_flow: Dict[str, float] = {}
    latencies: List[float] = []
    for name, record in context.sdn.controller.flows.items():
        app = record.app
        if isinstance(app, TcpFlow):
            # a flow whose duration outlives the horizon must be
            # averaged over simulated time only, not its full window
            end = now if app.stop_at is None else min(app.stop_at, now)
            per_flow[name] = app.goodput_mbps(t1=end)
            if app.srtt is not None:
                latencies.append(app.srtt * 1e3)
        elif isinstance(app, UdpFlow):
            per_flow[name] = app.delivered_mbps()
        elif isinstance(app, PingApp):
            per_flow[name] = 0.0
            _, rtts = app.rtt_series()
            if rtts.size:
                latencies.append(float(rtts.mean()))
    return per_flow, latencies


def des_drop_count(context: RunContext) -> int:
    """Tail-dropped packets across every link, both directions."""
    assert context.network is not None
    drops = 0
    for link in context.network.links.values():
        node_a, node_b = link.endpoints()
        drops += link.stats_from(node_a).dropped_packets
        drops += link.stats_from(node_b).dropped_packets
    return drops


def collect_des(context: RunContext) -> ScenarioResult:
    """Uniform metrics from a DES run (the runner's ``collect()``)."""
    assert context.network is not None and context.sdn is not None
    scenario = context.scenario
    per_flow, latencies = des_flow_metrics(context)
    drops = des_drop_count(context)
    migrations = sum(
        len(record.migrations)
        for record in context.sdn.controller.flows.values()
    )
    reconfigurations = sum(
        policy.reconfigurations
        for policy in context.sdn.router_config.policies.values()
    )
    qoe_per_class, mean_qoe, qoe_flows = aggregate_qoe(
        des_qoe_samples(context)
    )
    return ScenarioResult(
        scenario=scenario.name,
        backend="des",
        seed=context.seed,
        horizon_s=scenario.horizon,
        warmup_s=scenario.warmup,
        tunnels=len(context.tunnels),
        offered=len(context.requests),
        placed=context.placed,
        rejected=context.rejected,
        per_flow_mbps=per_flow,
        total_throughput_mbps=float(sum(per_flow.values())),
        min_flow_mbps=float(min(per_flow.values())) if per_flow else 0.0,
        mean_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
        max_latency_ms=float(max(latencies)) if latencies else 0.0,
        drops=drops,
        migrations=migrations,
        reconfigurations=reconfigurations,
        failure_events=len(context.failure_plan),
        sim_events=context.network.sim.events_processed,
        telemetry_samples=context.sdn.telemetry.db.total_samples(),
        mean_qoe=mean_qoe,
        qoe_flows=qoe_flows,
        qoe_per_class=qoe_per_class,
    )


@register_backend
class DesBackend(ExecutionBackend):
    """Packet-level discrete-event emulation through the full framework."""

    name = "des"

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        return BackendCapabilities(
            name=cls.name,
            description="packet-level discrete-event emulation through "
            "the full self-driving framework stack",
            packet_level=True,
            reports_sim_events=True,
            reports_telemetry=True,
        )

    def execute(self) -> None:
        context = self._bound_context()
        assert context.sdn is not None and self.scenario is not None
        scenario = self.scenario
        context.sdn.run(until=scenario.warmup)
        context.inject_traffic()
        context.arm_failures()
        context.sdn.run(until=scenario.warmup + scenario.horizon)

    def collect(self) -> ScenarioResult:
        return collect_des(self._bound_context())
