"""``hybrid`` backend: packet-level foreground, fluid background.

The workload is split by flow class
(:func:`repro.scenarios.hybrid.split_requests`): foreground flows run
packet-level through the full framework exactly as in ``des``, while
background classes are solved as per-epoch fluid allocations and applied
to the links as background-utilization terms
(:mod:`repro.net.background`) that telemetry reports and packet
serialization honours — orders of magnitude more flows for a fraction of
the event count.

Two implementations share the registry name ``hybrid``:
:class:`HybridBackend` keeps every background flow individually in the
fluid solve, while :class:`HybridAggregateBackend` collapses the
background into :class:`~repro.scenarios.hybrid.BackgroundAggregate`
flow classes (cost scales with tunnels x epochs instead of users x
epochs — the scale tier's 100k–1M flows).  ``for_scenario`` picks the
sibling from ``scenario.classes.aggregate_background``, so callers only
ever name ``hybrid``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.net.background import install_background_schedule
from repro.net.fluid import link_capacities
from repro.net.qoe import FlowQoSSample, aggregate_qoe
from repro.scenarios.hybrid import (
    aggregate_background,
    aggregate_background_epochs,
    assign_class_paths,
    background_epochs,
    epoch_edges,
    solve_epochs,
    solve_epochs_aggregate,
)
from repro.scenarios.result import ScenarioResult

from .base import (
    BackendCapabilities,
    ExecutionBackend,
    RunContext,
    register_backend,
)
from .des import des_drop_count, des_flow_metrics, des_qoe_samples
from .fluid import delivered_from, solve_inputs

__all__ = ["HybridBackend", "HybridAggregateBackend"]

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.spec import Scenario


@register_backend
class HybridBackend(ExecutionBackend):
    """Foreground packet-level, background as per-epoch fluid load.

    The background class is solved *before* the packet run (it is a
    pure function of the workload and the failure plan), installed
    on the simulator as one coalesced load-update event per epoch
    edge, and the foreground then competes for what the mice left:
    packet serialization slows on loaded links and telemetry reports
    the aggregate, so Hecate's placement sees the background without
    ever paying packet-level cost for it.
    """

    name = "hybrid"

    def __init__(self) -> None:
        super().__init__()
        self._result: Optional[ScenarioResult] = None

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        return BackendCapabilities(
            name=cls.name,
            description="flow-class hybrid: packet-level foreground over "
            "per-epoch fluid background load",
            packet_level=True,
            fluid_model=True,
            uses_flow_classes=True,
            reports_sim_events=True,
            reports_telemetry=True,
        )

    @classmethod
    def for_scenario(cls, scenario: "Scenario") -> ExecutionBackend:
        if scenario.classes.aggregate_background:
            return HybridAggregateBackend()
        return cls()

    def execute(self) -> None:
        context = self._bound_context()
        assert context.network is not None and context.sdn is not None
        assert self.scenario is not None
        scenario = self.scenario
        horizon = scenario.horizon
        capacities = link_capacities(context.network)

        bg_paths, bg_unplaced = assign_class_paths(
            context.network, context.tunnels, context.background, spread=True
        )
        # foreground flows join the solve as claimants on their default
        # tunnels (an estimate of initial placement) so background rates
        # never hand the mice capacity the elephants are using; their
        # real throughput comes from the packet domain below
        fg_paths, _ = assign_class_paths(
            context.network, context.tunnels, context.foreground, spread=False
        )
        paths = {**fg_paths, **bg_paths}
        spans, rate_caps, probes, phase_fracs = solve_inputs(context, paths)
        edges = epoch_edges(
            horizon, context.failure_plan, phase_fracs, scenario.classes
        )
        solves = solve_epochs(
            spans,
            paths,
            capacities,
            rate_caps,
            probes,
            context.failure_plan,
            edges,
        )
        bg_names = {r.flow_name for r in context.background}
        epochs = background_epochs(solves, bg_names, paths)

        # ----- packet domain: warmup, foreground, failures, background
        context.sdn.run(until=scenario.warmup)
        context.inject_traffic()
        context.arm_failures()
        install_background_schedule(
            context.network, epochs, offset=context.network.sim.now
        )
        context.sdn.run(until=scenario.warmup + scenario.horizon)

        # ----- merge the two domains into one result
        per_flow, latencies = des_flow_metrics(context)
        bg_delivered, bg_outages = delivered_from(
            solves, {name for name in spans if name in bg_names}
        )
        for name, total in bg_delivered.items():
            start, end = spans[name]
            per_flow[name] = total / (end - start) if end > start else 0.0
        latencies.extend(
            context.network.path_delay_ms(list(paths[name]))
            for name in bg_delivered
        )
        migrations = sum(
            len(record.migrations)
            for record in context.sdn.controller.flows.values()
        )
        reconfigurations = sum(
            policy.reconfigurations
            for policy in context.sdn.router_config.policies.values()
        )
        # QoE: foreground flows score from what their apps measured
        # (same extraction as the des backend), background flows from
        # their fluid rate plus propagation delay (zero jitter/loss —
        # the optimistic fluid bound)
        classes = {r.flow_name: r.app_class for r in context.requests}
        qoe_samples = des_qoe_samples(context)
        qoe_samples.extend(
            (
                classes.get(name, "generic"),
                FlowQoSSample(
                    rate_mbps=per_flow[name],
                    latency_ms=context.network.path_delay_ms(
                        list(paths[name])
                    ),
                ),
            )
            for name in bg_delivered
        )
        qoe_per_class, mean_qoe, qoe_flows = aggregate_qoe(qoe_samples)
        self._result = ScenarioResult(
            scenario=scenario.name,
            backend="hybrid",
            seed=context.seed,
            horizon_s=horizon,
            warmup_s=scenario.warmup,
            tunnels=len(context.tunnels),
            offered=len(context.requests),
            placed=context.placed + len(bg_delivered),
            rejected=context.rejected + bg_unplaced,
            per_flow_mbps=per_flow,
            total_throughput_mbps=float(sum(per_flow.values())),
            min_flow_mbps=float(min(per_flow.values())) if per_flow else 0.0,
            mean_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
            max_latency_ms=float(max(latencies)) if latencies else 0.0,
            drops=des_drop_count(context) + bg_outages,
            migrations=migrations,
            reconfigurations=reconfigurations,
            failure_events=len(context.failure_plan),
            sim_events=context.network.sim.events_processed,
            telemetry_samples=context.sdn.telemetry.db.total_samples(),
            background_flows=len(bg_delivered),
            background_mbps=float(sum(bg_delivered.values()) / horizon),
            mean_qoe=mean_qoe,
            qoe_flows=qoe_flows,
            qoe_per_class=qoe_per_class,
        )

    def collect(self) -> ScenarioResult:
        if self._result is None:
            raise RuntimeError("hybrid backend: call execute() first")
        return self._result


class HybridAggregateBackend(HybridBackend):
    """Hybrid run with the background collapsed into flow classes.

    Same shape as :class:`HybridBackend`, but no background flow ever
    exists individually: placement, the per-epoch fluid solve and
    the delivered accounting all operate on
    :class:`~repro.scenarios.hybrid.BackgroundAggregate` columns —
    cost scales with (tunnels x epochs) instead of (users x
    epochs), which is what lets the scale tier reach 100k–1M
    offered flows.  ``per_flow_mbps`` covers the foreground only;
    the background is reported as ``background_flows`` /
    ``background_classes`` / ``background_mbps``, and latency means
    weight each class by its member count so the distribution
    matches what per-flow mode would report.

    Not separately registered: ``get_backend("hybrid").for_scenario``
    returns it when ``scenario.classes.aggregate_background`` is set.
    """

    def execute(self) -> None:
        context = self._bound_context()
        assert context.network is not None and context.sdn is not None
        assert self.scenario is not None
        scenario = self.scenario
        horizon = scenario.horizon
        capacities = link_capacities(context.network)

        aggregate = aggregate_background(
            context.network, context.tunnels, context.background, horizon
        )
        fg_paths, _ = assign_class_paths(
            context.network, context.tunnels, context.foreground, spread=False
        )
        spans, rate_caps, probes, phase_fracs = solve_inputs(
            context, fg_paths, requests=context.foreground
        )
        edges = epoch_edges(
            horizon, context.failure_plan, phase_fracs, scenario.classes
        )
        solves = solve_epochs_aggregate(
            spans,
            fg_paths,
            capacities,
            rate_caps,
            probes,
            context.failure_plan,
            edges,
            aggregate,
        )
        epochs = aggregate_background_epochs(solves, aggregate)

        # ----- packet domain: warmup, foreground, failures, background
        context.sdn.run(until=scenario.warmup)
        context.inject_traffic()
        context.arm_failures()
        install_background_schedule(
            context.network, epochs, offset=context.network.sim.now
        )
        context.sdn.run(until=scenario.warmup + scenario.horizon)

        # ----- merge: foreground per-flow, background per-class
        per_flow, latencies = des_flow_metrics(context)
        n_classes = len(aggregate.class_paths)
        delivered_c = np.zeros(n_classes)
        bg_outages = 0
        for solve in solves:
            delivered_c += solve.class_rates * (solve.t1 - solve.t0)
            bg_outages += solve.blacked_members
        member_seconds = aggregate.member_seconds()
        # a class's average per-mouse rate: delivered Mbps-seconds over
        # summed member-active seconds — enters min_flow_mbps so a
        # starved class is as visible as a starved flow
        class_avg_mbps = [
            float(delivered_c[k] / member_seconds[k])
            for k in range(n_classes)
            if member_seconds[k] > 0.0
        ]
        background_mbps = float(delivered_c.sum() / horizon)
        flow_rates = list(per_flow.values()) + class_avg_mbps
        members_per_class = np.bincount(
            aggregate.class_of, minlength=n_classes
        )
        # total_throughput keeps the per-flow hybrid semantic (sum of
        # span-averaged per-flow rates): each class contributes its
        # average member rate times its positive-span member count, so
        # the two hybrid modes report comparable totals.  The horizon-
        # averaged background total is background_mbps above.
        spanned_members = np.bincount(
            aggregate.class_of,
            weights=(aggregate.ends > aggregate.starts),
            minlength=n_classes,
        )
        bg_span_avg_total = float(
            sum(
                spanned_members[k] * delivered_c[k] / member_seconds[k]
                for k in range(n_classes)
                if member_seconds[k] > 0.0
            )
        )
        class_delays = [
            context.network.path_delay_ms(list(path))
            for path in aggregate.class_paths
        ]
        latency_sum = float(sum(latencies)) + float(
            sum(
                delay * int(count)
                for delay, count in zip(class_delays, members_per_class)
            )
        )
        latency_n = len(latencies) + int(members_per_class.sum())
        max_latency = max(latencies) if latencies else 0.0
        populated_delays = [
            delay
            for delay, count in zip(class_delays, members_per_class)
            if count
        ]
        if populated_delays:
            max_latency = max(max_latency, max(populated_delays))
        migrations = sum(
            len(record.migrations)
            for record in context.sdn.controller.flows.values()
        )
        reconfigurations = sum(
            policy.reconfigurations
            for policy in context.sdn.router_config.policies.values()
        )
        # aggregate-mice mode: only the packet-level foreground has
        # per-flow identity, so only it is QoE-scored — design scale
        # scenarios so classified (video/voip/bulk) flows match the
        # foreground globs and generic mice form the background
        qoe_per_class, mean_qoe, qoe_flows = aggregate_qoe(
            des_qoe_samples(context)
        )
        self._result = ScenarioResult(
            scenario=scenario.name,
            backend="hybrid",
            seed=context.seed,
            horizon_s=horizon,
            warmup_s=scenario.warmup,
            tunnels=len(context.tunnels),
            offered=len(context.requests),
            placed=context.placed + aggregate.members,
            rejected=context.rejected + aggregate.unplaced,
            per_flow_mbps=per_flow,
            total_throughput_mbps=float(sum(per_flow.values()))
            + bg_span_avg_total,
            min_flow_mbps=float(min(flow_rates)) if flow_rates else 0.0,
            mean_latency_ms=(latency_sum / latency_n if latency_n else 0.0),
            max_latency_ms=float(max_latency),
            drops=des_drop_count(context) + bg_outages,
            migrations=migrations,
            reconfigurations=reconfigurations,
            failure_events=len(context.failure_plan),
            sim_events=context.network.sim.events_processed,
            telemetry_samples=context.sdn.telemetry.db.total_samples(),
            background_flows=aggregate.members,
            background_classes=n_classes,
            background_mbps=background_mbps,
            mean_qoe=mean_qoe,
            qoe_flows=qoe_flows,
            qoe_per_class=qoe_per_class,
        )
