"""ExecutionBackend protocol, capabilities, and the backend registry.

An *execution backend* is one way of turning a prepared scenario — built
topology, derived tunnels, generated workload, planned failures — into a
:class:`~repro.scenarios.result.ScenarioResult`.  The paper ran its
framework against a real programmable testbed; this repro ships four
in-tree backends (``des``, ``fluid``, ``hybrid``, ``emulation-mock``)
behind one protocol so a backend can just as well live *outside* the
process (a Mininet/FABRIC driver, a remote lab) without the runner, the
sweep engine or the CLI knowing the difference.

The lifecycle is three explicit stages, driven by
:class:`~repro.scenarios.runner.ScenarioRunner`::

    backend = get_backend("fluid").for_scenario(scenario)
    backend.prepare(scenario, network, tunnels, context)   # bind state
    backend.execute()                                      # run it
    result = backend.collect()                             # uniform result

``context`` is the prepared runner (see :class:`RunContext`): the
workload, failure plan, seed and — for packet-level backends — the
assembled framework stack live there, so backends stay stateless until
``prepare`` and one backend instance serves exactly one run.

Registration is declarative::

    @register_backend
    class MyBackend(ExecutionBackend):
        name = "my-backend"
        ...

after which ``Scenario(backend="my-backend")``, ``repro scenarios run
--backend my-backend`` and the sweep grid's backend axis all accept the
name.  This module is intentionally dependency-free (stdlib only) so the
registry can be consulted from anywhere — spec validation, result
deserialisation, CLI parser construction — without import cycles.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.framework import SelfDrivingNetwork
    from repro.framework.scheduler import FlowRequest
    from repro.net.topology import Network
    from repro.scenarios.failures import FailureEvent
    from repro.scenarios.result import ScenarioResult
    from repro.scenarios.spec import Scenario

__all__ = [
    "BackendCapabilities",
    "ExecutionBackend",
    "RunContext",
    "register_backend",
    "get_backend",
    "backend_names",
    "list_backends",
    "is_registered",
]

#: tunnel triple: (name, tunnel id, router path)
Tunnel = Tuple[str, int, Tuple[str, ...]]


@dataclass(frozen=True)
class BackendCapabilities:
    """What one execution backend is and does.

    The runner keys its setup work off these flags (build the framework
    stack only for packet-level backends, split flow classes only where
    they matter), ``repro backends list`` prints them, and the docs'
    capabilities matrix is generated from the same values — one source
    of truth.
    """

    #: registry name, e.g. ``"des"``.
    name: str
    #: one-line human description.
    description: str
    #: runs the packet-level framework stack (bus, freeRtr, telemetry,
    #: Hecate, controller); the runner assembles ``context.sdn`` for it.
    packet_level: bool = False
    #: solves (part of) the workload with the closed-form fluid model.
    fluid_model: bool = False
    #: splits the offered flows into foreground/background classes
    #: (:class:`~repro.scenarios.spec.FlowClassSpec`).
    uses_flow_classes: bool = False
    #: executes outside this process through an external driver — the
    #: testbed/emulation family.  Deterministic only as far as the
    #: driver is (the in-tree mock driver is fully deterministic).
    external: bool = False
    #: result carries a meaningful ``sim_events`` count.
    reports_sim_events: bool = False
    #: result carries a meaningful ``telemetry_samples`` count.
    reports_telemetry: bool = False


class RunContext(Protocol):
    """What a backend may use from the prepared runner.

    This is structurally the :class:`~repro.scenarios.runner.
    ScenarioRunner` after ``setup()``; the protocol names the supported
    surface so backend authors do not reach into runner internals.
    """

    scenario: "Scenario"
    seed: int
    network: Optional["Network"]
    sdn: Optional["SelfDrivingNetwork"]
    tunnels: Tuple[Tunnel, ...]
    requests: List["FlowRequest"]
    foreground: List["FlowRequest"]
    background: List["FlowRequest"]
    failure_plan: Tuple["FailureEvent", ...]
    placed: int
    rejected: int

    def inject_traffic(self) -> Tuple[int, int]:
        """Offer the packet-level flows through the Dashboard."""
        ...

    def arm_failures(self) -> None:
        """Schedule the failure plan on the simulator."""
        ...

    def collect(self) -> "ScenarioResult":
        """Uniform metrics from a DES run."""
        ...


class ExecutionBackend(abc.ABC):
    """One way of executing a prepared scenario; see the module docstring.

    Subclasses set :attr:`name`, declare :meth:`capabilities`, then
    implement :meth:`execute` and :meth:`collect`.  ``prepare`` binds
    the run's state and may be extended (call ``super().prepare(...)``)
    for backend-specific precomputation.
    """

    #: registry name; ``@register_backend`` requires it.
    name: str = ""

    def __init__(self) -> None:
        self.scenario: Optional["Scenario"] = None
        self.network: Optional["Network"] = None
        self.tunnels: Tuple[Tunnel, ...] = ()
        self.context: Optional[RunContext] = None

    # ------------------------------------------------------------ protocol

    @classmethod
    @abc.abstractmethod
    def capabilities(cls) -> BackendCapabilities:
        """This backend's declared capabilities."""

    @classmethod
    def for_scenario(cls, scenario: "Scenario") -> "ExecutionBackend":
        """Instantiate the backend that will run ``scenario``.

        The default returns ``cls()``; a backend family may return a
        specialised sibling (the hybrid backend swaps in its
        aggregate-mice implementation here).
        """
        return cls()

    def prepare(
        self,
        scenario: "Scenario",
        network: "Network",
        tunnels: Sequence[Tunnel],
        context: RunContext,
    ) -> None:
        """Bind one prepared run's state; called exactly once."""
        if self.context is not None:
            raise RuntimeError(
                f"backend {self.name!r} is single-use; prepare() was "
                "already called on this instance"
            )
        self.scenario = scenario
        self.network = network
        self.tunnels = tuple(tunnels)
        self.context = context

    @abc.abstractmethod
    def execute(self) -> None:
        """Run the scenario (after :meth:`prepare`)."""

    @abc.abstractmethod
    def collect(self) -> "ScenarioResult":
        """The uniform result (after :meth:`execute`)."""

    # ---------------------------------------------------------- convenience

    def _bound_context(self) -> RunContext:
        if self.context is None:
            raise RuntimeError(
                f"backend {self.name!r} is not prepared; call prepare() "
                "before execute()/collect()"
            )
        return self.context


#: name -> backend class, in registration order (builtins first), so
#: CLI choices and listings are stable run to run.
_REGISTRY: Dict[str, Type[ExecutionBackend]] = {}

_B = TypeVar("_B", bound=Type[ExecutionBackend])

#: guards re-entrant builtin loading (``import repro.backends`` runs the
#: registrations; a registry consult made *during* that import must not
#: recurse into it).
_loading_builtins = False


def register_backend(cls: _B) -> _B:
    """Class decorator: add an :class:`ExecutionBackend` to the registry.

    Duplicate names are an error — a plugin shadowing ``des`` would
    silently change every cached sweep's meaning.
    """
    name = getattr(cls, "name", "")
    if not name or not isinstance(name, str):
        raise ValueError(
            f"backend class {cls.__name__} must set a non-empty `name`"
        )
    if name in _REGISTRY:
        raise ValueError(f"backend {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def _ensure_builtins() -> None:
    """Populate the registry with the in-tree backends (idempotent)."""
    global _loading_builtins
    if _loading_builtins:
        return
    _loading_builtins = True
    try:
        # importing the package registers des/fluid/hybrid/emulation-mock
        import repro.backends  # noqa: F401
    finally:
        _loading_builtins = False


def get_backend(name: str) -> Type[ExecutionBackend]:
    """The registered backend class for ``name``.

    Raises ``KeyError`` with the registered alternatives, mirroring
    ``get_scenario``.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; "
            f"registered backends: {', '.join(_REGISTRY)}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def list_backends() -> List[BackendCapabilities]:
    """Capabilities of every registered backend, in registration order."""
    _ensure_builtins()
    return [cls.capabilities() for cls in _REGISTRY.values()]


def is_registered(name: Any) -> bool:
    """Whether ``name`` names a registered execution backend."""
    _ensure_builtins()
    return isinstance(name, str) and name in _REGISTRY
