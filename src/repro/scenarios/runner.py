"""ScenarioRunner: execute any Scenario, on any registered backend.

The runner turns a declarative :class:`~repro.scenarios.spec.Scenario`
into a :class:`ScenarioResult` through three phases:

1. **setup** — build the topology
   (:class:`~repro.scenarios.spec.TopologySpec`), derive tunnels
   (explicit triples when the scenario pins them, otherwise the
   ``k_paths`` shortest router paths for every (ingress, egress) pair
   the traffic uses), generate traffic
   (:mod:`repro.scenarios.traffic`) and plan failures
   (:mod:`repro.scenarios.failures`) from one seeded rng in that fixed
   order, so every backend sees the identical workload.  What else is
   assembled is keyed off the backend's declared
   :class:`~repro.backends.base.BackendCapabilities`: packet-level
   backends get the full :class:`~repro.framework.SelfDrivingNetwork`
   stack, flow-class backends get the foreground/background split;

2. **backend dispatch** — resolve the configured backend in the
   execution-backend registry (:func:`repro.backends.base.get_backend`),
   instantiate it for this scenario, and drive the three-stage protocol:
   ``prepare(scenario, network, tunnels, context)`` → ``execute()`` →
   ``collect()``.  The backend implementations (DES, fluid, hybrid,
   hybrid-aggregate, the emulation bridge) live in
   :mod:`repro.backends`; see docs/BACKENDS.md for each one's model and
   metric semantics;

3. **uniform result validation** — every backend's
   :class:`ScenarioResult` is checked against the prepared workload
   (right scenario/seed/horizon, ``offered`` equals the generated flow
   count, ``placed + rejected`` accounts for every offered flow) before
   it is returned, so a buggy backend fails loudly instead of flowing
   bad rows into sweeps.

Staged use (for experiments that need mid-run control, e.g. the Fig. 11
and Fig. 12 replays): call :meth:`ScenarioRunner.setup`, drive
``runner.sdn`` yourself, then :meth:`ScenarioRunner.inject_traffic` and
your own phase logic, then :meth:`ScenarioRunner.collect`.

Dynamic scenarios (``Scenario.phases`` set) compile their phase timeline
into the same flat ``FlowRequest`` list via
:func:`repro.scenarios.dynamic.compile_phases`, so every backend applies
phase transitions mid-run through its existing machinery: DES schedules
each flow at its absolute start offset, and the fluid model re-solves
per capacity epoch (phase boundaries are epoch edges).

Metric semantics differ slightly by backend and are recorded as-is:
``drops`` counts tail-dropped packets in DES but (flow, epoch) outages in
fluid; ``migrations`` counts PBR re-binds in DES but assignment moves off
the default tunnel in fluid.  ICMP probe flows report 0 Mbps on every
backend (they are latency instruments, not load).  Link capacities are
**directed**: each direction of a full-duplex link has its own budget
(:func:`repro.net.fluid.link_capacities` emits both directions), so
bidirectional workloads never wrongly compete for one shared entry.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict
from itertools import islice
from typing import List, Optional, Sequence, Tuple, Type, Union

import networkx as nx
import numpy as np

from repro.backends.base import ExecutionBackend, get_backend
from repro.framework import SelfDrivingNetwork
from repro.framework.scheduler import FlowRequest
from repro.hecate.service import default_model_factory
from repro.ml import LinearRegression

# Back-compat re-exports: these helpers were importable from this module
# before the backend extraction (PR 9) and public code may still do so.
from repro.net.fluid import (  # noqa: F401
    link_capacities,
    max_min_fair_bounded,
)
from repro.net.topology import Network

from .dynamic import compile_phases
from .failures import FailureEvent, plan_failures
from .hybrid import split_requests
from .result import ScenarioResult  # noqa: F401  (historical import path)
from .spec import Scenario
from .traffic import generate_traffic

__all__ = [
    "ScenarioResult",
    "ScenarioRunner",
    "MODEL_FACTORIES",
    "derive_tunnels",
    "derive_tunnels_for_pairs",
]

#: PolicySpec.model -> regressor factory for Hecate's predictor.
MODEL_FACTORIES = {
    "linear": LinearRegression,
    "rfr": default_model_factory,
}

#: Backwards-compat alias: the bounded water-filling solver grew into a
#: public fluid-model API (the hybrid epoch solver shares it).
_max_min_with_bounds = max_min_fair_bounded


def derive_tunnels(
    network: Network,
    requests: Sequence[FlowRequest],
    k_paths: int,
) -> Tuple[Tuple[str, int, Tuple[str, ...]], ...]:
    """Candidate tunnels: ``k_paths`` shortest router paths per
    (ingress, egress) pair used by the traffic, in traffic order."""
    pairs: List[Tuple[str, str]] = []
    seen: set = set()  # membership test; scale-tier request lists are long
    for request in requests:
        pair = (
            network.edge_router_of(request.src),
            network.edge_router_of(request.dst),
        )
        if pair[0] != pair[1] and pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    return derive_tunnels_for_pairs(network, pairs, k_paths)


def derive_tunnels_for_pairs(
    network: Network,
    pairs: Sequence[Tuple[str, str]],
    k_paths: int,
) -> Tuple[Tuple[str, int, Tuple[str, ...]], ...]:
    """Candidate tunnels for explicit (ingress, egress) router pairs —
    the pair-first entry point service mode uses, where the pair set is
    fixed up front and flows arrive forever (so tunnels cannot be
    derived from a finite request list)."""
    router_graph = network.graph.subgraph(network.routers)
    tunnels: List[Tuple[str, int, Tuple[str, ...]]] = []
    tid = 1
    for ingress, egress in pairs:
        for path in islice(
            nx.shortest_simple_paths(router_graph, ingress, egress), k_paths
        ):
            tunnels.append((f"T{tid}", tid, tuple(path)))
            tid += 1
    return tuple(tunnels)


class ScenarioRunner:
    """Executes one :class:`Scenario`; see the module docstring.

    ``backend`` accepts a registered name (``"des"``, ``"fluid"``, ...,
    resolved through :func:`repro.backends.base.get_backend`), an
    :class:`~repro.backends.base.ExecutionBackend` subclass, or a
    prepared-for-reuse backend *instance* (single-use: one instance, one
    run).  Defaults to the scenario's own ``backend`` field.
    """

    def __init__(
        self,
        scenario: Scenario,
        backend: Union[
            str, Type[ExecutionBackend], ExecutionBackend, None
        ] = None,
        seed: Optional[int] = None,
    ):
        self.scenario = scenario
        self._backend_instance: Optional[ExecutionBackend] = None
        if backend is None:
            backend = scenario.backend
        if isinstance(backend, str):
            try:
                self._backend_cls: Type[ExecutionBackend] = get_backend(
                    backend
                )
            except KeyError:
                raise ValueError(f"unknown backend {backend!r}") from None
        elif isinstance(backend, type) and issubclass(
            backend, ExecutionBackend
        ):
            self._backend_cls = backend
        elif isinstance(backend, ExecutionBackend):
            self._backend_instance = backend
            self._backend_cls = type(backend)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        #: registry name of the configured backend (string API).
        self.backend: str = self._backend_cls.name
        self._caps = self._backend_cls.capabilities()
        self.seed = scenario.seed if seed is None else int(seed)
        self.network: Optional[Network] = None
        self.sdn: Optional[SelfDrivingNetwork] = None
        self.tunnels: Tuple[Tuple[str, int, Tuple[str, ...]], ...] = ()
        self.requests: List[FlowRequest] = []
        #: flow-class backends only: the class partition of ``requests``
        self.foreground: List[FlowRequest] = []
        self.background: List[FlowRequest] = []
        self.failure_plan: Tuple[FailureEvent, ...] = ()
        self.placed = 0
        self.rejected = 0
        self._injected = False
        self._armed = False

    # ----------------------------------------------------------- assembly

    def setup(self) -> "ScenarioRunner":
        """Build network + tunnels + workload (and, for packet-level
        backends, the framework stack).  Idempotent; returns self for
        chaining."""
        if self.network is not None:
            return self
        scenario = self.scenario
        rng = np.random.default_rng(self.seed)
        self.network = scenario.topology.build()
        # fixed order: traffic first, then failures, so a given seed means
        # the same workload regardless of failure model changes
        if scenario.phases is not None:
            self.requests = compile_phases(
                self.network, scenario.phases, scenario.horizon, rng
            )
        else:
            self.requests = generate_traffic(
                self.network, scenario.traffic, scenario.horizon, rng
            )
        self.failure_plan = plan_failures(
            self.network, scenario.failures, scenario.horizon, rng
        )
        if scenario.tunnels is not None:
            self.tunnels = tuple(
                (name, tid, tuple(path))
                for name, tid, path in scenario.tunnels
            )
        else:
            self.tunnels = derive_tunnels(
                self.network, self.requests, scenario.policy.k_paths
            )
        if not self.tunnels and self.requests:
            raise ValueError(
                f"scenario {scenario.name!r} derives no tunnels; "
                "check its topology and traffic"
            )
        if self._caps.uses_flow_classes:
            self.foreground, self.background = split_requests(
                self.requests, scenario.classes
            )
        if self._caps.packet_level:
            try:
                model_factory = MODEL_FACTORIES[scenario.policy.model]
            except KeyError:
                raise KeyError(
                    f"unknown model {scenario.policy.model!r}; "
                    f"choose from {sorted(MODEL_FACTORIES)}"
                ) from None
            self.sdn = SelfDrivingNetwork(
                self.network,
                model_factory=model_factory,
                telemetry_interval=scenario.policy.telemetry_interval,
                reoptimize_every=scenario.policy.reoptimize_every,
                reopt_threshold_mbps=scenario.policy.reopt_threshold_mbps,
            )
            for name, tid, path in self.tunnels:
                self.sdn.add_tunnel(name, tid, path)
        return self

    def inject_traffic(self) -> Tuple[int, int]:
        """Offer every packet-level flow through the Dashboard
        (packet-level backends).

        Returns ``(placed, rejected)``.  On flow-class backends only the
        foreground class is offered — background flows never reach the
        framework; they are fluid load.  Flow ``start_at`` offsets are
        relative to this call (normally the end of warmup).  The
        scenario-wide policy objective applies to every flow that did
        not set its own; an explicit per-flow objective wins."""
        if self.sdn is None:
            raise RuntimeError(
                "call setup() first (packet-level backends only)"
            )
        if self._injected:
            return self.placed, self.rejected
        self._injected = True
        offered = (
            self.foreground if self._caps.uses_flow_classes
            else self.requests
        )
        default_objective = FlowRequest.__dataclass_fields__[
            "objective"
        ].default
        for request in offered:
            kwargs = asdict(request)
            if request.objective == default_objective:
                kwargs["objective"] = self.scenario.policy.objective
            reply = self.sdn.request_flow(**kwargs)
            controller_ok = reply.get("ok") and reply.get(
                "controller", {}
            ).get("ok")
            if controller_ok:
                self.placed += 1
            else:
                self.rejected += 1
        return self.placed, self.rejected

    def arm_failures(self) -> None:
        """Schedule the failure plan on the simulator, offset so event
        times are relative to the start of traffic (packet-level
        backends)."""
        if self.sdn is None:
            raise RuntimeError(
                "call setup() first (packet-level backends only)"
            )
        if self._armed:
            return
        self._armed = True
        assert self.network is not None
        sim = self.network.sim
        base = sim.now

        def apply(event: FailureEvent) -> None:
            assert self.network is not None
            if event.action == "fail":
                self.network.fail_link(event.a, event.b)
            else:
                self.network.restore_link(event.a, event.b)

        for event in self.failure_plan:
            sim.schedule_at(base + event.at, lambda e=event: apply(e))

    # ---------------------------------------------------------- execution

    def run(self) -> ScenarioResult:
        """Execute the scenario end-to-end on the configured backend:
        setup → backend dispatch → uniform result validation."""
        self.setup()
        backend = self._backend_instance
        if backend is None:
            backend = self._backend_cls.for_scenario(self.scenario)
        assert self.network is not None
        backend.prepare(self.scenario, self.network, self.tunnels, self)
        backend.execute()
        result = backend.collect()
        self._validate(result)
        return result

    def _validate(self, result: ScenarioResult) -> ScenarioResult:
        """Uniform cross-backend result validation: the result must
        describe the run this runner prepared, and account for every
        offered flow.  A backend that drops flows on the floor fails
        here instead of feeding bad rows into sweeps."""
        scenario = self.scenario
        problems = []
        if result.scenario != scenario.name:
            problems.append(
                f"scenario {result.scenario!r} != {scenario.name!r}"
            )
        if result.seed != self.seed:
            problems.append(f"seed {result.seed} != {self.seed}")
        if result.horizon_s != scenario.horizon:
            problems.append(
                f"horizon {result.horizon_s!r} != {scenario.horizon!r}"
            )
        if result.offered != len(self.requests):
            problems.append(
                f"offered {result.offered} != {len(self.requests)} requests"
            )
        if result.placed + result.rejected != result.offered:
            problems.append(
                f"placed {result.placed} + rejected {result.rejected} "
                f"!= offered {result.offered}"
            )
        if problems:
            raise ValueError(
                f"backend {result.backend!r} returned an inconsistent "
                "result: " + "; ".join(problems)
            )
        return result

    # --------------------------------------------------------- collection

    def collect(self) -> ScenarioResult:
        """Uniform metrics from a DES run (callable after staged use)."""
        if self.sdn is None:
            raise RuntimeError("collect() needs a DES run; see setup()")
        from repro.backends.des import collect_des

        return collect_des(self)

    # ----------------------------------------------- deprecated internals

    def _deprecated_backend_run(
        self, name: str, method: str
    ) -> ScenarioResult:
        warnings.warn(
            f"ScenarioRunner.{method}() is "
            "deprecated; resolve the backend through "
            "repro.backends.get_backend() and drive "
            "prepare()/execute()/collect(), or just call run()",
            DeprecationWarning,
            stacklevel=3,
        )
        self.setup()
        backend = get_backend(name).for_scenario(self.scenario)
        assert self.network is not None
        backend.prepare(self.scenario, self.network, self.tunnels, self)
        backend.execute()
        return self._validate(backend.collect())

    def _run_fluid(self) -> ScenarioResult:
        """Deprecated shim; use ``get_backend("fluid")``."""
        return self._deprecated_backend_run("fluid", "_run_fluid")

    def _run_hybrid(self) -> ScenarioResult:
        """Deprecated shim; use ``get_backend("hybrid")``."""
        return self._deprecated_backend_run("hybrid", "_run_hybrid")

    def _run_hybrid_aggregate(self) -> ScenarioResult:
        """Deprecated shim; use ``get_backend("hybrid")`` (its
        ``for_scenario`` picks aggregate mode from the scenario)."""
        return self._deprecated_backend_run("hybrid", "_run_hybrid_aggregate")
