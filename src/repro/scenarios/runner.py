"""ScenarioRunner: execute any Scenario, on either backend, uniformly.

The runner turns a declarative :class:`~repro.scenarios.spec.Scenario`
into a :class:`ScenarioResult` through five deterministic stages:

1. **build** the topology (:class:`~repro.scenarios.spec.TopologySpec`);
2. **derive tunnels** — explicit triples when the scenario pins them,
   otherwise the ``k_paths`` shortest router paths for every
   (ingress, egress) pair the traffic will use;
3. **generate traffic** (:mod:`repro.scenarios.traffic`) and **plan
   failures** (:mod:`repro.scenarios.failures`) from one seeded rng, in
   that fixed order, so both backends see the identical workload;
4. **execute**:

   - ``des`` — assemble a :class:`~repro.framework.SelfDrivingNetwork`
     (message bus, freeRtr config service, telemetry, Hecate, scheduler,
     controller, dashboard), warm telemetry, offer every flow through the
     Dashboard exactly like a user would, schedule the failure plan on
     the simulator and run the horizon;
   - ``fluid`` — slice the horizon into capacity epochs at every flow
     start/stop and failure event, solve the joint flow->tunnel
     assignment (:func:`repro.hecate.objectives.assign_flows`) and the
     max-min fair rates per epoch (:func:`repro.net.fluid.max_min_fair`)
     — the closed-form steady state the packet level should approximate
     (beyond :attr:`~repro.scenarios.spec.FlowClassSpec.max_epochs`
     boundaries the flow edges coalesce onto a uniform grid, so
     scale-tier flow counts stay affordable);

   - ``hybrid`` — split the workload by flow class
     (:func:`repro.scenarios.hybrid.split_requests`): foreground flows
     run packet-level through the full framework exactly as in ``des``,
     while background classes are solved as per-epoch fluid allocations
     and applied to the links as background-utilization terms
     (:mod:`repro.net.background`) that telemetry reports and packet
     serialization honours — orders of magnitude more flows for a
     fraction of the event count;

5. **collect** a uniform :class:`ScenarioResult` (throughput, latency,
   drops, migrations, reconfigurations) so scenarios and backends are
   directly comparable.

Staged use (for experiments that need mid-run control, e.g. the Fig. 11
and Fig. 12 replays): call :meth:`ScenarioRunner.setup`, drive
``runner.sdn`` yourself, then :meth:`ScenarioRunner.inject_traffic` and
your own phase logic.

Dynamic scenarios (``Scenario.phases`` set) compile their phase timeline
into the same flat ``FlowRequest`` list via
:func:`repro.scenarios.dynamic.compile_phases`, so both backends apply
phase transitions mid-run through their existing machinery: DES
schedules each flow at its absolute start offset, and the fluid backend
re-solves per capacity epoch (phase boundaries are epoch edges) and
time-weights the epochs into one result.

Metric semantics differ slightly by backend and are recorded as-is:
``drops`` counts tail-dropped packets in DES but (flow, epoch) outages in
fluid; ``migrations`` counts PBR re-binds in DES but assignment moves off
the default tunnel in fluid.  ICMP probe flows report 0 Mbps on both
backends (they are latency instruments, not load).  Link capacities are
**directed**: each direction of a full-duplex link has its own budget
(:func:`repro.net.fluid.link_capacities` emits both directions), so
bidirectional workloads no longer wrongly compete for one shared entry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from itertools import islice
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.framework import SelfDrivingNetwork
from repro.framework.controller import select_candidates
from repro.framework.scheduler import FlowRequest
from repro.hecate.objectives import assign_flows
from repro.hecate.service import default_model_factory
from repro.ml import LinearRegression
from repro.net.apps import PingApp, TcpFlow, UdpFlow
from repro.net.background import install_background_schedule
from repro.net.fluid import link_capacities, max_min_fair_bounded
from repro.net.topology import Network

from .dynamic import compile_phases
from .failures import FailureEvent, plan_failures
from .hybrid import (
    aggregate_background,
    aggregate_background_epochs,
    assign_class_paths,
    background_epochs,
    epoch_edges,
    quantize_edges,
    solve_epochs,
    solve_epochs_aggregate,
    split_requests,
)
from .spec import BACKENDS, Scenario
from .traffic import generate_traffic

__all__ = [
    "ScenarioResult",
    "ScenarioRunner",
    "MODEL_FACTORIES",
    "derive_tunnels",
    "derive_tunnels_for_pairs",
]

#: PolicySpec.model -> regressor factory for Hecate's predictor.
MODEL_FACTORIES = {
    "linear": LinearRegression,
    "rfr": default_model_factory,
}


@dataclass(frozen=True)
class ScenarioResult:
    """Uniform cross-scenario, cross-backend metrics of one run."""

    scenario: str
    backend: str
    seed: int
    horizon_s: float
    warmup_s: float
    tunnels: int
    offered: int
    placed: int
    rejected: int
    per_flow_mbps: Dict[str, float]
    total_throughput_mbps: float
    min_flow_mbps: float
    mean_latency_ms: float
    max_latency_ms: float
    drops: int
    migrations: int
    reconfigurations: int
    failure_events: int
    #: discrete events the simulator processed (0 on the fluid backend);
    #: wall-clock divided by this is the events/s figure the scale-smoke
    #: CI gate floors.  Deterministic, unlike wall-clock itself.
    sim_events: int = 0
    #: samples the telemetry store recorded across all metrics (0 on the
    #: fluid backend, which has no telemetry agents).  Deterministic, so
    #: sweeps can assert the monitoring volume did not silently change.
    telemetry_samples: int = 0
    #: hybrid backend: flows carried in the fluid background domain (0
    #: elsewhere).  In aggregate-mice mode these flows have no per-flow
    #: entry in ``per_flow_mbps`` — this count plus ``background_mbps``
    #: is their footprint in the result.
    background_flows: int = 0
    #: flow classes the aggregate-mice solver used (0 in per-flow mode).
    background_classes: int = 0
    #: total background throughput, Mbps averaged over the horizon.
    background_mbps: float = 0.0

    #: numeric field -> coercion applied on both to_dict and from_dict, so
    #: results survive a JSON round-trip (and numpy scalars never leak
    #: into artifacts or across process boundaries).
    _FIELD_TYPES = {
        "scenario": str,
        "backend": str,
        "seed": int,
        "horizon_s": float,
        "warmup_s": float,
        "tunnels": int,
        "offered": int,
        "placed": int,
        "rejected": int,
        "total_throughput_mbps": float,
        "min_flow_mbps": float,
        "mean_latency_ms": float,
        "max_latency_ms": float,
        "drops": int,
        "migrations": int,
        "reconfigurations": int,
        "failure_events": int,
        "sim_events": int,
        "telemetry_samples": int,
        "background_flows": int,
        "background_classes": int,
        "background_mbps": float,
    }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of plain builtins (inverse of :meth:`from_dict`).

        Workers use this to ship results across process boundaries and
        the sweep cache stores it verbatim, so every value is coerced to
        a builtin ``str``/``int``/``float`` here rather than trusting
        whatever numpy scalar a backend produced."""
        payload: Dict[str, Any] = {
            name: coerce(getattr(self, name))
            for name, coerce in self._FIELD_TYPES.items()
        }
        payload["per_flow_mbps"] = {
            str(name): float(rate) for name, rate in self.per_flow_mbps.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output (or its JSON
        round-trip); raises ``KeyError`` on missing fields and ignores
        unknown ones, so cache artifacts from newer minor versions load.
        ``sim_events`` and ``telemetry_samples`` (added after the first
        release) default to 0 so older payloads still deserialize."""
        source = dict(payload)
        source.setdefault("sim_events", 0)
        source.setdefault("telemetry_samples", 0)
        source.setdefault("background_flows", 0)
        source.setdefault("background_classes", 0)
        source.setdefault("background_mbps", 0.0)
        kwargs: Dict[str, Any] = {
            name: coerce(source[name])
            for name, coerce in cls._FIELD_TYPES.items()
        }
        kwargs["per_flow_mbps"] = {
            str(name): float(rate)
            for name, rate in payload["per_flow_mbps"].items()
        }
        return cls(**kwargs)

    def summary(self) -> str:
        lines = [
            f"scenario {self.scenario} [{self.backend}] "
            f"seed={self.seed} horizon={self.horizon_s:g}s "
            f"warmup={self.warmup_s:g}s",
            f"  flows     : {self.placed}/{self.offered} placed"
            + (f" ({self.rejected} rejected)" if self.rejected else "")
            + f", {self.tunnels} candidate tunnels",
            f"  throughput: {self.total_throughput_mbps:8.2f} Mbps total, "
            f"{self.min_flow_mbps:.2f} Mbps worst flow",
            f"  latency   : {self.mean_latency_ms:8.2f} ms mean, "
            f"{self.max_latency_ms:.2f} ms worst",
            f"  drops={self.drops}  migrations={self.migrations}  "
            f"reconfigurations={self.reconfigurations}  "
            f"failure_events={self.failure_events}  "
            f"sim_events={self.sim_events}  "
            f"telemetry_samples={self.telemetry_samples}",
        ]
        if self.background_flows:
            mode = (
                f"{self.background_classes} classes"
                if self.background_classes
                else "per-flow fluid"
            )
            lines.append(
                f"  background: {self.background_flows} flows ({mode}), "
                f"{self.background_mbps:.2f} Mbps"
            )
        if self.per_flow_mbps:
            worst = sorted(self.per_flow_mbps.items(), key=lambda kv: kv[1])
            shown = ", ".join(f"{k}:{v:.2f}" for k, v in worst[:8])
            suffix = " ..." if len(worst) > 8 else ""
            lines.append(f"  per flow  : {shown}{suffix} (Mbps)")
        return "\n".join(lines)


#: Backwards-compat alias: the bounded water-filling solver grew into a
#: public fluid-model API (the hybrid epoch solver shares it).
_max_min_with_bounds = max_min_fair_bounded


def derive_tunnels(
    network: Network,
    requests: Sequence[FlowRequest],
    k_paths: int,
) -> Tuple[Tuple[str, int, Tuple[str, ...]], ...]:
    """Candidate tunnels: ``k_paths`` shortest router paths per
    (ingress, egress) pair used by the traffic, in traffic order."""
    router_graph = network.graph.subgraph(network.routers)
    pairs: List[Tuple[str, str]] = []
    seen: set = set()  # membership test; scale-tier request lists are long
    for request in requests:
        pair = (
            network.edge_router_of(request.src),
            network.edge_router_of(request.dst),
        )
        if pair[0] != pair[1] and pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    return derive_tunnels_for_pairs(network, pairs, k_paths)


def derive_tunnels_for_pairs(
    network: Network,
    pairs: Sequence[Tuple[str, str]],
    k_paths: int,
) -> Tuple[Tuple[str, int, Tuple[str, ...]], ...]:
    """Candidate tunnels for explicit (ingress, egress) router pairs —
    the pair-first entry point service mode uses, where the pair set is
    fixed up front and flows arrive forever (so tunnels cannot be
    derived from a finite request list)."""
    router_graph = network.graph.subgraph(network.routers)
    tunnels: List[Tuple[str, int, Tuple[str, ...]]] = []
    tid = 1
    for ingress, egress in pairs:
        for path in islice(
            nx.shortest_simple_paths(router_graph, ingress, egress), k_paths
        ):
            tunnels.append((f"T{tid}", tid, tuple(path)))
            tid += 1
    return tuple(tunnels)


class ScenarioRunner:
    """Executes one :class:`Scenario`; see the module docstring."""

    def __init__(
        self,
        scenario: Scenario,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
    ):
        self.scenario = scenario
        self.backend = backend or scenario.backend
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        self.seed = scenario.seed if seed is None else int(seed)
        self.network: Optional[Network] = None
        self.sdn: Optional[SelfDrivingNetwork] = None
        self.tunnels: Tuple[Tuple[str, int, Tuple[str, ...]], ...] = ()
        self.requests: List[FlowRequest] = []
        #: hybrid backend only: the flow-class partition of ``requests``
        self.foreground: List[FlowRequest] = []
        self.background: List[FlowRequest] = []
        self.failure_plan: Tuple[FailureEvent, ...] = ()
        self.placed = 0
        self.rejected = 0
        self._injected = False
        self._armed = False

    # ----------------------------------------------------------- assembly

    def setup(self) -> "ScenarioRunner":
        """Build network + tunnels + workload (and, for DES, the framework
        stack).  Idempotent; returns self for chaining."""
        if self.network is not None:
            return self
        scenario = self.scenario
        rng = np.random.default_rng(self.seed)
        self.network = scenario.topology.build()
        # fixed order: traffic first, then failures, so a given seed means
        # the same workload regardless of failure model changes
        if scenario.phases is not None:
            self.requests = compile_phases(
                self.network, scenario.phases, scenario.horizon, rng
            )
        else:
            self.requests = generate_traffic(
                self.network, scenario.traffic, scenario.horizon, rng
            )
        self.failure_plan = plan_failures(
            self.network, scenario.failures, scenario.horizon, rng
        )
        if scenario.tunnels is not None:
            self.tunnels = tuple(
                (name, tid, tuple(path))
                for name, tid, path in scenario.tunnels
            )
        else:
            self.tunnels = derive_tunnels(
                self.network, self.requests, scenario.policy.k_paths
            )
        if not self.tunnels and self.requests:
            raise ValueError(
                f"scenario {scenario.name!r} derives no tunnels; "
                "check its topology and traffic"
            )
        if self.backend == "hybrid":
            self.foreground, self.background = split_requests(
                self.requests, scenario.classes
            )
        if self.backend in ("des", "hybrid"):
            try:
                model_factory = MODEL_FACTORIES[scenario.policy.model]
            except KeyError:
                raise KeyError(
                    f"unknown model {scenario.policy.model!r}; "
                    f"choose from {sorted(MODEL_FACTORIES)}"
                ) from None
            self.sdn = SelfDrivingNetwork(
                self.network,
                model_factory=model_factory,
                telemetry_interval=scenario.policy.telemetry_interval,
                reoptimize_every=scenario.policy.reoptimize_every,
                reopt_threshold_mbps=scenario.policy.reopt_threshold_mbps,
            )
            for name, tid, path in self.tunnels:
                self.sdn.add_tunnel(name, tid, path)
        return self

    def inject_traffic(self) -> Tuple[int, int]:
        """Offer every packet-level flow through the Dashboard (DES and
        hybrid backends).

        Returns ``(placed, rejected)``.  On the hybrid backend only the
        foreground class is offered — background flows never reach the
        framework; they are fluid load.  Flow ``start_at`` offsets are
        relative to this call (normally the end of warmup).  The
        scenario-wide policy objective applies to every flow that did
        not set its own; an explicit per-flow objective wins."""
        if self.sdn is None:
            raise RuntimeError("call setup() first (DES/hybrid backends only)")
        if self._injected:
            return self.placed, self.rejected
        self._injected = True
        offered = (
            self.foreground if self.backend == "hybrid" else self.requests
        )
        default_objective = FlowRequest.__dataclass_fields__[
            "objective"
        ].default
        for request in offered:
            kwargs = asdict(request)
            if request.objective == default_objective:
                kwargs["objective"] = self.scenario.policy.objective
            reply = self.sdn.request_flow(**kwargs)
            controller_ok = reply.get("ok") and reply.get(
                "controller", {}
            ).get("ok")
            if controller_ok:
                self.placed += 1
            else:
                self.rejected += 1
        return self.placed, self.rejected

    def arm_failures(self) -> None:
        """Schedule the failure plan on the simulator, offset so event
        times are relative to the start of traffic (DES/hybrid)."""
        if self.sdn is None:
            raise RuntimeError("call setup() first (DES/hybrid backends only)")
        if self._armed:
            return
        self._armed = True
        sim = self.network.sim
        base = sim.now

        def apply(event: FailureEvent) -> None:
            if event.action == "fail":
                self.network.fail_link(event.a, event.b)
            else:
                self.network.restore_link(event.a, event.b)

        for event in self.failure_plan:
            sim.schedule_at(base + event.at, lambda e=event: apply(e))

    # ---------------------------------------------------------- execution

    def run(self) -> ScenarioResult:
        """Execute the scenario end-to-end on the configured backend."""
        self.setup()
        if self.backend == "fluid":
            return self._run_fluid()
        if self.backend == "hybrid":
            return self._run_hybrid()
        scenario = self.scenario
        self.sdn.run(until=scenario.warmup)
        self.inject_traffic()
        self.arm_failures()
        self.sdn.run(until=scenario.warmup + scenario.horizon)
        return self.collect()

    # --------------------------------------------------------- collection

    def _des_flow_metrics(self) -> Tuple[Dict[str, float], List[float]]:
        """Per-flow Mbps and latency samples from the packet domain."""
        now = self.network.sim.now
        per_flow: Dict[str, float] = {}
        latencies: List[float] = []
        for name, record in self.sdn.controller.flows.items():
            app = record.app
            if isinstance(app, TcpFlow):
                # a flow whose duration outlives the horizon must be
                # averaged over simulated time only, not its full window
                end = now if app.stop_at is None else min(app.stop_at, now)
                per_flow[name] = app.goodput_mbps(t1=end)
                if app.srtt is not None:
                    latencies.append(app.srtt * 1e3)
            elif isinstance(app, UdpFlow):
                per_flow[name] = app.delivered_mbps()
            elif isinstance(app, PingApp):
                per_flow[name] = 0.0
                _, rtts = app.rtt_series()
                if rtts.size:
                    latencies.append(float(rtts.mean()))
        return per_flow, latencies

    def _des_drop_count(self) -> int:
        drops = 0
        for link in self.network.links.values():
            node_a, node_b = link.endpoints()
            drops += link.stats_from(node_a).dropped_packets
            drops += link.stats_from(node_b).dropped_packets
        return drops

    def collect(self) -> ScenarioResult:
        """Uniform metrics from a DES run (callable after staged use)."""
        if self.sdn is None:
            raise RuntimeError("collect() needs a DES run; see setup()")
        scenario = self.scenario
        per_flow, latencies = self._des_flow_metrics()
        drops = self._des_drop_count()
        migrations = sum(
            len(record.migrations)
            for record in self.sdn.controller.flows.values()
        )
        reconfigurations = sum(
            policy.reconfigurations
            for policy in self.sdn.router_config.policies.values()
        )
        return ScenarioResult(
            scenario=scenario.name,
            backend="des",
            seed=self.seed,
            horizon_s=scenario.horizon,
            warmup_s=scenario.warmup,
            tunnels=len(self.tunnels),
            offered=len(self.requests),
            placed=self.placed,
            rejected=self.rejected,
            per_flow_mbps=per_flow,
            total_throughput_mbps=float(sum(per_flow.values())),
            min_flow_mbps=float(min(per_flow.values())) if per_flow else 0.0,
            mean_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
            max_latency_ms=float(max(latencies)) if latencies else 0.0,
            drops=drops,
            migrations=migrations,
            reconfigurations=reconfigurations,
            failure_events=len(self.failure_plan),
            sim_events=self.network.sim.events_processed,
            telemetry_samples=self.sdn.telemetry.db.total_samples(),
        )

    # ------------------------------------------------------ fluid backend

    def _assign_fluid(
        self, capacities: Dict[Tuple[str, str], float]
    ) -> Tuple[Dict[str, Tuple[str, ...]], int, int]:
        """Assign flows to tunnels per (ingress, egress) group, honouring
        the scenario objective: ``min_latency`` puts every flow on its
        group's lowest-delay tunnel (what Hecate recommends in DES when
        latency forecasts dominate); the bandwidth-flavoured objectives
        solve the joint throughput assignment.

        Returns (flow -> router path, migrations off the default tunnel,
        unplaceable-flow count)."""
        by_name = {name: path for name, _, path in self.tunnels}
        objective = self.scenario.policy.objective
        groups: Dict[Tuple[str, str], List[FlowRequest]] = {}
        for request in self.requests:
            pair = (
                self.network.edge_router_of(request.src),
                self.network.edge_router_of(request.dst),
            )
            groups.setdefault(pair, []).append(request)
        paths: Dict[str, Tuple[str, ...]] = {}
        migrations = 0
        unplaced = 0
        for (ingress, egress), members in groups.items():
            # the Controller's own candidate rule, so fluid-vs-DES
            # differences come from modelling, never placement policy
            candidates = select_candidates(by_name, ingress, egress)
            if not candidates:
                unplaced += len(members)
                continue
            if objective == "min_latency":
                best = min(
                    candidates,
                    key=lambda n: self.network.path_delay_ms(list(by_name[n])),
                )
                for request in members:
                    paths[request.flow_name] = by_name[best]
                migrations += len(members) if best != candidates[0] else 0
                continue
            current = {r.flow_name: candidates[0] for r in members}
            result = assign_flows(
                current=current,
                tunnel_paths={name: by_name[name] for name in candidates},
                capacities=capacities,
            )
            migrations += result.migrations
            for flow_name, tunnel_name in result.assignment.items():
                paths[flow_name] = by_name[tunnel_name]
        return paths, migrations, unplaced

    def _solve_inputs(
        self,
        paths: Dict[str, Tuple[str, ...]],
        requests: Optional[Sequence[FlowRequest]] = None,
    ) -> Tuple[
        Dict[str, Tuple[float, float]],
        Dict[str, float],
        set,
        Tuple[float, ...],
    ]:
        """The epoch solver's workload view, shared by the fluid and
        hybrid backends: per-flow horizon-clamped spans (placed flows
        only), CBR rate caps, the ICMP probe set, and phase fractions.
        ``requests`` restricts the view to a subset of the offered
        flows (aggregate-mice mode passes the foreground only; the
        background never exists per-flow there).

        ICMP probes send a packet per second — inelastic, negligible
        load; modelling them as elastic flows would credit them with
        the whole path capacity (DES reports them at 0 Mbps too).
        """
        if requests is None:
            requests = self.requests
        horizon = self.scenario.horizon
        spans = {
            r.flow_name: (
                min(r.start_at, horizon),
                min(r.start_at + r.duration, horizon),
            )
            for r in requests
            if r.flow_name in paths
        }
        rate_caps = {
            r.flow_name: r.rate_mbps
            for r in requests
            if r.protocol == "udp" and r.rate_mbps
        }
        probes = {r.flow_name for r in requests if r.protocol == "icmp"}
        phase_fracs = (
            tuple(p.at_frac for p in self.scenario.phases)
            if self.scenario.phases is not None
            else ()
        )
        return spans, rate_caps, probes, phase_fracs

    @staticmethod
    def _delivered_from(solves, names) -> Tuple[Dict[str, float], int]:
        """Mbps-seconds delivered per flow in ``names`` across all
        solved epochs, plus that class's (flow, epoch) outage count."""
        delivered: Dict[str, float] = {name: 0.0 for name in names}
        outages = 0
        for solve in solves:
            outages += sum(1 for n in solve.blacked if n in names)
            for name, rate in solve.rates.items():
                if name in names:
                    delivered[name] += rate * solve.overlaps[name]
        return delivered, outages

    def _run_fluid(self) -> ScenarioResult:
        """Closed-form evaluation: epoch-sliced max-min steady states."""
        scenario = self.scenario
        horizon = scenario.horizon
        capacities = link_capacities(self.network)
        paths, migrations, unplaced = self._assign_fluid(capacities)
        spans, rate_caps, probes, phase_fracs = self._solve_inputs(paths)

        boundaries = {0.0, horizon}
        boundaries.update(t for span in spans.values() for t in span)
        boundaries.update(
            e.at for e in self.failure_plan if 0.0 < e.at < horizon
        )
        # phase transitions are epoch edges even when a phase offers no
        # flows (the fluid model re-solves at every transition)
        boundaries.update(f * horizon for f in phase_fracs if 0.0 < f < 1.0)
        # exact flow edges while they fit the epoch budget; the coalesced
        # grid beyond it (scale-tier flow counts)
        edges = quantize_edges(
            boundaries,
            horizon,
            self.failure_plan,
            phase_fracs,
            scenario.classes,
        )
        solves = solve_epochs(
            spans,
            paths,
            capacities,
            rate_caps,
            probes,
            self.failure_plan,
            edges,
        )
        delivered, outages = self._delivered_from(solves, set(spans))

        per_flow = {
            name: delivered[name] / (span[1] - span[0])
            if span[1] > span[0] else 0.0
            for name, span in spans.items()
        }
        latencies = [
            self.network.path_delay_ms(list(paths[name])) for name in spans
        ]
        return ScenarioResult(
            scenario=scenario.name,
            backend="fluid",
            seed=self.seed,
            horizon_s=horizon,
            warmup_s=0.0,
            tunnels=len(self.tunnels),
            offered=len(self.requests),
            placed=len(spans),
            rejected=unplaced,
            per_flow_mbps=per_flow,
            total_throughput_mbps=float(sum(delivered.values()) / horizon),
            min_flow_mbps=float(min(per_flow.values())) if per_flow else 0.0,
            mean_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
            max_latency_ms=float(max(latencies)) if latencies else 0.0,
            drops=outages,
            migrations=migrations,
            reconfigurations=0,
            failure_events=len(self.failure_plan),
        )

    # ----------------------------------------------------- hybrid backend

    def _run_hybrid(self) -> ScenarioResult:
        """Foreground packet-level, background as per-epoch fluid load.

        The background class is solved *before* the packet run (it is a
        pure function of the workload and the failure plan), installed
        on the simulator as one coalesced load-update event per epoch
        edge, and the foreground then competes for what the mice left:
        packet serialization slows on loaded links and telemetry reports
        the aggregate, so Hecate's placement sees the background without
        ever paying packet-level cost for it.
        """
        if self.scenario.classes.aggregate_background:
            return self._run_hybrid_aggregate()
        scenario = self.scenario
        horizon = scenario.horizon
        capacities = link_capacities(self.network)

        bg_paths, bg_unplaced = assign_class_paths(
            self.network, self.tunnels, self.background, spread=True
        )
        # foreground flows join the solve as claimants on their default
        # tunnels (an estimate of initial placement) so background rates
        # never hand the mice capacity the elephants are using; their
        # real throughput comes from the packet domain below
        fg_paths, _ = assign_class_paths(
            self.network, self.tunnels, self.foreground, spread=False
        )
        paths = {**fg_paths, **bg_paths}
        spans, rate_caps, probes, phase_fracs = self._solve_inputs(paths)
        edges = epoch_edges(
            horizon, self.failure_plan, phase_fracs, scenario.classes
        )
        solves = solve_epochs(
            spans,
            paths,
            capacities,
            rate_caps,
            probes,
            self.failure_plan,
            edges,
        )
        bg_names = {r.flow_name for r in self.background}
        epochs = background_epochs(solves, bg_names, paths)

        # ----- packet domain: warmup, foreground, failures, background
        self.sdn.run(until=scenario.warmup)
        self.inject_traffic()
        self.arm_failures()
        install_background_schedule(
            self.network, epochs, offset=self.network.sim.now
        )
        self.sdn.run(until=scenario.warmup + scenario.horizon)

        # ----- merge the two domains into one result
        per_flow, latencies = self._des_flow_metrics()
        bg_delivered, bg_outages = self._delivered_from(
            solves, {name for name in spans if name in bg_names}
        )
        for name, total in bg_delivered.items():
            start, end = spans[name]
            per_flow[name] = total / (end - start) if end > start else 0.0
        latencies.extend(
            self.network.path_delay_ms(list(paths[name]))
            for name in bg_delivered
        )
        migrations = sum(
            len(record.migrations)
            for record in self.sdn.controller.flows.values()
        )
        reconfigurations = sum(
            policy.reconfigurations
            for policy in self.sdn.router_config.policies.values()
        )
        return ScenarioResult(
            scenario=scenario.name,
            backend="hybrid",
            seed=self.seed,
            horizon_s=horizon,
            warmup_s=scenario.warmup,
            tunnels=len(self.tunnels),
            offered=len(self.requests),
            placed=self.placed + len(bg_delivered),
            rejected=self.rejected + bg_unplaced,
            per_flow_mbps=per_flow,
            total_throughput_mbps=float(sum(per_flow.values())),
            min_flow_mbps=float(min(per_flow.values())) if per_flow else 0.0,
            mean_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
            max_latency_ms=float(max(latencies)) if latencies else 0.0,
            drops=self._des_drop_count() + bg_outages,
            migrations=migrations,
            reconfigurations=reconfigurations,
            failure_events=len(self.failure_plan),
            sim_events=self.network.sim.events_processed,
            telemetry_samples=self.sdn.telemetry.db.total_samples(),
            background_flows=len(bg_delivered),
            background_mbps=float(sum(bg_delivered.values()) / horizon),
        )

    def _run_hybrid_aggregate(self) -> ScenarioResult:
        """Hybrid run with the background collapsed into flow classes.

        Same shape as :meth:`_run_hybrid`, but no background flow ever
        exists individually: placement, the per-epoch fluid solve and
        the delivered accounting all operate on
        :class:`~repro.scenarios.hybrid.BackgroundAggregate` columns —
        cost scales with (tunnels x epochs) instead of (users x
        epochs), which is what lets the scale tier reach 100k–1M
        offered flows.  ``per_flow_mbps`` covers the foreground only;
        the background is reported as ``background_flows`` /
        ``background_classes`` / ``background_mbps``, and latency means
        weight each class by its member count so the distribution
        matches what per-flow mode would report.
        """
        scenario = self.scenario
        horizon = scenario.horizon
        capacities = link_capacities(self.network)

        aggregate = aggregate_background(
            self.network, self.tunnels, self.background, horizon
        )
        fg_paths, _ = assign_class_paths(
            self.network, self.tunnels, self.foreground, spread=False
        )
        spans, rate_caps, probes, phase_fracs = self._solve_inputs(
            fg_paths, requests=self.foreground
        )
        edges = epoch_edges(
            horizon, self.failure_plan, phase_fracs, scenario.classes
        )
        solves = solve_epochs_aggregate(
            spans,
            fg_paths,
            capacities,
            rate_caps,
            probes,
            self.failure_plan,
            edges,
            aggregate,
        )
        epochs = aggregate_background_epochs(solves, aggregate)

        # ----- packet domain: warmup, foreground, failures, background
        self.sdn.run(until=scenario.warmup)
        self.inject_traffic()
        self.arm_failures()
        install_background_schedule(
            self.network, epochs, offset=self.network.sim.now
        )
        self.sdn.run(until=scenario.warmup + scenario.horizon)

        # ----- merge: foreground per-flow, background per-class
        per_flow, latencies = self._des_flow_metrics()
        n_classes = len(aggregate.class_paths)
        delivered_c = np.zeros(n_classes)
        bg_outages = 0
        for solve in solves:
            delivered_c += solve.class_rates * (solve.t1 - solve.t0)
            bg_outages += solve.blacked_members
        member_seconds = aggregate.member_seconds()
        # a class's average per-mouse rate: delivered Mbps-seconds over
        # summed member-active seconds — enters min_flow_mbps so a
        # starved class is as visible as a starved flow
        class_avg_mbps = [
            float(delivered_c[k] / member_seconds[k])
            for k in range(n_classes)
            if member_seconds[k] > 0.0
        ]
        background_mbps = float(delivered_c.sum() / horizon)
        flow_rates = list(per_flow.values()) + class_avg_mbps
        members_per_class = np.bincount(
            aggregate.class_of, minlength=n_classes
        )
        # total_throughput keeps the per-flow hybrid semantic (sum of
        # span-averaged per-flow rates): each class contributes its
        # average member rate times its positive-span member count, so
        # the two hybrid modes report comparable totals.  The horizon-
        # averaged background total is background_mbps above.
        spanned_members = np.bincount(
            aggregate.class_of,
            weights=(aggregate.ends > aggregate.starts),
            minlength=n_classes,
        )
        bg_span_avg_total = float(
            sum(
                spanned_members[k] * delivered_c[k] / member_seconds[k]
                for k in range(n_classes)
                if member_seconds[k] > 0.0
            )
        )
        class_delays = [
            self.network.path_delay_ms(list(path))
            for path in aggregate.class_paths
        ]
        latency_sum = float(sum(latencies)) + float(
            sum(
                delay * int(count)
                for delay, count in zip(class_delays, members_per_class)
            )
        )
        latency_n = len(latencies) + int(members_per_class.sum())
        max_latency = max(latencies) if latencies else 0.0
        populated_delays = [
            delay
            for delay, count in zip(class_delays, members_per_class)
            if count
        ]
        if populated_delays:
            max_latency = max(max_latency, max(populated_delays))
        migrations = sum(
            len(record.migrations)
            for record in self.sdn.controller.flows.values()
        )
        reconfigurations = sum(
            policy.reconfigurations
            for policy in self.sdn.router_config.policies.values()
        )
        return ScenarioResult(
            scenario=scenario.name,
            backend="hybrid",
            seed=self.seed,
            horizon_s=horizon,
            warmup_s=scenario.warmup,
            tunnels=len(self.tunnels),
            offered=len(self.requests),
            placed=self.placed + aggregate.members,
            rejected=self.rejected + aggregate.unplaced,
            per_flow_mbps=per_flow,
            total_throughput_mbps=float(sum(per_flow.values()))
            + bg_span_avg_total,
            min_flow_mbps=float(min(flow_rates)) if flow_rates else 0.0,
            mean_latency_ms=(latency_sum / latency_n if latency_n else 0.0),
            max_latency_ms=float(max_latency),
            drops=self._des_drop_count() + bg_outages,
            migrations=migrations,
            reconfigurations=reconfigurations,
            failure_events=len(self.failure_plan),
            sim_events=self.network.sim.events_processed,
            telemetry_samples=self.sdn.telemetry.db.total_samples(),
            background_flows=aggregate.members,
            background_classes=n_classes,
            background_mbps=background_mbps,
        )
