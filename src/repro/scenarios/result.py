"""ScenarioResult: the uniform cross-scenario, cross-backend metrics.

Every execution backend — packet-level DES, closed-form fluid, the
flow-class hybrid, or an external emulation driver — collapses its run
into this one frozen value object, which is what makes scenarios and
backends directly comparable, cacheable and shippable across process
boundaries.  The dataclass lives in its own module so backend
implementations (:mod:`repro.backends`) can construct results without
importing the runner that orchestrates them; the historical import path
``repro.scenarios.runner.ScenarioResult`` keeps working as a re-export.

Serialisation is exact: :meth:`ScenarioResult.to_dict` emits builtins
only (numpy scalars are coerced), and :meth:`ScenarioResult.from_dict`
reproduces the result bit-for-bit after a JSON round-trip.  ``from_dict``
also *validates* the ``backend`` field against the execution-backend
registry — an artifact naming a backend this build does not know is an
error at load time, not a silent row in a sweep comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

__all__ = ["ScenarioResult"]


def _known_backend_names() -> tuple:
    """Registered execution-backend names (builtins always included).

    Late import: the backend modules themselves construct results, so
    this module must not depend on them at import time.
    """
    from repro.backends.base import backend_names

    return backend_names()


@dataclass(frozen=True)
class ScenarioResult:
    """Uniform cross-scenario, cross-backend metrics of one run."""

    scenario: str
    backend: str
    seed: int
    horizon_s: float
    warmup_s: float
    tunnels: int
    offered: int
    placed: int
    rejected: int
    per_flow_mbps: Dict[str, float]
    total_throughput_mbps: float
    min_flow_mbps: float
    mean_latency_ms: float
    max_latency_ms: float
    drops: int
    migrations: int
    reconfigurations: int
    failure_events: int
    #: discrete events the simulator processed (0 on the fluid backend);
    #: wall-clock divided by this is the events/s figure the scale-smoke
    #: CI gate floors.  Deterministic, unlike wall-clock itself.
    sim_events: int = 0
    #: samples the telemetry store recorded across all metrics (0 on the
    #: fluid backend, which has no telemetry agents).  Deterministic, so
    #: sweeps can assert the monitoring volume did not silently change.
    telemetry_samples: int = 0
    #: hybrid backend: flows carried in the fluid background domain (0
    #: elsewhere).  In aggregate-mice mode these flows have no per-flow
    #: entry in ``per_flow_mbps`` — this count plus ``background_mbps``
    #: is their footprint in the result.
    background_flows: int = 0
    #: flow classes the aggregate-mice solver used (0 in per-flow mode).
    background_classes: int = 0
    #: total background throughput, Mbps averaged over the horizon.
    background_mbps: float = 0.0
    #: mean predicted MOS over every *classified* flow (see
    #: repro.net.qoe); 0.0 when the scenario offers only generic flows.
    mean_qoe: float = 0.0
    #: how many flows carried an app class and were scored.
    qoe_flows: int = 0
    #: per-app-class mean predicted MOS (name-sorted; empty without
    #: classified flows).
    qoe_per_class: Dict[str, float] = field(default_factory=dict)

    #: numeric field -> coercion applied on both to_dict and from_dict, so
    #: results survive a JSON round-trip (and numpy scalars never leak
    #: into artifacts or across process boundaries).
    _FIELD_TYPES = {
        "scenario": str,
        "backend": str,
        "seed": int,
        "horizon_s": float,
        "warmup_s": float,
        "tunnels": int,
        "offered": int,
        "placed": int,
        "rejected": int,
        "total_throughput_mbps": float,
        "min_flow_mbps": float,
        "mean_latency_ms": float,
        "max_latency_ms": float,
        "drops": int,
        "migrations": int,
        "reconfigurations": int,
        "failure_events": int,
        "sim_events": int,
        "telemetry_samples": int,
        "background_flows": int,
        "background_classes": int,
        "background_mbps": float,
        "mean_qoe": float,
        "qoe_flows": int,
    }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of plain builtins (inverse of :meth:`from_dict`).

        Workers use this to ship results across process boundaries and
        the sweep cache stores it verbatim, so every value is coerced to
        a builtin ``str``/``int``/``float`` here rather than trusting
        whatever numpy scalar a backend produced."""
        payload: Dict[str, Any] = {
            name: coerce(getattr(self, name))
            for name, coerce in self._FIELD_TYPES.items()
        }
        payload["per_flow_mbps"] = {
            str(name): float(rate) for name, rate in self.per_flow_mbps.items()
        }
        payload["qoe_per_class"] = {
            str(name): float(mos)
            for name, mos in self.qoe_per_class.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output (or its JSON
        round-trip); raises ``KeyError`` on missing fields and ignores
        unknown ones, so cache artifacts from newer minor versions load.
        ``sim_events`` and ``telemetry_samples`` (added after the first
        release) default to 0 so older payloads still deserialize.

        The ``backend`` field must name a *registered* execution
        backend: an artifact written by a build with extra backends (or
        a corrupted one) raises ``ValueError`` here instead of flowing
        an unknown label into sweep comparison tables."""
        source = dict(payload)
        source.setdefault("sim_events", 0)
        source.setdefault("telemetry_samples", 0)
        source.setdefault("background_flows", 0)
        source.setdefault("background_classes", 0)
        source.setdefault("background_mbps", 0.0)
        source.setdefault("mean_qoe", 0.0)
        source.setdefault("qoe_flows", 0)
        source.setdefault("qoe_per_class", {})
        backend = str(source["backend"])
        known = _known_backend_names()
        if backend not in known:
            raise ValueError(
                f"result names unknown backend {backend!r}; "
                f"registered backends: {', '.join(known)}"
            )
        kwargs: Dict[str, Any] = {
            name: coerce(source[name])
            for name, coerce in cls._FIELD_TYPES.items()
        }
        kwargs["per_flow_mbps"] = {
            str(name): float(rate)
            for name, rate in payload["per_flow_mbps"].items()
        }
        kwargs["qoe_per_class"] = {
            str(name): float(mos)
            for name, mos in source["qoe_per_class"].items()
        }
        return cls(**kwargs)

    def summary(self) -> str:
        lines = [
            f"scenario {self.scenario} [{self.backend}] "
            f"seed={self.seed} horizon={self.horizon_s:g}s "
            f"warmup={self.warmup_s:g}s",
            f"  flows     : {self.placed}/{self.offered} placed"
            + (f" ({self.rejected} rejected)" if self.rejected else "")
            + f", {self.tunnels} candidate tunnels",
            f"  throughput: {self.total_throughput_mbps:8.2f} Mbps total, "
            f"{self.min_flow_mbps:.2f} Mbps worst flow",
            f"  latency   : {self.mean_latency_ms:8.2f} ms mean, "
            f"{self.max_latency_ms:.2f} ms worst",
            f"  drops={self.drops}  migrations={self.migrations}  "
            f"reconfigurations={self.reconfigurations}  "
            f"failure_events={self.failure_events}  "
            f"sim_events={self.sim_events}  "
            f"telemetry_samples={self.telemetry_samples}",
        ]
        if self.background_flows:
            mode = (
                f"{self.background_classes} classes"
                if self.background_classes
                else "per-flow fluid"
            )
            lines.append(
                f"  background: {self.background_flows} flows ({mode}), "
                f"{self.background_mbps:.2f} Mbps"
            )
        if self.qoe_flows:
            per_class = ", ".join(
                f"{name}:{mos:.2f}"
                for name, mos in self.qoe_per_class.items()
            )
            lines.append(
                f"  qoe       : {self.mean_qoe:.2f} mean MOS over "
                f"{self.qoe_flows} flows ({per_class})"
            )
        if self.per_flow_mbps:
            worst = sorted(self.per_flow_mbps.items(), key=lambda kv: kv[1])
            shown = ", ".join(f"{k}:{v:.2f}" for k, v in worst[:8])
            suffix = " ..." if len(worst) > 8 else ""
            lines.append(f"  per flow  : {shown}{suffix} (Mbps)")
        return "\n".join(lines)
