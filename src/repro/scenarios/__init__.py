"""Declarative scenario suite: spec x registry x runner.

The paper evaluates its framework on one hand-built testbed; this
package turns that into an *evaluation engine*.  A
:class:`~repro.scenarios.spec.Scenario` declares topology, traffic,
failures, policy and flow classes;
:class:`~repro.scenarios.runner.ScenarioRunner` executes it through the
registered execution backend (:mod:`repro.backends`): the packet-level
emulator (``des``), the closed-form max-min model (``fluid``), the
flow-class ``hybrid`` backend (foreground flows packet-level,
background classes as per-epoch fluid load — the scale tier's engine)
or the external-driver emulation bridge (``emulation-mock``) — and
returns a uniform :class:`~repro.scenarios.result.ScenarioResult`:

>>> from repro.scenarios import get_scenario, ScenarioRunner
>>> result = ScenarioRunner(get_scenario("ring-uniform").quick()).run()
>>> result.total_throughput_mbps > 0
True

From the shell: ``repro scenarios list | run | compare``.
"""

from .dynamic import (
    TrafficPhase,
    compile_phases,
    diurnal_phases,
    elephant_schedule_phases,
    flash_crowd_phases,
)
from .failures import FailureEvent, plan_failures
from .hybrid import split_requests
from .registry import (
    SCENARIOS,
    SERVICE_WORKLOADS,
    get_scenario,
    get_workload,
    list_scenarios,
    list_workloads,
    register,
    register_workload,
)
from .runner import (
    MODEL_FACTORIES,
    ScenarioResult,
    ScenarioRunner,
    derive_tunnels,
    derive_tunnels_for_pairs,
)
from .spec import (
    BACKENDS,
    ChurnSpec,
    FailureSpec,
    FlowClassSpec,
    PolicySpec,
    Scenario,
    ServiceWorkload,
    TopologySpec,
    TrafficSpec,
)
from .traffic import TRAFFIC_PATTERNS, generate_traffic, host_pairs

__all__ = [
    "Scenario",
    "TopologySpec",
    "TrafficSpec",
    "FailureSpec",
    "PolicySpec",
    "FlowClassSpec",
    "ChurnSpec",
    "ServiceWorkload",
    "BACKENDS",
    "split_requests",
    "ScenarioRunner",
    "ScenarioResult",
    "TrafficPhase",
    "compile_phases",
    "diurnal_phases",
    "flash_crowd_phases",
    "elephant_schedule_phases",
    "FailureEvent",
    "register",
    "get_scenario",
    "list_scenarios",
    "SCENARIOS",
    "register_workload",
    "get_workload",
    "list_workloads",
    "SERVICE_WORKLOADS",
    "MODEL_FACTORIES",
    "TRAFFIC_PATTERNS",
    "generate_traffic",
    "host_pairs",
    "plan_failures",
    "derive_tunnels",
    "derive_tunnels_for_pairs",
]
