"""Traffic pattern generators: TrafficSpec -> list of FlowRequests.

Each pattern is a pure function of ``(network, spec, horizon, rng)``; the
runner seeds ``rng`` from the scenario, so a fixed seed always yields the
identical offered load — on either backend.

Patterns
--------
``uniform``
    Flows between random (src, dst) host pairs on distinct edge routers,
    staggered starts in the first quarter of the horizon, each running to
    the end of the horizon.  The steady, symmetric baseline.
``hotspot``
    A fraction of all flows (default 0.7) converge on one "hot"
    destination host, the rest are uniform — the incast-style skew that
    makes one egress the bottleneck.
``bursty``
    Waves of short constant-bit-rate UDP flows (default 3 bursts), each
    burst saturating its paths for a fraction of the horizon — the
    on/off load that stresses drop handling and re-optimization.
``elephant_mice``
    A few long-lived TCP elephants (``params["n_elephants"]``, default a
    quarter of the budget, minimum one) that span the horizon, plus many
    short mice flows arriving throughout — the classic heavy-tailed mix.
    Dynamic scenarios vary ``n_elephants`` per phase to express elephant
    arrival/departure schedules.
``explicit``
    Literal flow dicts from ``spec.params["flows"]`` (each a
    :class:`~repro.framework.scheduler.FlowRequest` kwargs dict).  Used
    by the paper-figure scenarios where the exact flows matter.
``scale_mix``
    The scale-tier workload the hybrid backend exists for: a handful of
    long-lived TCP elephants (``params["n_elephants"]``, distinct ToS,
    packet-level foreground) plus *thousands* of short CBR UDP mice
    sharing ToS 0 (fluid background; never individually steered).  Mice
    arrive throughout the horizon with batched packet trains
    (``params["train_packets"]``) so even a pure-DES reference run
    stays affordable.
``app_mix``
    Mixed application classes — CBR video and VoIP plus elastic bulk
    TCP, each carrying its ``app_class`` (see :mod:`repro.net.qoe`)
    and a distinct ToS, optionally over a generic UDP mice background
    (``params["n_mice"]``).  The workload the ``max_qoe`` objective
    and the QoE result aggregates are evaluated on.

Flows that PBR must steer independently get a distinct ToS byte: the
ingress access-lists match on (src ip, dst ip, tos), so the ToS is what
lets PBR tell flows of the same host pair apart (exactly the paper's
Fig. 12 trick).  Patterns that tag every flow this way are capped at
the 255 distinct non-zero values; ``scale_mix`` only spends ToS bytes
on its elephants, which is what frees it to offer thousands of mice.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.framework.scheduler import FlowRequest
from repro.net.topology import Network

from .spec import TrafficSpec

__all__ = ["generate_traffic", "host_pairs", "TRAFFIC_PATTERNS"]


def host_pairs(network: Network) -> List[Tuple[str, str]]:
    """Ordered (src, dst) host pairs whose edge routers differ."""
    hosts = sorted(network.hosts)
    pairs = [
        (a, b)
        for a in hosts
        for b in hosts
        if a != b and network.edge_router_of(a) != network.edge_router_of(b)
    ]
    if not pairs:
        raise ValueError(
            "topology has no host pairs on distinct edge routers; "
            "scenario traffic needs at least one"
        )
    return pairs


MAX_FLOWS = 255  # distinct non-zero ToS bytes available per scenario


def _tos(i: int) -> int:
    """Distinct non-zero ToS byte per flow index.

    The ingress access-lists match on (src ip, dst ip, tos), so two flows
    of the same host pair sharing a ToS would be steered as one;
    :func:`generate_traffic` rejects flow budgets beyond the 255 distinct
    values rather than silently wrapping.
    """
    return (i % MAX_FLOWS) + 1


def _uniform(
    network: Network,
    spec: TrafficSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FlowRequest]:
    pairs = host_pairs(network)
    requests = []
    for i in range(spec.n_flows):
        src, dst = pairs[int(rng.integers(len(pairs)))]
        start = round(float(rng.uniform(0.0, 0.25 * horizon)), 3)
        requests.append(
            FlowRequest(
                flow_name=f"u{i}",
                src=src,
                dst=dst,
                protocol="tcp",
                tos=_tos(i),
                duration=max(1.0, horizon - start),
                start_at=start,
            )
        )
    return requests


def _hotspot(
    network: Network,
    spec: TrafficSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FlowRequest]:
    pairs = host_pairs(network)
    fraction = float(spec.params.get("fraction", 0.7))
    hot = (
        spec.params.get("hot_host")
        or pairs[int(rng.integers(len(pairs)))][1]
    )
    to_hot = [p for p in pairs if p[1] == hot]
    requests = []
    for i in range(spec.n_flows):
        pool = to_hot if (i < fraction * spec.n_flows and to_hot) else pairs
        src, dst = pool[int(rng.integers(len(pool)))]
        start = round(float(rng.uniform(0.0, 0.25 * horizon)), 3)
        requests.append(
            FlowRequest(
                flow_name=f"h{i}",
                src=src,
                dst=dst,
                protocol="tcp",
                tos=_tos(i),
                duration=max(1.0, horizon - start),
                start_at=start,
            )
        )
    return requests


def _bursty(
    network: Network,
    spec: TrafficSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FlowRequest]:
    pairs = host_pairs(network)
    n_bursts = int(spec.params.get("n_bursts", 3))
    rate = float(spec.params.get("rate_mbps", 15.0))
    slot = horizon / (n_bursts + 1)
    requests = []
    for i in range(spec.n_flows):
        burst = i % n_bursts
        src, dst = pairs[int(rng.integers(len(pairs)))]
        start = round(burst * slot + float(rng.uniform(0.0, 0.2 * slot)), 3)
        requests.append(
            FlowRequest(
                flow_name=f"b{i}",
                src=src,
                dst=dst,
                protocol="udp",
                tos=_tos(i),
                duration=max(1.0, 0.6 * slot),
                start_at=start,
                rate_mbps=rate,
            )
        )
    return requests


def _elephant_mice(
    network: Network,
    spec: TrafficSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FlowRequest]:
    pairs = host_pairs(network)
    n_elephants = int(
        spec.params.get("n_elephants", max(1, spec.n_flows // 4))
    )
    requests = []
    for i in range(spec.n_flows):
        src, dst = pairs[int(rng.integers(len(pairs)))]
        if i < n_elephants:
            start, duration = 0.0, horizon
            name = f"elephant{i}"
        else:
            duration = round(float(rng.uniform(0.1, 0.25)) * horizon, 3)
            start = round(
                float(rng.uniform(0.0, max(0.001, horizon - duration))), 3
            )
            name = f"mouse{i}"
        requests.append(
            FlowRequest(
                flow_name=name,
                src=src,
                dst=dst,
                protocol="tcp",
                tos=_tos(i),
                duration=max(1.0, duration),
                start_at=start,
            )
        )
    return requests


def _explicit(
    network: Network,
    spec: TrafficSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FlowRequest]:
    flows = spec.params.get("flows")
    if not flows:
        raise ValueError("explicit traffic needs params['flows']")
    return [FlowRequest(**dict(kwargs)) for kwargs in flows]


def _scale_mix(
    network: Network,
    spec: TrafficSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FlowRequest]:
    pairs = host_pairs(network)
    n_elephants = min(int(spec.params.get("n_elephants", 8)), spec.n_flows)
    if n_elephants > MAX_FLOWS:
        raise ValueError(
            f"n_elephants={n_elephants} exceeds the {MAX_FLOWS} distinct "
            "ToS bytes available for per-flow PBR steering"
        )
    mice_rate = float(spec.params.get("mice_rate_mbps", 0.5))
    train = int(spec.params.get("train_packets", 8))
    requests = []
    for i in range(n_elephants):
        src, dst = pairs[int(rng.integers(len(pairs)))]
        requests.append(
            FlowRequest(
                flow_name=f"elephant{i}",
                src=src,
                dst=dst,
                protocol="tcp",
                tos=_tos(i),
                duration=horizon,
                start_at=0.0,
            )
        )
    for i in range(n_elephants, spec.n_flows):
        src, dst = pairs[int(rng.integers(len(pairs)))]
        duration = max(1.0, round(float(rng.uniform(0.03, 0.1)) * horizon, 3))
        start = round(
            float(rng.uniform(0.0, max(0.001, horizon - duration))), 3
        )
        requests.append(
            FlowRequest(
                flow_name=f"mouse{i}",
                src=src,
                dst=dst,
                protocol="udp",
                tos=0,  # mice share ToS 0: background class, never steered
                duration=duration,
                start_at=start,
                rate_mbps=mice_rate,
                train_packets=train,
            )
        )
    return requests


def _app_mix(
    network: Network,
    spec: TrafficSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FlowRequest]:
    """Mixed application-class workload: video + VoIP + bulk.

    ``params``:

    - ``mix`` — per-class flow-count weights (default
      ``{"video": 2, "voip": 2, "bulk": 1}``); the budget is split
      proportionally, every class gets at least one flow when the
      budget allows.
    - ``pairs`` — optional explicit ``[(src, dst), ...]`` list; by
      default flows draw random host pairs (the acceptance scenario
      pins one congested pair so path choice is the only variable).
    - ``video_rate_mbps`` / ``voip_rate_mbps`` — CBR rates for the
      UDP classes (defaults 4.0 / 0.1); bulk is elastic TCP.
    - ``n_mice`` / ``mice_rate_mbps`` / ``train_packets`` — optional
      generic UDP mice riding along (ToS 0, never steered), for
      scale-tier variants where classified flows are the hybrid
      foreground over a mice background.

    Every classified flow gets a distinct ToS so PBR steers it
    individually, and its name is prefixed with its class
    (``video0``, ``voip1``, ``bulk2`` ...) so hybrid foreground globs
    like ``video*`` select them.
    """
    pairs = host_pairs(network)
    chosen = spec.params.get("pairs")
    if chosen:
        pairs = [tuple(p) for p in chosen]
    mix = dict(spec.params.get("mix", {"video": 2, "voip": 2, "bulk": 1}))
    n_mice = int(spec.params.get("n_mice", 0))
    budget = spec.n_flows - n_mice
    if budget < 1:
        raise ValueError("app_mix needs n_flows > n_mice")
    if budget > MAX_FLOWS:
        raise ValueError(
            f"app_mix offers {budget} classified flows, beyond the "
            f"{MAX_FLOWS} distinct ToS bytes available for per-flow "
            "PBR steering; move the excess into n_mice"
        )
    total_w = sum(mix.values())
    counts = {
        cls: max(1, int(round(budget * w / total_w)))
        for cls, w in mix.items()
        if w > 0
    }
    # trim overshoot deterministically (largest class first)
    while sum(counts.values()) > budget:
        biggest = max(sorted(counts), key=lambda c: counts[c])
        counts[biggest] -= 1
    video_rate = float(spec.params.get("video_rate_mbps", 4.0))
    voip_rate = float(spec.params.get("voip_rate_mbps", 0.1))
    requests = []
    i = 0
    for cls in sorted(counts):
        for _ in range(counts[cls]):
            src, dst = pairs[int(rng.integers(len(pairs)))]
            start = round(float(rng.uniform(0.0, 0.1 * horizon)), 3)
            duration = max(1.0, horizon - start)
            if cls == "video":
                requests.append(
                    FlowRequest(
                        flow_name=f"video{i}",
                        src=src,
                        dst=dst,
                        protocol="udp",
                        tos=_tos(i),
                        duration=duration,
                        start_at=start,
                        rate_mbps=video_rate,
                        app_class="video",
                    )
                )
            elif cls == "voip":
                requests.append(
                    FlowRequest(
                        flow_name=f"voip{i}",
                        src=src,
                        dst=dst,
                        protocol="udp",
                        tos=_tos(i),
                        duration=duration,
                        start_at=start,
                        rate_mbps=voip_rate,
                        app_class="voip",
                    )
                )
            elif cls == "bulk":
                requests.append(
                    FlowRequest(
                        flow_name=f"bulk{i}",
                        src=src,
                        dst=dst,
                        protocol="tcp",
                        tos=_tos(i),
                        duration=duration,
                        start_at=start,
                        app_class="bulk",
                    )
                )
            else:
                raise ValueError(
                    f"app_mix mix names unknown class {cls!r}"
                )
            i += 1
    mice_rate = float(spec.params.get("mice_rate_mbps", 0.5))
    train = int(spec.params.get("train_packets", 8))
    all_pairs = host_pairs(network)
    for j in range(n_mice):
        src, dst = all_pairs[int(rng.integers(len(all_pairs)))]
        duration = max(1.0, round(float(rng.uniform(0.03, 0.1)) * horizon, 3))
        start = round(
            float(rng.uniform(0.0, max(0.001, horizon - duration))), 3
        )
        requests.append(
            FlowRequest(
                flow_name=f"mouse{j}",
                src=src,
                dst=dst,
                protocol="udp",
                tos=0,  # mice share ToS 0: background class, never steered
                duration=duration,
                start_at=start,
                rate_mbps=mice_rate,
                train_packets=train,
            )
        )
    return requests


TRAFFIC_PATTERNS: Dict[
    str,
    Callable[
        [Network, TrafficSpec, float, np.random.Generator],
        List[FlowRequest],
    ],
] = {
    "uniform": _uniform,
    "hotspot": _hotspot,
    "bursty": _bursty,
    "elephant_mice": _elephant_mice,
    "explicit": _explicit,
    "scale_mix": _scale_mix,
    "app_mix": _app_mix,
}

#: Patterns that stamp a distinct non-zero ToS on every flow (and are
#: therefore capped at MAX_FLOWS flows); ``explicit`` carries literal
#: ToS values and ``scale_mix`` only spends ToS on its elephants.
TOS_PER_FLOW_PATTERNS = frozenset(
    {"uniform", "hotspot", "bursty", "elephant_mice"}
)


def generate_traffic(
    network: Network,
    spec: TrafficSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FlowRequest]:
    """Instantiate ``spec`` on ``network``: validated FlowRequests."""
    try:
        pattern = TRAFFIC_PATTERNS[spec.pattern]
    except KeyError:
        raise KeyError(
            f"unknown traffic pattern {spec.pattern!r}; "
            f"choose from {sorted(TRAFFIC_PATTERNS)}"
        ) from None
    if spec.pattern in TOS_PER_FLOW_PATTERNS and spec.n_flows > MAX_FLOWS:
        raise ValueError(
            f"n_flows={spec.n_flows} exceeds the {MAX_FLOWS} distinct ToS "
            "bytes available for per-flow PBR steering"
        )
    requests = pattern(network, spec, horizon, rng)
    for request in requests:
        request.validate()
    return requests
