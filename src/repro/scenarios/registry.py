"""Named scenario registry: the evaluation suite that ships with the repo.

The **static** built-ins cover the cross product the related work
evaluates over — topology families (line / ring / fat tree / random
geometric / random WAN / the paper's Global P4 Lab), traffic patterns
(uniform / hotspot / bursty UDP / elephant-mice / the paper's explicit
flow sets) and failure models (healthy / link flap / node failure).  The
**dynamic** built-ins (see :mod:`repro.scenarios.dynamic`) add
time-varying programs — diurnal sinusoids, flash crowds, elephant
arrival/departure schedules, rolling regional outages — so the
controller's re-optimization tick is stressed by *changing* conditions,
the regime predictive-routing work (NeuRoute, AMPF) evaluates under.
The **scale** built-ins (``tags=("scale",)``) carry 2k-10k flows each
and default to the ``hybrid`` backend — a few packet-level elephants
over a fluid sea of mice (see :mod:`repro.scenarios.hybrid`).  Every
scenario runs on every backend::

    repro scenarios list
    repro scenarios run ring-link-flap
    repro scenarios run ring-diurnal --backend fluid
    repro scenarios run scale-fat-tree-2k            # hybrid by default
    repro scenarios sweep fat-tree-flash-crowd --seeds 0-4 --jobs 4

Register your own with :func:`register` (e.g. from a notebook or a
plugin module); names must be unique.
"""

from __future__ import annotations

from typing import Dict, List

from .dynamic import (
    TrafficPhase,
    diurnal_phases,
    elephant_schedule_phases,
    flash_crowd_phases,
)
from .spec import (
    ChurnSpec,
    FailureSpec,
    FlowClassSpec,
    PolicySpec,
    Scenario,
    ServiceWorkload,
    TopologySpec,
    TrafficSpec,
)

__all__ = [
    "register",
    "get_scenario",
    "list_scenarios",
    "SCENARIOS",
    "register_workload",
    "get_workload",
    "list_workloads",
    "SERVICE_WORKLOADS",
]

SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add one scenario to the registry; duplicate names are an error."""
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None


def list_scenarios(include_scale: bool = True) -> List[Scenario]:
    """All registered scenarios, sorted by name.

    ``include_scale=False`` drops the ``"scale"``-tagged tier — the
    thousands-of-flows scenarios sized for the hybrid backend, which
    registry-wide loops (``--all`` sweeps, whole-suite tests, the
    benchmark matrix) must not drag through packet-level or per-flow
    fluid execution by accident.
    """
    scenarios = [SCENARIOS[name] for name in sorted(SCENARIOS)]
    if not include_scale:
        scenarios = [s for s in scenarios if "scale" not in s.tags]
    return scenarios


# --------------------------------------------------------------- built-ins

register(
    Scenario(
        name="line-baseline",
        description=(
            "Single-path sanity floor: three-router line, uniform TCP"
        ),
        topology=TopologySpec("line", {"n_routers": 3, "rate_mbps": 50.0}),
        traffic=TrafficSpec("uniform", n_flows=3),
        horizon=30.0,
    )
)

register(
    Scenario(
        name="ring-uniform",
        description=(
            "Six-router ring, two host pairs, uniform TCP over the "
            "two disjoint directions"
        ),
        topology=TopologySpec(
            "ring",
            {
                "n_routers": 6,
                "n_host_pairs": 2,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        traffic=TrafficSpec("uniform", n_flows=6),
        horizon=40.0,
    )
)

register(
    Scenario(
        name="fat-tree-hotspot",
        description=(
            "k=4 fat tree with incast: most flows converge on one "
            "host, the ECMP core absorbs what it can"
        ),
        topology=TopologySpec(
            "fat_tree",
            {
                "k": 4,
                "n_hosts": 4,
                "rate_mbps": 25.0,
                "host_rate_mbps": 50.0,
            },
        ),
        traffic=TrafficSpec("hotspot", n_flows=6, params={"hot_host": "h1"}),
        horizon=30.0,
    )
)

register(
    Scenario(
        name="geo-mesh-uniform",
        description=(
            "Random geometric WAN (distance-proportional delays), "
            "uniform TCP between peripheral hosts"
        ),
        topology=TopologySpec(
            "random_geometric",
            {
                "n_routers": 10,
                "n_host_pairs": 2,
                "seed": 7,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        traffic=TrafficSpec("uniform", n_flows=5),
        horizon=40.0,
    )
)

register(
    Scenario(
        name="wan-elephant-mice",
        description=(
            "Random WAN with a heavy-tailed mix: long-lived elephants "
            "plus short mice flows"
        ),
        topology=TopologySpec(
            "random_wan",
            {
                "n_routers": 8,
                "extra_edges": 5,
                "seed": 11,
                "n_host_pairs": 2,
                "rate_mbps": 50.0,
            },
        ),
        traffic=TrafficSpec("elephant_mice", n_flows=8),
        horizon=40.0,
    )
)

register(
    Scenario(
        name="p4lab-hotspot",
        description=(
            "The paper's Global P4 Lab under Fig. 12 link caps with "
            "every flow converging on host2 behind AMS"
        ),
        topology=TopologySpec("p4lab_fig12"),
        traffic=TrafficSpec(
            "hotspot", n_flows=5, params={"hot_host": "host2"}
        ),
        policy=PolicySpec(reoptimize_every=5.0),
        horizon=45.0,
    )
)

register(
    Scenario(
        name="p4lab-bursty-udp",
        description=(
            "Global P4 Lab under Fig. 12 caps, hammered by waves of "
            "CBR UDP that overrun the 20 Mbps bottleneck"
        ),
        topology=TopologySpec("p4lab_fig12"),
        traffic=TrafficSpec(
            "bursty", n_flows=6, params={"n_bursts": 3, "rate_mbps": 15.0}
        ),
        horizon=45.0,
    )
)

register(
    Scenario(
        name="ring-link-flap",
        description=(
            "Ring whose busiest arc flaps mid-run: the self-driving "
            "loop must steer flows to the surviving direction"
        ),
        topology=TopologySpec(
            "ring",
            {
                "n_routers": 6,
                "n_host_pairs": 2,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        traffic=TrafficSpec("uniform", n_flows=4),
        failures=FailureSpec("link_flap", {"link": ("r0", "r1")}),
        policy=PolicySpec(reoptimize_every=4.0),
        horizon=40.0,
    )
)

register(
    Scenario(
        name="geo-node-failure",
        description=(
            "Random geometric WAN losing a whole router mid-run; "
            "FIBs and tunnels must route around the hole"
        ),
        topology=TopologySpec(
            "random_geometric",
            {
                "n_routers": 10,
                "n_host_pairs": 2,
                "seed": 7,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        traffic=TrafficSpec("uniform", n_flows=4),
        failures=FailureSpec("node_down", {}),
        policy=PolicySpec(reoptimize_every=4.0),
        horizon=40.0,
    )
)

register(
    Scenario(
        name="fig11-latency-migration",
        description=(
            "Paper Fig. 11: ICMP probe on the Global P4 Lab with the "
            "20 ms tc delay on MIA-SAO; min-latency objective steers "
            "it onto Tunnel 2 (the staged two-phase replay lives in "
            "repro.experiments.fig11_latency_migration)"
        ),
        topology=TopologySpec(
            "global_p4_lab", {"delays": {("MIA", "SAO"): 21.0}}
        ),
        traffic=TrafficSpec(
            "explicit",
            n_flows=1,
            params={
                "flows": [
                    {
                        "flow_name": "ping1",
                        "src": "host1",
                        "dst": "host2",
                        "protocol": "icmp",
                        "duration": 120.0,
                    },
                ]
            },
        ),
        policy=PolicySpec(objective="min_latency"),
        tunnels=(
            ("T1", 1, ("MIA", "SAO", "AMS")),
            ("T2", 2, ("MIA", "CHI", "AMS")),
        ),
        horizon=120.0,
        warmup=2.0,
    )
)

register(
    Scenario(
        name="fig12-flow-aggregation",
        description=(
            "Paper Fig. 12: three TCP flows start on Tunnel 1 under "
            "the Fig. 12 caps; periodic re-optimization spreads them "
            "over Tunnels 1-3 for ~30 Mbps aggregate (the staged "
            "replay lives in repro.experiments.fig12_flow_aggregation)"
        ),
        topology=TopologySpec("p4lab_fig12"),
        traffic=TrafficSpec(
            "explicit",
            n_flows=3,
            params={
                "flows": [
                    {
                        "flow_name": f"f{i}",
                        "src": "host1",
                        "dst": "host2",
                        "protocol": "tcp",
                        "tos": tos,
                        "duration": 90.0,
                    }
                    for i, tos in ((1, 32), (2, 64), (3, 96))
                ]
            },
        ),
        policy=PolicySpec(reoptimize_every=5.0),
        tunnels=(
            ("T1", 1, ("MIA", "SAO", "AMS")),
            ("T2", 2, ("MIA", "CHI", "AMS")),
            ("T3", 3, ("MIA", "CAL", "CHI", "AMS")),
        ),
        horizon=90.0,
        warmup=35.0,
    )
)

register(
    Scenario(
        name="qoe-mixed-steady",
        description=(
            "The QoE acceptance case: video/VoIP/bulk between host1 "
            "and host2 over a fat far path (12 Mbps, 300 ms) and a "
            "thin near path (1 Mbps, 2 ms); max_bandwidth herds "
            "everything onto the fat pipe, max_qoe sends VoIP to the "
            "low-latency tunnel and keeps the rate-hungry classes on "
            "the fat one"
        ),
        topology=TopologySpec(
            "global_p4_lab",
            {
                "rates": {
                    ("MIA", "SAO"): 12.0,
                    ("SAO", "AMS"): 12.0,
                    ("MIA", "CHI"): 1.0,
                    ("CHI", "AMS"): 1.0,
                },
                "delays": {
                    ("MIA", "SAO"): 150.0,
                    ("SAO", "AMS"): 150.0,
                },
            },
        ),
        traffic=TrafficSpec(
            "app_mix",
            n_flows=5,
            params={"pairs": [("host1", "host2")]},
        ),
        policy=PolicySpec(objective="max_qoe"),
        tunnels=(
            ("T1", 1, ("MIA", "SAO", "AMS")),
            ("T2", 2, ("MIA", "CHI", "AMS")),
        ),
        horizon=20.0,
        warmup=5.0,
    )
)

register(
    Scenario(
        name="qoe-mixed-flash",
        description=(
            "Mixed app classes on a six-router ring riding out a "
            "video flash crowd: steady video/VoIP/bulk, then a surge "
            "of video sessions for the middle fifth of the run, then "
            "recovery — QoE-aware placement under changing congestion"
        ),
        topology=TopologySpec(
            "ring",
            {
                "n_routers": 6,
                "n_host_pairs": 2,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        phases=(
            TrafficPhase(0.0, TrafficSpec("app_mix", n_flows=5), "steady"),
            TrafficPhase(
                0.4,
                TrafficSpec(
                    "app_mix",
                    n_flows=8,
                    params={"mix": {"video": 6, "voip": 1, "bulk": 1}},
                ),
                "video-surge",
            ),
            TrafficPhase(0.6, TrafficSpec("app_mix", n_flows=5), "recover"),
        ),
        policy=PolicySpec(objective="max_qoe", reoptimize_every=5.0),
        horizon=45.0,
    )
)

register(
    Scenario(
        name="line-link-flap",
        description=(
            "Worst case for the optimizer: the only path flaps, so "
            "drops are unavoidable and recovery is pure FIB/PBR "
            "healing"
        ),
        topology=TopologySpec("line", {"n_routers": 3, "rate_mbps": 50.0}),
        traffic=TrafficSpec("uniform", n_flows=2),
        failures=FailureSpec("link_flap", {"link": ("r0", "r1")}),
        horizon=30.0,
    )
)


# ----------------------------------------------------- dynamic built-ins
# Time-varying programs (see repro.scenarios.dynamic): phase timelines
# that change the offered load mid-run, so the closed loop must keep
# re-deciding instead of converging once.

register(
    Scenario(
        name="ring-diurnal",
        description=(
            "Six-router ring under one sinusoidal day: load climbs "
            "from 2 to 8 flows mid-run and ebbs away; the periodic "
            "re-optimizer rides the swell"
        ),
        topology=TopologySpec(
            "ring",
            {
                "n_routers": 6,
                "n_host_pairs": 2,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        phases=diurnal_phases(n_phases=6, peak_flows=8, trough_flows=2),
        policy=PolicySpec(reoptimize_every=5.0),
        horizon=60.0,
    )
)

register(
    Scenario(
        name="fat-tree-flash-crowd",
        description=(
            "k=4 fat tree hit by a flash crowd: steady background, "
            "then a 10-flow incast spike on h1 for a fifth of the "
            "run, then recovery"
        ),
        topology=TopologySpec(
            "fat_tree",
            {
                "k": 4,
                "n_hosts": 4,
                "rate_mbps": 25.0,
                "host_rate_mbps": 50.0,
            },
        ),
        phases=flash_crowd_phases(
            base_flows=3,
            spike_flows=10,
            spike_at=0.4,
            spike_len=0.2,
            hot_host="h1",
        ),
        policy=PolicySpec(reoptimize_every=5.0),
        horizon=45.0,
    )
)

register(
    Scenario(
        name="wan-elephant-schedule",
        description=(
            "Random WAN where the heavy-hitter set changes on a "
            "schedule: waves of 2, then 4, then 1 elephants arrive "
            "and depart, each with a mice background"
        ),
        topology=TopologySpec(
            "random_wan",
            {
                "n_routers": 8,
                "extra_edges": 5,
                "seed": 11,
                "n_host_pairs": 2,
                "rate_mbps": 50.0,
            },
        ),
        phases=elephant_schedule_phases(waves=(2, 4, 1), mice_per_wave=3),
        policy=PolicySpec(reoptimize_every=5.0),
        horizon=60.0,
    )
)

register(
    Scenario(
        name="geo-rolling-failures",
        description=(
            "Random geometric WAN with a regional outage rolling "
            "across three links while the load doubles mid-run; "
            "re-routing chases a moving hole"
        ),
        topology=TopologySpec(
            "random_geometric",
            {
                "n_routers": 10,
                "n_host_pairs": 2,
                "seed": 7,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        phases=(
            TrafficPhase(0.0, TrafficSpec("uniform", n_flows=3), "steady"),
            TrafficPhase(0.5, TrafficSpec("uniform", n_flows=6), "surge"),
        ),
        failures=FailureSpec("rolling", {"count": 3}),
        policy=PolicySpec(reoptimize_every=4.0),
        horizon=50.0,
    )
)

register(
    Scenario(
        name="p4lab-diurnal-hotspot",
        description=(
            "The paper's Global P4 Lab under Fig. 12 caps where the "
            "hot egress comes and goes: uniform trough, host2 "
            "hotspot peak, twice over the horizon"
        ),
        topology=TopologySpec("p4lab_fig12"),
        phases=(
            TrafficPhase(0.0, TrafficSpec("uniform", n_flows=2), "trough-1"),
            TrafficPhase(
                0.25,
                TrafficSpec(
                    "hotspot", n_flows=5, params={"hot_host": "host2"}
                ),
                "peak-1",
            ),
            TrafficPhase(0.5, TrafficSpec("uniform", n_flows=2), "trough-2"),
            TrafficPhase(
                0.75,
                TrafficSpec(
                    "hotspot", n_flows=4, params={"hot_host": "host2"}
                ),
                "peak-2",
            ),
        ),
        policy=PolicySpec(reoptimize_every=5.0),
        horizon=60.0,
    )
)

register(
    Scenario(
        name="ring-flash-udp",
        description=(
            "Ring with steady TCP that a CBR UDP burst tramples "
            "mid-run: elastic flows must shrink around the rigid "
            "wave, then reclaim the capacity"
        ),
        topology=TopologySpec(
            "ring",
            {
                "n_routers": 6,
                "n_host_pairs": 2,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        phases=(
            TrafficPhase(0.0, TrafficSpec("uniform", n_flows=3), "tcp-base"),
            TrafficPhase(
                0.4,
                TrafficSpec(
                    "bursty",
                    n_flows=6,
                    params={"n_bursts": 2, "rate_mbps": 20.0},
                ),
                "udp-wave",
            ),
            TrafficPhase(0.7, TrafficSpec("uniform", n_flows=3), "reclaim"),
        ),
        policy=PolicySpec(reoptimize_every=4.0),
        horizon=40.0,
    )
)

register(
    Scenario(
        name="wan-diurnal-flap",
        description=(
            "Random WAN with diurnal load riding out a periodically "
            "flapping link — time-varying traffic and failures at "
            "once"
        ),
        topology=TopologySpec(
            "random_wan",
            {
                "n_routers": 8,
                "extra_edges": 5,
                "seed": 11,
                "n_host_pairs": 2,
                "rate_mbps": 50.0,
            },
        ),
        phases=diurnal_phases(n_phases=4, peak_flows=6, trough_flows=2),
        failures=FailureSpec(
            "link_flap", {"at": 10.0, "restore_at": 20.0, "period": 20.0}
        ),
        policy=PolicySpec(reoptimize_every=5.0),
        horizon=60.0,
    )
)


# ------------------------------------------------------- scale built-ins
# The hybrid backend's tier (tags=("scale",)): thousands of flows per
# scenario — a few packet-level elephants over a fluid sea of mice.
# Registry-wide tools exclude these by default (list_scenarios
# include_scale=False / the CLI's --all); run them explicitly:
#
#     repro scenarios run scale-fat-tree-2k            # hybrid backend
#     repro scenarios sweep scale-geo-4k --seeds 0-2 --jobs 4
#
# Pure-DES and pure-fluid runs remain possible (--backend des|fluid) and
# are what the >=10x hybrid speedup benchmark measures against.

register(
    Scenario(
        name="scale-fat-tree-2k",
        description=(
            "k=4 fat tree carrying 2 000 flows: 8 TCP elephants "
            "(packet level) over a sea of CBR mice (fluid "
            "background) — the smallest scale-tier workload and "
            "the >=10x speedup benchmark case"
        ),
        topology=TopologySpec(
            "fat_tree",
            {
                "k": 4,
                "n_hosts": 16,
                "rate_mbps": 25.0,
                "host_rate_mbps": 50.0,
            },
        ),
        traffic=TrafficSpec(
            "scale_mix",
            n_flows=2000,
            params={"n_elephants": 8, "mice_rate_mbps": 0.5},
        ),
        backend="hybrid",
        horizon=30.0,
        tags=("scale",),
    )
)

register(
    Scenario(
        name="scale-fat-tree-5k",
        description=(
            "k=6 fat tree under 5 000 flows: 12 elephants spread "
            "over 24 hosts while mice waves keep every edge uplink "
            "warm"
        ),
        topology=TopologySpec(
            "fat_tree",
            {
                "k": 6,
                "n_hosts": 24,
                "rate_mbps": 40.0,
                "host_rate_mbps": 100.0,
            },
        ),
        traffic=TrafficSpec(
            "scale_mix",
            n_flows=5000,
            params={"n_elephants": 12, "mice_rate_mbps": 0.5},
        ),
        backend="hybrid",
        horizon=30.0,
        tags=("scale",),
    )
)

register(
    Scenario(
        name="scale-geo-4k",
        description=(
            "16-router random geometric WAN with 4 000 flows "
            "between six peripheral host pairs; distance-"
            "proportional delays make tunnel choice matter for the "
            "elephants"
        ),
        topology=TopologySpec(
            "random_geometric",
            {
                "n_routers": 16,
                "n_host_pairs": 6,
                "seed": 7,
                "rate_mbps": 60.0,
                "host_rate_mbps": 200.0,
            },
        ),
        traffic=TrafficSpec(
            "scale_mix",
            n_flows=4000,
            params={"n_elephants": 10, "mice_rate_mbps": 0.4},
        ),
        backend="hybrid",
        horizon=30.0,
        tags=("scale",),
    )
)

register(
    Scenario(
        name="scale-geo-rolling-10k",
        description=(
            "The stress ceiling: 20-router geometric WAN, 10 000 "
            "flows, and a regional outage rolling across four links "
            "— background re-solves chase the failures while the "
            "elephants re-route packet-level"
        ),
        topology=TopologySpec(
            "random_geometric",
            {
                "n_routers": 20,
                "n_host_pairs": 8,
                "seed": 3,
                "rate_mbps": 80.0,
                "host_rate_mbps": 200.0,
            },
        ),
        traffic=TrafficSpec(
            "scale_mix",
            n_flows=10000,
            params={"n_elephants": 16, "mice_rate_mbps": 0.3},
        ),
        failures=FailureSpec("rolling", {"count": 4}),
        policy=PolicySpec(reoptimize_every=5.0),
        backend="hybrid",
        horizon=40.0,
        tags=("scale",),
    )
)

register(
    Scenario(
        name="scale-qoe-mix-2k",
        description=(
            "Application-aware scale tier: 24 classified video/VoIP/"
            "bulk flows (packet-level foreground, per-flow QoE) over "
            "~2 000 generic CBR mice (fluid background) on a k=4 fat "
            "tree — the weekly mixed-app scale-smoke gate"
        ),
        topology=TopologySpec(
            "fat_tree",
            {
                "k": 4,
                "n_hosts": 16,
                "rate_mbps": 25.0,
                "host_rate_mbps": 50.0,
            },
        ),
        traffic=TrafficSpec(
            "app_mix",
            n_flows=2000,
            params={
                "mix": {"video": 10, "voip": 8, "bulk": 6},
                "n_mice": 1976,
                "mice_rate_mbps": 0.5,
                "video_rate_mbps": 3.0,
            },
        ),
        classes=FlowClassSpec(foreground=("video*", "voip*", "bulk*")),
        policy=PolicySpec(objective="max_qoe"),
        backend="hybrid",
        horizon=30.0,
        tags=("scale",),
    )
)

# The 100k/1M tier flips FlowClassSpec.aggregate_background on: mice
# stop existing even as individual fluid flows and become per-tunnel
# flow classes (see repro.scenarios.hybrid.BackgroundAggregate), so
# packet events scale with the elephants and solver cost with the
# tunnel count — the "millions of users" end of the roadmap.  See
# docs/PERFORMANCE.md for measured wall-clock and events/s per tier.

register(
    Scenario(
        name="scale-100k",
        description=(
            "k=6 fat tree offered 100 000 flows: 16 packet-level "
            "TCP elephants over aggregate-mice flow classes — the "
            "weekly scale-smoke gate for the 100k tier"
        ),
        topology=TopologySpec(
            "fat_tree",
            {
                "k": 6,
                "n_hosts": 36,
                "rate_mbps": 40.0,
                "host_rate_mbps": 100.0,
            },
        ),
        traffic=TrafficSpec(
            "scale_mix",
            n_flows=100_000,
            # 0.05 Mbps mice: ~6.5k concurrent mice offer ~325 Mbps —
            # enough to keep every uplink warm without starving the
            # packet-level elephants whose events the smoke gate floors
            params={"n_elephants": 16, "mice_rate_mbps": 0.05},
        ),
        classes=FlowClassSpec(aggregate_background=True),
        backend="hybrid",
        horizon=30.0,
        tags=("scale",),
    )
)

register(
    Scenario(
        name="scale-1m",
        description=(
            "One million offered flows on a 24-router geometric "
            "WAN: the aggregate-mice ceiling, where traffic "
            "generation itself dominates the run (run on demand; "
            "not part of the weekly gate)"
        ),
        topology=TopologySpec(
            "random_geometric",
            {
                "n_routers": 24,
                "n_host_pairs": 10,
                "seed": 5,
                "rate_mbps": 100.0,
                "host_rate_mbps": 400.0,
            },
        ),
        traffic=TrafficSpec(
            "scale_mix",
            n_flows=1_000_000,
            params={"n_elephants": 20, "mice_rate_mbps": 0.2},
        ),
        classes=FlowClassSpec(aggregate_background=True),
        backend="hybrid",
        horizon=30.0,
        tags=("scale",),
    )
)


# ---------------------------------------------------- service workloads
# Open-loop churn programs for service mode (see
# repro.framework.service_mode): flows arrive forever, hold, and depart;
# the framework is measured on steady-state SLOs — placement-latency
# percentiles, admission outcomes, re-optimization convergence — not on
# a finite scenario's end-state throughput.
#
#     repro service list
#     repro service run fat-tree-churn --rate 500 --duration 60 --seed 1

SERVICE_WORKLOADS: Dict[str, ServiceWorkload] = {}


def register_workload(workload: ServiceWorkload) -> ServiceWorkload:
    """Add one service workload; duplicate names are an error."""
    if workload.name in SERVICE_WORKLOADS:
        raise ValueError(f"workload {workload.name!r} already registered")
    SERVICE_WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> ServiceWorkload:
    try:
        return SERVICE_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown service workload {name!r}; "
            f"choose from {sorted(SERVICE_WORKLOADS)}"
        ) from None


def list_workloads() -> List[ServiceWorkload]:
    """All registered service workloads, sorted by name."""
    return [SERVICE_WORKLOADS[name] for name in sorted(SERVICE_WORKLOADS)]


register_workload(
    ServiceWorkload(
        name="ring-steady",
        description=(
            "Steady-state baseline: six-router ring under constant "
            "Poisson churn (~45 concurrent flows) with the 5 s "
            "re-optimizer on — the convergence-SLO reference point"
        ),
        topology=TopologySpec(
            "ring",
            {
                "n_routers": 6,
                "n_host_pairs": 2,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        churn=ChurnSpec(
            rate=30.0,
            mean_holding_s=1.5,
            n_pairs=4,
            admission_rate=500.0,
            admission_burst=64,
        ),
        policy=PolicySpec(reoptimize_every=5.0),
        duration=60.0,
        warmup=5.0,
    )
)

register_workload(
    ServiceWorkload(
        name="fat-tree-churn",
        description=(
            "Churn storm: k=4 fat tree absorbing hundreds of "
            "placements per second (run with --rate 500 for the "
            "acceptance load); re-optimization off so the measurement "
            "isolates the placement pipeline and admission control"
        ),
        topology=TopologySpec(
            "fat_tree",
            {
                "k": 4,
                "n_hosts": 8,
                "rate_mbps": 25.0,
                "host_rate_mbps": 50.0,
            },
        ),
        churn=ChurnSpec(
            rate=200.0,
            mean_holding_s=2.0,
            n_pairs=8,
            admission_rate=1000.0,
            admission_burst=64,
        ),
        duration=60.0,
        warmup=5.0,
    )
)

register_workload(
    ServiceWorkload(
        name="geo-diurnal",
        description=(
            "Diurnal rate on a random geometric WAN: Poisson arrivals "
            "thinned against a sinusoidal day (trough at t=0), "
            "heavy-tailed lognormal sessions, re-optimizer riding the "
            "swell"
        ),
        topology=TopologySpec(
            "random_geometric",
            {
                "n_routers": 10,
                "n_host_pairs": 2,
                "seed": 7,
                "rate_mbps": 50.0,
                "host_rate_mbps": 100.0,
            },
        ),
        churn=ChurnSpec(
            rate=40.0,
            rate_profile="diurnal",
            diurnal_amplitude=0.6,
            diurnal_period=60.0,
            holding="lognormal",
            mean_holding_s=2.0,
            sigma=0.8,
            n_pairs=4,
            admission_rate=500.0,
            admission_burst=64,
        ),
        policy=PolicySpec(reoptimize_every=5.0),
        duration=60.0,
        warmup=5.0,
    )
)
