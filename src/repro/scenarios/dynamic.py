"""Dynamic workloads: time-varying traffic programs as phase timelines.

Every built-in scenario used to be statically shaped — one traffic draw
at t=0 and one failure plan — so the controller's re-optimization tick
was never stressed by *changing* conditions.  This module adds the
time-varying regime the predictive-routing literature (NeuRoute, AMPF)
evaluates under: a scenario may declare a tuple of
:class:`TrafficPhase` entries, each switching the offered load at a
fraction of the horizon::

    0.0      0.33       0.66        1.0   (fraction of horizon)
    |--------|----------|-----------|
     phase 0   phase 1    phase 2
     uniform   hotspot    uniform          <- flash crowd program
     2 flows   12 flows   3 flows

:func:`compile_phases` lowers a timeline into one flat, validated list
of :class:`~repro.framework.scheduler.FlowRequest`\\ s — each phase's
pattern is generated against its own window and shifted to the phase
start — so **both** backends execute dynamics through their existing
machinery: the DES backend schedules every flow at its absolute start
offset, and the fluid backend re-solves the max-min allocation per
capacity epoch (phase transitions land on epoch edges) and time-weights
the epochs into one result.

Phase starts are *fractions* of the horizon, not absolute seconds, so a
``--horizon`` override (or ``Scenario.quick()``) rescales the whole
program instead of truncating it.

Program builders
----------------
:func:`diurnal_phases`
    Flow count follows one sinusoidal day: trough at t=0, peak mid-run.
:func:`flash_crowd_phases`
    Steady baseline, a hotspot spike of short flows mid-run, recovery.
:func:`elephant_schedule_phases`
    Waves of long-lived elephants arriving and departing on a schedule,
    each wave with its own mice background.

Rolling regional failures (a *failure* program, registered as the
``"rolling"`` :class:`~repro.scenarios.spec.FailureSpec` kind) live in
:mod:`repro.scenarios.failures`; combine them freely with any phase
timeline.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, List, Mapping, Sequence, Tuple

import numpy as np

from repro.framework.scheduler import FlowRequest
from repro.net.topology import Network

from .spec import TrafficSpec
from .traffic import MAX_FLOWS, generate_traffic

__all__ = [
    "TrafficPhase",
    "compile_phases",
    "diurnal_phases",
    "flash_crowd_phases",
    "elephant_schedule_phases",
]


@dataclass(frozen=True)
class TrafficPhase:
    """One segment of a time-varying traffic program.

    ``at_frac`` is the phase start as a fraction of the scenario horizon
    (``0 <= at_frac < 1``); the phase runs until the next phase starts
    (or the horizon ends).  ``traffic`` is the load offered during the
    phase — any registered pattern, generated against the phase window.
    """

    at_frac: float
    traffic: TrafficSpec
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_frac < 1.0:
            raise ValueError(f"at_frac must be in [0, 1), got {self.at_frac}")


def compile_phases(
    network: Network,
    phases: Sequence[TrafficPhase],
    horizon: float,
    rng: np.random.Generator,
) -> List[FlowRequest]:
    """Lower a phase timeline into one flat list of FlowRequests.

    Each phase's pattern is generated with the phase window as its
    horizon, then every request is shifted by the phase start and
    renamed ``p{i}.{name}`` so names stay unique across phases.  ToS
    bytes are reassigned globally (1..255 in compiled order) because
    per-phase patterns each start from ToS 1 — two phases' flows on the
    same host pair must not share a ToS or PBR would steer them as one.

    A flow whose pattern gives it a duration outliving its phase window
    simply keeps sending into later phases (that is how elephant
    schedules express arrivals and departures).
    """
    ordered = sorted(phases, key=lambda p: p.at_frac)
    requests: List[FlowRequest] = []
    for index, phase in enumerate(ordered):
        start = phase.at_frac * horizon
        end = (
            ordered[index + 1].at_frac * horizon
            if index + 1 < len(ordered)
            else horizon
        )
        window = end - start
        if window <= 0.0:
            raise ValueError(
                f"phase {index} ({phase.label or phase.at_frac}) has an "
                "empty window; phase at_fracs must be strictly increasing"
            )
        for request in generate_traffic(network, phase.traffic, window, rng):
            requests.append(
                dataclasses.replace(
                    request,
                    flow_name=f"p{index}.{request.flow_name}",
                    start_at=round(start + request.start_at, 3),
                )
            )
    if len(requests) > MAX_FLOWS:
        raise ValueError(
            f"phase timeline compiles to {len(requests)} flows, beyond "
            f"the {MAX_FLOWS} distinct ToS bytes available"
        )
    compiled = [
        dataclasses.replace(request, tos=index + 1)
        for index, request in enumerate(requests)
    ]
    for request in compiled:
        request.validate()
    return compiled


def _spec(
    pattern: str, n_flows: int, params: Mapping[str, Any]
) -> TrafficSpec:
    return TrafficSpec(pattern, n_flows=int(n_flows), params=dict(params))


def diurnal_phases(
    n_phases: int = 6,
    peak_flows: int = 10,
    trough_flows: int = 2,
    pattern: str = "uniform",
    params: Mapping[str, Any] = (),
) -> Tuple[TrafficPhase, ...]:
    """A sinusoidal day: flow count rises from ``trough_flows`` at t=0
    to ``peak_flows`` mid-horizon and falls back — the diurnal load
    curve predictive-TE papers evaluate forecasting under."""
    if n_phases < 2:
        raise ValueError("a diurnal program needs at least two phases")
    if peak_flows < trough_flows:
        raise ValueError("peak_flows must be >= trough_flows")
    phases = []
    for i in range(n_phases):
        frac = i / n_phases
        level = 0.5 * (1.0 - math.cos(2.0 * math.pi * frac))
        n = trough_flows + round(level * (peak_flows - trough_flows))
        phases.append(
            TrafficPhase(
                at_frac=round(frac, 6),
                traffic=_spec(pattern, n, dict(params)),
                label=f"diurnal-{i}",
            )
        )
    return tuple(phases)


def flash_crowd_phases(
    base_flows: int = 3,
    spike_flows: int = 12,
    spike_at: float = 0.4,
    spike_len: float = 0.2,
    hot_host: str = "",
    pattern: str = "uniform",
) -> Tuple[TrafficPhase, ...]:
    """Steady baseline, then a hotspot spike converging on one host, then
    recovery — the flash-crowd transient that forces re-optimization."""
    if not 0.0 < spike_at < spike_at + spike_len < 1.0:
        raise ValueError("spike window must fit strictly inside (0, 1)")
    spike_params = {"hot_host": hot_host} if hot_host else {}
    return (
        TrafficPhase(0.0, _spec(pattern, base_flows, {}), "pre-crowd"),
        TrafficPhase(
            round(spike_at, 6),
            _spec("hotspot", spike_flows, spike_params),
            "flash-crowd",
        ),
        TrafficPhase(
            round(spike_at + spike_len, 6),
            _spec(pattern, base_flows, {}),
            "recovery",
        ),
    )


def elephant_schedule_phases(
    waves: Sequence[int] = (2, 4, 1),
    mice_per_wave: int = 3,
) -> Tuple[TrafficPhase, ...]:
    """Elephants arriving and departing on a schedule: wave ``i`` brings
    ``waves[i]`` long-lived elephants (spanning its phase) plus a mice
    background, so the heavy-hitter set changes mid-run."""
    if not waves:
        raise ValueError("schedule needs at least one wave")
    n = len(waves)
    return tuple(
        TrafficPhase(
            at_frac=round(i / n, 6),
            traffic=_spec(
                "elephant_mice",
                elephants + mice_per_wave,
                {"n_elephants": int(elephants)},
            ),
            label=f"wave-{i}",
        )
        for i, elephants in enumerate(waves)
    )
