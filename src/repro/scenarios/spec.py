"""Declarative scenario specifications.

A :class:`Scenario` is a small, immutable value object that fully
describes one evaluation of the framework:

====================  ====================================================
component             declares
====================  ====================================================
:class:`TopologySpec` which network to build (generator name + kwargs)
:class:`TrafficSpec`  which flows to offer (pattern name + kwargs)
:class:`FailureSpec`  which links/nodes fail, and when
:class:`PolicySpec`   how the framework reacts (objective, regressor,
                      re-optimization period, tunnel fan-out)
:class:`FlowClassSpec` how the hybrid backend splits offered flows into
                      packet-level foreground and fluid background
``backend``           ``"des"`` (packet-level discrete-event emulation via
                      :class:`repro.framework.SelfDrivingNetwork`),
                      ``"fluid"`` (closed-form max-min steady states via
                      :mod:`repro.net.fluid`) or ``"hybrid"``
                      (foreground flows packet-level, background flow
                      classes aggregated into per-link fluid load — see
                      :mod:`repro.scenarios.hybrid`)
====================  ====================================================

Everything downstream — tunnel derivation, traffic generation, failure
scheduling, execution, metric collection — is owned by
:class:`repro.scenarios.runner.ScenarioRunner`.  Specs never hold live
objects, so the same ``Scenario`` can be run repeatedly, on either
backend, with overridden seeds/horizons, and two runs with the same seed
produce identical :class:`~repro.scenarios.runner.ScenarioResult`\\ s.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional, Tuple

from repro.net.topology import Network
from repro.topologies import (
    fat_tree_topology,
    fig12_capacities,
    global_p4_lab,
    line_topology,
    random_geometric,
    random_wan,
    ring_topology,
)

if TYPE_CHECKING:  # pragma: no cover
    from .dynamic import TrafficPhase

__all__ = [
    "TopologySpec",
    "TrafficSpec",
    "FailureSpec",
    "PolicySpec",
    "FlowClassSpec",
    "Scenario",
    "BACKENDS",
    "TOPOLOGY_BUILDERS",
]

#: Execution backends a scenario (or an override) may name.
BACKENDS = ("des", "fluid", "hybrid")


def _p4lab_fig12(**overrides: Any) -> Network:
    """Global P4 Lab with the paper's Fig. 12 link caps (the default
    "congested" configuration of the testbed)."""
    params: Dict[str, Any] = {"rates": fig12_capacities()}
    params.update(overrides)
    return global_p4_lab(**params)


#: Topology generator registry: ``TopologySpec.kind`` -> builder returning
#: a built :class:`~repro.net.topology.Network`.
TOPOLOGY_BUILDERS: Dict[str, Callable[..., Network]] = {
    "line": line_topology,
    "ring": ring_topology,
    "fat_tree": fat_tree_topology,
    "random_geometric": random_geometric,
    "random_wan": random_wan,
    "global_p4_lab": global_p4_lab,
    "p4lab_fig12": _p4lab_fig12,
}


@dataclass(frozen=True)
class TopologySpec:
    """Which network to build: a generator name plus its kwargs."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> Network:
        try:
            builder = TOPOLOGY_BUILDERS[self.kind]
        except KeyError:
            raise KeyError(
                f"unknown topology kind {self.kind!r}; "
                f"choose from {sorted(TOPOLOGY_BUILDERS)}"
            ) from None
        return builder(**dict(self.params))


@dataclass(frozen=True)
class TrafficSpec:
    """Which flows to offer: a pattern name, a flow budget and kwargs.

    Patterns are registered in :mod:`repro.scenarios.traffic`; the
    ``explicit`` pattern takes literal flow dicts in
    ``params["flows"]`` (used by the paper-figure scenarios).
    """

    pattern: str = "uniform"
    n_flows: int = 6
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FailureSpec:
    """Which impairments strike the network, and when.

    Kinds (see :mod:`repro.scenarios.failures`):

    - ``"none"`` — healthy network (the default);
    - ``"link_flap"`` — one link fails at ``params["at"]`` and recovers at
      ``params["restore_at"]``, optionally repeating every
      ``params["period"]`` seconds;
    - ``"node_down"`` — every link of ``params["node"]`` fails at
      ``params["at"]`` (and recovers at ``params["restore_at"]`` if set);
    - ``"rolling"`` — a regional outage sweeping across
      ``params["links"]`` (or ``params["count"]`` contiguous picks): each
      link fails for ``params["dwell"]`` seconds and recovers as the next
      one goes down, starting at ``params["at"]``.
    """

    kind: str = "none"
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class PolicySpec:
    """How the framework reacts to what telemetry shows it.

    Parameters
    ----------
    objective:
        Hecate objective forwarded with every flow request
        (``max_bandwidth`` / ``min_latency`` / ``min_max_utilization``).
    model:
        Regressor behind Hecate's forecaster: ``"linear"`` (fast,
        deterministic — the default for scenario sweeps) or ``"rfr"``
        (the paper's Random Forest).
    reoptimize_every:
        If set, the Controller re-runs the joint flow->tunnel assignment
        this often and migrates flows (the self-driving loop).
    reopt_threshold_mbps:
        Incremental re-optimization sensitivity: a flow group is only
        re-solved when a candidate link's telemetry moved more than this
        many Mbps since the group's last solve (membership and link
        up/down changes always re-solve).
    k_paths:
        Candidate tunnels derived per (ingress, egress) router pair when
        the scenario does not pin explicit tunnels.
    telemetry_interval:
        Sampling period of the link/path telemetry agents (seconds).
    """

    objective: str = "max_bandwidth"
    model: str = "linear"
    reoptimize_every: Optional[float] = None
    reopt_threshold_mbps: float = 1.0
    k_paths: int = 3
    telemetry_interval: float = 1.0


@dataclass(frozen=True)
class FlowClassSpec:
    """How the ``hybrid`` backend splits the offered load in two.

    Flows whose names match a ``foreground`` pattern (:mod:`fnmatch`
    globs, checked in offered order) are emulated packet-by-packet
    through the full framework — ACLs, PBR, Hecate placement,
    AIMD/CBR applications.  Everything else is a *background* class:
    aggregated per (ingress, egress) group, spread round-robin over the
    group's candidate tunnels (unmanaged ECMP-style mice, never
    individually steered), solved as a fluid max-min allocation per
    epoch, and applied to the emulator as per-link background load.

    Parameters
    ----------
    foreground:
        Name globs promoting a flow to the packet level.  The default
        matches the elephants every heavy-tailed traffic pattern emits
        plus an explicit ``fg*`` escape hatch.  ICMP probes are always
        promoted regardless of globs or budget — they are latency
        instruments whose whole purpose needs the packet domain.
    max_foreground:
        Hard cap on packet-level flows; matching flows beyond it are
        demoted to background (offered order wins) so one glob cannot
        accidentally drag a 10k-flow scenario into pure DES cost.
    epoch_s:
        Cadence of the background re-solve grid in seconds; phase
        transitions and failure events are always epoch edges on top of
        the grid.  ``None`` disables the grid (solve only at phase /
        failure edges).
    max_epochs:
        Upper bound on solved epochs per run; a finer grid than this is
        coarsened (event coalescing) so a long horizon cannot explode
        into tens of thousands of fluid solves.
    """

    foreground: Tuple[str, ...] = ("elephant*", "fg*")
    max_foreground: int = 64
    epoch_s: Optional[float] = 1.0
    max_epochs: int = 256

    def __post_init__(self) -> None:
        if self.max_foreground < 0:
            raise ValueError("max_foreground must be >= 0")
        if self.epoch_s is not None and self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive (or None)")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")


@dataclass(frozen=True)
class Scenario:
    """One fully-described evaluation of the framework.

    ``horizon`` is measured from the instant traffic is offered; the DES
    backend first runs ``warmup`` seconds of telemetry-only time so
    Hecate has history to decide with (the paper warms its testbed the
    same way).  ``tunnels``, when set, pins explicit candidate tunnels
    as ``(name, tunnel_id, router path)`` triples — the paper scenarios
    use this to reproduce Tunnels 1-3; generated topologies leave it
    ``None`` and let the runner derive ``k_paths`` shortest paths per
    (ingress, egress) pair.

    ``phases``, when set, declares a *time-varying* traffic program as a
    tuple of :class:`~repro.scenarios.dynamic.TrafficPhase` entries
    (strictly increasing ``at_frac`` horizon fractions); the ``traffic``
    field is then ignored and the runner compiles the timeline via
    :func:`~repro.scenarios.dynamic.compile_phases`.
    """

    name: str
    description: str
    topology: TopologySpec
    traffic: TrafficSpec = TrafficSpec()
    failures: FailureSpec = FailureSpec()
    policy: PolicySpec = PolicySpec()
    classes: FlowClassSpec = FlowClassSpec()
    backend: str = "des"
    horizon: float = 60.0
    warmup: float = 5.0
    seed: int = 0
    tunnels: Optional[Tuple[Tuple[str, int, Tuple[str, ...]], ...]] = None
    phases: Optional[Tuple["TrafficPhase", ...]] = None
    #: free-form labels; the ``"scale"`` tag marks scenarios sized for
    #: the hybrid backend (thousands of flows) that registry-wide tools
    #: (``--all`` sweeps, whole-suite tests) exclude by default.
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.phases is not None:
            if not self.phases:
                raise ValueError("phases, when set, must be non-empty")
            fracs = [phase.at_frac for phase in self.phases]
            if fracs != sorted(set(fracs)):
                raise ValueError(
                    "phase at_fracs must be strictly increasing, "
                    f"got {fracs}"
                )

    def with_overrides(self, **changes: Any) -> "Scenario":
        """A copy with the given fields replaced (spec stays immutable)."""
        return dataclasses.replace(self, **changes)

    def quick(self, horizon: float = 8.0, warmup: float = 2.0) -> "Scenario":
        """A short-horizon copy for tests and smoke runs."""
        return self.with_overrides(horizon=horizon, warmup=warmup)
