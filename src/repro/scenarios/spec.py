"""Declarative scenario specifications.

A :class:`Scenario` is a small, immutable value object that fully
describes one evaluation of the framework:

====================  ====================================================
component             declares
====================  ====================================================
:class:`TopologySpec` which network to build (generator name + kwargs)
:class:`TrafficSpec`  which flows to offer (pattern name + kwargs)
:class:`FailureSpec`  which links/nodes fail, and when
:class:`PolicySpec`   how the framework reacts (objective, regressor,
                      re-optimization period, tunnel fan-out)
:class:`FlowClassSpec` how the hybrid backend splits offered flows into
                      packet-level foreground and fluid background
``backend``           ``"des"`` (packet-level discrete-event emulation via
                      :class:`repro.framework.SelfDrivingNetwork`),
                      ``"fluid"`` (closed-form max-min steady states via
                      :mod:`repro.net.fluid`) or ``"hybrid"``
                      (foreground flows packet-level, background flow
                      classes aggregated into per-link fluid load — see
                      :mod:`repro.scenarios.hybrid`)
====================  ====================================================

Everything downstream — tunnel derivation, traffic generation, failure
scheduling, execution, metric collection — is owned by
:class:`repro.scenarios.runner.ScenarioRunner`.  Specs never hold live
objects, so the same ``Scenario`` can be run repeatedly, on either
backend, with overridden seeds/horizons, and two runs with the same seed
produce identical :class:`~repro.scenarios.runner.ScenarioResult`\\ s.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional, Tuple

from repro.net.topology import Network
from repro.topologies import (
    fat_tree_topology,
    fig12_capacities,
    global_p4_lab,
    line_topology,
    random_geometric,
    random_wan,
    ring_topology,
)

if TYPE_CHECKING:  # pragma: no cover
    from .dynamic import TrafficPhase

__all__ = [
    "TopologySpec",
    "TrafficSpec",
    "FailureSpec",
    "PolicySpec",
    "FlowClassSpec",
    "ChurnSpec",
    "Scenario",
    "ServiceWorkload",
    "BACKENDS",
    "TOPOLOGY_BUILDERS",
]

#: Built-in execution backends a scenario (or an override) may name.
#: Static so spec validation never triggers registry loading mid-import;
#: third-party names registered via ``repro.backends.register_backend``
#: are accepted through the registry fallback in ``Scenario``.
BACKENDS = ("des", "fluid", "hybrid", "emulation-mock")


def _plugin_backend(name: str) -> bool:
    """Whether ``name`` is a registered non-builtin execution backend.

    Late import: builtin names short-circuit on the static ``BACKENDS``
    tuple above, so this is only consulted for plugin names — and the
    registry's own re-entrancy guard makes it safe even while the
    builtin backends are still importing this module."""
    from repro.backends.base import is_registered

    return is_registered(name)


def _p4lab_fig12(**overrides: Any) -> Network:
    """Global P4 Lab with the paper's Fig. 12 link caps (the default
    "congested" configuration of the testbed)."""
    params: Dict[str, Any] = {"rates": fig12_capacities()}
    params.update(overrides)
    return global_p4_lab(**params)


#: Topology generator registry: ``TopologySpec.kind`` -> builder returning
#: a built :class:`~repro.net.topology.Network`.
TOPOLOGY_BUILDERS: Dict[str, Callable[..., Network]] = {
    "line": line_topology,
    "ring": ring_topology,
    "fat_tree": fat_tree_topology,
    "random_geometric": random_geometric,
    "random_wan": random_wan,
    "global_p4_lab": global_p4_lab,
    "p4lab_fig12": _p4lab_fig12,
}


@dataclass(frozen=True)
class TopologySpec:
    """Which network to build: a generator name plus its kwargs."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> Network:
        try:
            builder = TOPOLOGY_BUILDERS[self.kind]
        except KeyError:
            raise KeyError(
                f"unknown topology kind {self.kind!r}; "
                f"choose from {sorted(TOPOLOGY_BUILDERS)}"
            ) from None
        return builder(**dict(self.params))


@dataclass(frozen=True)
class TrafficSpec:
    """Which flows to offer: a pattern name, a flow budget and kwargs.

    Patterns are registered in :mod:`repro.scenarios.traffic`; the
    ``explicit`` pattern takes literal flow dicts in
    ``params["flows"]`` (used by the paper-figure scenarios).
    """

    pattern: str = "uniform"
    n_flows: int = 6
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FailureSpec:
    """Which impairments strike the network, and when.

    Kinds (see :mod:`repro.scenarios.failures`):

    - ``"none"`` — healthy network (the default);
    - ``"link_flap"`` — one link fails at ``params["at"]`` and recovers at
      ``params["restore_at"]``, optionally repeating every
      ``params["period"]`` seconds;
    - ``"node_down"`` — every link of ``params["node"]`` fails at
      ``params["at"]`` (and recovers at ``params["restore_at"]`` if set);
    - ``"rolling"`` — a regional outage sweeping across
      ``params["links"]`` (or ``params["count"]`` contiguous picks): each
      link fails for ``params["dwell"]`` seconds and recovers as the next
      one goes down, starting at ``params["at"]``.
    """

    kind: str = "none"
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class PolicySpec:
    """How the framework reacts to what telemetry shows it.

    Parameters
    ----------
    objective:
        Hecate objective forwarded with every flow request — any name in
        the pluggable registry (``repro objectives list``; built-ins are
        ``max_bandwidth`` / ``min_latency`` / ``min_max_utilization`` /
        ``max_qoe``, see :mod:`repro.hecate.objectives`).
    model:
        Regressor behind Hecate's forecaster: ``"linear"`` (fast,
        deterministic — the default for scenario sweeps) or ``"rfr"``
        (the paper's Random Forest).
    reoptimize_every:
        If set, the Controller re-runs the joint flow->tunnel assignment
        this often and migrates flows (the self-driving loop).
    reopt_threshold_mbps:
        Incremental re-optimization sensitivity: a flow group is only
        re-solved when a candidate link's telemetry moved more than this
        many Mbps since the group's last solve (membership and link
        up/down changes always re-solve).
    k_paths:
        Candidate tunnels derived per (ingress, egress) router pair when
        the scenario does not pin explicit tunnels.
    telemetry_interval:
        Sampling period of the link/path telemetry agents (seconds).
    """

    objective: str = "max_bandwidth"
    model: str = "linear"
    reoptimize_every: Optional[float] = None
    reopt_threshold_mbps: float = 1.0
    k_paths: int = 3
    telemetry_interval: float = 1.0


@dataclass(frozen=True)
class FlowClassSpec:
    """How the ``hybrid`` backend splits the offered load in two.

    Flows whose names match a ``foreground`` pattern (:mod:`fnmatch`
    globs, checked in offered order) are emulated packet-by-packet
    through the full framework — ACLs, PBR, Hecate placement,
    AIMD/CBR applications.  Everything else is a *background* class:
    aggregated per (ingress, egress) group, spread round-robin over the
    group's candidate tunnels (unmanaged ECMP-style mice, never
    individually steered), solved as a fluid max-min allocation per
    epoch, and applied to the emulator as per-link background load.

    Parameters
    ----------
    foreground:
        Name globs promoting a flow to the packet level.  The default
        matches the elephants every heavy-tailed traffic pattern emits
        plus an explicit ``fg*`` escape hatch.  ICMP probes are always
        promoted regardless of globs or budget — they are latency
        instruments whose whole purpose needs the packet domain.
    max_foreground:
        Hard cap on packet-level flows; matching flows beyond it are
        demoted to background (offered order wins) so one glob cannot
        accidentally drag a 10k-flow scenario into pure DES cost.
    epoch_s:
        Cadence of the background re-solve grid in seconds; phase
        transitions and failure events are always epoch edges on top of
        the grid.  ``None`` disables the grid (solve only at phase /
        failure edges).
    max_epochs:
        Upper bound on solved epochs per run; a finer grid than this is
        coarsened (event coalescing) so a long horizon cannot explode
        into tens of thousands of fluid solves.
    aggregate_background:
        When True, background flows never exist individually even in
        the fluid domain: they are collapsed into per-tunnel **flow
        classes** (columnar arrays + one weighted solver variable per
        class — see :class:`repro.scenarios.hybrid.BackgroundAggregate`)
        so solve cost scales with tunnels, not users.  Routing is
        unchanged (same round-robin spreading); per-mouse rates are no
        longer reported individually (``ScenarioResult.per_flow_mbps``
        then covers foreground only, with class totals in
        ``background_mbps``).  The default keeps the exact per-flow
        fluid bookkeeping, which small suites assert against.
    """

    foreground: Tuple[str, ...] = ("elephant*", "fg*")
    max_foreground: int = 64
    epoch_s: Optional[float] = 1.0
    max_epochs: int = 256
    aggregate_background: bool = False

    def __post_init__(self) -> None:
        if self.max_foreground < 0:
            raise ValueError("max_foreground must be >= 0")
        if self.epoch_s is not None and self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive (or None)")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")


@dataclass(frozen=True)
class ChurnSpec:
    """Open-loop offered load for service mode: how flows arrive, how
    long they hold, and what the admission controller tolerates.

    Arrivals
    --------
    ``arrival="poisson"`` draws exponential inter-arrival gaps at
    ``rate`` flows/second; ``rate_profile="diurnal"`` modulates that
    rate sinusoidally (thinning at the peak rate, so the schedule stays
    a deterministic function of the seed):
    ``rate(t) = rate * (1 + diurnal_amplitude * sin(2*pi*t/diurnal_period
    - pi/2))`` — trough at t=0, peak half a period in.
    ``arrival="trace"`` replays the explicit ``trace`` tuple of arrival
    times instead (rate/profile ignored).

    Holding times
    -------------
    ``holding="exponential"`` draws from Exp(``mean_holding_s``);
    ``"lognormal"`` from a lognormal with that mean and shape
    ``sigma`` (heavy-tailed sessions).

    Admission
    ---------
    A token bucket refilling at ``admission_rate`` tokens/second with
    depth ``admission_burst`` gates every submission.  On exhaustion,
    ``on_exhausted="reject"`` drops the request (counted), while
    ``"defer"`` queues it for replay — in submission order — at the
    next batch tick with tokens available.

    ``batch_interval_s`` is the driver's virtual-time batching quantum:
    arrivals due within one quantum are submitted together (placement
    latency is measured from arrival to the admitting batch tick).
    ``launch_apps=False`` (the default) places flows on the control
    plane only — at hundreds of placements/second the DES cannot afford
    per-packet events, and admission/SLO behaviour is control-plane.
    ``n_pairs`` bounds how many (src, dst) host pairs the workload
    spreads arrivals over (tunnels are derived for exactly those pairs).
    """

    rate: float = 50.0
    arrival: str = "poisson"
    trace: Optional[Tuple[float, ...]] = None
    rate_profile: str = "constant"
    diurnal_amplitude: float = 0.5
    diurnal_period: float = 60.0
    holding: str = "exponential"
    mean_holding_s: float = 2.0
    sigma: float = 1.0
    n_pairs: int = 4
    protocol: str = "udp"
    rate_mbps: float = 2.0
    batch_interval_s: float = 0.1
    admission_rate: float = 1000.0
    admission_burst: int = 64
    on_exhausted: str = "defer"
    launch_apps: bool = False

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "trace"):
            raise ValueError(
                f"arrival must be 'poisson' or 'trace', got {self.arrival!r}"
            )
        if self.arrival == "trace":
            if not self.trace:
                raise ValueError("arrival='trace' needs a non-empty trace")
            times = tuple(self.trace)
            if any(t < 0 for t in times) or list(times) != sorted(times):
                raise ValueError("trace times must be sorted and non-negative")
        elif self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.rate_profile not in ("constant", "diurnal"):
            raise ValueError(
                "rate_profile must be 'constant' or 'diurnal', "
                f"got {self.rate_profile!r}"
            )
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if self.holding not in ("exponential", "lognormal"):
            raise ValueError(
                "holding must be 'exponential' or 'lognormal', "
                f"got {self.holding!r}"
            )
        if self.mean_holding_s <= 0:
            raise ValueError("mean_holding_s must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.n_pairs < 1:
            raise ValueError("n_pairs must be >= 1")
        if self.batch_interval_s <= 0:
            raise ValueError("batch_interval_s must be positive")
        if self.admission_rate < 0:
            raise ValueError("admission_rate must be non-negative")
        if self.admission_burst < 0:
            raise ValueError("admission_burst must be >= 0")
        if self.on_exhausted not in ("reject", "defer"):
            raise ValueError(
                "on_exhausted must be 'reject' or 'defer', "
                f"got {self.on_exhausted!r}"
            )
        if self.protocol not in ("tcp", "udp", "icmp"):
            raise ValueError(f"unsupported protocol {self.protocol!r}")
        if self.rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")


@dataclass(frozen=True)
class ServiceWorkload:
    """One registered open-loop service-mode run: a topology under a
    churn program, evaluated for ``duration`` seconds of virtual time
    (the first ``warmup`` seconds excluded from SLO percentiles, never
    from admission counters).

    The service driver (:mod:`repro.framework.service_mode`) owns
    execution; this spec stays a pure value object like
    :class:`Scenario`, so registered workloads can be re-run with
    overridden rate/duration/seed and same-seed runs are bit-identical.
    """

    name: str
    description: str
    topology: TopologySpec
    churn: ChurnSpec = ChurnSpec()
    policy: PolicySpec = PolicySpec()
    duration: float = 60.0
    warmup: float = 5.0
    seed: int = 0
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must satisfy 0 <= warmup < duration")

    def with_overrides(self, **changes: Any) -> "ServiceWorkload":
        """A copy with the given fields replaced (spec stays immutable)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class Scenario:
    """One fully-described evaluation of the framework.

    ``horizon`` is measured from the instant traffic is offered; the DES
    backend first runs ``warmup`` seconds of telemetry-only time so
    Hecate has history to decide with (the paper warms its testbed the
    same way).  ``tunnels``, when set, pins explicit candidate tunnels
    as ``(name, tunnel_id, router path)`` triples — the paper scenarios
    use this to reproduce Tunnels 1-3; generated topologies leave it
    ``None`` and let the runner derive ``k_paths`` shortest paths per
    (ingress, egress) pair.

    ``phases``, when set, declares a *time-varying* traffic program as a
    tuple of :class:`~repro.scenarios.dynamic.TrafficPhase` entries
    (strictly increasing ``at_frac`` horizon fractions); the ``traffic``
    field is then ignored and the runner compiles the timeline via
    :func:`~repro.scenarios.dynamic.compile_phases`.
    """

    name: str
    description: str
    topology: TopologySpec
    traffic: TrafficSpec = TrafficSpec()
    failures: FailureSpec = FailureSpec()
    policy: PolicySpec = PolicySpec()
    classes: FlowClassSpec = FlowClassSpec()
    backend: str = "des"
    horizon: float = 60.0
    warmup: float = 5.0
    seed: int = 0
    tunnels: Optional[Tuple[Tuple[str, int, Tuple[str, ...]], ...]] = None
    phases: Optional[Tuple["TrafficPhase", ...]] = None
    #: free-form labels; the ``"scale"`` tag marks scenarios sized for
    #: the hybrid backend (thousands of flows) that registry-wide tools
    #: (``--all`` sweeps, whole-suite tests) exclude by default.
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS and not _plugin_backend(
            self.backend
        ):
            raise ValueError(
                f"backend must be one of {BACKENDS} or a registered "
                f"execution backend, got {self.backend!r}"
            )
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.phases is not None:
            if not self.phases:
                raise ValueError("phases, when set, must be non-empty")
            fracs = [phase.at_frac for phase in self.phases]
            if fracs != sorted(set(fracs)):
                raise ValueError(
                    "phase at_fracs must be strictly increasing, "
                    f"got {fracs}"
                )

    def with_overrides(self, **changes: Any) -> "Scenario":
        """A copy with the given fields replaced (spec stays immutable)."""
        return dataclasses.replace(self, **changes)

    def quick(self, horizon: float = 8.0, warmup: float = 2.0) -> "Scenario":
        """A short-horizon copy for tests and smoke runs."""
        return self.with_overrides(horizon=horizon, warmup=warmup)
