"""Failure models: FailureSpec -> a deterministic event plan.

A plan is a tuple of ``FailureEvent(at, action, a, b)`` entries with
``action`` in ``{"fail", "restore"}`` and times relative to the start of
traffic.  Planning is separated from execution so both backends consume
the identical plan: the DES runner schedules each event on the simulator
(:meth:`~repro.net.topology.Network.fail_link` /
:meth:`~repro.net.topology.Network.restore_link`), while the fluid
backend slices the horizon into capacity epochs at the same instants.

Kinds
-----
``none``
    No events.
``link_flap``
    One link goes down at ``at`` (default: 40% of the horizon) and comes
    back at ``restore_at`` (default: 70%).  With ``period`` set, the
    down/up cycle repeats until the horizon ends.  The link is
    ``params["link"]`` or, unpinned, a deterministic rng pick among
    router-router links.
``node_down``
    Every link of router ``params["node"]`` (or an rng pick among
    non-edge routers, falling back to any router) fails at ``at``;
    ``restore_at`` optionally heals them.
``rolling``
    A regional outage sweeping across a sequence of links: each link in
    ``params["links"]`` (or ``params["count"]`` contiguous picks among
    router-router links, default 3) fails for ``params["dwell"]``
    seconds (default 15% of the horizon) and recovers exactly as the
    next link goes down, starting at ``params["at"]`` (default 20% of
    the horizon).  The moving hole keeps the self-driving loop
    re-routing throughout the run instead of reacting to one event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.net.topology import Network

from .spec import FailureSpec

__all__ = ["FailureEvent", "plan_failures"]


@dataclass(frozen=True)
class FailureEvent:
    """One link state change, relative to traffic start."""

    at: float
    action: str  # "fail" | "restore"
    a: str
    b: str


def _router_links(network: Network) -> List[Tuple[str, str]]:
    return sorted(
        tuple(sorted(key))
        for key in network.links
        if all(end in network.routers for end in key)
    )


def _pick_link(
    network: Network, spec: FailureSpec, rng: np.random.Generator
) -> Tuple[str, str]:
    link = spec.params.get("link")
    if link is not None:
        a, b = link
        network.link(a, b)  # raises KeyError for unknown links
        return a, b
    candidates = _router_links(network)
    if not candidates:
        raise ValueError("topology has no router-router links to fail")
    return candidates[int(rng.integers(len(candidates)))]


def _link_flap(
    network: Network,
    spec: FailureSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FailureEvent]:
    a, b = _pick_link(network, spec, rng)
    at = float(spec.params.get("at", 0.4 * horizon))
    restore_at = float(spec.params.get("restore_at", 0.7 * horizon))
    if restore_at <= at:
        raise ValueError("restore_at must come after at")
    period = spec.params.get("period")
    events = []
    while at < horizon:
        events.append(FailureEvent(at=at, action="fail", a=a, b=b))
        if restore_at < horizon:
            events.append(
                FailureEvent(at=restore_at, action="restore", a=a, b=b)
            )
        if period is None:
            break
        at += float(period)
        restore_at += float(period)
    return events


def _node_down(
    network: Network,
    spec: FailureSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FailureEvent]:
    node = spec.params.get("node")
    if node is None:
        core = sorted(
            name for name, router in network.routers.items() if not router.edge
        ) or sorted(network.routers)
        node = core[int(rng.integers(len(core)))]
    if node not in network.routers:
        raise ValueError(f"{node!r} is not a router")
    at = float(spec.params.get("at", 0.4 * horizon))
    restore_at = spec.params.get("restore_at")
    if restore_at is not None and float(restore_at) <= at:
        raise ValueError("restore_at must come after at")
    touched = sorted(
        tuple(sorted(key)) for key in network.links if node in key
    )
    events = [FailureEvent(at=at, action="fail", a=a, b=b) for a, b in touched]
    if restore_at is not None:
        events.extend(
            FailureEvent(at=float(restore_at), action="restore", a=a, b=b)
            for a, b in touched
        )
    return events


def _rolling(
    network: Network,
    spec: FailureSpec,
    horizon: float,
    rng: np.random.Generator,
) -> List[FailureEvent]:
    links = spec.params.get("links")
    if links is not None:
        links = [tuple(link) for link in links]
        for a, b in links:
            network.link(a, b)  # raises KeyError for unknown links
    else:
        candidates = _router_links(network)
        if not candidates:
            raise ValueError("topology has no router-router links to fail")
        count = int(spec.params.get("count", min(3, len(candidates))))
        if count < 1:
            raise ValueError("rolling failures need count >= 1")
        start = int(rng.integers(len(candidates)))
        # contiguous slice of the sorted link list: a "region" of the
        # topology rather than scattered independent failures
        links = [
            candidates[(start + i) % len(candidates)] for i in range(count)
        ]
    at = float(spec.params.get("at", 0.2 * horizon))
    dwell = float(spec.params.get("dwell", 0.15 * horizon))
    if dwell <= 0:
        raise ValueError("dwell must be positive")
    events = []
    t = at
    for a, b in links:
        if t >= horizon:
            break
        events.append(FailureEvent(at=round(t, 6), action="fail", a=a, b=b))
        restore = t + dwell
        if restore < horizon:
            events.append(
                FailureEvent(at=round(restore, 6), action="restore", a=a, b=b)
            )
        t = restore
    return events


def plan_failures(
    network: Network,
    spec: FailureSpec,
    horizon: float,
    rng: np.random.Generator,
) -> Tuple[FailureEvent, ...]:
    """Expand ``spec`` into a time-ordered, deterministic event plan."""
    if spec.kind == "none":
        events: List[FailureEvent] = []
    elif spec.kind == "link_flap":
        events = _link_flap(network, spec, horizon, rng)
    elif spec.kind == "node_down":
        events = _node_down(network, spec, horizon, rng)
    elif spec.kind == "rolling":
        events = _rolling(network, spec, horizon, rng)
    else:
        raise KeyError(
            f"unknown failure kind {spec.kind!r}; "
            "choose from ['none', 'link_flap', 'node_down', 'rolling']"
        )
    return tuple(sorted(events, key=lambda e: (e.at, e.action, e.a, e.b)))
