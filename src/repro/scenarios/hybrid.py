"""Flow-class machinery behind the ``hybrid`` scenario backend.

The hybrid backend splits one offered workload in two:

- **foreground** flows (elephants, probes someone chose to promote —
  see :class:`~repro.scenarios.spec.FlowClassSpec`) run packet-level
  through the full self-driving framework, exactly as on the ``des``
  backend;
- **background** flows (the mice) never reach the packet domain.  They
  are assigned round-robin over their (ingress, egress) group's
  candidate tunnels — unmanaged, ECMP-style — and solved as a fluid
  max-min allocation per *epoch* (a coarse time grid plus every failure
  event and phase transition).  Each epoch's per-flow rates are summed
  along their paths into directed per-link loads, which the runner
  installs on the emulator as background-utilization terms
  (:mod:`repro.net.background`): foreground packets then serialize into
  the capacity the mice left behind, and telemetry reports the link as
  busy, so Hecate steers elephants around mice it never saw as packets.

The epoch solver here is also what the pure ``fluid`` backend runs: on
small scenarios its epoch edges are the exact flow start/stop instants
(bit-identical to the pre-hybrid implementation), and beyond
``FlowClassSpec.max_epochs`` boundaries it coalesces them onto a uniform
grid so a 10k-flow scenario costs hundreds, not tens of thousands, of
fluid solves.

Everything in this module is a pure function of its inputs; the
simulator is only touched by the runner, which keeps hybrid runs exactly
as deterministic as the other two backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.framework.controller import select_candidates
from repro.framework.scheduler import FlowRequest
from repro.net.background import BackgroundEpoch
from repro.net.fluid import max_min_fair_bounded, max_min_fair_weighted
from repro.net.topology import Network

from .failures import FailureEvent
from .spec import FlowClassSpec

__all__ = [
    "EpochSolve",
    "AggregateEpochSolve",
    "BackgroundAggregate",
    "split_requests",
    "assign_class_paths",
    "aggregate_background",
    "epoch_edges",
    "quantize_edges",
    "solve_epochs",
    "solve_epochs_aggregate",
    "background_epochs",
    "aggregate_background_epochs",
]


def split_requests(
    requests: Sequence[FlowRequest], classes: FlowClassSpec
) -> Tuple[List[FlowRequest], List[FlowRequest]]:
    """Partition offered flows into (foreground, background).

    A flow is foreground when its name matches any
    ``classes.foreground`` glob (case-sensitive, so ``elephant*`` never
    surprises) and the ``classes.max_foreground`` budget is not yet
    spent; offered order decides who wins the budget.  ICMP probes are
    always promoted regardless of name or budget: they are latency
    instruments (one packet per second — negligible cost) and demoting
    one to the fluid domain would silently disable the measurement a
    probe-driven scenario (e.g. fig11) exists to make.
    """
    foreground: List[FlowRequest] = []
    background: List[FlowRequest] = []
    for request in requests:
        promoted = request.protocol == "icmp" or (
            len(foreground) < classes.max_foreground
            and any(
                fnmatchcase(request.flow_name, pattern)
                for pattern in classes.foreground
            )
        )
        (foreground if promoted else background).append(request)
    return foreground, background


def assign_class_paths(
    network: Network,
    tunnels: Sequence[Tuple[str, int, Tuple[str, ...]]],
    requests: Sequence[FlowRequest],
    spread: bool,
) -> Tuple[Dict[str, Tuple[str, ...]], int]:
    """Router paths for one flow class, plus the unplaceable count.

    ``spread=True`` is the background rule: members of each (ingress,
    egress) group round-robin over the group's candidate tunnels in
    offered order — the deterministic stand-in for ECMP hashing of
    unmanaged mice.  ``spread=False`` pins every member to the group's
    default (first) candidate — the estimate of where the controller
    initially lands foreground flows, used only to make the fluid solve
    see elephants as claimants.
    """
    by_name = {name: path for name, _, path in tunnels}
    paths: Dict[str, Tuple[str, ...]] = {}
    rotation: Dict[Tuple[str, str], int] = {}
    unplaced = 0
    for request in requests:
        pair = (
            network.edge_router_of(request.src),
            network.edge_router_of(request.dst),
        )
        candidates = select_candidates(by_name, *pair)
        if not candidates:
            unplaced += 1
            continue
        if spread:
            index = rotation.get(pair, 0)
            rotation[pair] = index + 1
            chosen = candidates[index % len(candidates)]
        else:
            chosen = candidates[0]
        paths[request.flow_name] = by_name[chosen]
    return paths, unplaced


@dataclass(frozen=True)
class BackgroundAggregate:
    """Columnar flow-class view of the background population.

    At 100k–1M mice, even the per-flow *fluid* path is too expensive:
    dict-of-spans bookkeeping and one solver variable per mouse dominate
    the run.  This structure collapses the background into **flow
    classes** — one class per candidate tunnel actually chosen by the
    round-robin spreading rule (same rotation as
    :func:`assign_class_paths` with ``spread=True``, so class membership
    is bit-identical to where per-flow mode would have put each mouse).
    Members live on in columnar numpy arrays (start, end, rate cap,
    class index), so every per-epoch reduction is a ``bincount`` over
    100k rows instead of 100k dict operations, and the fluid solver sees
    one weighted variable per class instead of one per mouse.
    """

    #: router path of each class (index = class id)
    class_paths: Tuple[Tuple[str, ...], ...]
    #: per-member horizon-clamped span start / end (seconds)
    starts: np.ndarray
    ends: np.ndarray
    #: per-member rate ceiling in Mbps; ``inf`` marks an elastic (TCP)
    #: member with no CBR cap
    caps: np.ndarray
    #: per-member class id (index into :attr:`class_paths`)
    class_of: np.ndarray
    #: offered background flows with no candidate tunnel at all
    unplaced: int

    @property
    def members(self) -> int:
        return int(self.starts.size)

    def member_seconds(self) -> np.ndarray:
        """Total member-active seconds per class (for averaging a
        class's delivered Mbps-seconds back into a per-mouse rate)."""
        spans = np.clip(self.ends - self.starts, 0.0, None)
        return np.bincount(
            self.class_of, weights=spans, minlength=len(self.class_paths)
        )


def aggregate_background(
    network: Network,
    tunnels: Sequence[Tuple[str, int, Tuple[str, ...]]],
    requests: Sequence[FlowRequest],
    horizon: float,
) -> BackgroundAggregate:
    """Group background flows into per-tunnel classes, columnar form.

    Placement is the **identical rotation** :func:`assign_class_paths`
    applies with ``spread=True`` — member *i* of each (ingress, egress)
    group lands on candidate ``i % k`` — so aggregate mode changes the
    representation of the mice, never where they are routed.  Spans are
    clamped to ``[0, horizon]`` exactly as the per-flow solver's
    ``_solve_inputs`` clamps them; CBR (rate-capped UDP) members record
    their cap, elastic members record ``inf``.
    """
    by_name = {name: path for name, _, path in tunnels}
    rotation: Dict[Tuple[str, str], int] = {}
    class_index: Dict[str, int] = {}
    class_paths: List[Tuple[str, ...]] = []
    starts: List[float] = []
    ends: List[float] = []
    caps: List[float] = []
    class_of: List[int] = []
    unplaced = 0
    for request in requests:
        pair = (
            network.edge_router_of(request.src),
            network.edge_router_of(request.dst),
        )
        candidates = select_candidates(by_name, *pair)
        if not candidates:
            unplaced += 1
            continue
        index = rotation.get(pair, 0)
        rotation[pair] = index + 1
        chosen = candidates[index % len(candidates)]
        k = class_index.get(chosen)
        if k is None:
            k = len(class_paths)
            class_index[chosen] = k
            class_paths.append(by_name[chosen])
        starts.append(min(request.start_at, horizon))
        ends.append(min(request.start_at + request.duration, horizon))
        caps.append(
            float(request.rate_mbps)
            if request.protocol == "udp" and request.rate_mbps
            else np.inf
        )
        class_of.append(k)
    return BackgroundAggregate(
        class_paths=tuple(class_paths),
        starts=np.asarray(starts, dtype=float),
        ends=np.asarray(ends, dtype=float),
        caps=np.asarray(caps, dtype=float),
        class_of=np.asarray(class_of, dtype=np.intp),
        unplaced=unplaced,
    )


def epoch_edges(
    horizon: float,
    failure_plan: Sequence[FailureEvent],
    phase_fracs: Iterable[float],
    classes: FlowClassSpec,
) -> List[float]:
    """The hybrid backend's epoch grid over ``[0, horizon]``.

    A uniform ``classes.epoch_s`` grid (coarsened so the total stays
    within ``classes.max_epochs``), plus every failure event and phase
    transition as an exact edge — load is re-solved exactly when the
    network or the offered program changes, and merely *refreshed* on
    the grid in between.
    """
    edges = {0.0, horizon}
    edges.update(e.at for e in failure_plan if 0.0 < e.at < horizon)
    edges.update(f * horizon for f in phase_fracs if 0.0 < f < 1.0)
    if classes.epoch_s is not None:
        step = classes.epoch_s
        if horizon / step > classes.max_epochs:
            step = horizon / classes.max_epochs
        k = 1
        while k * step < horizon:
            edges.add(k * step)
            k += 1
    return sorted(edges)


def quantize_edges(
    exact: Set[float],
    horizon: float,
    failure_plan: Sequence[FailureEvent],
    phase_fracs: Iterable[float],
    classes: FlowClassSpec,
) -> List[float]:
    """Exact edges when they fit the epoch budget, the coalesced grid
    otherwise.

    The pure fluid backend re-solves at every flow start/stop, which is
    bit-faithful for the small suite but quadratic pain at thousands of
    flows; past ``classes.max_epochs`` boundaries it snaps flow edges
    onto the :func:`epoch_edges` grid (failure and phase edges stay
    exact) and credits delivery by per-epoch overlap instead.
    """
    if len(exact) <= classes.max_epochs:
        return sorted(exact)
    return epoch_edges(horizon, failure_plan, phase_fracs, classes)


@dataclass(frozen=True)
class EpochSolve:
    """One solved epoch: instantaneous fair rates and per-flow overlap.

    ``rates`` covers the healthy, non-probe flows active in the epoch;
    ``overlaps`` maps every *active* flow (including blacked-out ones)
    to the seconds its span intersects the epoch; ``blacked`` names the
    flows crossing a failed link for the whole epoch.
    """

    t0: float
    t1: float
    rates: Mapping[str, float]
    overlaps: Mapping[str, float]
    blacked: Tuple[str, ...]


def solve_epochs(
    spans: Mapping[str, Tuple[float, float]],
    paths: Mapping[str, Tuple[str, ...]],
    capacities: Mapping[Tuple[str, str], float],
    rate_caps: Mapping[str, float],
    probes: Set[str],
    failure_plan: Sequence[FailureEvent],
    edges: Sequence[float],
) -> List[EpochSolve]:
    """Fluid max-min rates for every epoch between consecutive edges.

    Failure events are replayed in time order (the plan is already
    sorted): a flow whose path crosses a link failed at epoch start is
    blacked out for that whole epoch; ICMP probes are never credited
    with capacity (they are latency instruments, not load).  Rate caps
    (CBR UDP senders) bound the elastic share via
    :func:`repro.net.fluid.max_min_fair_bounded`.
    """
    plan = list(failure_plan)  # already time-ordered
    next_event = 0
    failed: Set[Tuple[str, str]] = set()
    solves: List[EpochSolve] = []
    for t0, t1 in zip(edges[:-1], edges[1:]):
        if t1 <= t0:
            continue
        while next_event < len(plan) and plan[next_event].at <= t0:
            event = plan[next_event]
            key = tuple(sorted((event.a, event.b)))
            if event.action == "fail":
                failed.add(key)
            else:
                failed.discard(key)
            next_event += 1
        overlaps: Dict[str, float] = {}
        for name, (start, end) in spans.items():
            overlap = min(end, t1) - max(start, t0)
            if overlap > 0.0:
                overlaps[name] = overlap
        blacked: List[str] = []
        healthy: List[str] = []
        for name in overlaps:
            links = {
                tuple(sorted(hop))
                for hop in zip(paths[name][:-1], paths[name][1:])
            }
            if links & failed:
                blacked.append(name)  # blacked out for this whole epoch
            elif name not in probes:
                healthy.append(name)
        rates = (
            max_min_fair_bounded(
                {name: paths[name] for name in healthy},
                capacities,
                rate_caps,
            )
            if healthy
            else {}
        )
        solves.append(
            EpochSolve(
                t0=t0,
                t1=t1,
                rates=rates,
                overlaps=overlaps,
                blacked=tuple(blacked),
            )
        )
    return solves


def background_epochs(
    solves: Sequence[EpochSolve],
    background: Set[str],
    paths: Mapping[str, Tuple[str, ...]],
    min_load_mbps: float = 1e-9,
) -> List[BackgroundEpoch]:
    """Collapse solved background rates into per-link load timelines.

    Each epoch's load on a directed link is the sum, over background
    flows crossing it, of the flow's fair rate time-averaged across the
    epoch (``rate * overlap / epoch length``) — what an observer
    sampling the link over the epoch would measure.  Foreground flows
    are claimants in the solve but never contribute load here; the
    packet domain carries them for real.
    """
    epochs: List[BackgroundEpoch] = []
    for solve in solves:
        duration = solve.t1 - solve.t0
        loads: Dict[Tuple[str, str], float] = {}
        for name, rate in solve.rates.items():
            if name not in background:
                continue
            mbps = rate * solve.overlaps[name] / duration
            if mbps <= min_load_mbps:
                continue
            path = paths[name]
            for hop in zip(path[:-1], path[1:]):
                loads[hop] = loads.get(hop, 0.0) + mbps
        epochs.append(BackgroundEpoch(t0=solve.t0, t1=solve.t1, loads=loads))
    return epochs


@dataclass(frozen=True)
class AggregateEpochSolve:
    """One solved epoch in aggregate-mice mode.

    Foreground flows keep the per-flow semantics of
    :class:`EpochSolve` (``rates``/``overlaps``/``blacked``); the
    background appears only as per-class columns: ``class_rates`` is
    each class's **time-averaged** Mbps across the epoch (the solver's
    per-member allocation scaled by the members' mean overlap
    fraction), ``class_weight`` the fractional number of concurrently
    active members, and ``blacked_members`` how many active members sat
    on a class whose path crossed a failed link (the aggregate analogue
    of a per-flow blackout, counted into ``drops``).
    """

    t0: float
    t1: float
    rates: Mapping[str, float]
    overlaps: Mapping[str, float]
    blacked: Tuple[str, ...]
    class_rates: np.ndarray
    class_weight: np.ndarray
    blacked_members: int


def solve_epochs_aggregate(
    spans: Mapping[str, Tuple[float, float]],
    paths: Mapping[str, Tuple[str, ...]],
    capacities: Mapping[Tuple[str, str], float],
    rate_caps: Mapping[str, float],
    probes: Set[str],
    failure_plan: Sequence[FailureEvent],
    edges: Sequence[float],
    aggregate: BackgroundAggregate,
) -> List[AggregateEpochSolve]:
    """Per-epoch weighted fluid solve: foreground flows vs mouse classes.

    The foreground side replays failures and blacks out flows exactly
    as :func:`solve_epochs`.  The background side is vectorized: member
    overlaps, class populations and CBR demand bounds are all
    ``bincount`` reductions over the aggregate's columns, and the fair
    allocation is one :func:`repro.net.fluid.max_min_fair_weighted`
    call where each class claims one fair share per member overlapping
    the epoch — the same claim those members make as individual
    variables in per-flow mode, which treats every epoch-overlapping
    flow as fully concurrent regardless of its sub-interval.  A class
    whose members all carry finite CBR caps is bounded by their summed
    caps; one elastic member makes the whole class elastic.

    The solver's class allocation is then scaled by the members' mean
    overlap fraction (time-averaged population / member count) before
    it becomes link load — the aggregate form of per-flow mode crediting
    ``rate * overlap / duration`` per mouse.  Because every member of a
    class shares one path by construction, the two modes coincide
    exactly whenever a class's members carry identical caps (always
    true for the generated scale workloads); mixed caps within one
    class are the only residual approximation.
    """
    n_classes = len(aggregate.class_paths)
    class_links = [
        frozenset(tuple(sorted(hop)) for hop in zip(path[:-1], path[1:]))
        for path in aggregate.class_paths
    ]
    plan = list(failure_plan)  # already time-ordered
    next_event = 0
    failed: Set[Tuple[str, str]] = set()
    solves: List[AggregateEpochSolve] = []
    for t0, t1 in zip(edges[:-1], edges[1:]):
        if t1 <= t0:
            continue
        while next_event < len(plan) and plan[next_event].at <= t0:
            event = plan[next_event]
            key = tuple(sorted((event.a, event.b)))
            if event.action == "fail":
                failed.add(key)
            else:
                failed.discard(key)
            next_event += 1
        duration = t1 - t0
        # ----- foreground: identical bookkeeping to solve_epochs
        overlaps: Dict[str, float] = {}
        for name, (start, end) in spans.items():
            overlap = min(end, t1) - max(start, t0)
            if overlap > 0.0:
                overlaps[name] = overlap
        blacked: List[str] = []
        healthy: List[str] = []
        for name in overlaps:
            links = {
                tuple(sorted(hop))
                for hop in zip(paths[name][:-1], paths[name][1:])
            }
            if links & failed:
                blacked.append(name)
            elif name not in probes:
                healthy.append(name)
        # ----- background: columnar reductions over the aggregate
        member_overlap = np.clip(
            np.minimum(aggregate.ends, t1) - np.maximum(aggregate.starts, t0),
            0.0,
            None,
        )
        active = member_overlap > 0.0
        if failed:
            blocked = np.array(
                [bool(links & failed) for links in class_links], dtype=bool
            )
        else:
            blocked = np.zeros(n_classes, dtype=bool)
        blacked_members = (
            int(np.count_nonzero(active & blocked[aggregate.class_of]))
            if n_classes
            else 0
        )
        usable = np.where(blocked[aggregate.class_of], 0.0, member_overlap)
        class_weight = (
            np.bincount(
                aggregate.class_of, weights=usable, minlength=n_classes
            )
            / duration
        )
        member = usable > 0.0
        class_count = np.bincount(
            aggregate.class_of,
            weights=member.astype(float),
            minlength=n_classes,
        )
        finite = np.isfinite(aggregate.caps)
        capped_sum = np.bincount(
            aggregate.class_of,
            weights=np.where(finite & member, aggregate.caps, 0.0),
            minlength=n_classes,
        )
        elastic_members = np.bincount(
            aggregate.class_of,
            weights=member & ~finite,
            minlength=n_classes,
        )
        class_bound = np.where(elastic_members > 0.0, np.inf, capped_sum)
        # ----- one weighted solve over foreground flows + mouse classes
        flow_paths: Dict[str, Tuple[str, ...]] = {
            name: paths[name] for name in healthy
        }
        weights: Dict[str, float] = {name: 1.0 for name in healthy}
        bounds: Dict[str, float] = {
            name: rate_caps[name] for name in healthy if name in rate_caps
        }
        for k in range(n_classes):
            if class_count[k] <= 0.0:
                continue
            cname = f"class:{k}"
            flow_paths[cname] = aggregate.class_paths[k]
            weights[cname] = float(class_count[k])
            if np.isfinite(class_bound[k]):
                bounds[cname] = float(class_bound[k])
        fair = (
            max_min_fair_weighted(flow_paths, capacities, bounds, weights)
            if flow_paths
            else {}
        )
        # the solver allocates per concurrent member; the carried load
        # is that scaled by the mean overlap fraction, exactly per-flow
        # mode's rate * overlap / duration credited per mouse
        class_rates = np.zeros(n_classes)
        rates: Dict[str, float] = {}
        for name, rate in fair.items():
            if name.startswith("class:"):
                k = int(name[6:])
                class_rates[k] = rate * class_weight[k] / class_count[k]
            else:
                rates[name] = rate
        solves.append(
            AggregateEpochSolve(
                t0=t0,
                t1=t1,
                rates=rates,
                overlaps=overlaps,
                blacked=tuple(blacked),
                class_rates=class_rates,
                class_weight=class_weight,
                blacked_members=blacked_members,
            )
        )
    return solves


def aggregate_background_epochs(
    solves: Sequence[AggregateEpochSolve],
    aggregate: BackgroundAggregate,
    min_load_mbps: float = 1e-9,
) -> List[BackgroundEpoch]:
    """Per-link background load timelines from aggregate solves.

    ``class_rates`` are already time-averaged over the epoch (the class
    weight folded in each member's overlap fraction), so each class's
    rate lands on its path's directed hops as-is — the aggregate
    analogue of :func:`background_epochs`, at one sum per class instead
    of one per mouse.
    """
    epochs: List[BackgroundEpoch] = []
    for solve in solves:
        loads: Dict[Tuple[str, str], float] = {}
        for k, rate in enumerate(solve.class_rates):
            mbps = float(rate)
            if mbps <= min_load_mbps:
                continue
            path = aggregate.class_paths[k]
            for hop in zip(path[:-1], path[1:]):
                loads[hop] = loads.get(hop, 0.0) + mbps
        epochs.append(BackgroundEpoch(t0=solve.t0, t1=solve.t1, loads=loads))
    return epochs
