"""Fig. 12 — flow aggregation over multiple paths.

The paper's scenario: link caps MIA-SAO / SAO-AMS / CHI-AMS = 20 Mbps,
MIA-CHI = 10, MIA-CAL / CAL-CHI = 5.  Three TCP flows (distinct ToS) all
start on Tunnel 1 and aggregate to *less than 20 Mbps*; a bandwidth-aware
path-allocation request then moves one flow to Tunnel 2 and another to
Tunnel 3, lifting the aggregate to ≈30 Mbps.

This runner executes the packet-level version through the full framework
(telemetry -> assignment optimizer -> PBR re-binds) and cross-checks the
steady states against the closed-form max-min fluid model.

The environment (topology with Fig. 12 caps, framework stack, Tunnels
1-3, the three ToS-tagged flows) is assembled by the scenario suite —
this module replays the registered ``fig12-flow-aggregation`` scenario in
its staged two-phase form: measure on Tunnel 1, trigger one joint
re-optimization, measure again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.net.fluid import FluidFlow, max_min_fair, total_throughput
from repro.scenarios import PolicySpec, ScenarioRunner, TrafficSpec, get_scenario
from repro.topologies import TUNNEL1, TUNNEL2, TUNNEL3, fig12_capacities

from .plotting import ascii_timeseries, comparison_table

__all__ = ["Fig12Result", "run", "fluid_prediction", "scenario"]

PAPER_BEFORE_MBPS = 20.0  # "maximum throughput of less than 20 Mbps"
PAPER_AFTER_MBPS = 30.0  # "increase in total throughput (30 Mbps)"


@dataclass(frozen=True)
class Fig12Result:
    per_flow_before: Dict[str, float]
    per_flow_after: Dict[str, float]
    total_before: float
    total_after: float
    assignment: Dict[str, str]
    migrations: List[Tuple[float, str, str]]
    times: np.ndarray
    aggregate_series: np.ndarray
    fluid_before: float
    fluid_after: float


def fluid_prediction() -> Tuple[float, float]:
    """Closed-form steady states of the two phases."""
    caps = fig12_capacities()
    before = max_min_fair(
        [FluidFlow.from_path(f"f{i}", TUNNEL1) for i in range(1, 4)], caps
    )
    after = max_min_fair(
        [
            FluidFlow.from_path("f1", TUNNEL1),
            FluidFlow.from_path("f2", TUNNEL2),
            FluidFlow.from_path("f3", TUNNEL3),
        ],
        caps,
    )
    return total_throughput(before), total_throughput(after)


def scenario(phase_duration: float = 45.0, warmup: float = 35.0):
    """The Fig. 12 spec, rescaled to ``phase_duration`` per phase and
    with periodic re-optimization disabled (the staged replay triggers
    exactly one joint pass between the phases)."""
    base = get_scenario("fig12-flow-aggregation")
    return base.with_overrides(
        horizon=2 * phase_duration + 1.0,
        warmup=warmup,
        traffic=TrafficSpec("explicit", n_flows=3, params={"flows": [
            {"flow_name": f"f{i}", "src": "host1", "dst": "host2",
             "protocol": "tcp", "tos": tos, "duration": 2 * phase_duration}
            for i, tos in ((1, 32), (2, 64), (3, 96))
        ]}),
        policy=PolicySpec(reoptimize_every=None),
    )


def run(
    phase_duration: float = 45.0,
    warmup: float = 35.0,
) -> Fig12Result:
    runner = ScenarioRunner(scenario(phase_duration, warmup)).setup()
    sdn = runner.sdn
    sdn.run(until=warmup)
    runner.inject_traffic()
    # phase (i): everything on Tunnel 1
    phase1_end = warmup + phase_duration
    sdn.run(until=phase1_end)
    before = {
        f"f{i}": sdn.flow(f"f{i}").app.goodput_mbps(warmup + 10.0, phase1_end)
        for i in range(1, 4)
    }
    # phase (ii): one bandwidth-aware reallocation pass
    sdn.controller.reoptimize_now()
    phase2_end = phase1_end + phase_duration
    sdn.run(until=phase2_end + 1.0)
    after = {
        f"f{i}": sdn.flow(f"f{i}").app.goodput_mbps(phase1_end + 10.0, phase2_end)
        for i in range(1, 4)
    }
    migrations = [
        m for i in range(1, 4) for m in sdn.flow(f"f{i}").migrations
    ]

    # aggregate per-second series across flows
    series = {}
    for i in range(1, 4):
        t, mbps = sdn.flow(f"f{i}").app.interval_mbps(1.0)
        series[i] = (t, mbps)
    n = min(v[1].size for v in series.values())
    times = series[1][0][:n]
    aggregate = sum(series[i][1][:n] for i in range(1, 4))

    fluid_before, fluid_after = fluid_prediction()
    return Fig12Result(
        per_flow_before=before,
        per_flow_after=after,
        total_before=float(sum(before.values())),
        total_after=float(sum(after.values())),
        assignment={f"f{i}": sdn.flow(f"f{i}").tunnel for i in range(1, 4)},
        migrations=migrations,
        times=times,
        aggregate_series=aggregate,
        fluid_before=fluid_before,
        fluid_after=fluid_after,
    )


def summary(result: Fig12Result) -> str:
    plot = ascii_timeseries(
        [("aggregate Mbps", result.aggregate_series)],
        title="Fig. 12 — aggregate TCP throughput (3 flows)",
        height=10,
    )
    table = comparison_table(
        [
            ("total before split", f"<{PAPER_BEFORE_MBPS:.0f} Mbps",
             f"{result.total_before:.1f} Mbps"),
            ("total after split", f"~{PAPER_AFTER_MBPS:.0f} Mbps",
             f"{result.total_after:.1f} Mbps"),
            ("fluid model before/after", "-",
             f"{result.fluid_before:.1f} / {result.fluid_after:.1f} Mbps"),
            ("final assignment", "T1, T2, T3",
             ", ".join(sorted(result.assignment.values()))),
            ("migrations (PBR touches)", "2", str(len(result.migrations))),
        ]
    )
    per_flow = "  ".join(
        f"{k}:{result.per_flow_before[k]:.1f}->{result.per_flow_after[k]:.1f}"
        for k in sorted(result.per_flow_before)
    )
    return plot + "\n" + table + f"\n  per-flow Mbps: {per_flow}"
