"""Fig. 1 — PolKA's worked forwarding example, reproduced bit-for-bit.

Node IDs s1 = t+1, s2 = t^2+t+1, s3 = t^3+t+1 with output ports o1 = 1,
o2 = t (port 2), o3 = t^2+t (port 6) must CRT-combine to routeID
``10000`` (binary), and node s2 dividing that routeID must recover port
label 2 — the paper's "for instance" check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.polka import PolkaDomain, gf2
from repro.topologies import fig1_line

__all__ = ["Fig1Result", "run"]

EXPECTED_ROUTE_ID = 0b10000
EXPECTED_PORTS = {"s1": 1, "s2": 2, "s3": 6}


@dataclass(frozen=True)
class Fig1Result:
    route_id: int
    header_bits: int
    hop_ports: Dict[str, int]
    node_ids: Dict[str, str]  # rendered polynomials
    matches_paper: bool


def run() -> Fig1Result:
    adjacency, node_ids = fig1_line()
    domain = PolkaDomain(adjacency, node_ids=node_ids)
    route = domain.route_for_path(["s1", "s2", "s3", "edge_out"])
    decisions = dict(domain.walk(route))
    return Fig1Result(
        route_id=route.route_id,
        header_bits=route.header_bits,
        hop_ports=decisions,
        node_ids={name: gf2.poly_to_str(p) for name, p in node_ids.items()},
        matches_paper=(
            route.route_id == EXPECTED_ROUTE_ID and decisions == EXPECTED_PORTS
        ),
    )


def summary(result: Fig1Result) -> str:
    lines = [
        "Fig. 1 — PolKA polynomial source routing example",
        "  node IDs : " + ", ".join(f"{k}={v}" for k, v in result.node_ids.items()),
        f"  routeID  : 0b{result.route_id:b}  ({result.header_bits} header bits; paper: 10000)",
    ]
    for node, port in result.hop_ports.items():
        lines.append(f"  {node} mod nodeID -> port {port} (paper: {EXPECTED_PORTS[node]})")
    lines.append(f"  matches paper: {result.matches_paper}")
    return "\n".join(lines)
