"""Terminal plotting helpers shared by the experiment runners.

The paper's figures are reproduced as data series plus ASCII renderings
(matplotlib is unavailable offline); every experiment also exposes its
raw arrays so downstream users can plot with their own tooling.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["ascii_timeseries", "ascii_scatter", "comparison_table"]


def ascii_timeseries(
    series: Sequence[Tuple[str, np.ndarray]],
    height: int = 12,
    width: int = 72,
    title: str = "",
) -> str:
    """Plot one or more named series on a shared-axis character canvas."""
    marks = "*o+x#@"
    arrays = [(name, np.asarray(vals, dtype=np.float64)) for name, vals in series]
    arrays = [(n, v) for n, v in arrays if v.size > 0]
    if not arrays:
        return f"{title}\n(no data)"
    lo = min(v.min() for _, v in arrays)
    hi = max(v.max() for _, v in arrays)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    canvas = [[" "] * width for _ in range(height)]
    for idx, (_name, vals) in enumerate(arrays):
        mark = marks[idx % len(marks)]
        xs = np.linspace(0, width - 1, vals.size).round().astype(int)
        ys = ((vals - lo) / (hi - lo) * (height - 1)).round().astype(int)
        for x, y in zip(xs, ys):
            canvas[height - 1 - y][x] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.2f} +" + "-" * width + "+")
    for row in canvas:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{lo:10.2f} +" + "-" * width + "+")
    legend = "   ".join(
        f"{marks[i % len(marks)]} {name}" for i, (name, _) in enumerate(arrays)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def ascii_scatter(
    points: Sequence[Tuple[str, float, float]],
    height: int = 16,
    width: int = 60,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str = "",
) -> str:
    """Labelled scatter (the Fig. 6 RMSE plane)."""
    if not points:
        return f"{title}\n(no data)"
    xs = np.asarray([p[1] for p in points])
    ys = np.asarray([p[2] for p in points])
    x_lo, x_hi = 0.0, float(xs.max()) * 1.05
    y_lo, y_hi = 0.0, float(ys.max()) * 1.05
    canvas = [[" "] * width for _ in range(height)]
    labels = []
    for i, (name, x, y) in enumerate(points):
        cx = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        cy = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        char = chr(ord("a") + i) if i < 26 else "?"
        canvas[height - 1 - cy][cx] = char
        labels.append(f"{char}={name}({x:.2f},{y:.2f})")
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:8.1f} +" + "-" * width + "+")
    for row in canvas:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:8.1f} +" + "-" * width + "+")
    lines.append(f"{'':9s} {x_lo:.1f} {xlabel} -> {x_hi:.1f}   (y = {ylabel})")
    for i in range(0, len(labels), 3):
        lines.append("  " + "  ".join(labels[i : i + 3]))
    return "\n".join(lines)


def comparison_table(
    rows: Sequence[Tuple[str, str, str]],
    headers: Tuple[str, str, str] = ("quantity", "paper", "measured"),
) -> str:
    """Fixed-width paper-vs-measured table used in every bench report."""
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(3)
    ]
    sep = "  "
    def fmt(row):
        return sep.join(str(row[i]).ljust(widths[i]) for i in range(3))
    out = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    out += [fmt(r) for r in rows]
    return "\n".join(out)
