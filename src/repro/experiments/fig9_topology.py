"""Figs. 9-10 — the emulated Global P4 Lab testbed and its configuration.

Builds the Fig. 9 topology, applies the Fig. 10-style configuration to
the MIA edge, and inventories the result: routers, PolKA node IDs, link
caps and the compiled tunnel routeIDs.  This is the experiment that
proves the testbed substrate matches the paper's description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bus import MessageBus
from repro.freertr.service import RECONFIG_TOPIC, RouterConfigService
from repro.polka import gf2
from repro.topologies import (
    ROUTER_IPS,
    TUNNEL1,
    TUNNEL2,
    TUNNEL3,
    fig12_capacities,
    global_p4_lab,
)

__all__ = ["Fig9Result", "run", "FIG10_CONFIG"]

FIG10_CONFIG = (
    "access-list flow3\n"
    " permit 6 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255 tos 64\n"
    "exit\n"
    f"interface tunnel1\n tunnel domain-name {' '.join(TUNNEL1)}\nexit\n"
    f"interface tunnel2\n tunnel domain-name {' '.join(TUNNEL2)}\nexit\n"
    f"interface tunnel3\n tunnel domain-name {' '.join(TUNNEL3)}\n"
    " tunnel destination 20.20.0.7\nexit\n"
    "pbr flow3 tunnel 3\n"
)


@dataclass(frozen=True)
class Fig9Result:
    routers: List[str]
    hosts: List[str]
    node_ids: Dict[str, str]
    link_rates: Dict[str, float]
    tunnel_route_ids: Dict[int, str]
    tunnel_header_bits: Dict[int, int]
    tunnel_bound_bits: Dict[int, int]  # sum of node-ID degrees (CRT bound)
    config_applied: bool


def run() -> Fig9Result:
    net = global_p4_lab(rates=fig12_capacities())
    bus = MessageBus()
    service = RouterConfigService(net, bus)
    replies = bus.request(
        RECONFIG_TOPIC, command="apply_config", router="MIA",
        text=FIG10_CONFIG, router_ips=ROUTER_IPS,
    )
    applied = bool(replies and replies[0].get("ok"))
    policy = service.policy("MIA")
    return Fig9Result(
        routers=sorted(net.routers),
        hosts=sorted(net.hosts),
        node_ids={
            name: gf2.poly_to_str(router.polka_node.node_id)
            for name, router in sorted(net.routers.items())
        },
        link_rates={
            f"{min(a,b)}-{max(a,b)}": net.link(a, b).rate_mbps
            for (a, b) in fig12_capacities()
        },
        tunnel_route_ids={
            tid: f"0b{t.route.route_id:b}" for tid, t in policy.tunnels.items()
        },
        tunnel_header_bits={
            tid: t.route.header_bits for tid, t in policy.tunnels.items()
        },
        tunnel_bound_bits={
            tid: sum(gf2.deg(m) for m in t.route.moduli)
            for tid, t in policy.tunnels.items()
        },
        config_applied=applied,
    )


def summary(result: Fig9Result) -> str:
    lines = [
        "Fig. 9/10 — emulated Global P4 Lab testbed",
        f"  routers: {', '.join(result.routers)}   hosts: {', '.join(result.hosts)}",
        "  PolKA node IDs:",
    ]
    for name, poly in result.node_ids.items():
        lines.append(f"    {name:4s}: {poly}")
    lines.append("  link caps (Mbps): " + ", ".join(
        f"{k}={v:.0f}" for k, v in sorted(result.link_rates.items())
    ))
    for tid in sorted(result.tunnel_route_ids):
        lines.append(
            f"  tunnel{tid}: routeID={result.tunnel_route_ids[tid]} "
            f"({result.tunnel_header_bits[tid]} bits)"
        )
    lines.append(f"  Fig. 10 config applied: {result.config_applied}")
    return "\n".join(lines)
