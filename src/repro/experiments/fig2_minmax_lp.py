"""Fig. 2 / Eq. (1)-(3) — the two-path min-max traffic-engineering LPs.

Sweeps demand ``h`` on the three-node topology and solves the three
Sec. III formulations: linear routing cost (Eq. 2), min-max utilization,
and the delay objective (Eq. 3).  The paper presents these as the
motivation for learning the objective from data; the experiment verifies
the analytic behaviour they describe (direct-path preference, utilization
equalization, convex delay growth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.hecate import solve_min_cost, solve_min_delay, solve_min_max_utilization

__all__ = ["Fig2Row", "Fig2Result", "run"]


@dataclass(frozen=True)
class Fig2Row:
    demand: float
    cost_x_sd: float
    cost_x_sid: float
    minmax_x_sd: float
    minmax_util: float
    delay_x_sd: float
    delay_objective: float


@dataclass(frozen=True)
class Fig2Result:
    c_direct: float
    c_via: float
    rows: List[Fig2Row]


def run(c_direct: float = 10.0, c_via: float = 10.0, n_points: int = 9) -> Fig2Result:
    rows = []
    for h in np.linspace(1.0, 0.9 * (c_direct + c_via), n_points):
        cost = solve_min_cost(h, c_direct, c_via)
        minmax = solve_min_max_utilization(h, c_direct, c_via)
        delay = solve_min_delay(min(h, 1.9 * c_direct), c_direct)
        rows.append(
            Fig2Row(
                demand=float(h),
                cost_x_sd=cost.x_sd,
                cost_x_sid=cost.x_sid,
                minmax_x_sd=minmax.x_sd,
                minmax_util=minmax.objective,
                delay_x_sd=delay.x_sd,
                delay_objective=delay.objective,
            )
        )
    return Fig2Result(c_direct=c_direct, c_via=c_via, rows=rows)


def summary(result: Fig2Result) -> str:
    lines = [
        "Fig. 2 / Eq. (1)-(3) — two-path TE optimization "
        f"(c_sd={result.c_direct}, c_sid={result.c_via})",
        f"  {'h':>6s} {'cost:x_sd':>10s} {'cost:x_sid':>11s} "
        f"{'mm:x_sd':>8s} {'mm:util':>8s} {'dly:x_sd':>9s} {'dly:obj':>8s}",
    ]
    for r in result.rows:
        lines.append(
            f"  {r.demand:6.2f} {r.cost_x_sd:10.2f} {r.cost_x_sid:11.2f} "
            f"{r.minmax_x_sd:8.2f} {r.minmax_util:8.3f} "
            f"{r.delay_x_sd:9.2f} {r.delay_objective:8.3f}"
        )
    return "\n".join(lines)
