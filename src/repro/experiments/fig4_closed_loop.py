"""Figs. 3-4 — the integration framework's closed control loop.

Stands up the complete architecture (Dashboard, Scheduler, Controller,
Telemetry, Hecate, PolKA services over the message bus) on the Fig. 9
testbed, requests a flow, and verifies the Fig. 4 message sequence was
exchanged in order.  The measured artifact is the control-plane
conversation itself plus end-to-end placement latency in bus messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core import SelfDrivingNetwork, fig12_capacities, global_p4_lab
from repro.ml import LinearRegression
from repro.topologies import TUNNEL1, TUNNEL2, TUNNEL3

__all__ = ["Fig4Result", "run", "EXPECTED_SEQUENCE"]

EXPECTED_SEQUENCE = [
    "dashboard.insert_new_flow",  # User -> Dashboard -> Scheduler
    "scheduler.new_flow",  # Scheduler -> Controller
    "telemetry.get",  # Controller -> Telemetry Service
    "hecate.ask_path",  # Controller -> Hecate (askHecatePath)
    "freertr.reconfig",  # Controller -> PolKA service (configureTunnel)
]


@dataclass(frozen=True)
class Fig4Result:
    topics_in_order: List[str]
    sequence_respected: bool
    placed_tunnel: str
    bus_messages_total: int
    decision: Dict


def run(warmup: float = 35.0) -> Fig4Result:
    net = global_p4_lab(rates=fig12_capacities())
    sdn = SelfDrivingNetwork(net, model_factory=LinearRegression)
    sdn.add_tunnel("T1", 1, TUNNEL1)
    sdn.add_tunnel("T2", 2, TUNNEL2)
    sdn.add_tunnel("T3", 3, TUNNEL3)
    sdn.run(until=warmup)
    mark = len(sdn.bus.log)
    sdn.request_flow(
        flow_name="f1", src="host1", dst="host2", protocol="tcp", tos=32,
        duration=10.0,
    )
    topics = [m.topic for m in sdn.bus.log[mark:]]
    # verify the expected subsequence appears in order
    cursor = 0
    for topic in topics:
        if cursor < len(EXPECTED_SEQUENCE) and topic == EXPECTED_SEQUENCE[cursor]:
            cursor += 1
    sdn.run(until=warmup + 15.0)
    return Fig4Result(
        topics_in_order=topics,
        sequence_respected=(cursor == len(EXPECTED_SEQUENCE)),
        placed_tunnel=sdn.flow("f1").tunnel,
        bus_messages_total=len(sdn.bus.log),
        decision=sdn.decision_log()[-1],
    )


def summary(result: Fig4Result) -> str:
    lines = [
        "Fig. 4 — framework sequence diagram replay",
        f"  expected order: {' -> '.join(EXPECTED_SEQUENCE)}",
        f"  observed      : {' -> '.join(result.topics_in_order)}",
        f"  sequence respected: {result.sequence_respected}",
        f"  flow placed on {result.placed_tunnel} "
        f"({result.bus_messages_total} bus messages total)",
    ]
    return "\n".join(lines)
