"""Fig. 6 — RMSE scatter of the eighteen regressors.

Runs the full tournament through the paper's pipeline and reports each
entrant's (WiFi RMSE, LTE RMSE) next to the paper's Fig. 6 coordinates.
The qualitative contract (EXPERIMENTS.md): RFR selected, RFR+GBR lowest
on the WiFi axis, GPR off-scale and excluded, Lasso/ElasticNet trailing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.datasets import generate_uq_wireless
from repro.hecate import PAPER_FIG6_RMSE, TournamentResult, run_tournament

from .plotting import ascii_scatter, comparison_table

__all__ = ["Fig6Result", "run"]


@dataclass(frozen=True)
class Fig6Result:
    tournament: TournamentResult
    best_label: str
    gpr_excluded: bool


def run(seed: int = 3, n_lags: int = 10) -> Fig6Result:
    tournament = run_tournament(generate_uq_wireless(seed=seed), n_lags=n_lags)
    return Fig6Result(
        tournament=tournament,
        best_label=tournament.best().label,
        gpr_excluded="R7" in tournament.excluded,
    )


def summary(result: Fig6Result) -> str:
    t = result.tournament
    rows: List[Tuple[str, str, str]] = []
    for e in t.entries:
        pw, pl = PAPER_FIG6_RMSE[e.paper_id]
        tag = " (excluded)" if e.paper_id in t.excluded else ""
        rows.append(
            (
                f"{e.paper_id} {e.label}{tag}",
                f"({pw:.2f}, {pl:.2f})",
                f"({e.rmse_wifi:.2f}, {e.rmse_lte:.2f})",
            )
        )
    table = comparison_table(rows, headers=("regressor", "paper (WiFi,LTE)", "measured"))
    scatter = ascii_scatter(
        t.scatter_points(),
        xlabel="WiFi RMSE",
        ylabel="LTE RMSE",
        title="Fig. 6 — regressor RMSE scatter (excluded: "
        + ", ".join(t.excluded) + ")",
    )
    closing = (
        f"\nselected model: {result.best_label} "
        f"(paper selected RFR); GPR excluded: {result.gpr_excluded}"
    )
    return table + "\n\n" + scatter + closing
