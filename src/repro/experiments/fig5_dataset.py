"""Fig. 5b — the WiFi (Path 1) vs LTE (Path 2) bandwidth traces.

Generates the synthetic UQ wireless dataset and summarizes the regime
structure the paper's narrative relies on: WiFi strong indoors while LTE
is poor, then a crossover after the walk outdoors with bursty WiFi.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


from repro.datasets import WirelessDataset, generate_uq_wireless
from repro.datasets.uq_wireless import INDOOR_END_S, TRANSITION_END_S

from .plotting import ascii_timeseries

__all__ = ["Fig5Result", "run"]


@dataclass(frozen=True)
class Fig5Result:
    dataset: WirelessDataset
    regime_means: Dict[str, Dict[str, float]]  # regime -> {wifi, lte}
    wifi_indoor_dominates: bool
    lte_outdoor_dominates: bool


def run(seed: int = 3) -> Fig5Result:
    ds = generate_uq_wireless(seed=seed)
    indoor = ds.time < INDOOR_END_S
    outdoor = ds.time >= TRANSITION_END_S
    walking = ~indoor & ~outdoor
    means = {
        "indoor": {"wifi": float(ds.wifi[indoor].mean()), "lte": float(ds.lte[indoor].mean())},
        "walking": {"wifi": float(ds.wifi[walking].mean()), "lte": float(ds.lte[walking].mean())},
        "outdoor": {"wifi": float(ds.wifi[outdoor].mean()), "lte": float(ds.lte[outdoor].mean())},
    }
    return Fig5Result(
        dataset=ds,
        regime_means=means,
        wifi_indoor_dominates=means["indoor"]["wifi"] > means["indoor"]["lte"],
        lte_outdoor_dominates=means["outdoor"]["lte"] > means["outdoor"]["wifi"],
    )


def summary(result: Fig5Result) -> str:
    ds = result.dataset
    plot = ascii_timeseries(
        [("WiFi (Path 1)", ds.wifi), ("LTE (Path 2)", ds.lte)],
        title="Fig. 5b — wireless bandwidth over the 500 s walk (Mbps)",
    )
    lines = [plot, ""]
    for regime, means in result.regime_means.items():
        lines.append(
            f"  {regime:8s}: wifi={means['wifi']:6.1f} Mbps  lte={means['lte']:6.1f} Mbps"
        )
    lines.append(
        f"  shape holds: wifi>lte indoors={result.wifi_indoor_dominates}, "
        f"lte>wifi outdoors={result.lte_outdoor_dominates}"
    )
    return "\n".join(lines)
