"""repro.experiments — one runner per paper figure.

Each module exposes ``run(...) -> <FigNResult>`` returning raw arrays and
derived statistics, plus ``summary(result) -> str`` rendering a terminal
report with paper-vs-measured comparisons.  The benchmark suite under
``benchmarks/`` wraps these runners with pytest-benchmark and asserts the
qualitative shape documented in EXPERIMENTS.md.

Index
-----
- ``fig1_polka_example``      Fig. 1  PolKA CRT worked example
- ``fig2_minmax_lp``          Fig. 2  Eq. (1)-(3) TE optimizations
- ``fig5_dataset``            Fig. 5b WiFi/LTE traces
- ``fig6_regressor_tournament`` Fig. 6 18-regressor RMSE scatter
- ``fig7_fig8_models``        Figs. 7-8 best/worst observed-vs-predicted
- ``fig4_closed_loop``        Figs. 3-4 framework sequence replay
- ``fig9_topology``           Figs. 9-10 testbed + config inventory
- ``fig11_latency_migration`` Fig. 11 agile low-latency migration
- ``fig12_flow_aggregation``  Fig. 12 multi-path flow aggregation
"""

from . import (
    fig1_polka_example,
    fig2_minmax_lp,
    fig4_closed_loop,
    fig5_dataset,
    fig6_regressor_tournament,
    fig7_fig8_models,
    fig9_topology,
    fig11_latency_migration,
    fig12_flow_aggregation,
)
from .plotting import ascii_scatter, ascii_timeseries, comparison_table

__all__ = [
    "fig1_polka_example",
    "fig2_minmax_lp",
    "fig4_closed_loop",
    "fig5_dataset",
    "fig6_regressor_tournament",
    "fig7_fig8_models",
    "fig9_topology",
    "fig11_latency_migration",
    "fig12_flow_aggregation",
    "ascii_timeseries",
    "ascii_scatter",
    "comparison_table",
]
