"""Figs. 7-8 — observed vs predicted bandwidth for the best and worst
models.

Fig. 7: the selected RFR tracks both paths' observed test series closely.
Fig. 8: GPR (paper mode) collapses to its prior and misses the dynamics.
Each run returns the aligned (observed, predicted) arrays and the RMSE,
plus correlation — the quantitative version of "very close" vs "big
variation".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.datasets import generate_uq_wireless
from repro.hecate import evaluate_pipeline
from repro.ml import make_regressor

from .plotting import ascii_timeseries

__all__ = ["ModelFitResult", "run_fig7", "run_fig8"]


@dataclass(frozen=True)
class PathFit:
    observed: np.ndarray
    predicted: np.ndarray
    rmse: float
    correlation: float


@dataclass(frozen=True)
class ModelFitResult:
    model_label: str
    paths: Dict[str, PathFit]  # "wifi" / "lte"


def _fit(paper_id: str, scale: bool, seed: int) -> ModelFitResult:
    ds = generate_uq_wireless(seed=seed)
    paths = {}
    for name, series in (("wifi", ds.wifi), ("lte", ds.lte)):
        result = evaluate_pipeline(series, make_regressor(paper_id), scale=scale)
        if np.std(result.predictions) > 1e-12:
            corr = float(np.corrcoef(result.observed, result.predictions)[0, 1])
        else:
            corr = 0.0
        paths[name] = PathFit(
            observed=result.observed,
            predicted=result.predictions,
            rmse=result.rmse,
            correlation=corr,
        )
    return ModelFitResult(model_label=paper_id, paths=paths)


def run_fig7(seed: int = 3) -> ModelFitResult:
    """RFR (R13), the selected best model, through the scaled pipeline."""
    return _fit("R13", scale=True, seed=seed)


def run_fig8(seed: int = 3) -> ModelFitResult:
    """GPR (R7) in paper mode — the published worst-case behaviour."""
    return _fit("R7", scale=False, seed=seed)


def summary(result: ModelFitResult, figure: str) -> str:
    lines = [f"{figure} — observed vs predicted ({result.model_label})"]
    for name, fit in result.paths.items():
        lines.append(
            ascii_timeseries(
                [("observed", fit.observed), ("predicted", fit.predicted)],
                title=f"  {name.upper()}: rmse={fit.rmse:.2f} corr={fit.correlation:.3f}",
                height=8,
            )
        )
    return "\n".join(lines)
