"""Fig. 11 — agile migration to a lower-latency path.

Phase (i): ICMP probes between host1 and host2 ride Tunnel 1
(MIA-SAO-AMS) for 60 s; the MIA-SAO link carries the 20 ms ``tc`` delay
of the paper's setup.  Phase (ii): the optimizer answers a latency-
minimization request with MIA-CHI-AMS and the flow migrates by a single
PBR re-bind at the MIA edge.  Reported shape: the RTT series steps down
by ~the injected one-way delay at the migration instant, and no core
router is reconfigured.

The environment (topology, framework stack, Tunnels 1-2, the probe flow)
is assembled by the scenario suite — this module replays the registered
``fig11-latency-migration`` scenario in its staged two-phase form, which
is the part a declarative spec cannot express: *when* the operator asks
for minimum latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scenarios import PolicySpec, ScenarioRunner, TrafficSpec, get_scenario

from .plotting import ascii_timeseries

__all__ = ["Fig11Result", "run", "scenario"]

INJECTED_DELAY_MS = 20.0


@dataclass(frozen=True)
class Fig11Result:
    times: np.ndarray
    rtts_ms: np.ndarray
    migration_at: float
    rtt_before_ms: float
    rtt_after_ms: float
    improvement_ms: float
    pbr_touches: int
    core_reconfigurations: int


def scenario(phase_duration: float = 60.0, warmup: float = 1.0):
    """The Fig. 11 spec, rescaled to ``phase_duration`` per phase."""
    base = get_scenario("fig11-latency-migration")
    return base.with_overrides(
        horizon=2 * phase_duration,
        warmup=warmup,
        traffic=TrafficSpec("explicit", n_flows=1, params={"flows": [
            {"flow_name": "ping1", "src": "host1", "dst": "host2",
             "protocol": "icmp", "duration": 2 * phase_duration},
        ]}),
        # phase (i) must ride Tunnel 1: with equal headroom on both
        # tunnels, max_bandwidth keeps the first registered candidate
        policy=PolicySpec(objective="max_bandwidth"),
    )


def run(
    phase_duration: float = 60.0,
    warmup: float = 1.0,
) -> Fig11Result:
    runner = ScenarioRunner(scenario(phase_duration, warmup)).setup()
    sdn = runner.sdn
    sdn.run(until=warmup)
    runner.inject_traffic()
    policy = sdn.router_config.policy("MIA")
    touches_before = policy.reconfigurations
    sdn.run(until=warmup + phase_duration)

    # phase (ii): ask the Optimizer for the minimum-latency path and
    # migrate with one PBR re-bind (the paper's "single modification of a
    # PBR entry in the ingress edge node")
    migration_at = sdn.network.sim.now
    recommendation = sdn.hecate.recommend(
        [name for name, _, _ in runner.tunnels], objective="min_latency"
    )
    sdn.migrate_flow("ping1", recommendation.path)
    sdn.run(until=warmup + 2 * phase_duration)

    ping = sdn.flow("ping1").app
    t, rtts = ping.rtt_series()
    before = rtts[t < migration_at - 1.0]
    after = rtts[t > migration_at + 1.0]
    core_touches = sum(
        p.reconfigurations
        for router, p in sdn.router_config.policies.items()
        if router != "MIA"
    )
    return Fig11Result(
        times=t,
        rtts_ms=rtts,
        migration_at=migration_at,
        rtt_before_ms=float(before.mean()),
        rtt_after_ms=float(after.mean()),
        improvement_ms=float(before.mean() - after.mean()),
        pbr_touches=policy.reconfigurations - touches_before,
        core_reconfigurations=core_touches,
    )


def summary(result: Fig11Result) -> str:
    plot = ascii_timeseries(
        [("RTT (ms)", result.rtts_ms)],
        title=f"Fig. 11 — ping RTT; PBR flip at t={result.migration_at:.0f}s",
        height=10,
    )
    lines = [
        plot,
        f"  before migration: {result.rtt_before_ms:6.2f} ms",
        f"  after  migration: {result.rtt_after_ms:6.2f} ms",
        f"  improvement     : {result.improvement_ms:6.2f} ms "
        f"(injected one-way delay: {INJECTED_DELAY_MS} ms)",
        f"  PBR entries touched: {result.pbr_touches} "
        f"(core reconfigurations: {result.core_reconfigurations})",
    ]
    return "\n".join(lines)
