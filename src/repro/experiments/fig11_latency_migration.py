"""Fig. 11 — agile migration to a lower-latency path.

Phase (i): ICMP probes between host1 and host2 ride Tunnel 1
(MIA-SAO-AMS) for 60 s; the MIA-SAO link carries the 20 ms ``tc`` delay
of the paper's setup.  Phase (ii): the optimizer answers a latency-
minimization request with MIA-CHI-AMS and the flow migrates by a single
PBR re-bind at the MIA edge.  Reported shape: the RTT series steps down
by ~the injected one-way delay at the migration instant, and no core
router is reconfigured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.bus import MessageBus
from repro.freertr.service import RECONFIG_TOPIC, RouterConfigService
from repro.net import PingApp
from repro.topologies import TUNNEL1, TUNNEL2, global_p4_lab

from .plotting import ascii_timeseries

__all__ = ["Fig11Result", "run"]

INJECTED_DELAY_MS = 20.0


@dataclass(frozen=True)
class Fig11Result:
    times: np.ndarray
    rtts_ms: np.ndarray
    migration_at: float
    rtt_before_ms: float
    rtt_after_ms: float
    improvement_ms: float
    pbr_touches: int
    core_reconfigurations: int


def run(
    phase_duration: float = 60.0,
    probe_interval: float = 1.0,
) -> Fig11Result:
    net = global_p4_lab(delays={("MIA", "SAO"): 1.0 + INJECTED_DELAY_MS})
    bus = MessageBus()
    service = RouterConfigService(net, bus)
    config = (
        "access-list ping1\n"
        " permit icmp 40.40.1.0 255.255.255.0 40.40.2.2 255.255.255.255\n"
        "exit\n"
        f"interface tunnel1\n tunnel domain-name {' '.join(TUNNEL1)}\nexit\n"
        f"interface tunnel2\n tunnel domain-name {' '.join(TUNNEL2)}\nexit\n"
        "pbr ping1 tunnel 1\n"
    )
    bus.request(RECONFIG_TOPIC, command="apply_config", router="MIA", text=config)
    touches_before = service.policy("MIA").reconfigurations

    ping = PingApp(net.hosts["host1"], net.hosts["host2"],
                   interval=probe_interval).start(at=0.5)
    net.run(until=phase_duration)

    # phase (ii): the optimizer's min-latency answer is Tunnel 2; migrate
    # with one PBR re-bind (the paper's "single modification of a PBR
    # entry in the ingress edge node")
    migration_at = net.sim.now
    bus.request(RECONFIG_TOPIC, command="bind_pbr", router="MIA",
                acl="ping1", tunnel_id=2)
    net.run(until=2 * phase_duration)

    t, rtts = ping.rtt_series()
    before = rtts[t < migration_at - 1.0]
    after = rtts[t > migration_at + 1.0]
    return Fig11Result(
        times=t,
        rtts_ms=rtts,
        migration_at=migration_at,
        rtt_before_ms=float(before.mean()),
        rtt_after_ms=float(after.mean()),
        improvement_ms=float(before.mean() - after.mean()),
        pbr_touches=service.policy("MIA").reconfigurations - touches_before,
        core_reconfigurations=0,  # no command ever addresses a core node
    )


def summary(result: Fig11Result) -> str:
    plot = ascii_timeseries(
        [("RTT (ms)", result.rtts_ms)],
        title=f"Fig. 11 — ping RTT; PBR flip at t={result.migration_at:.0f}s",
        height=10,
    )
    lines = [
        plot,
        f"  before migration: {result.rtt_before_ms:6.2f} ms",
        f"  after  migration: {result.rtt_after_ms:6.2f} ms",
        f"  improvement     : {result.improvement_ms:6.2f} ms "
        f"(injected one-way delay: {INJECTED_DELAY_MS} ms)",
        f"  PBR entries touched: {result.pbr_touches} "
        f"(core reconfigurations: {result.core_reconfigurations})",
    ]
    return "\n".join(lines)
