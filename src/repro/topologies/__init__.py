"""Paper topologies and generators.

- :func:`fig1_line` — the three-core-node PolKA worked example (Fig. 1).
- :func:`three_node` — the s/i/d triangle of the min-max LP (Fig. 2).
- :func:`global_p4_lab` — the emulated Global P4 Lab subset (Fig. 9) with
  the link capacities/delays of the Fig. 11/12 experiments.
- :func:`random_wan` — seeded connected WANs for stress/property tests.
- :func:`line_topology` / :func:`ring_topology` / :func:`fat_tree_topology`
  / :func:`random_geometric` — parametric families used by the scenario
  suite (:mod:`repro.scenarios`).
"""

from .paper import (
    FIG1_NODE_IDS,
    ROUTER_IPS,
    TUNNEL1,
    TUNNEL2,
    TUNNEL3,
    fig1_line,
    fig12_capacities,
    global_p4_lab,
    three_node,
)
from .generators import (
    fat_tree_topology,
    line_topology,
    random_geometric,
    random_wan,
    ring_topology,
)

__all__ = [
    "fig1_line",
    "FIG1_NODE_IDS",
    "three_node",
    "global_p4_lab",
    "fig12_capacities",
    "ROUTER_IPS",
    "TUNNEL1",
    "TUNNEL2",
    "TUNNEL3",
    "line_topology",
    "ring_topology",
    "fat_tree_topology",
    "random_geometric",
    "random_wan",
]
